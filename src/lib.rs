//! # ear-suite
//!
//! Umbrella crate for the ear-decomposition shortest-path/cycle suite — a
//! Rust reproduction of *"Applications of Ear Decomposition to Efficient
//! Heterogeneous Algorithms for Shortest Path/Cycle Problems"* (Dutta,
//! Chaitanya, Kothapalli, Bera; IPPS 2017 / IJNC 2018).
//!
//! Re-exports every member crate so downstream users can depend on a single
//! crate; see the individual crates for detail:
//!
//! * [`graph`] — CSR multigraph substrate (Dijkstra, traversals, I/O);
//! * [`decomp`] — biconnectivity, block-cut trees, ear decomposition, the
//!   degree-2 chain reduction;
//! * [`hetero`] — the simulated heterogeneous CPU+GPU platform;
//! * [`apsp`] — ear-decomposition APSP and the comparison baselines;
//! * [`mcb`] — minimum cycle basis in four execution modes;
//! * [`bc`] — betweenness centrality (the companion path-problem the
//!   paper's conclusions point at) with pendant-tree reduction;
//! * [`workloads`] — synthetic dataset generators matched to the paper;
//! * [`core`] — high-level pipelines;
//! * [`obs`] — tracing + metrics with Chrome-trace export.

pub use ear_apsp as apsp;
pub use ear_bc as bc;
pub use ear_core as core;
pub use ear_decomp as decomp;
pub use ear_graph as graph;
pub use ear_hetero as hetero;
pub use ear_mcb as mcb;
pub use ear_obs as obs;
pub use ear_workloads as workloads;
