//! Offline stand-in for the `rayon` API subset this workspace uses.
//!
//! The build environment has no crates.io access, so the real `rayon`
//! cannot be fetched. This shim keeps the same call sites
//! (`par_iter().zip(..).map(..).collect()`, `par_iter_mut().map(..)`)
//! compiling and genuinely parallel, with two properties the workspace's
//! hot paths rely on:
//!
//! * **Borrowed fast path** — `par_iter()` on a slice or `Vec` yields a
//!   [`ParSlice`] that borrows the data directly instead of snapshotting
//!   every element reference into a fresh `Vec`, so the scratch-pool
//!   kernels downstream are not defeated by shim allocations.
//! * **Dynamic chunk claiming** — workers repeatedly claim the next chunk
//!   of indices from a shared atomic counter until the input is drained,
//!   so a thread that finishes early keeps pulling work instead of idling
//!   behind a static per-core partition (workunit batches in this
//!   workspace are deliberately *non*-uniform). Output order is preserved
//!   by stitching per-chunk results back by their starting offset.
//!
//! Panics in worker closures propagate to the caller with their original
//! payload, as with real rayon.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The glob-importable surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter, ParSlice};
}

/// Extension trait providing [`par_iter`](IntoParallelRefIterator::par_iter)
/// on slices and vectors (the collection types this workspace fans out
/// over). Borrows the data — no snapshot.
pub trait IntoParallelRefIterator<'data> {
    /// The element type iterated by reference.
    type Item: Sync + 'data;
    /// Borrows the items as a [`ParSlice`].
    fn par_iter(&'data self) -> ParSlice<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

/// Extension trait providing
/// [`par_iter_mut`](IntoParallelRefMutIterator::par_iter_mut) on slices and
/// vectors.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type iterated by mutable reference.
    type Item: Send + 'data;
    /// Collects the mutable borrows into a [`ParIter`].
    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = T;

    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// A borrowed view of a slice flowing into the parallel pipeline: the
/// zero-copy entry point produced by `par_iter()`.
pub struct ParSlice<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParSlice<'data, T> {
    /// Pairs each item with the corresponding item of `other`, truncating
    /// to the shorter side (same contract as `Iterator::zip`).
    pub fn zip<J>(self, other: J) -> ParIter<(&'data T, J::Item)>
    where
        J: IntoIterator,
        J::Item: Send,
    {
        ParIter {
            items: self.items.iter().zip(other).collect(),
        }
    }

    /// Applies `f` to every item in parallel (dynamic chunk claiming),
    /// preserving order.
    pub fn map<R: Send, F: Fn(&'data T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map_indexed(self.items.len(), |i| f(&self.items[i])),
        }
    }

    /// Applies `f` to every item in parallel, discarding results.
    pub fn for_each<F: Fn(&'data T) + Sync>(self, f: F) {
        par_map_indexed(self.items.len(), |i| f(&self.items[i]));
    }

    /// Gathers the borrowed items into any `FromIterator` collection.
    pub fn collect<C: FromIterator<&'data T>>(self) -> C {
        self.items.iter().collect()
    }
}

/// Owned items flowing through the parallel pipeline (produced by `zip`,
/// `map`, or `par_iter_mut`).
///
/// `map` is the parallel step: it executes eagerly across dynamically
/// scheduled chunks. Everything else (`zip`, `collect`) is plain
/// order-preserving plumbing.
pub struct ParIter<I: Send> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs each item with the corresponding item of `other`, truncating
    /// to the shorter side (same contract as `Iterator::zip`).
    pub fn zip<J>(self, other: J) -> ParIter<(I, J::Item)>
    where
        J: IntoIterator,
        J::Item: Send,
    {
        ParIter {
            items: self.items.into_iter().zip(other).collect(),
        }
    }

    /// Applies `f` to every item in parallel (dynamic chunk claiming),
    /// preserving order.
    pub fn map<R: Send, F: Fn(I) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Applies `f` to every item in parallel, discarding results.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Gathers the items into any `FromIterator` collection, in order.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Number of worker threads for `len` items, and the chunk size they claim.
/// Chunks are a fraction of a fair share so late-finishing threads leave
/// work on the table for early finishers to steal.
fn schedule(len: usize) -> (usize, usize) {
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(len.max(1));
    let chunk = len.div_ceil(threads * 4).max(1);
    (threads, chunk)
}

/// Order-preserving parallel map over index space `0..len`: workers claim
/// chunks of indices from a shared atomic counter until the range drains.
/// Panics in `f` propagate to the caller with their original payload.
fn par_map_indexed<R: Send>(len: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let (threads, chunk) = schedule(len);
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let pieces: Vec<(usize, Vec<R>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        mine.push((start, (start..end).map(f).collect()));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    stitch(len, pieces)
}

/// Order-preserving parallel map over an owned vector: workers pull chunks
/// of items from a shared queue (dynamic scheduling). Panics in `f`
/// propagate to the caller with their original payload.
fn par_map_vec<I: Send, R: Send>(items: Vec<I>, f: impl Fn(I) -> R + Sync) -> Vec<R> {
    let len = items.len();
    let (threads, chunk) = schedule(len);
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    // The items are owned, so workers pull (offset, chunk) pairs from a
    // mutex-guarded iterator; the lock is held only while moving items out,
    // never while running `f`.
    let queue = Mutex::new((0usize, items.into_iter()));
    let f = &f;
    let queue = &queue;
    let pieces: Vec<(usize, Vec<R>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let (start, batch): (usize, Vec<I>) = {
                            let mut q = queue.lock().unwrap();
                            let start = q.0;
                            let batch: Vec<I> = q.1.by_ref().take(chunk).collect();
                            q.0 = start + batch.len();
                            (start, batch)
                        };
                        if batch.is_empty() {
                            break;
                        }
                        mine.push((start, batch.into_iter().map(f).collect()));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    stitch(len, pieces)
}

/// Reassembles per-chunk results into input order by their starting offset.
fn stitch<R>(len: usize, mut pieces: Vec<(usize, Vec<R>)>) -> Vec<R> {
    pieces.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(len);
    for (start, piece) in pieces {
        debug_assert_eq!(start, out.len());
        out.extend(piece);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_borrows() {
        let xs = [5u32, 6, 7];
        let ys: Vec<u32> = xs[1..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys, vec![7, 8]);
    }

    #[test]
    fn zip_then_map() {
        let a = vec![1u32, 2, 3];
        let b = vec![10u32, 20, 30];
        let s: Vec<u32> = a.par_iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(s, vec![11, 22, 33]);
    }

    #[test]
    fn par_iter_mut_writes_through() {
        let mut xs = vec![0u32; 100];
        let counts: Vec<u32> = xs
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert!(xs.iter().all(|&x| x == 1));
        assert_eq!(counts.len(), 100);
    }

    #[test]
    fn subslice_par_iter_mut_writes_through() {
        let mut xs = [0u32; 10];
        xs[4..].par_iter_mut().for_each(|x| *x = 9);
        assert_eq!(&xs[..4], &[0, 0, 0, 0]);
        assert!(xs[4..].iter().all(|&x| x == 9));
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u8> = Vec::new();
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn nonuniform_work_is_balanced_dynamically() {
        // One huge item at the front of a long tail of tiny ones; static
        // per-core chunking would serialize the tail behind it. Mostly a
        // correctness check that claimed chunks cover every index once.
        let xs: Vec<u64> = (0..4_096).collect();
        let ys: Vec<u64> = xs
            .par_iter()
            .map(|&x| {
                if x == 0 {
                    (0..10_000u64).sum::<u64>() + x
                } else {
                    x
                }
            })
            .collect();
        assert_eq!(ys[0], (0..10_000u64).sum::<u64>());
        assert_eq!(&ys[1..], &xs[1..]);
    }

    #[test]
    fn panics_propagate() {
        let xs = vec![1u32, 2, 3];
        let r = std::panic::catch_unwind(|| {
            let _: Vec<u32> = xs
                .par_iter()
                .map(|&x| if x == 2 { panic!("boom") } else { x })
                .collect();
        });
        assert!(r.is_err());
    }

    #[test]
    fn panics_propagate_from_owned_map() {
        let xs = vec![1u32, 2, 3];
        let r = std::panic::catch_unwind(|| {
            let _: Vec<u32> = xs
                .par_iter()
                .zip(0u32..)
                .map(|(&x, _)| if x == 2 { panic!("boom") } else { x })
                .collect();
        });
        assert!(r.is_err());
    }
}
