//! Offline stand-in for the `rayon` API subset this workspace uses.
//!
//! The build environment has no crates.io access, so the real `rayon`
//! cannot be fetched. This shim keeps the same call sites
//! (`par_iter().zip(..).map(..).collect()`, `par_iter_mut().map(..)`)
//! compiling and genuinely parallel: `map` fans the items out over
//! `std::thread::scope` chunks, one per available core, preserving input
//! order in the output. There is no work stealing — chunks are static —
//! which is fine for this workspace's uniform workunit batches.

#![deny(missing_docs)]

/// The glob-importable surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter};
}

/// Extension trait providing [`par_iter`](IntoParallelRefIterator::par_iter)
/// on any collection whose shared reference iterates.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: Send + 'data;
    /// Snapshots the items into a [`ParIter`].
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send,
{
    type Item = <&'data C as IntoIterator>::Item;

    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Extension trait providing
/// [`par_iter_mut`](IntoParallelRefMutIterator::par_iter_mut) on any
/// collection whose exclusive reference iterates.
pub trait IntoParallelRefMutIterator<'data> {
    /// The mutably borrowed item type.
    type Item: Send + 'data;
    /// Snapshots the mutable borrows into a [`ParIter`].
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
    <&'data mut C as IntoIterator>::Item: Send,
{
    type Item = <&'data mut C as IntoIterator>::Item;

    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A snapshot of items flowing through the parallel pipeline.
///
/// `map` is the parallel step: it executes eagerly across scoped threads.
/// Everything else (`zip`, `collect`) is plain order-preserving plumbing.
pub struct ParIter<I: Send> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs each item with the corresponding item of `other`, truncating
    /// to the shorter side (same contract as `Iterator::zip`).
    pub fn zip<J>(self, other: J) -> ParIter<(I, J::Item)>
    where
        J: IntoIterator,
        J::Item: Send,
    {
        ParIter {
            items: self.items.into_iter().zip(other).collect(),
        }
    }

    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R: Send, F: Fn(I) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Applies `f` to every item in parallel, discarding results.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Gathers the items into any `FromIterator` collection, in order.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Order-preserving parallel map over an owned vector: static chunks, one
/// scoped thread per chunk. Panics in `f` propagate to the caller with
/// their original payload.
fn par_map_vec<I: Send, R: Send>(items: Vec<I>, f: impl Fn(I) -> R + Sync) -> Vec<R> {
    let len = items.len();
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(len.max(1));
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_then_map() {
        let a = vec![1u32, 2, 3];
        let b = vec![10u32, 20, 30];
        let s: Vec<u32> = a.par_iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(s, vec![11, 22, 33]);
    }

    #[test]
    fn par_iter_mut_writes_through() {
        let mut xs = vec![0u32; 100];
        let counts: Vec<u32> = xs
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert!(xs.iter().all(|&x| x == 1));
        assert_eq!(counts.len(), 100);
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u8> = Vec::new();
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn panics_propagate() {
        let xs = vec![1u32, 2, 3];
        let r = std::panic::catch_unwind(|| {
            let _: Vec<u32> = xs
                .par_iter()
                .map(|&x| if x == 2 { panic!("boom") } else { x })
                .collect();
        });
        assert!(r.is_err());
    }
}
