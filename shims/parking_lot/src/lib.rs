//! Offline stand-in for the `parking_lot` API subset this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! `parking_lot` cannot be fetched; this shim maps the same API onto
//! `std::sync`. Semantics differ only in fairness/perf details:
//! [`Mutex::lock`] never returns a poison error (a poisoned std mutex is
//! unwrapped into its inner guard, matching parking_lot's no-poisoning
//! model).

#![deny(missing_docs)]

use std::sync::TryLockError;

/// A mutual-exclusion primitive with the `parking_lot` calling convention:
/// `lock()` returns the guard directly, with no poisoning `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `t`.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Poisoning is
    /// ignored, as in `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn survives_panic_while_locked() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*m.lock(), 1);
    }
}
