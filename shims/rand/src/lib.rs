//! Offline stand-in for the `rand` API subset this workspace uses.
//!
//! The build environment has no crates.io access, so the real `rand`
//! cannot be fetched. This shim keeps the workspace's call sites compiling
//! unchanged: `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! ranges, and `seq::SliceRandom::shuffle`. The generator is SplitMix64 —
//! deterministic for a given seed, statistically solid for workload
//! synthesis, and obviously **not** cryptographic. Streams differ from the
//! real `rand` crate's; all in-repo consumers only rely on determinism,
//! never on matching upstream streams.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges). Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut rng = StdRng { state: seed };
        // Warm up so nearby seeds do not yield nearby first outputs.
        let _ = rng.next_u64();
        rng
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from the **inclusive** interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Multiply-shift maps 64 random bits onto [0, span) with
                // negligible bias for the spans used in this workspace.
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One + std::ops::Sub<Output = T>> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_inclusive(rng, self.start, self.end - T::one())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The multiplicative identity, needed to turn half-open bounds inclusive.
pub trait One {
    /// Returns `1`.
    fn one() -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(impl One for $t { fn one() -> Self { 1 } })*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(1..=100);
            assert!((1..=100).contains(&y));
            let z: usize = rng.gen_range(0..5);
            assert!(z < 5);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(5..=5u64), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
