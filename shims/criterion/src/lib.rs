//! Offline stand-in for the `criterion` API subset this workspace uses.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched. This shim keeps the bench targets compiling and
//! running: each benchmark executes a short warm-up plus `sample_size`
//! timed iterations and prints min/mean wall times. There is no outlier
//! analysis, no HTML report, and no statistical machinery — the figures
//! are indicative, not publication-grade (the repo's modelled device
//! comparison lives in `ear-bench`'s binaries, not here).

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(200),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one("", id, self.new_bencher(), &mut f);
        self
    }

    fn new_bencher(&self) -> Bencher {
        Bencher {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            samples: Vec::new(),
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration (clamped to 200 ms in this shim to keep
    /// `cargo bench` fast offline).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d.min(Duration::from_millis(200));
        self
    }

    /// Accepted for API compatibility; the shim times exactly
    /// `sample_size` iterations instead of a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let b = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            samples: Vec::new(),
        };
        run_one(&self.name, &id.to_string(), b, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let b = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            samples: Vec::new(),
        };
        run_one(
            &self.name,
            &id.to_string(),
            b,
            &mut |bench: &mut Bencher| f(bench, input),
        );
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Parameterised benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds `"{name}/{parameter}"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput declaration, accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark measurement driver handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` iterations of `f` after a short warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one(group: &str, id: &str, mut b: Bencher, f: &mut dyn FnMut(&mut Bencher)) {
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{label:<48} min {min:>12.3?}   mean {mean:>12.3?}   ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group function list, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2).warm_up_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("bcc", 42).to_string(), "bcc/42");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
