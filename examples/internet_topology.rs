//! Internet AS-topology analysis — the paper's `as-22july06` scenario.
//!
//! Autonomous-system graphs are extreme ear-decomposition material: the
//! paper's snapshot loses 77.6% of its vertices to degree-2 contraction.
//! This example builds the synthetic analog, runs the APSP oracle, and
//! reports everything a network operator would ask of it: routing-table
//! distances, actual AS paths, reachability, the memory story, and the
//! MTEPS scalability metric of the paper's Figure 3.
//!
//! ```text
//! cargo run --release --example internet_topology
//! ```

use ear_core::prelude::*;
use ear_workloads::specs::table1_specs;
use ear_workloads::GraphStats;

fn main() {
    // The as-22july06 analog at 1/40 of the published size.
    let spec = &table1_specs()[3];
    assert_eq!(spec.name, "as-22july06");
    let g = spec.build(40, 2026);
    println!(
        "AS topology analog: {} ASes, {} peering links (paper row: {}K/{}K)",
        g.n(),
        g.m(),
        spec.n / 1000,
        spec.m / 1000
    );

    let stats = GraphStats::measure(&g);
    println!(
        "degree-2 share: {:.1}% (paper: {:.1}%), biconnected components: {}",
        stats.removed_pct(),
        spec.removed_pct,
        stats.n_bccs
    );

    // Build the oracle on the heterogeneous platform.
    let ours = ApspPipeline::new().run(&g);
    let plain = ApspPipeline::new().use_ear(false).run(&g);
    let o = &ours.oracle;

    println!("\n== modelled build time (CPU+GPU) ==");
    println!(
        "  with ear reduction:  {:.2} ms",
        ours.modelled_time_s * 1e3
    );
    println!(
        "  without (Banerjee):  {:.2} ms",
        plain.modelled_time_s * 1e3
    );
    println!(
        "  speedup:             {:.2}x",
        plain.modelled_time_s / ours.modelled_time_s
    );
    let mteps = |t: f64| (g.n() as f64 * g.m() as f64) / t / 1e6;
    println!(
        "  MTEPS (fig. 3):      {:.0} vs {:.0}",
        mteps(ours.modelled_time_s),
        mteps(plain.modelled_time_s)
    );

    println!("\n== memory (4-byte entries) ==");
    println!(
        "  flat n^2 table:      {:>8.1} MB",
        o.stats().max_memory_bytes_f32() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  block tables + A:    {:>8.1} MB",
        o.stats().memory_bytes_f32() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  reduced tables + A:  {:>8.1} MB (on-demand extension variant)",
        stats.reduced_memory_mb()
    );

    // Routing queries: hub-to-edge and edge-to-edge paths.
    println!("\n== sample AS routes ==");
    let hub = (0..g.n() as u32).max_by_key(|&v| g.degree(v)).unwrap();
    let leaf = (0..g.n() as u32)
        .filter(|&v| g.degree(v) == 1)
        .max_by_key(|&v| o.dist(hub, v))
        .unwrap_or(0);
    let far = (0..g.n() as u32)
        .max_by_key(|&v| {
            let d = o.dist(leaf, v);
            if d >= INF {
                0
            } else {
                d
            }
        })
        .unwrap();
    for (a, b, label) in [
        (hub, leaf, "hub -> farthest stub"),
        (leaf, far, "stub -> farthest AS (network diameter path)"),
    ] {
        match o.path(&g, a, b) {
            Some(p) => println!(
                "  {label}: d({a},{b}) = {} over {} hops\n    {:?}",
                o.dist(a, b),
                p.len() - 1,
                p
            ),
            None => println!("  {label}: unreachable"),
        }
    }

    // Consistency spot check against a fresh Dijkstra.
    let d = ear_graph::dijkstra(&g, hub);
    for v in (0..g.n() as u32).step_by((g.n() / 29).max(1)) {
        assert_eq!(o.dist(hub, v), d[v as usize]);
    }
    println!("\noracle verified against direct Dijkstra from AS {hub}.");
}
