//! Ring perception in molecules via minimum cycle basis.
//!
//! The paper motivates MCB with applications in biochemistry (Gleiss,
//! "minimum cycle bases of graphs from chemistry and biochemistry"): the
//! *smallest set of smallest rings* of a molecule is (close to) a minimum
//! cycle basis of its bond graph. This example encodes two fused-ring
//! molecules as graphs and extracts their ring systems.
//!
//! ```text
//! cargo run --release --example molecule_rings
//! ```

use ear_core::prelude::*;
use ear_mcb::verify::is_simple_cycle;

/// Naphthalene: two fused benzene rings (C10H8 skeleton, hydrogens
/// omitted). Vertices are carbons; all bonds weight 1.
fn naphthalene() -> CsrGraph {
    let bonds: &[(u32, u32)] = &[
        // first ring 0..5
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 0),
        // fusion bond is (4,5)'s neighbours: second ring on 4,5,6,7,8,9
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 4),
    ];
    let edges: Vec<(u32, u32, Weight)> = bonds.iter().map(|&(a, b)| (a, b, 1)).collect();
    CsrGraph::from_edges(10, &edges)
}

/// Steroid-like fused tetracycle (gonane skeleton, 17 carbons): three
/// six-rings and one five-ring sharing edges.
fn gonane() -> CsrGraph {
    let bonds: &[(u32, u32)] = &[
        // ring A (0-5)
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 0),
        // ring B shares bond (3,4): vertices 3,4,6,7,8,9
        (4, 6),
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 3),
        // ring C shares bond (7,8): vertices 7,8,10,11,12,13
        (8, 10),
        (10, 11),
        (11, 12),
        (12, 13),
        (13, 7),
        // ring D (five-membered) shares bond (11,12): vertices 11,12,14,15,16
        (12, 14),
        (14, 15),
        (15, 16),
        (16, 11),
    ];
    let edges: Vec<(u32, u32, Weight)> = bonds.iter().map(|&(a, b)| (a, b, 1)).collect();
    CsrGraph::from_edges(17, &edges)
}

fn report(name: &str, g: &CsrGraph, expected_rings: &[usize]) {
    let out = McbPipeline::new().mode(ExecMode::MultiCore).run(g);
    println!("== {name} ==");
    println!(
        "atoms {}, bonds {}, ring count (cyclomatic) {}",
        g.n(),
        g.m(),
        out.result.dim
    );
    let mut sizes: Vec<usize> = out.result.cycles.iter().map(|c| c.edges.len()).collect();
    sizes.sort_unstable();
    println!("ring sizes: {sizes:?} (expected {expected_rings:?})");
    assert_eq!(sizes, expected_rings, "{name}: wrong ring system");
    for (i, c) in out.result.cycles.iter().enumerate() {
        assert!(
            is_simple_cycle(g, &c.edges),
            "ring {i} must be a simple cycle"
        );
        let mut atoms: Vec<u32> = c
            .edges
            .iter()
            .flat_map(|&e| {
                let r = g.edge(e);
                [r.u, r.v]
            })
            .collect();
        atoms.sort_unstable();
        atoms.dedup();
        println!("  ring {i}: {} atoms {atoms:?}", atoms.len());
    }
    println!();
}

fn main() {
    report("naphthalene (2 fused six-rings)", &naphthalene(), &[6, 6]);
    report(
        "gonane (steroid skeleton: 6-6-6-5)",
        &gonane(),
        &[5, 6, 6, 6],
    );

    // The ring systems above are small; show the ear reduction earning its
    // keep on a polymer: a long chain of naphthalene units connected by
    // 4-carbon linkers (all degree-2 — contracted away).
    let unit = naphthalene();
    let mut b = GraphBuilder::new(0);
    let mut last_exit: Option<VertexId> = None;
    for _ in 0..12 {
        let base = b.n() as u32;
        b.grow_to(b.n() + unit.n());
        for e in unit.edges() {
            b.add_edge(base + e.u, base + e.v, e.w);
        }
        if let Some(prev) = last_exit {
            // 4-carbon linker between units.
            let mut at = prev;
            for _ in 0..4 {
                let c = b.add_vertex();
                b.add_edge(at, c, 1);
                at = c;
            }
            b.add_edge(at, base, 1);
        }
        last_exit = Some(base + 7);
    }
    let polymer = b.build();
    let out = McbPipeline::new().run(&polymer);
    println!("== polymer of 12 naphthalene units ==");
    println!(
        "atoms {}, bonds {}, rings {}, total ring weight {}",
        polymer.n(),
        polymer.m(),
        out.result.dim,
        out.result.total_weight
    );
    // The linker carbons sit on bridges (acyclic blocks the pipeline skips
    // outright); the contracted vertices are the degree-2 ring carbons
    // inside each naphthalene block — 8 of its 10 carbons.
    println!(
        "degree-2 ring carbons contracted by ear reduction: {}",
        out.result.removed_vertices
    );
    assert_eq!(out.result.dim, 24, "12 units x 2 rings");
}
