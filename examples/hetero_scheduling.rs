//! The heterogeneous work queue in isolation (paper §2.3 / §3.4).
//!
//! Demonstrates the double-ended queue on a skewed workload: a few huge
//! workunits plus a long tail of small ones — the shape per-BCC APSP
//! produces on real sparse graphs (one giant component, thousands of tiny
//! ones). Compares the paper's dynamic balancing against static splits
//! under the device model, and runs the genuinely-concurrent mode to show
//! exactly-once execution.
//!
//! ```text
//! cargo run --release --example hetero_scheduling
//! ```

use ear_hetero::{DeviceProfile, HeteroExecutor, WorkCounters};

/// A synthetic workunit: `size` abstract items of work.
fn kernel(size: &u64) -> (u64, WorkCounters) {
    // Pretend each item relaxes one edge; the checksum output proves the
    // work happened.
    let checksum = (0..*size).fold(0u64, |acc, x| acc.wrapping_mul(31).wrapping_add(x));
    (
        checksum,
        WorkCounters {
            edges_relaxed: *size,
            ..Default::default()
        },
    )
}

fn main() {
    // Zipf-ish workunit sizes: one giant block + a heavy tail, the paper's
    // "workunits sorted according to the size of the biconnected
    // component".
    let mut units: Vec<u64> = Vec::new();
    units.push(3_000_000);
    units.extend((0..8).map(|i| 400_000 >> i));
    units.extend(std::iter::repeat_n(700, 4000));
    let total: u64 = units.iter().sum();
    println!(
        "{} workunits, {} total items, largest unit holds {:.1}% of all work\n",
        units.len(),
        total,
        100.0 * 3_000_000.0 / total as f64
    );

    // Dynamic balancing on the modelled CPU+GPU platform.
    let exec = HeteroExecutor::cpu_gpu();
    let out = exec.run(units.clone(), |&s| s, kernel);
    println!("== dynamic double-ended queue (the paper's scheduler) ==");
    for d in &out.report.devices {
        println!(
            "  {:<22} {:>5} units in {:>3} batches, busy {:>9.3} ms, {:>9} items",
            d.name,
            d.units,
            d.batches,
            d.busy_s * 1e3,
            d.counters.edges_relaxed
        );
    }
    println!("  modelled makespan: {:.3} ms", out.report.makespan_s * 1e3);

    // Static splits for contrast: give the GPU a fixed fraction of units.
    println!("\n== static splits (fraction of the unit list to the GPU) ==");
    for gpu_frac in [0.0, 0.5, 0.9, 1.0] {
        let cut = (units.len() as f64 * gpu_frac) as usize;
        let mut sorted = units.clone();
        sorted.sort_unstable_by_key(|&s| std::cmp::Reverse(s));
        let (gpu_part, cpu_part) = sorted.split_at(cut);
        let gpu = HeteroExecutor::new(vec![DeviceProfile::k40c()]);
        let cpu = HeteroExecutor::new(vec![DeviceProfile::e5_2650()]);
        let t_gpu = gpu.run(gpu_part.to_vec(), |&s| s, kernel).report.makespan_s;
        let t_cpu = cpu.run(cpu_part.to_vec(), |&s| s, kernel).report.makespan_s;
        let makespan = t_gpu.max(t_cpu);
        println!(
            "  gpu={:>3.0}%: makespan {:>9.3} ms  (gpu {:>9.3} ms, cpu {:>9.3} ms)",
            gpu_frac * 100.0,
            makespan * 1e3,
            t_gpu * 1e3,
            t_cpu * 1e3
        );
    }
    println!(
        "\ndynamic balancing ({:.3} ms) tracks the best static split without\nknowing the workload in advance — that is why the paper uses the queue.",
        out.report.makespan_s * 1e3
    );

    // Genuinely concurrent execution (no model): exactly-once checks.
    let conc = exec.run_concurrent(units.clone(), |&s| s, kernel);
    assert_eq!(
        conc.results, out.results,
        "same checksums under real concurrency"
    );
    let items: u64 = conc.report.total_counters().edges_relaxed;
    assert_eq!(items, total, "every item processed exactly once");
    println!(
        "\nconcurrent mode re-ran the workload on real threads: {} units, wall {:.1} ms",
        conc.report.total_units(),
        conc.report.wall_s * 1e3
    );
}
