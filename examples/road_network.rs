//! Road-network APSP: the paper's motivating scenario for the ear
//! reduction.
//!
//! Road networks are planar-ish meshes where long stretches of road between
//! junctions appear as chains of degree-2 vertices — exactly what the ear
//! reduction contracts. This example synthesises a small highway+local-road
//! network, builds the distance oracle with and without ear reduction, and
//! compares work, modelled time and memory.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use ear_core::prelude::*;
use ear_workloads::combinators::subdivide_edges;
use ear_workloads::generators::grid;

fn main() {
    // A 14x14 junction grid ("city blocks"), then every road is subdivided
    // into 3 segments — the degree-2 "road geometry" vertices.
    let junctions = grid(26, 26, 2026);
    let roads = subdivide_edges(&junctions, junctions.m(), 3, 7);
    println!(
        "road network: {} junctions -> {} nodes after geometry, {} segments",
        junctions.n(),
        roads.n(),
        roads.m()
    );

    let ours = ApspPipeline::new().mode(ExecMode::Hetero).run(&roads);
    let baseline = ApspPipeline::new()
        .mode(ExecMode::Hetero)
        .use_ear(false)
        .run(&roads);

    let s = ours.oracle.stats();
    println!("\n== preprocessing ==");
    println!(
        "degree-2 vertices removed: {} of {} ({:.1}%)",
        s.removed_vertices,
        s.n,
        100.0 * s.removed_vertices as f64 / s.n as f64
    );

    println!("\n== work comparison (edge relaxations in the Dijkstra phase) ==");
    let ours_relax = ours.oracle.processing.total_counters().edges_relaxed;
    let base_relax = baseline.oracle.processing.total_counters().edges_relaxed;
    println!("  with ear reduction:    {ours_relax:>12}");
    println!("  without (Banerjee):    {base_relax:>12}");
    println!(
        "  reduction factor:      {:>11.2}x",
        base_relax as f64 / ours_relax as f64
    );

    println!("\n== modelled heterogeneous time ==");
    println!(
        "  with ear reduction:    {:.3} ms",
        ours.modelled_time_s * 1e3
    );
    println!(
        "  without:               {:.3} ms",
        baseline.modelled_time_s * 1e3
    );
    println!(
        "  speedup:               {:.2}x (paper reports 1.7x on average)",
        baseline.modelled_time_s / ours.modelled_time_s
    );

    // Sample routes between far corners and mid-network points.
    println!("\n== sample routes ==");
    let far = (roads.n() - 1) as u32;
    for (a, b) in [(0u32, far), (0, far / 2), (far / 3, far)] {
        let (d1, d2) = (ours.oracle.dist(a, b), baseline.oracle.dist(a, b));
        assert_eq!(d1, d2, "both oracles must agree");
        println!("  d({a:>4}, {b:>4}) = {d1}");
    }

    println!("\n== memory (paper Table 1 accounting, 4-byte entries) ==");
    println!(
        "  block tables + AP table: {:.1} MB  vs flat n^2 table: {:.1} MB",
        s.memory_bytes_f32() as f64 / (1024.0 * 1024.0),
        s.max_memory_bytes_f32() as f64 / (1024.0 * 1024.0),
    );
}
