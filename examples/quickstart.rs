//! Quickstart: the whole suite on a small graph.
//!
//! Builds the graph of the paper's running example style — two hubs joined
//! by degree-2 ears — then runs both pipelines and prints what each phase
//! did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ear_core::prelude::*;
use ear_decomp::{ear_decomposition, DecompPlan};

fn main() {
    // Two hub vertices (0 and 1) joined by three ears, plus a pendant
    // triangle hanging off vertex 1 through a bridge.
    //
    //        2 --- 3             8
    //       /       \           / \
    //      0 -- 4 -- 1 -- 7 -- 9---+
    //       \       /
    //        5 --- 6
    let mut b = GraphBuilder::new(10);
    b.add_edge(0, 2, 1);
    b.add_edge(2, 3, 2);
    b.add_edge(3, 1, 1);
    b.add_edge(0, 4, 2);
    b.add_edge(4, 1, 2);
    b.add_edge(0, 5, 3);
    b.add_edge(5, 6, 1);
    b.add_edge(6, 1, 3);
    b.add_edge(1, 7, 5); // bridge into the satellite triangle
    b.add_edge(7, 9, 1);
    b.add_edge(9, 8, 2);
    b.add_edge(8, 7, 4);
    let g = b.build();

    println!("== input ==");
    println!("n = {}, m = {}", g.n(), g.m());

    // Structure: one decomposition plan fronts the biconnected split, the
    // block-cut tree and the per-block reductions for everything below.
    let plan = DecompPlan::build(&g);
    println!("\n== decomposition ==");
    println!("biconnected components: {}", plan.n_blocks());
    println!("articulation points:    {:?}", plan.bct().aps);
    let largest = plan.blocks_by_size_desc()[0] as u32;
    // block_graph works for both block layouts; materialize for the
    // owned-graph ear-decomposition API.
    let block = plan.block_graph(largest).materialize();
    match ear_decomposition(&block) {
        Ok(d) => {
            println!("largest block has {} ears:", d.ears.len());
            for (i, ear) in d.ears.iter().enumerate() {
                println!(
                    "  ear {i}: {} edges, {} ({:?})",
                    ear.edges.len(),
                    if ear.is_cycle { "cycle" } else { "open path" },
                    ear.vertices
                );
            }
        }
        Err(e) => println!("largest block not biconnected: {e}"),
    }
    let r = plan.reduction(largest).expect("largest block is simple");
    println!(
        "reduced graph: {} -> {} vertices ({} degree-2 vertices contracted)",
        block.n(),
        r.reduced.n(),
        r.removed_count()
    );

    // APSP.
    println!("\n== all-pairs shortest paths (Algorithm 1) ==");
    let apsp = ApspPipeline::new().run(&g);
    let st = apsp.oracle.stats();
    println!(
        "stored {} table entries vs {} for a flat n x n table",
        st.table_entries, st.max_entries
    );
    for (u, v) in [(0u32, 1u32), (2, 6), (0, 8), (4, 9)] {
        println!("  d({u},{v}) = {}", apsp.oracle.dist(u, v));
    }
    println!(
        "modelled heterogeneous build time: {:.3} us",
        apsp.modelled_time_s * 1e6
    );

    // MCB.
    println!("\n== minimum cycle basis (Algorithm 2 + Lemma 3.1) ==");
    let mcb = McbPipeline::new().run(&g);
    println!(
        "dimension {} (= m - n + k), total weight {}",
        mcb.result.dim, mcb.result.total_weight
    );
    for (i, c) in mcb.result.cycles.iter().enumerate() {
        println!("  cycle {i}: weight {:>3}, edges {:?}", c.weight, c.edges);
    }
    println!(
        "ear reduction removed {} vertices before the witness phases",
        mcb.result.removed_vertices
    );
    let (l, s, u) = mcb.result.profile.shares();
    println!(
        "phase shares: labels {:.0}%, search {:.0}%, update {:.0}% (paper: 76/14/8)",
        l * 100.0,
        s * 100.0,
        u * 100.0
    );
}
