//! Span-stack sampling profiler: wall-clock attribution without
//! recompiling.
//!
//! Every instrumented thread already publishes its current span stack to
//! its collector slot (maintained in the same critical section as the
//! ring-buffer write, see [`crate::collector`]). This module adds a
//! *sampler thread* that wakes on a fixed period, snapshots every
//! published stack, and accumulates **folded stacks** — the
//! `outer;inner;leaf -> hit count` map that flamegraph tooling consumes
//! directly ([`collapsed`] renders the standard collapsed-stack text
//! format, one `stack count` line per distinct stack).
//!
//! Because the sampler only *reads* (it opens no spans, records no
//! metrics, and mutates nothing the workload can observe), sampling-on
//! runs are bit-identical to sampling-off runs; the differential test
//! `tests/obs_profile_differential.rs` proves it across every strategy
//! family. Overhead while sampling is one short lock per thread slot per
//! tick (period via [`period_from_env`], env `EAR_OBS_SAMPLE_US`,
//! default 1000 µs); with the profiler *not* running the cost is zero
//! beyond the span path's existing stack push/pop, and with tracing
//! disabled entirely the whole path stays one relaxed load (enforced by
//! `tests/obs_zero_alloc.rs`).
//!
//! ```
//! ear_obs::enable();
//! ear_obs::profile::start(std::time::Duration::from_micros(200)).unwrap();
//! {
//!     let _span = ear_obs::span("doc.work");
//!     std::thread::sleep(std::time::Duration::from_millis(2));
//! }
//! ear_obs::profile::stop();
//! // The final stop() sample plus periodic ticks saw "doc.work" if it
//! // was open at any sampling instant; collapsed() renders what was
//! // seen. (A run shorter than every tick can legitimately fold empty.)
//! let _folded = ear_obs::profile::collapsed();
//! ear_obs::disable();
//! ear_obs::reset();
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default sampling period when `EAR_OBS_SAMPLE_US` is unset: 1000 µs
/// (1 kHz), the design point whose overhead EXPERIMENTS.md records.
pub const DEFAULT_SAMPLE_US: u64 = 1000;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STOP: AtomicBool = AtomicBool::new(false);
static SAMPLES: AtomicU64 = AtomicU64::new(0);

fn folded() -> &'static Mutex<BTreeMap<String, u64>> {
    static F: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    F.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn handle() -> &'static Mutex<Option<JoinHandle<()>>> {
    static H: OnceLock<Mutex<Option<JoinHandle<()>>>> = OnceLock::new();
    H.get_or_init(|| Mutex::new(None))
}

/// Whether the sampler thread is currently running.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Number of sampling ticks taken since the last [`reset`].
pub fn samples() -> u64 {
    SAMPLES.load(Ordering::Relaxed)
}

/// The sampling period selected by the `EAR_OBS_SAMPLE_US` environment
/// variable (microseconds), falling back to [`DEFAULT_SAMPLE_US`] when
/// unset or unparsable (0 is clamped to 1 µs).
pub fn period_from_env() -> Duration {
    let us = std::env::var("EAR_OBS_SAMPLE_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_SAMPLE_US)
        .max(1);
    Duration::from_micros(us)
}

/// Take one sample: fold every thread's currently open span stack into
/// the accumulator.
fn take_sample(scratch: &mut Vec<Vec<&'static str>>, key: &mut String) {
    crate::collector::sample_stacks(scratch);
    SAMPLES.fetch_add(1, Ordering::Relaxed);
    if scratch.is_empty() {
        return;
    }
    let mut map = folded().lock().unwrap();
    for stack in scratch.iter() {
        key.clear();
        for (i, frame) in stack.iter().enumerate() {
            if i > 0 {
                key.push(';');
            }
            key.push_str(frame);
        }
        if let Some(c) = map.get_mut(key.as_str()) {
            *c += 1;
        } else {
            map.insert(key.clone(), 1);
        }
    }
}

/// Start the sampler thread with the given period. Errors if a sampler
/// is already running. Collection ([`crate::enable`]) must be on for
/// threads to publish stacks; starting the sampler does not flip it.
pub fn start(period: Duration) -> Result<(), String> {
    let mut slot = handle().lock().unwrap();
    if slot.is_some() {
        return Err("sampling profiler already running".into());
    }
    STOP.store(false, Ordering::SeqCst);
    ACTIVE.store(true, Ordering::SeqCst);
    let h = std::thread::Builder::new()
        .name("ear-obs-sampler".into())
        .spawn(move || {
            let mut scratch = Vec::new();
            let mut key = String::new();
            while !STOP.load(Ordering::Relaxed) {
                take_sample(&mut scratch, &mut key);
                // Sleep in short slices so stop() never waits out a
                // long period for the join.
                let mut left = period;
                while !STOP.load(Ordering::Relaxed) && !left.is_zero() {
                    let step = left.min(Duration::from_millis(25));
                    std::thread::sleep(step);
                    left = left.saturating_sub(step);
                }
            }
        })
        .map_err(|e| format!("failed to spawn sampler thread: {e}"))?;
    *slot = Some(h);
    Ok(())
}

/// Stop the sampler thread and take one final synchronous sample, so a
/// run shorter than the period still attributes its open root span.
/// No-op if the sampler is not running.
pub fn stop() {
    let h = handle().lock().unwrap().take();
    if let Some(h) = h {
        STOP.store(true, Ordering::SeqCst);
        let _ = h.join();
        ACTIVE.store(false, Ordering::SeqCst);
        let mut scratch = Vec::new();
        let mut key = String::new();
        take_sample(&mut scratch, &mut key);
    }
}

/// Render the accumulated folded stacks as collapsed-stack text:
/// one `frame;frame;frame count` line per distinct stack, sorted —
/// directly consumable by `flamegraph.pl` / `inferno` / speedscope.
pub fn collapsed() -> String {
    let map = folded().lock().unwrap();
    let mut out = String::new();
    for (stack, count) in map.iter() {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// Write [`collapsed`] output to `path`.
pub fn write_collapsed(path: &str) -> std::io::Result<()> {
    std::fs::write(path, collapsed())
}

/// Clear the folded-stack accumulator and the sample counter. Does not
/// stop a running sampler (its next tick starts a fresh accumulation).
pub(crate) fn reset() {
    folded().lock().unwrap().clear();
    SAMPLES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise against the other obs tests that toggle the global flag.
    fn with_obs<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap();
        crate::reset();
        crate::enable();
        let r = f();
        stop();
        crate::disable();
        crate::reset();
        r
    }

    #[test]
    fn sampler_folds_open_stacks_and_final_sample_catches_short_runs() {
        with_obs(|| {
            // Period far longer than the test: only the stop() sample can
            // fire deterministically — which is exactly what we verify.
            start(Duration::from_secs(3600)).unwrap();
            assert!(is_active());
            assert!(start(Duration::from_secs(1)).is_err(), "double start");
            let _outer = crate::span("prof.outer");
            let _inner = crate::span("prof.inner");
            stop();
            assert!(!is_active());
            let text = collapsed();
            assert!(
                text.lines()
                    .any(|l| l.starts_with("prof.outer;prof.inner ")),
                "folded output missing the open stack: {text:?}"
            );
            for line in text.lines() {
                let (stack, count) = line.rsplit_once(' ').expect("stack<space>count");
                assert!(!stack.is_empty());
                assert!(count.parse::<u64>().unwrap() >= 1);
            }
            assert!(samples() >= 1);
        });
    }

    #[test]
    fn reset_clears_accumulator() {
        with_obs(|| {
            {
                let _s = crate::span("prof.reset");
                start(Duration::from_secs(3600)).unwrap();
                stop();
            }
            assert!(!collapsed().is_empty());
            crate::reset();
            assert!(collapsed().is_empty());
            assert_eq!(samples(), 0);
        });
    }
}
