//! # ear-obs
//!
//! Zero-dependency (pure `std`) tracing and metrics layer for the
//! ear-decomposition suite, with Chrome trace-event export.
//!
//! The paper's evaluation (§3.5, Table 2, Figure 3) is built on per-phase
//! timings and operation counts; this crate gives the whole workspace one
//! first-class way to produce them instead of the four disconnected ad-hoc
//! mechanisms that grew organically (`DijkstraStats`, `WorkCounters`,
//! `PhaseTrace`, the CLI `--profile` table).
//!
//! Three pieces:
//!
//! * **Tracing** ([`collector`]) — span-based, with a thread-local span
//!   stack per worker thread, monotonic timestamps from a process-wide
//!   epoch, and a bounded per-thread ring buffer drained into a global
//!   collector on [`trace_snapshot`]. Modelled devices (the discrete-event
//!   schedule of `ear-hetero`) get their own lanes via [`modelled_run`].
//! * **Metrics** ([`metrics`]) — a process-wide registry of named
//!   counters, gauges and log₂-bucket histograms, absorbing the numbers
//!   the legacy structs carried.
//! * **Export** ([`export`], [`json`]) — Chrome trace-event JSON
//!   (loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev),
//!   one lane per worker thread plus one per modelled device), a flat
//!   metrics-snapshot JSON, and a dependency-free JSON parser used to
//!   validate emitted traces ([`validate_chrome_trace`]).
//!
//! ## The disabled path
//!
//! Everything is gated behind one static [`AtomicBool`]: while disabled
//! (the default), every entry point is a single relaxed load followed by
//! an immediate return — no thread-local access, no locking, and **zero
//! allocation** (guarded by `tests/obs_zero_alloc.rs` at the workspace
//! root). Instrumentation is therefore left compiled into the hot paths
//! unconditionally.
//!
//! ```
//! ear_obs::enable();
//! {
//!     let _span = ear_obs::span("example.work");
//!     ear_obs::counter_add("example.items", 3);
//! }
//! let trace = ear_obs::trace_snapshot();
//! assert_eq!(trace.threads.iter().map(|t| t.events.len()).sum::<usize>(), 2);
//! let json = ear_obs::chrome_trace_json(&trace);
//! ear_obs::validate_chrome_trace(&json).unwrap();
//! ear_obs::disable();
//! ear_obs::reset();
//! ```

#![deny(missing_docs)]

pub mod collector;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod stream;

use std::sync::atomic::{AtomicBool, Ordering};

/// The master switch. Off by default; flipped by [`enable`] / [`disable`].
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing + metrics collection is currently on.
///
/// This is the only check on the disabled hot path: a single relaxed
/// atomic load.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on. Pins the monotonic epoch on first call so all
/// timestamps share one origin.
pub fn enable() {
    collector::init_epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn collection off. Already-recorded events and metrics are kept
/// until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clear all recorded events, modelled-device slices, metrics, and the
/// profiler's folded-stack accumulator. The enabled/disabled state is
/// unchanged, and a running sampler or exporter keeps running (its next
/// tick starts a fresh accumulation).
pub fn reset() {
    collector::reset();
    metrics::reset();
    profile::reset();
}

pub use collector::snapshot as trace_snapshot;
pub use collector::{
    counter_event, event_count, modelled_run, span, span_with, Event, EventKind, ModelledSlice,
    SpanGuard, ThreadLog, Trace,
};
pub use export::{chrome_trace_json, metrics_json, write_chrome_trace, write_metrics};
pub use json::{validate_chrome_trace, TraceCheck, Value};
pub use metrics::snapshot as metrics_snapshot;
pub use metrics::{
    counter_add, counter_value, gauge_set, gauge_value, histogram_record, Histogram,
    MetricsSnapshot,
};
