//! A minimal dependency-free JSON parser and the Chrome-trace validator.
//!
//! The container has no crates.io access, so trace validation (the CI
//! `trace-smoke` step, the `ear trace-check` subcommand, the testkit
//! `trace_invariants` checker) runs on this ~150-line recursive-descent
//! parser instead of an external tool. It is a strict-enough subset
//! parser for our own emitted JSON plus anything Perfetto would accept.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is not preserved (keys are sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The member map, if this is an object (keys sorted).
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.b[start..self.pos]).map_err(|e| self.err(&e.to_string()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.pos..self.pos + 4])
                                .map_err(|e| self.err(&e.to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume a maximal run of plain bytes in one slice.
                    // Breaking only at ASCII '"'/'\\' never splits a UTF-8
                    // scalar (continuation bytes are >= 0x80), and the input
                    // came in as &str, so the run is valid UTF-8.
                    let start = self.pos;
                    while let Some(&c) = self.b.get(self.pos) {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.b[start..self.pos])
                        .map_err(|e| self.err(&e.to_string()))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// Escape a string for embedding in JSON output (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Summary statistics returned by a successful [`validate_chrome_trace`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceCheck {
    /// Total trace events (metadata included).
    pub events: usize,
    /// Distinct `(pid, tid)` lanes carrying non-metadata events.
    pub lanes: usize,
    /// Deepest B/E span nesting seen on any lane.
    pub max_depth: usize,
    /// Number of complete (`ph: "X"`) events.
    pub complete_events: usize,
    /// Number of counter (`ph: "C"`) events.
    pub counter_events: usize,
}

/// Validate a Chrome trace-event JSON document.
///
/// Checks: the document parses; it is either a bare event array or an
/// object with a `traceEvents` array; every event has a string `ph`, a
/// string `name`, and (for non-metadata events) numeric `ts`/`pid`/`tid`;
/// per lane, `B`/`E` events nest properly (matching names, `end ≥ start`,
/// nothing left open); `X` events have a non-negative `dur`; `C` events
/// carry a numeric non-negative `args.value` (queue occupancies and
/// totals can't go below zero), and counters named `*.total` — the
/// convention for cumulative series like `hetero.units.total` — must be
/// monotone non-decreasing per lane.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse(text)?;
    let events = match &doc {
        Value::Arr(_) => doc.as_arr().unwrap(),
        Value::Obj(_) => doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or("top-level object lacks a traceEvents array")?,
        _ => return Err("trace document must be an array or object".into()),
    };
    let mut check = TraceCheck {
        events: events.len(),
        ..Default::default()
    };
    // Per-lane stack of (name, ts) for B/E matching.
    let mut stacks: BTreeMap<(u64, u64), Vec<(String, f64)>> = BTreeMap::new();
    // Last value of each cumulative (`*.total`) counter series per lane.
    let mut totals: BTreeMap<(u64, u64, String), f64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string 'ph'"))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string 'name'"))?;
        if ph == "M" {
            continue;
        }
        let num = |key: &str| -> Result<f64, String> {
            ev.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event {i} ({name}): missing numeric '{key}'"))
        };
        let ts = num("ts")?;
        let pid = num("pid")? as u64;
        let tid = num("tid")? as u64;
        let lane = stacks.entry((pid, tid)).or_default();
        match ph {
            "B" => {
                lane.push((name.to_string(), ts));
                check.max_depth = check.max_depth.max(lane.len());
            }
            "E" => {
                let (open, start) = lane.pop().ok_or_else(|| {
                    format!("event {i}: 'E' {name} with no open span on lane {pid}/{tid}")
                })?;
                if open != name {
                    return Err(format!(
                        "event {i}: 'E' {name} closes mismatched span {open} on lane {pid}/{tid}"
                    ));
                }
                if ts < start {
                    return Err(format!("event {i}: span {name} ends before it starts"));
                }
            }
            "X" => {
                if num("dur")? < 0.0 {
                    return Err(format!("event {i}: 'X' {name} with negative dur"));
                }
                check.complete_events += 1;
            }
            "C" => {
                let v = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}): 'C' without numeric args.value"))?;
                if v < 0.0 {
                    return Err(format!(
                        "event {i}: counter {name} negative ({v}) on lane {pid}/{tid}"
                    ));
                }
                if name.ends_with(".total") {
                    let prev = totals
                        .entry((pid, tid, name.to_string()))
                        .or_insert(f64::NEG_INFINITY);
                    if v < *prev {
                        return Err(format!(
                            "event {i}: cumulative counter {name} decreased on lane \
                             {pid}/{tid} ({v} < {prev})"
                        ));
                    }
                    *prev = v;
                }
                check.counter_events += 1;
            }
            other => return Err(format!("event {i}: unsupported ph '{other}'")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("span {name} left open on lane {pid}/{tid}"));
        }
    }
    check.lanes = stacks.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trippable_values() {
        let v = parse(r#"{"a": [1, -2.5, "x\ny", true, null], "b": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("b"), Some(&Value::Obj(BTreeMap::new())));
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] extra").is_err());
    }

    #[test]
    fn long_multibyte_strings_use_the_run_fast_path() {
        // ~1 MB of multibyte text: under the old per-char loop (which
        // re-validated the whole remaining input for every character)
        // this took minutes; the byte-run path parses it instantly.
        let body = "héllo → wörld ".repeat(40_000);
        let doc = format!("[\"{body}\", \"tail\"]");
        let v = parse(&doc).unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_str(), Some(body.as_str()));
        assert_eq!(v.as_arr().unwrap()[1].as_str(), Some("tail"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn validator_accepts_nested_and_rejects_broken() {
        let good = r#"{"traceEvents":[
            {"ph":"M","name":"thread_name","pid":1,"tid":1,"args":{"name":"w"}},
            {"ph":"B","name":"a","pid":1,"tid":1,"ts":0.0},
            {"ph":"B","name":"b","pid":1,"tid":1,"ts":1.0},
            {"ph":"E","name":"b","pid":1,"tid":1,"ts":2.0},
            {"ph":"C","name":"q","pid":1,"tid":1,"ts":2.5,"args":{"value":3}},
            {"ph":"E","name":"a","pid":1,"tid":1,"ts":3.0},
            {"ph":"X","name":"x","pid":2,"tid":0,"ts":0.0,"dur":5.0}
        ]}"#;
        let c = validate_chrome_trace(good).unwrap();
        assert_eq!(
            (c.events, c.lanes, c.max_depth, c.complete_events),
            (7, 2, 2, 1)
        );

        let crossed = r#"[{"ph":"B","name":"a","pid":1,"tid":1,"ts":0},
                          {"ph":"E","name":"z","pid":1,"tid":1,"ts":1}]"#;
        assert!(validate_chrome_trace(crossed)
            .unwrap_err()
            .contains("mismatched"));

        let open = r#"[{"ph":"B","name":"a","pid":1,"tid":1,"ts":0}]"#;
        assert!(validate_chrome_trace(open)
            .unwrap_err()
            .contains("left open"));

        let missing = r#"[{"ph":"B","name":"a","tid":1,"ts":0}]"#;
        assert!(validate_chrome_trace(missing).unwrap_err().contains("pid"));
    }

    #[test]
    fn validator_checks_counter_events() {
        // Occupancy-style counters may go up and down, but never negative;
        // "*.total" series must be per-lane monotone.
        let good = r#"[
            {"ph":"C","name":"queue.len","pid":1,"tid":1,"ts":0,"args":{"value":3}},
            {"ph":"C","name":"queue.len","pid":1,"tid":1,"ts":1,"args":{"value":0}},
            {"ph":"C","name":"units.total","pid":1,"tid":1,"ts":2,"args":{"value":4}},
            {"ph":"C","name":"units.total","pid":1,"tid":2,"ts":3,"args":{"value":1}},
            {"ph":"C","name":"units.total","pid":1,"tid":1,"ts":4,"args":{"value":4}},
            {"ph":"C","name":"units.total","pid":1,"tid":1,"ts":5,"args":{"value":9}}
        ]"#;
        let c = validate_chrome_trace(good).unwrap();
        assert_eq!(c.counter_events, 6);

        let negative = r#"[
            {"ph":"C","name":"queue.len","pid":1,"tid":1,"ts":0,"args":{"value":-1}}
        ]"#;
        assert!(validate_chrome_trace(negative)
            .unwrap_err()
            .contains("negative"));

        let nonmono = r#"[
            {"ph":"C","name":"units.total","pid":1,"tid":1,"ts":0,"args":{"value":5}},
            {"ph":"C","name":"units.total","pid":1,"tid":1,"ts":1,"args":{"value":4}}
        ]"#;
        assert!(validate_chrome_trace(nonmono)
            .unwrap_err()
            .contains("decreased"));

        let valueless = r#"[
            {"ph":"C","name":"q","pid":1,"tid":1,"ts":0}
        ]"#;
        assert!(validate_chrome_trace(valueless)
            .unwrap_err()
            .contains("args.value"));
    }
}
