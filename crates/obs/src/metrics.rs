//! The metrics registry: named counters, gauges and log₂ histograms.
//!
//! This is the unification point for the numbers the workspace used to
//! scatter across `DijkstraStats` (ear-graph), `WorkCounters`
//! (ear-hetero) and `PhaseTrace`/`PhaseProfile` (ear-mcb): the producing
//! layers publish into this registry under the dotted names catalogued in
//! `DESIGN.md`, and consumers (the CLI `--profile` table, the bench
//! report JSON, the `--metrics-out` snapshot) all read one source.
//!
//! Like the tracer, every mutation is gated on [`crate::is_enabled`] so
//! the disabled path is one relaxed load and zero allocation.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// A log₂-bucket histogram of `u64` samples.
///
/// Bucket `i` counts samples whose bit length is `i` (bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2–3, …), so the full `u64`
/// range fits in 65 fixed buckets and recording never allocates.
#[derive(Clone, Copy, Debug)]
pub struct Histogram {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// `buckets[i]` = samples with bit length `i`.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static R: OnceLock<Mutex<Registry>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Registry::default()))
}

/// Add `delta` to the counter `name` (created at 0 on first use).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::is_enabled() {
        return;
    }
    *registry().lock().unwrap().counters.entry(name).or_insert(0) += delta;
}

/// Set the gauge `name` to `value` (last write wins).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::is_enabled() {
        return;
    }
    registry().lock().unwrap().gauges.insert(name, value);
}

/// Record one sample into the histogram `name`.
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if !crate::is_enabled() {
        return;
    }
    registry()
        .lock()
        .unwrap()
        .histograms
        .entry(name)
        .or_default()
        .record(value);
}

/// Current value of a counter (0 if never written). Reads are not gated
/// on the enabled flag so consumers can inspect a frozen registry.
pub fn counter_value(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Current value of a gauge (`None` if never written).
pub fn gauge_value(name: &str) -> Option<f64> {
    registry().lock().unwrap().gauges.get(name).copied()
}

/// A frozen copy of the whole registry, sorted by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// All gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// All histograms, name-sorted.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Counter by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Gauge by name (`None` if absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Freeze the registry into a [`MetricsSnapshot`].
pub fn snapshot() -> MetricsSnapshot {
    let r = registry().lock().unwrap();
    MetricsSnapshot {
        counters: r
            .counters
            .iter()
            .map(|(&n, &v)| (n.to_string(), v))
            .collect(),
        gauges: r.gauges.iter().map(|(&n, &v)| (n.to_string(), v)).collect(),
        histograms: r
            .histograms
            .iter()
            .map(|(&n, &h)| (n.to_string(), h))
            .collect(),
    }
}

pub(crate) fn reset() {
    let mut r = registry().lock().unwrap();
    r.counters.clear();
    r.gauges.clear();
    r.histograms.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_obs<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap();
        crate::reset();
        crate::enable();
        let r = f();
        crate::disable();
        crate::reset();
        r
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        with_obs(|| {
            counter_add("t.a", 2);
            counter_add("t.a", 3);
            gauge_set("t.g", 1.5);
            histogram_record("t.h", 0);
            histogram_record("t.h", 7);
            let s = snapshot();
            assert_eq!(s.counter("t.a"), 5);
            assert_eq!(s.gauge("t.g"), Some(1.5));
            let h = s.histogram("t.h").unwrap();
            assert_eq!((h.count, h.sum, h.min, h.max), (2, 7, 0, 7));
            assert_eq!(h.buckets[0], 1); // the 0 sample
            assert_eq!(h.buckets[3], 1); // 7 has bit length 3
            assert!((h.mean() - 3.5).abs() < 1e-12);
        });
    }

    #[test]
    fn disabled_mutations_are_dropped() {
        with_obs(|| {
            crate::disable();
            counter_add("t.off", 1);
            gauge_set("t.off.g", 1.0);
            histogram_record("t.off.h", 1);
            assert!(snapshot().is_empty());
            crate::enable();
        });
    }
}
