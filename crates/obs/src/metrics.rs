//! The metrics registry: named counters, gauges and log-linear quantile
//! histograms, sharded per thread.
//!
//! This is the unification point for the numbers the workspace used to
//! scatter across `DijkstraStats` (ear-graph), `WorkCounters`
//! (ear-hetero) and `PhaseTrace`/`PhaseProfile` (ear-mcb): the producing
//! layers publish into this registry under the dotted names catalogued in
//! `DESIGN.md`, and consumers (the CLI `--profile` table, the bench
//! report JSON, the `--metrics-out` snapshot, the `--metrics-stream`
//! exporter) all read one source.
//!
//! ## Sharding
//!
//! Writes go to a *per-thread* shard (a `BTreeMap` behind that thread's
//! own, uncontended mutex), registered once in a process-wide list —
//! the same scheme the span collector uses for its ring buffers. The
//! global registry lock is taken only by readers ([`snapshot`],
//! [`counter_value`], [`gauge_value`]) and by [`reset`], never on the
//! recording path, so concurrent workers (the rayon shim's scoped
//! threads, the streaming exporter, the sampling profiler) no longer
//! serialise on one mutex per `counter_add`.
//!
//! Fold semantics at snapshot time: counters **sum** across shards,
//! histograms **merge** bucket-wise, and gauges resolve last-write-wins
//! through a process-wide sequence number stamped at `gauge_set` time.
//!
//! Like the tracer, every mutation is gated on [`crate::is_enabled`] so
//! the disabled path is one relaxed load and zero allocation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// log₂ of the number of linear sub-buckets per power-of-two range.
pub const HIST_SUB_BITS: u32 = 5;

/// Linear sub-buckets per power-of-two range (HDR-style log-linear
/// bucketing). Quantile estimates are exact below [`HIST_SUB`] and carry
/// at most one sub-bucket (`1/HIST_SUB` ≈ 3.1%) of relative error above.
pub const HIST_SUB: u64 = 1 << HIST_SUB_BITS;

/// Total bucket count covering the full `u64` range: values below
/// `2·HIST_SUB` get exact unit buckets, and each further power of two is
/// split into `HIST_SUB` linear sub-buckets.
pub const HIST_BUCKETS: usize = ((65 - HIST_SUB_BITS) as usize) << HIST_SUB_BITS;

/// A log-linear (HDR-style) histogram of `u64` samples with bounded
/// relative error.
///
/// Values below [`HIST_SUB`] land in exact unit buckets; a value `v ≥
/// HIST_SUB` keeps its top `HIST_SUB_BITS + 1` significant bits, so every
/// bucket spans at most a `1/HIST_SUB` fraction of its lower bound. That
/// makes [`Histogram::quantile`] (and the `p50`/`p90`/`p99`/`p999`
/// accessors) exact to within one sub-bucket of relative error — the
/// property the unit tests check against exact quantiles on synthetic
/// distributions.
///
/// The bucket array is allocated lazily on first record (one allocation
/// per `(thread, name)` pair for registry histograms) and merged
/// bucket-wise across shards at snapshot time.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// `buckets[bucket_index(v)]` counts samples equivalent to `v`.
    /// Empty until the first record; [`HIST_BUCKETS`] long afterwards.
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }
}

/// Maps a sample to its log-linear bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB {
        return v as usize;
    }
    // `v` has bit length >= HIST_SUB_BITS + 1; keep the top
    // HIST_SUB_BITS + 1 bits as the mantissa (in [HIST_SUB, 2·HIST_SUB)).
    let exp = 63 - HIST_SUB_BITS - v.leading_zeros();
    let mantissa = v >> exp;
    ((exp as u64) << HIST_SUB_BITS) as usize + mantissa as usize
}

/// Inclusive value range `[lo, hi]` covered by bucket `i` — the inverse
/// of [`bucket_index`]. Exported alongside counts in the metrics JSON so
/// external tools can reconstruct distributions without hardcoding the
/// bucketing scheme.
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < (2 * HIST_SUB) as usize {
        return (i as u64, i as u64);
    }
    let exp = (i as u32 >> HIST_SUB_BITS) - 1;
    let mantissa = (i as u64) - ((exp as u64) << HIST_SUB_BITS);
    let lo = mantissa << exp;
    let hi = lo + ((1u64 << exp) - 1);
    (lo, hi)
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if self.buckets.is_empty() {
            self.buckets = vec![0; HIST_BUCKETS];
        }
        self.buckets[bucket_index(v)] += 1;
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one (cross-thread merge: counts
    /// add bucket-wise, min/max/sum combine exactly).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.is_empty() {
            self.buckets = other.buckets.clone();
        } else {
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                *a += b;
            }
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) estimated from the buckets: the
    /// upper bound of the bucket containing the sample of rank
    /// `ceil(q·count)`. Exact for values below [`HIST_SUB`]; at most one
    /// sub-bucket (`1/HIST_SUB`) of relative error above. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the observed extremes so p0/p100 stay exact
                // and a one-sample histogram reports the sample itself.
                return bucket_bounds(i).1.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, low to high — the
    /// serialization form used by the metrics JSON.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

/// One thread's private slice of the registry. Gauges carry the global
/// write sequence so the fold can resolve last-write-wins.
#[derive(Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, (u64, f64)>,
    histograms: BTreeMap<&'static str, Histogram>,
}

fn shards() -> &'static Mutex<Vec<Arc<Mutex<Shard>>>> {
    static R: OnceLock<Mutex<Vec<Arc<Mutex<Shard>>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

/// Process-wide gauge write sequence (monotone; ties impossible).
static GAUGE_SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: Arc<Mutex<Shard>> = register_shard();
}

fn register_shard() -> Arc<Mutex<Shard>> {
    let shard = Arc::new(Mutex::new(Shard::default()));
    shards().lock().unwrap().push(Arc::clone(&shard));
    shard
}

#[inline]
fn with_shard(f: impl FnOnce(&mut Shard)) {
    LOCAL.with(|s| f(&mut s.lock().unwrap()));
}

/// Add `delta` to the counter `name` (created at 0 on first use).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::is_enabled() {
        return;
    }
    with_shard(|s| *s.counters.entry(name).or_insert(0) += delta);
}

/// Set the gauge `name` to `value` (last write wins, resolved across
/// shards through a process-wide write sequence).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::is_enabled() {
        return;
    }
    let seq = GAUGE_SEQ.fetch_add(1, Ordering::Relaxed);
    with_shard(|s| {
        s.gauges.insert(name, (seq, value));
    });
}

/// Record one sample into the histogram `name`.
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if !crate::is_enabled() {
        return;
    }
    with_shard(|s| s.histograms.entry(name).or_default().record(value));
}

/// Current value of a counter (0 if never written), folded across all
/// thread shards. Reads are not gated on the enabled flag so consumers
/// can inspect a frozen registry.
pub fn counter_value(name: &str) -> u64 {
    let mut total = 0u64;
    for shard in shards().lock().unwrap().iter() {
        if let Some(v) = shard.lock().unwrap().counters.get(name) {
            total += v;
        }
    }
    total
}

/// Current value of a gauge (`None` if never written): the most recent
/// write across all shards.
pub fn gauge_value(name: &str) -> Option<f64> {
    let mut best: Option<(u64, f64)> = None;
    for shard in shards().lock().unwrap().iter() {
        if let Some(&(seq, v)) = shard.lock().unwrap().gauges.get(name) {
            if best.map(|(bs, _)| seq > bs).unwrap_or(true) {
                best = Some((seq, v));
            }
        }
    }
    best.map(|(_, v)| v)
}

/// A frozen copy of the whole registry, folded across shards and sorted
/// by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All counters, name-sorted, summed across threads.
    pub counters: Vec<(String, u64)>,
    /// All gauges, name-sorted, last-write-wins across threads.
    pub gauges: Vec<(String, f64)>,
    /// All histograms, name-sorted, merged across threads.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Counter by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Gauge by name (`None` if absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Freeze the registry into a [`MetricsSnapshot`]: counters sum, gauges
/// resolve by write sequence, histograms merge bucket-wise.
pub fn snapshot() -> MetricsSnapshot {
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&'static str, (u64, f64)> = BTreeMap::new();
    let mut histograms: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    for shard in shards().lock().unwrap().iter() {
        let s = shard.lock().unwrap();
        for (&n, &v) in &s.counters {
            *counters.entry(n).or_insert(0) += v;
        }
        for (&n, &(seq, v)) in &s.gauges {
            let e = gauges.entry(n).or_insert((seq, v));
            if seq >= e.0 {
                *e = (seq, v);
            }
        }
        for (&n, h) in &s.histograms {
            histograms.entry(n).or_default().merge(h);
        }
    }
    MetricsSnapshot {
        counters: counters
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect(),
        gauges: gauges
            .into_iter()
            .map(|(n, (_, v))| (n.to_string(), v))
            .collect(),
        histograms: histograms
            .into_iter()
            .map(|(n, h)| (n.to_string(), h))
            .collect(),
    }
}

pub(crate) fn reset() {
    for shard in shards().lock().unwrap().iter() {
        let mut s = shard.lock().unwrap();
        s.counters.clear();
        s.gauges.clear();
        s.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_obs<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap();
        crate::reset();
        crate::enable();
        let r = f();
        crate::disable();
        crate::reset();
        r
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        with_obs(|| {
            counter_add("t.a", 2);
            counter_add("t.a", 3);
            gauge_set("t.g", 1.5);
            histogram_record("t.h", 0);
            histogram_record("t.h", 7);
            let s = snapshot();
            assert_eq!(s.counter("t.a"), 5);
            assert_eq!(s.gauge("t.g"), Some(1.5));
            let h = s.histogram("t.h").unwrap();
            assert_eq!((h.count, h.sum, h.min, h.max), (2, 7, 0, 7));
            assert_eq!(h.buckets[bucket_index(0)], 1);
            assert_eq!(h.buckets[bucket_index(7)], 1);
            assert!((h.mean() - 3.5).abs() < 1e-12);
        });
    }

    #[test]
    fn disabled_mutations_are_dropped() {
        with_obs(|| {
            crate::disable();
            counter_add("t.off", 1);
            gauge_set("t.off.g", 1.0);
            histogram_record("t.off.h", 1);
            assert!(snapshot().is_empty());
            crate::enable();
        });
    }

    #[test]
    fn cross_thread_writes_fold_into_one_snapshot() {
        with_obs(|| {
            counter_add("t.x", 1);
            histogram_record("t.xh", 10);
            gauge_set("t.xg", 1.0);
            std::thread::spawn(|| {
                counter_add("t.x", 41);
                histogram_record("t.xh", 1000);
                gauge_set("t.xg", 2.0); // later write -> must win
            })
            .join()
            .unwrap();
            let s = snapshot();
            assert_eq!(s.counter("t.x"), 42);
            assert_eq!(s.gauge("t.xg"), Some(2.0));
            assert_eq!(counter_value("t.x"), 42);
            assert_eq!(gauge_value("t.xg"), Some(2.0));
            let h = s.histogram("t.xh").unwrap();
            assert_eq!((h.count, h.min, h.max), (2, 10, 1000));
        });
    }

    #[test]
    fn bucket_bounds_invert_bucket_index_over_the_full_range() {
        // Exhaustive below the linear cutoff, spot checks above, plus the
        // top of the u64 range.
        let mut probes: Vec<u64> = (0..4 * HIST_SUB).collect();
        for shift in HIST_SUB_BITS + 2..64 {
            for delta in [0u64, 1, (1 << shift) / 3, (1 << shift) - 1] {
                probes.push((1u64 << shift) + delta);
            }
        }
        probes.push(u64::MAX);
        for v in probes {
            let i = bucket_index(v);
            assert!(i < HIST_BUCKETS, "index {i} out of range for {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
            // Bounded relative error: bucket width <= lo / HIST_SUB.
            if lo >= HIST_SUB {
                assert!(
                    hi - lo < lo.div_ceil(HIST_SUB) + 1,
                    "bucket {i} too wide: [{lo}, {hi}]"
                );
            } else {
                assert_eq!(lo, hi, "sub-cutoff bucket {i} must be exact");
            }
        }
        // Buckets tile the range without gaps.
        for i in 1..HIST_BUCKETS {
            assert_eq!(
                bucket_bounds(i).0,
                bucket_bounds(i - 1).1 + 1,
                "gap between buckets {} and {i}",
                i - 1
            );
        }
    }

    #[test]
    fn quantiles_track_exact_values_within_one_sub_bucket() {
        // Synthetic distributions with known exact quantiles.
        let exact_quantile = |sorted: &[u64], q: f64| -> u64 {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        let mut rng = 0x5eedu64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let uniform: Vec<u64> = (0..10_000).map(|_| next() % 1_000_000).collect();
        let heavy_tail: Vec<u64> = (0..10_000)
            .map(|_| {
                let base = next() % 1000;
                if next() % 100 == 0 {
                    base * 10_000
                } else {
                    base
                }
            })
            .collect();
        let constant: Vec<u64> = vec![777; 1000];
        let small: Vec<u64> = (0..HIST_SUB).collect();
        for (name, samples) in [
            ("uniform", uniform),
            ("heavy_tail", heavy_tail),
            ("constant", constant),
            ("small", small),
        ] {
            let mut h = Histogram::default();
            let mut sorted = samples.clone();
            for &v in &samples {
                h.record(v);
            }
            sorted.sort_unstable();
            for q in [0.5, 0.9, 0.99, 0.999] {
                let exact = exact_quantile(&sorted, q);
                let est = h.quantile(q);
                // The estimate is the upper bound of the exact value's
                // bucket (clamped to observed extremes): error is bounded
                // by one sub-bucket of relative error.
                let tol = exact / HIST_SUB + 1;
                assert!(
                    est.abs_diff(exact) <= tol,
                    "{name} q={q}: estimate {est} vs exact {exact} (tol {tol})"
                );
            }
            let p0 = h.quantile(0.0);
            assert!(
                p0 >= h.min && p0 <= h.min + h.min / HIST_SUB + 1,
                "{name}: p0 {p0} not within a sub-bucket of min {}",
                h.min
            );
            // The top bucket's upper bound clamps to the observed max.
            assert_eq!(h.quantile(1.0), h.max);
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for v in 0..5000u64 {
            let sample = v * v % 77_777;
            if v % 2 == 0 {
                a.record(sample);
            } else {
                b.record(sample);
            }
            whole.record(sample);
        }
        let mut merged = Histogram::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count, whole.count);
        assert_eq!(merged.sum, whole.sum);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
        assert_eq!(merged.buckets, whole.buckets);
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }
}
