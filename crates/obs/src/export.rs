//! Exporters: Chrome trace-event JSON and the flat metrics snapshot.
//!
//! Lane layout of the emitted trace (see the diagram in `DESIGN.md`):
//! pid 1 (`ear-suite`) carries one lane per worker thread with wall-clock
//! `B`/`E` spans and `C` counter samples; pid 2 (`modelled devices`)
//! carries one lane per modelled device with `X` complete events on the
//! discrete-event timeline of the hetero executor. Timestamps are
//! microseconds, as the format requires.

use std::io::Write as _;

use crate::collector::{EventKind, Trace};
use crate::json::escape;
use crate::metrics::MetricsSnapshot;

const WALL_PID: u32 = 1;
const MODEL_PID: u32 = 2;

fn us(ts_ns: u64) -> f64 {
    ts_ns as f64 / 1000.0
}

/// Render a [`Trace`] as a Chrome trace-event JSON document.
///
/// The emitter sanitises ring-buffer artefacts so the output always
/// passes [`crate::validate_chrome_trace`]: `E` events whose `B` was
/// overwritten by ring overflow are skipped, and spans still open at
/// snapshot time are closed at the lane's last timestamp.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    push(
        &mut out,
        format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{WALL_PID},\"tid\":0,\
             \"args\":{{\"name\":\"ear-suite\"}}}}"
        ),
    );
    if !trace.modelled.is_empty() {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{MODEL_PID},\"tid\":0,\
                 \"args\":{{\"name\":\"modelled devices\"}}}}"
            ),
        );
    }

    for t in &trace.threads {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{WALL_PID},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.tid,
                escape(&t.name)
            ),
        );
        let last_ts = t.events.last().map(|e| e.ts_ns).unwrap_or(0);
        let mut depth = 0usize;
        for e in &t.events {
            match e.kind {
                EventKind::Begin => {
                    depth += 1;
                    push(
                        &mut out,
                        format!(
                            "{{\"ph\":\"B\",\"name\":\"{}\",\"pid\":{WALL_PID},\"tid\":{},\
                             \"ts\":{:.3},\"args\":{{\"arg\":{}}}}}",
                            escape(e.name),
                            t.tid,
                            us(e.ts_ns),
                            e.arg
                        ),
                    );
                }
                EventKind::End => {
                    // An E whose B fell off the ring has nothing to close.
                    if depth == 0 {
                        continue;
                    }
                    depth -= 1;
                    push(
                        &mut out,
                        format!(
                            "{{\"ph\":\"E\",\"name\":\"{}\",\"pid\":{WALL_PID},\"tid\":{},\
                             \"ts\":{:.3}}}",
                            escape(e.name),
                            t.tid,
                            us(e.ts_ns)
                        ),
                    );
                }
                EventKind::Counter => {
                    push(
                        &mut out,
                        format!(
                            "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":{WALL_PID},\"tid\":{},\
                             \"ts\":{:.3},\"args\":{{\"value\":{}}}}}",
                            escape(e.name),
                            t.tid,
                            us(e.ts_ns),
                            e.arg
                        ),
                    );
                }
            }
        }
        // Close anything still open (snapshot taken mid-span).
        let mut open = Vec::new();
        let mut d = 0usize;
        for e in &t.events {
            match e.kind {
                EventKind::Begin => {
                    d += 1;
                    open.push(e.name);
                }
                EventKind::End => {
                    if d > 0 {
                        d -= 1;
                        open.pop();
                    }
                }
                EventKind::Counter => {}
            }
        }
        for name in open.into_iter().rev() {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"E\",\"name\":\"{}\",\"pid\":{WALL_PID},\"tid\":{},\"ts\":{:.3}}}",
                    escape(name),
                    t.tid,
                    us(last_ts)
                ),
            );
        }
    }

    // Modelled device lanes: one tid per distinct lane name, in order of
    // first appearance; slices become complete (X) events.
    let mut lanes: Vec<&str> = Vec::new();
    for s in &trace.modelled {
        if !lanes.iter().any(|l| *l == s.lane) {
            lanes.push(&s.lane);
        }
    }
    for (tid, lane) in lanes.iter().enumerate() {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{MODEL_PID},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tid + 1,
                escape(lane)
            ),
        );
    }
    for s in &trace.modelled {
        let tid = lanes.iter().position(|l| *l == s.lane).unwrap() + 1;
        let start_us = s.start_s * 1e6;
        let dur_us = (s.end_s - s.start_s).max(0.0) * 1e6;
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{MODEL_PID},\"tid\":{tid},\
                 \"ts\":{start_us:.3},\"dur\":{dur_us:.3},\"args\":{{\"units\":{}}}}}",
                escape(&s.name),
                s.units
            ),
        );
    }

    out.push_str("\n]}\n");
    out
}

/// Render a [`MetricsSnapshot`] as a flat JSON document
/// (`ear-metrics/v1`: counters, gauges, histogram summaries).
///
/// Histograms carry their full distribution, not just moments: a
/// `quantiles` object (`p50/p90/p99/p999`, each within one log-linear
/// sub-bucket of exact) and a `buckets` array of `[lo, hi, count]`
/// triples for every non-empty bucket, so external tools can
/// reconstruct the distribution without hardcoding the bucketing
/// scheme. The scheme itself is named in a top-level
/// `histogram_scheme` descriptor.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    render_metrics(snap, "\n  ", "\n    ", "\n")
}

/// [`metrics_json`] without any interior newlines or indentation: one
/// line, same schema — the frame format of [`crate::stream`].
pub fn metrics_json_compact(snap: &MetricsSnapshot) -> String {
    render_metrics(snap, "", "", "")
}

/// Shared renderer: `nl1`/`nl2` are the level-1/level-2 line breaks
/// (with indent), `end` the trailing break.
fn render_metrics(snap: &MetricsSnapshot, nl1: &str, nl2: &str, end: &str) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    out.push_str(nl1);
    out.push_str("\"schema\": \"ear-metrics/v1\",");
    out.push_str(nl1);
    out.push_str(&format!(
        "\"histogram_scheme\": {{\"kind\": \"log-linear\", \"sub_bits\": {}, \
         \"sub_buckets\": {}}},",
        crate::metrics::HIST_SUB_BITS,
        crate::metrics::HIST_SUB
    ));
    out.push_str(nl1);
    out.push_str("\"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(nl2);
        out.push_str(&format!("\"{}\": {v}", escape(name)));
    }
    out.push_str(nl1);
    out.push_str("},");
    out.push_str(nl1);
    out.push_str("\"gauges\": {");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(nl2);
        out.push_str(&format!("\"{}\": {}", escape(name), fmt_f64(*v)));
    }
    out.push_str(nl1);
    out.push_str("},");
    out.push_str(nl1);
    out.push_str("\"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(nl2);
        let min = if h.count == 0 { 0 } else { h.min };
        out.push_str(&format!(
            "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {min}, \"max\": {}, \
             \"mean\": {},",
            escape(name),
            h.count,
            h.sum,
            h.max,
            fmt_f64(h.mean())
        ));
        out.push_str(&format!(
            " \"quantiles\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}},",
            h.p50(),
            h.p90(),
            h.p99(),
            h.p999()
        ));
        out.push_str(" \"buckets\": [");
        for (j, (lo, hi, c)) in h.nonzero_buckets().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{lo},{hi},{c}]"));
        }
        out.push_str("]}");
    }
    out.push_str(nl1);
    out.push('}');
    // Close the document. Pretty mode puts the brace on its own line.
    if end.is_empty() {
        out.push('}');
    } else {
        out.push_str("\n}");
        out.push_str(end);
    }
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Inf; map those to 0).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Write the Chrome trace for `trace` to `path`.
pub fn write_chrome_trace(path: &str, trace: &Trace) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json(trace).as_bytes())
}

/// Write the metrics snapshot JSON for `snap` to `path`.
pub fn write_metrics(path: &str, snap: &MetricsSnapshot) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(metrics_json(snap).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Event, ModelledSlice, ThreadLog};
    use crate::json::{parse, validate_chrome_trace};

    fn ev(name: &'static str, kind: EventKind, ts_ns: u64, arg: u64) -> Event {
        Event {
            name,
            kind,
            ts_ns,
            arg,
        }
    }

    #[test]
    fn export_validates_and_sanitises() {
        let trace = Trace {
            threads: vec![ThreadLog {
                tid: 1,
                name: "worker \"1\"".into(),
                events: vec![
                    // Orphan E from ring overflow: must be skipped.
                    ev("lost", EventKind::End, 5, 0),
                    ev("outer", EventKind::Begin, 10, 3),
                    ev("q", EventKind::Counter, 15, 7),
                    ev("inner", EventKind::Begin, 20, 0),
                    ev("inner", EventKind::End, 30, 0),
                    // "outer" left open: must be auto-closed.
                ],
                dropped: 1,
            }],
            modelled: vec![ModelledSlice {
                lane: "GTX-660".into(),
                name: "batch".into(),
                start_s: 0.5,
                end_s: 1.0,
                units: 4,
            }],
        };
        let json = chrome_trace_json(&trace);
        let check = validate_chrome_trace(&json).unwrap();
        assert_eq!(check.complete_events, 1);
        assert_eq!(check.max_depth, 2);
        // wall lane + modelled lane
        assert_eq!(check.lanes, 2);
    }

    #[test]
    fn metrics_json_parses_back() {
        let snap = MetricsSnapshot {
            counters: vec![("a.b".into(), 42)],
            gauges: vec![("g".into(), 0.25)],
            histograms: vec![("h".into(), {
                let mut h = crate::metrics::Histogram::default();
                h.record(3);
                h
            })],
        };
        let doc = parse(&metrics_json(&snap)).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("a.b").unwrap().as_f64(),
            Some(42.0)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(0.25)
        );
        let h = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(h.get("mean").unwrap().as_f64(), Some(3.0));
        let scheme = doc.get("histogram_scheme").unwrap();
        assert_eq!(
            scheme.get("sub_buckets").unwrap().as_f64(),
            Some(crate::metrics::HIST_SUB as f64)
        );
        let q = h.get("quantiles").unwrap();
        assert_eq!(q.get("p50").unwrap().as_f64(), Some(3.0));
        assert_eq!(q.get("p999").unwrap().as_f64(), Some(3.0));
        let buckets = h.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 1);
        let b = buckets[0].as_arr().unwrap();
        let triple: Vec<f64> = b.iter().map(|v| v.as_f64().unwrap()).collect();
        assert_eq!(triple, vec![3.0, 3.0, 1.0]);
    }

    /// Round-trip: the exported `[lo, hi, count]` triples plus the scheme
    /// descriptor are enough to rebuild the distribution — counts and
    /// bucket-resolution quantiles — without hardcoding the bucketing.
    #[test]
    fn histogram_buckets_round_trip_through_json() {
        let mut h = crate::metrics::Histogram::default();
        for v in [1u64, 1, 7, 100, 100, 100, 5000, 123_456] {
            h.record(v);
        }
        let snap = MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![("rt".into(), h.clone())],
        };
        let doc = parse(&metrics_json(&snap)).unwrap();
        let hj = doc.get("histograms").unwrap().get("rt").unwrap();
        let buckets = hj.get("buckets").unwrap().as_arr().unwrap();
        // Rebuild a histogram purely from the exported triples.
        let mut rebuilt = crate::metrics::Histogram::default();
        for b in buckets {
            let t = b.as_arr().unwrap();
            let (lo, hi, c) = (
                t[0].as_f64().unwrap() as u64,
                t[1].as_f64().unwrap() as u64,
                t[2].as_f64().unwrap() as u64,
            );
            assert!(lo <= hi);
            for _ in 0..c {
                rebuilt.record(lo); // lo maps back to the same bucket
            }
        }
        assert_eq!(rebuilt.count, h.count);
        assert_eq!(rebuilt.buckets, h.buckets);
        // Quantiles agree at bucket resolution (same bucket → same hi).
        for q in [0.5, 0.9, 0.99] {
            let (a, b) = (h.quantile(q), rebuilt.quantile(q));
            let ia = crate::metrics::bucket_index(a.max(1));
            let ib = crate::metrics::bucket_index(b.max(1));
            assert_eq!(ia, ib, "quantile {q} moved buckets: {a} vs {b}");
        }
    }
}
