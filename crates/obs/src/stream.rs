//! Streaming metrics export: periodic `ear-metrics/v1` snapshots to a
//! file or FIFO.
//!
//! PR 5's metrics were exit dumps — one JSON document written after the
//! workload finished. Long soaks and the future `ear serve` need *live*
//! metrics: a background exporter that flushes the current registry
//! state on a fixed interval so an external consumer (a `tail -f`, a
//! scraper, a dashboard pipe) watches the run as it happens.
//!
//! The exporter writes **JSON lines**: one frame per flush, one line per
//! frame. Each frame wraps a compact `ear-metrics/v1` snapshot
//! ([`crate::export::metrics_json_compact`]) with a sequence number and
//! a counter *delta* section (counters that changed since the previous
//! frame — the increments, not the totals), so consumers can follow
//! rates without diffing snapshots themselves:
//!
//! ```text
//! {"schema": "ear-metrics-stream/v1", "seq": 0, "delta": {"counters": {...}}, "snapshot": {...}}
//! {"schema": "ear-metrics-stream/v1", "seq": 1, "delta": {"counters": {...}}, "snapshot": {...}}
//! ```
//!
//! [`stop`] flushes one final frame before joining, so a run shorter
//! than the interval still produces a complete stream (mirroring the
//! profiler's final-sample rule in [`crate::profile`]). With no stream
//! started, nothing here touches the hot path at all — the zero-alloc
//! guard in `tests/obs_zero_alloc.rs` covers the combination.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export::metrics_json_compact;
use crate::json::escape;

/// Default flush interval when the CLI's `--metrics-interval` is absent.
pub const DEFAULT_INTERVAL_MS: u64 = 500;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STOP: AtomicBool = AtomicBool::new(false);
static FRAMES: AtomicU64 = AtomicU64::new(0);

fn handle() -> &'static Mutex<Option<JoinHandle<std::io::Result<()>>>> {
    static H: OnceLock<Mutex<Option<JoinHandle<std::io::Result<()>>>>> = OnceLock::new();
    H.get_or_init(|| Mutex::new(None))
}

/// Whether the exporter thread is currently running.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Number of frames flushed since the exporter was last started.
pub fn frames() -> u64 {
    FRAMES.load(Ordering::Relaxed)
}

/// Render one stream frame: sequence number, counter deltas vs `prev`,
/// and the full compact snapshot. Updates `prev` to the new totals.
fn frame(seq: u64, prev: &mut Vec<(String, u64)>) -> String {
    let snap = crate::metrics::snapshot();
    let mut out = String::with_capacity(256);
    out.push_str(&format!(
        "{{\"schema\": \"ear-metrics-stream/v1\", \"seq\": {seq}, \"delta\": {{\"counters\": {{"
    ));
    let mut first = true;
    for (name, v) in &snap.counters {
        let before = prev
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        if *v != before {
            if !std::mem::take(&mut first) {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", escape(name), v.wrapping_sub(before)));
        }
    }
    out.push_str("}}, \"snapshot\": ");
    out.push_str(&metrics_json_compact(&snap));
    out.push_str("}\n");
    *prev = snap.counters;
    out
}

/// Start the exporter: create (truncate) `path` and flush a frame every
/// `interval` until [`stop`]. Errors if an exporter is already running
/// or the file cannot be created. Collection ([`crate::enable`]) must be
/// on for the registry to fill; starting the stream does not flip it.
pub fn start(path: &str, interval: Duration) -> Result<(), String> {
    let mut slot = handle().lock().unwrap();
    if slot.is_some() {
        return Err("metrics stream already running".into());
    }
    let mut file = std::fs::File::create(path)
        .map_err(|e| format!("failed to create metrics stream {path}: {e}"))?;
    STOP.store(false, Ordering::SeqCst);
    FRAMES.store(0, Ordering::SeqCst);
    ACTIVE.store(true, Ordering::SeqCst);
    let h = std::thread::Builder::new()
        .name("ear-obs-exporter".into())
        .spawn(move || -> std::io::Result<()> {
            let mut prev: Vec<(String, u64)> = Vec::new();
            let mut seq = 0u64;
            loop {
                // Sleep in short slices so stop() never waits a full
                // interval for the join.
                let mut left = interval;
                while !STOP.load(Ordering::Relaxed) && !left.is_zero() {
                    let step = left.min(Duration::from_millis(25));
                    std::thread::sleep(step);
                    left = left.saturating_sub(step);
                }
                let stopping = STOP.load(Ordering::Relaxed);
                file.write_all(frame(seq, &mut prev).as_bytes())?;
                file.flush()?;
                seq += 1;
                FRAMES.fetch_add(1, Ordering::Relaxed);
                if stopping {
                    return Ok(());
                }
            }
        })
        .map_err(|e| format!("failed to spawn exporter thread: {e}"))?;
    *slot = Some(h);
    Ok(())
}

/// Stop the exporter: flush one final frame, join the thread, and
/// surface any deferred I/O error. No-op `Ok` if not running.
pub fn stop() -> Result<(), String> {
    let h = handle().lock().unwrap().take();
    let Some(h) = h else { return Ok(()) };
    STOP.store(true, Ordering::SeqCst);
    let res = h.join();
    ACTIVE.store(false, Ordering::SeqCst);
    match res {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(format!("metrics stream write failed: {e}")),
        Err(_) => Err("metrics stream exporter panicked".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn stream_writes_parseable_frames_with_counter_deltas() {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap();
        crate::reset();
        crate::enable();
        let dir = std::env::temp_dir().join("ear-obs-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.jsonl");
        let path_s = path.to_str().unwrap();

        crate::counter_add("stream.test", 5);
        // Interval far longer than the test: only the stop() flush fires.
        start(path_s, Duration::from_secs(3600)).unwrap();
        assert!(is_active());
        assert!(
            start(path_s, Duration::from_secs(1)).is_err(),
            "double start"
        );
        crate::counter_add("stream.test", 2);
        stop().unwrap();
        assert!(!is_active());
        assert!(frames() >= 1);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        let first = parse(lines[0]).unwrap();
        assert_eq!(
            first.get("schema").unwrap().as_str(),
            Some("ear-metrics-stream/v1")
        );
        assert_eq!(first.get("seq").unwrap().as_f64(), Some(0.0));
        // First frame's delta is vs an empty baseline: the full total.
        assert_eq!(
            first
                .get("delta")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("stream.test")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
        let snap = first.get("snapshot").unwrap();
        assert_eq!(snap.get("schema").unwrap().as_str(), Some("ear-metrics/v1"));
        assert_eq!(
            snap.get("counters")
                .unwrap()
                .get("stream.test")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );

        crate::disable();
        crate::reset();
        let _ = std::fs::remove_file(&path);
    }
}
