//! Span tracing: per-thread ring buffers drained into a global collector.
//!
//! Each thread that records an event lazily registers a ring buffer of
//! [`Event`]s in a process-wide registry (the registration is the only
//! cross-thread synchronisation on the recording path; after it, a thread
//! only ever locks its own uncontended mutex). [`snapshot`] drains every
//! registered buffer — including those of threads that have since exited,
//! which matters because the rayon shim and the concurrent executor spawn
//! fresh scoped workers per batch.
//!
//! Timestamps are nanoseconds since a process-wide [`Instant`] epoch
//! pinned by [`crate::enable`], so lanes from different threads share one
//! timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread ring capacity. At 32 bytes per event this bounds each
/// thread's buffer at 2 MiB; overflow overwrites the oldest events and
/// counts them in [`ThreadLog::dropped`] rather than growing without
/// bound.
pub const RING_CAPACITY: usize = 1 << 16;

/// What a recorded [`Event`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"` in Chrome trace terms).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// An instantaneous counter sample (`ph: "C"`); value in [`Event::arg`].
    Counter,
}

/// One recorded trace event. `Copy` and fixed-size so ring-buffer writes
/// never allocate.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Static span/counter name (see the span taxonomy in `DESIGN.md`).
    pub name: &'static str,
    /// Begin / End / Counter.
    pub kind: EventKind,
    /// Nanoseconds since the process epoch.
    pub ts_ns: u64,
    /// Span argument (Begin) or counter value (Counter); 0 for End.
    pub arg: u64,
}

/// The drained event log of one thread, in chronological order.
#[derive(Clone, Debug)]
pub struct ThreadLog {
    /// Dense lane id assigned at first record (1, 2, …).
    pub tid: u64,
    /// OS thread name, or `thread-<tid>` if unnamed.
    pub name: String,
    /// Events in recording order (oldest first, post-ring-rotation).
    pub events: Vec<Event>,
    /// Events overwritten by ring overflow before this snapshot.
    pub dropped: u64,
}

/// One busy interval on a *modelled* device lane (the discrete-event
/// clocks of the hetero executor, not wall time).
#[derive(Clone, Debug)]
pub struct ModelledSlice {
    /// Lane name — the modelled device's profile name.
    pub lane: String,
    /// Slice label (e.g. `batch`).
    pub name: String,
    /// Modelled start, seconds (absolute after [`modelled_run`] rebasing).
    pub start_s: f64,
    /// Modelled end, seconds.
    pub end_s: f64,
    /// Workunits executed in the slice.
    pub units: u64,
}

/// Everything [`snapshot`] collects: wall-clock thread lanes plus
/// modelled device lanes.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// One log per thread that recorded at least one event, sorted by tid.
    pub threads: Vec<ThreadLog>,
    /// Modelled-device busy slices across all executor runs so far.
    pub modelled: Vec<ModelledSlice>,
}

struct ThreadBuf {
    tid: u64,
    name: String,
    ring: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
    /// The thread's *currently open* span stack, published here so the
    /// sampling profiler ([`crate::profile`]) can read it from its
    /// sampler thread. Maintained on every Begin/End record (same
    /// critical section as the ring write, so the stack is always
    /// consistent with the events) and deliberately *not* cleared by
    /// [`reset`]: spans still open keep their frames.
    stack: Vec<&'static str>,
    /// True span depth, including frames beyond [`MAX_STACK_DEPTH`] that
    /// were not pushed — keeps Begin/End pairing exact under truncation.
    depth: usize,
}

impl ThreadBuf {
    fn push(&mut self, e: Event) {
        match e.kind {
            EventKind::Begin => {
                self.depth += 1;
                if self.depth <= MAX_STACK_DEPTH {
                    self.stack.push(e.name);
                }
            }
            EventKind::End => {
                if self.depth <= MAX_STACK_DEPTH {
                    self.stack.pop();
                }
                self.depth = self.depth.saturating_sub(1);
            }
            EventKind::Counter => {}
        }
        if self.ring.len() < RING_CAPACITY {
            self.ring.push(e);
        } else {
            self.ring[self.head] = e;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }
}

/// Published span stacks deeper than this are truncated (the sampler
/// attributes time to the outermost frames; real span nesting in the
/// suite tops out around depth 8).
const MAX_STACK_DEPTH: usize = 64;

struct ModelledLanes {
    /// Where the next run's slices start: runs are laid out back-to-back
    /// on the modelled timeline since each executor run restarts its
    /// device clocks at zero.
    cursor_s: f64,
    slices: Vec<ModelledSlice>,
}

static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn registry() -> &'static Mutex<Vec<Arc<Mutex<ThreadBuf>>>> {
    static R: OnceLock<Mutex<Vec<Arc<Mutex<ThreadBuf>>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

fn modelled() -> &'static Mutex<ModelledLanes> {
    static M: OnceLock<Mutex<ModelledLanes>> = OnceLock::new();
    M.get_or_init(|| {
        Mutex::new(ModelledLanes {
            cursor_s: 0.0,
            slices: Vec::new(),
        })
    })
}

thread_local! {
    static LOCAL: Arc<Mutex<ThreadBuf>> = register_thread();
}

fn register_thread() -> Arc<Mutex<ThreadBuf>> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let buf = Arc::new(Mutex::new(ThreadBuf {
        tid,
        name,
        ring: Vec::new(),
        head: 0,
        dropped: 0,
        stack: Vec::new(),
        depth: 0,
    }));
    registry().lock().unwrap().push(Arc::clone(&buf));
    buf
}

pub(crate) fn init_epoch() {
    EPOCH.get_or_init(Instant::now);
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn record(name: &'static str, kind: EventKind, arg: u64) {
    let ts_ns = now_ns();
    LOCAL.with(|buf| {
        buf.lock().unwrap().push(Event {
            name,
            kind,
            ts_ns,
            arg,
        })
    });
}

/// RAII guard returned by [`span`] / [`span_with`]; records the matching
/// End event when dropped. Inert (and allocation-free) when collection
/// was disabled at open time.
#[must_use = "a span covers the guard's lifetime; dropping it immediately records an empty span"]
pub struct SpanGuard {
    name: Option<&'static str>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            record(name, EventKind::End, 0);
        }
    }
}

/// Open a span on the current thread; it closes when the guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, 0)
}

/// Open a span carrying a numeric argument (source vertex, phase index,
/// workunit id, …) shown in the trace viewer's args pane.
#[inline]
pub fn span_with(name: &'static str, arg: u64) -> SpanGuard {
    if !crate::is_enabled() {
        return SpanGuard { name: None };
    }
    record(name, EventKind::Begin, arg);
    SpanGuard { name: Some(name) }
}

/// Record an instantaneous counter sample (rendered as a counter track
/// in the trace viewer, e.g. work-queue occupancy).
#[inline]
pub fn counter_event(name: &'static str, value: u64) {
    if !crate::is_enabled() {
        return;
    }
    record(name, EventKind::Counter, value);
}

/// Record the busy slices of one modelled executor run.
///
/// `slices` carry times relative to the run's own clocks (which start at
/// zero); the collector rebases them onto a global modelled timeline by
/// laying runs out back-to-back, advancing the cursor by `makespan_s`.
pub fn modelled_run(slices: Vec<ModelledSlice>, makespan_s: f64) {
    if !crate::is_enabled() {
        return;
    }
    let mut m = modelled().lock().unwrap();
    let base = m.cursor_s;
    for mut s in slices {
        s.start_s += base;
        s.end_s += base;
        m.slices.push(s);
    }
    if makespan_s.is_finite() && makespan_s > 0.0 {
        m.cursor_s = base + makespan_s;
    }
}

/// Drain a copy of everything recorded so far (events stay in the
/// buffers; use [`crate::reset`] to clear them).
pub fn snapshot() -> Trace {
    let mut threads: Vec<ThreadLog> = registry()
        .lock()
        .unwrap()
        .iter()
        .map(|buf| {
            let b = buf.lock().unwrap();
            let mut events = Vec::with_capacity(b.ring.len());
            events.extend_from_slice(&b.ring[b.head..]);
            events.extend_from_slice(&b.ring[..b.head]);
            ThreadLog {
                tid: b.tid,
                name: b.name.clone(),
                events,
                dropped: b.dropped,
            }
        })
        .filter(|t| !t.events.is_empty() || t.dropped > 0)
        .collect();
    threads.sort_by_key(|t| t.tid);
    let modelled = modelled().lock().unwrap().slices.clone();
    Trace { threads, modelled }
}

/// Copies every thread's currently open span stack (outermost frame
/// first), skipping threads with nothing open. This is the sampler's
/// read side: it locks each thread buffer only long enough to clone a
/// small `Vec` of `&'static str`, so a recording thread is stalled for
/// at most that window, and only when the sampler fires.
pub(crate) fn sample_stacks(out: &mut Vec<Vec<&'static str>>) {
    out.clear();
    for buf in registry().lock().unwrap().iter() {
        let b = buf.lock().unwrap();
        if !b.stack.is_empty() {
            out.push(b.stack.clone());
        }
    }
}

/// Total events currently buffered across all threads (dropped events
/// included). Used by the disabled-overhead guard test to prove the
/// disabled path records nothing.
pub fn event_count() -> u64 {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|buf| {
            let b = buf.lock().unwrap();
            b.ring.len() as u64 + b.dropped
        })
        .sum()
}

pub(crate) fn reset() {
    for buf in registry().lock().unwrap().iter() {
        let mut b = buf.lock().unwrap();
        b.ring.clear();
        b.head = 0;
        b.dropped = 0;
    }
    let mut m = modelled().lock().unwrap();
    m.cursor_s = 0.0;
    m.slices.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise tests that touch the global enabled flag / buffers.
    fn with_obs<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap();
        crate::reset();
        crate::enable();
        let r = f();
        crate::disable();
        crate::reset();
        r
    }

    #[test]
    fn spans_nest_and_order() {
        with_obs(|| {
            {
                let _outer = span_with("outer", 7);
                let _inner = span("inner");
            }
            let t = snapshot();
            let me: Vec<&Event> = t.threads.iter().flat_map(|l| &l.events).collect();
            let names: Vec<(&str, EventKind)> = me.iter().map(|e| (e.name, e.kind)).collect();
            assert_eq!(
                names,
                vec![
                    ("outer", EventKind::Begin),
                    ("inner", EventKind::Begin),
                    ("inner", EventKind::End),
                    ("outer", EventKind::End),
                ]
            );
            assert!(me.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
            assert_eq!(me[0].arg, 7);
        });
    }

    #[test]
    fn disabled_records_nothing() {
        with_obs(|| {
            crate::disable();
            let before = event_count();
            let _s = span("ghost");
            counter_event("ghost.counter", 1);
            drop(_s);
            assert_eq!(event_count(), before);
            crate::enable();
        });
    }

    #[test]
    fn ring_overflow_counts_drops() {
        with_obs(|| {
            for i in 0..(RING_CAPACITY + 10) {
                counter_event("tick", i as u64);
            }
            let t = snapshot();
            let log = t.threads.iter().find(|l| l.dropped > 0).expect("overflow");
            assert_eq!(log.dropped, 10);
            assert_eq!(log.events.len(), RING_CAPACITY);
            // Oldest events were overwritten: the first surviving tick is #10.
            assert_eq!(log.events[0].arg, 10);
        });
    }

    #[test]
    fn modelled_runs_are_laid_out_back_to_back() {
        with_obs(|| {
            let slice = |s: f64, e: f64| ModelledSlice {
                lane: "dev".into(),
                name: "batch".into(),
                start_s: s,
                end_s: e,
                units: 1,
            };
            modelled_run(vec![slice(0.0, 1.0)], 1.0);
            modelled_run(vec![slice(0.0, 2.0)], 2.0);
            let t = snapshot();
            assert_eq!(t.modelled.len(), 2);
            assert_eq!(t.modelled[1].start_s, 1.0);
            assert_eq!(t.modelled[1].end_s, 3.0);
        });
    }
}
