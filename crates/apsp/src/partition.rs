//! Region-growing k-way graph partitioner.
//!
//! Substitute for the METIS/ParMETIS decomposition that the Djidjev et al.
//! baseline uses (see DESIGN.md): the baseline only needs a roughly
//! balanced partition with a small boundary on planar-ish graphs, which
//! farthest-point seeding plus multi-source BFS region growing delivers.
//! Seeds are spread with farthest-point sampling (hop metric), then every
//! vertex joins the seed that reaches it first; ties break on seed index so
//! the partition is deterministic.

use ear_graph::{CsrGraph, VertexId};

/// A `k`-way vertex partition.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Part id per vertex (`0..k`).
    pub part: Vec<u32>,
    /// Number of parts actually used.
    pub k: usize,
}

impl Partition {
    /// Vertices grouped per part.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.k];
        for (v, &p) in self.part.iter().enumerate() {
            out[p as usize].push(v as VertexId);
        }
        out
    }

    /// Vertices incident to an edge that crosses parts.
    pub fn boundary_vertices(&self, g: &CsrGraph) -> Vec<VertexId> {
        let mut is_boundary = vec![false; g.n()];
        for e in g.edges() {
            if self.part[e.u as usize] != self.part[e.v as usize] {
                is_boundary[e.u as usize] = true;
                is_boundary[e.v as usize] = true;
            }
        }
        (0..g.n() as u32)
            .filter(|&v| is_boundary[v as usize])
            .collect()
    }

    /// Edges whose endpoints lie in different parts.
    pub fn cut_edges(&self, g: &CsrGraph) -> Vec<ear_graph::EdgeId> {
        (0..g.m() as u32)
            .filter(|&e| {
                let r = g.edge(e);
                self.part[r.u as usize] != self.part[r.v as usize]
            })
            .collect()
    }
}

/// Partitions `g` into (at most) `k` parts.
///
/// Each connected component receives seeds proportional to its size (at
/// least one), so no part ever spans two components.
pub fn partition_graph(g: &CsrGraph, k: usize) -> Partition {
    let n = g.n();
    assert!(k >= 1, "k must be positive");
    if n == 0 {
        return Partition {
            part: Vec::new(),
            k: 0,
        };
    }
    let comps = ear_graph::connected_components(g);
    let groups = comps.members();
    // Seeds per component, proportional with a floor of one.
    let mut seeds: Vec<VertexId> = Vec::new();
    for members in &groups {
        let share = ((members.len() * k) as f64 / n as f64).round() as usize;
        let want = share.clamp(1, members.len());
        seeds.extend(farthest_point_seeds(g, members, want));
    }
    // Multi-source BFS with a per-region size cap: each vertex joins the
    // earliest-reaching seed, but a region that hits its cap stops growing,
    // which keeps a central seed from swallowing the whole component.
    let mut part = vec![u32::MAX; n];
    let mut size = vec![0usize; seeds.len()];
    let mut cap = vec![usize::MAX; seeds.len()];
    {
        // Cap per region: 1.3x its component's fair share.
        let mut comp_seed_count = vec![0usize; groups.len()];
        for &s in &seeds {
            comp_seed_count[comps.comp[s as usize] as usize] += 1;
        }
        for (i, &s) in seeds.iter().enumerate() {
            let c = comps.comp[s as usize] as usize;
            let fair = groups[c].len().div_ceil(comp_seed_count[c]);
            cap[i] = (fair + fair / 3).max(1);
        }
    }
    let mut queue = std::collections::VecDeque::new();
    for (i, &s) in seeds.iter().enumerate() {
        part[s as usize] = i as u32;
        size[i] += 1;
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        let p = part[u as usize] as usize;
        if size[p] >= cap[p] {
            continue;
        }
        for &(v, _) in g.neighbors(u) {
            if part[v as usize] == u32::MAX {
                part[v as usize] = p as u32;
                size[p] += 1;
                queue.push_back(v);
                if size[p] >= cap[p] {
                    break;
                }
            }
        }
    }
    // Mop-up: capped regions may strand pockets; attach them to any
    // adjacent region, caps ignored (connectivity of the pocket's region is
    // preserved because attachment is again breadth-first).
    let mut pending: std::collections::VecDeque<VertexId> = (0..n as u32)
        .filter(|&v| part[v as usize] == u32::MAX)
        .collect();
    let mut stall = 0usize;
    while let Some(u) = pending.pop_front() {
        if let Some(&(w, _)) = g
            .neighbors(u)
            .iter()
            .find(|&&(w, _)| part[w as usize] != u32::MAX)
        {
            part[u as usize] = part[w as usize];
            stall = 0;
        } else {
            pending.push_back(u);
            stall += 1;
            if stall > pending.len() {
                break; // isolated from every seed (cannot happen: seeds cover components)
            }
        }
    }
    debug_assert!(part.iter().all(|&p| p != u32::MAX));
    Partition {
        part,
        k: seeds.len(),
    }
}

/// Farthest-point sampling restricted to one component's members.
fn farthest_point_seeds(g: &CsrGraph, members: &[VertexId], want: usize) -> Vec<VertexId> {
    let mut seeds = vec![members[0]];
    if want == 1 {
        return seeds;
    }
    let n = g.n();
    // dist-to-nearest-seed, updated incrementally with one BFS per seed.
    let mut best = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    let mut relax_from = |s: VertexId, best: &mut Vec<u32>| {
        best[s as usize] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in g.neighbors(u) {
                if best[u as usize] + 1 < best[v as usize] {
                    best[v as usize] = best[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
    };
    relax_from(members[0], &mut best);
    while seeds.len() < want {
        let far = members
            .iter()
            .copied()
            .max_by_key(|&v| (best[v as usize], std::cmp::Reverse(v)))
            .unwrap();
        if best[far as usize] == 0 {
            break; // everything already a seed / adjacent: stop early
        }
        seeds.push(far);
        relax_from(far, &mut best);
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(rows: u32, cols: u32) -> CsrGraph {
        let idx = |r: u32, c: u32| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1), 1u64));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c), 1u64));
                }
            }
        }
        CsrGraph::from_edges((rows * cols) as usize, &edges)
    }

    #[test]
    fn every_vertex_gets_a_part() {
        let g = grid(10, 10);
        let p = partition_graph(&g, 4);
        assert_eq!(p.k, 4);
        assert!(p.part.iter().all(|&x| (x as usize) < p.k));
    }

    #[test]
    fn parts_are_roughly_balanced_on_grids() {
        let g = grid(16, 16);
        let p = partition_graph(&g, 4);
        let sizes: Vec<usize> = p.members().iter().map(|m| m.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(*min * 3 >= *max, "unbalanced: {sizes:?}");
    }

    #[test]
    fn boundary_is_small_on_grids() {
        let g = grid(16, 16);
        let p = partition_graph(&g, 4);
        let b = p.boundary_vertices(&g);
        assert!(b.len() < g.n() / 3, "boundary {} of {}", b.len(), g.n());
        assert!(!b.is_empty());
    }

    #[test]
    fn cut_edges_cross_parts() {
        let g = grid(8, 8);
        let p = partition_graph(&g, 2);
        for e in p.cut_edges(&g) {
            let r = g.edge(e);
            assert_ne!(p.part[r.u as usize], p.part[r.v as usize]);
        }
    }

    #[test]
    fn k_one_is_trivial() {
        let g = grid(4, 4);
        let p = partition_graph(&g, 1);
        assert_eq!(p.k, 1);
        assert!(p.boundary_vertices(&g).is_empty());
    }

    #[test]
    fn components_never_share_a_part() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 1), (1, 2, 1), (3, 4, 1), (4, 5, 1)]);
        let p = partition_graph(&g, 2);
        assert_ne!(p.part[0], p.part[3]);
    }

    #[test]
    fn more_parts_than_vertices_degrades_gracefully() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        let p = partition_graph(&g, 10);
        assert!(p.k <= 3);
        assert!(p.part.iter().all(|&x| (x as usize) < p.k));
    }

    #[test]
    fn deterministic() {
        let g = grid(12, 12);
        let a = partition_graph(&g, 5);
        let b = partition_graph(&g, 5);
        assert_eq!(a.part, b.part);
    }
}
