//! # ear-apsp
//!
//! All-pairs shortest paths via ear decomposition (paper §2), plus every
//! baseline the paper compares against.
//!
//! * [`matrix`] — dense distance-matrix storage;
//! * [`ear`] — Algorithm 1: reduce → all-sources Dijkstra on `G^r` on the
//!   heterogeneous executor → closed-form post-processing back to `G`;
//! * [`oracle`] — the general-graph extension (paper §2.2): per-BCC tables,
//!   the articulation-point table `A`, block-cut-tree routing, and the
//!   `O(a² + Σ nᵢ²)` memory accounting of Table 1;
//! * [`reduced_oracle`] — the memory-frugal variant: only *reduced* block
//!   tables are stored (`a² + Σ (nᵢʳ)²`) and the §2.1.3 extension runs per
//!   query — the storage level the paper's published MB figures for its
//!   chain-heavy graphs imply;
//! * [`query`] — the serving-grade fast path over a built oracle:
//!   precomputed per-vertex gateway records, all tables fused into one
//!   flat arena, a batched many-to-many kernel, and fast path
//!   realization — bit-identical to the oracle's own query path;
//! * [`baselines`] — plain Dijkstra-from-every-vertex and Floyd–Warshall
//!   (the correctness oracle);
//! * [`partition`] — region-growing graph partitioner (METIS substitute);
//! * [`djidjev`] — the partition-based planar APSP baseline of Djidjev
//!   et al. that Figure 2 compares against on planar graphs.
//!
//! The Banerjee et al. baseline (BCC decomposition *without* ear reduction)
//! is [`oracle::build_oracle`] with [`oracle::ApspMethod::Plain`] — exactly
//! the paper's own "w/o ear decomposition" axis.
//!
//! Both oracles consume a prebuilt decomposition plan
//! (`ear_decomp::plan::DecompPlan`): [`build_oracle`] and
//! [`ReducedOracle::build`] construct one internally, while
//! [`build_oracle_with_plan`] and [`ReducedOracle::build_with_plan`] accept
//! a shared `Arc<DecompPlan>` so a combined run (stats + APSP + MCB)
//! decomposes the graph exactly once — see the "Decomposition plan"
//! sections of `README.md` / `DESIGN.md`.

pub mod baselines;
pub mod djidjev;
pub mod ear;
pub mod matrix;
pub mod oracle;
pub mod partition;
pub mod query;
pub mod reduced_oracle;

pub use ear::{ear_apsp, EarApspOutput};
pub use matrix::DistMatrix;
pub use oracle::{
    build_oracle, build_oracle_with_plan, build_oracle_with_plan_mode, ApspMethod, DistanceOracle,
    OracleStats,
};
pub use query::{QueryEngine, QueryScratch};
pub use reduced_oracle::ReducedOracle;
