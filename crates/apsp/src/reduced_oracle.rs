//! The memory-frugal distance oracle: reduced tables + per-query extension.
//!
//! [`crate::oracle::DistanceOracle`] materialises full per-block tables
//! (`a² + Σ nᵢ²` entries — the formula of paper §2.3). On chain-heavy
//! graphs that formula saves little: with 99.9% of edges in one block,
//! `Σ nᵢ² ≈ n²` no matter how many degree-2 vertices contract away. The
//! paper's published "Our's Memory" figures for exactly those graphs
//! (as-22july06, Wordnet3, soc-sign-epinions) are only reachable by
//! storing **reduced** tables — `a² + Σ (nᵢʳ)²` — and applying the §2.1.3
//! closed-form extension *per query* instead of materialising it. This
//! type is that storage level: every distance involving a removed vertex
//! costs a constant number of reduced-table lookups at query time.

use std::sync::Arc;

use ear_decomp::block_cut::Route;
use ear_decomp::plan::{BlockPlan, DecompPlan};
use ear_decomp::reduce::ReducedGraph;
use ear_graph::{dist_add, CsrGraph, SsspMode, VertexId, Weight, INF};
use ear_hetero::{ExecutionReport, HeteroExecutor, RunOutput};

use crate::matrix::DistMatrix;
use crate::oracle::{sssp_unit_rows, sssp_units, ApSegment};

/// A distance oracle storing `a² + Σ (nᵢʳ)²` entries.
///
/// Per-block reduced tables sit behind [`Arc`] so an incremental
/// [`ReducedOracle::recustomized`] refresh shares clean blocks' tables
/// with its parent oracle instead of recomputing them.
pub struct ReducedOracle {
    plan: Arc<DecompPlan>,
    sssp: SsspMode,
    /// Per-block distance matrices over the *reduced* (or full, when the
    /// block is not simple) block vertices.
    srs: Vec<Arc<DistMatrix>>,
    ap_table: Arc<DistMatrix>,
    /// Per-block AP-pair edge lists feeding the AP-graph Dijkstra, cached
    /// so a refresh recollects only dirty blocks' segments.
    ap_segments: Vec<ApSegment>,
    /// Executor report of the build (reduced all-sources Dijkstra phase).
    pub processing: ExecutionReport,
}

impl ReducedOracle {
    /// Builds the oracle: BCC split, per-block reduction, all-sources
    /// Dijkstra on every reduced block, articulation-point table. No
    /// Phase III — extension happens per query.
    pub fn build(g: &CsrGraph, exec: &HeteroExecutor) -> ReducedOracle {
        Self::build_with_plan(Arc::new(DecompPlan::build(g)), exec)
    }

    /// Builds the oracle from a prebuilt (and possibly shared)
    /// [`DecompPlan`]; only the all-sources Dijkstra over the plan's
    /// reduced blocks and the AP table remain to be computed.
    pub fn build_with_plan(plan: Arc<DecompPlan>, exec: &HeteroExecutor) -> ReducedOracle {
        Self::build_with_plan_mode(plan, exec, SsspMode::from_env())
    }

    /// [`Self::build_with_plan`] with an explicit [`SsspMode`]: `Batched`
    /// runs the all-sources phase (and the AP table) in lane batches of up
    /// to [`ear_graph::LANES`] sources per CSR edge scan; `Scalar` is the
    /// retained one-run-per-source baseline. Both produce bit-identical
    /// oracles.
    pub fn build_with_plan_mode(
        plan: Arc<DecompPlan>,
        exec: &HeteroExecutor,
        sssp: SsspMode,
    ) -> ReducedOracle {
        let all: Vec<u32> = (0..plan.n_blocks() as u32).collect();
        let (fresh, processing) = compute_reduced_tables(&plan, exec, sssp, &all);
        let srs: Vec<Arc<DistMatrix>> = fresh.into_iter().map(Arc::new).collect();
        let ap_segments: Vec<ApSegment> = srs
            .iter()
            .enumerate()
            .map(|(b, sr)| Arc::new(reduced_ap_segment(&plan, b as u32, sr)))
            .collect();
        let ap_table = Arc::new(compute_reduced_ap_table(&plan, sssp, &ap_segments));
        ReducedOracle {
            plan,
            sssp,
            srs,
            ap_table,
            ap_segments,
            processing,
        }
    }

    /// Incrementally refreshes the oracle for a recustomized plan: the
    /// reduced all-sources phase reruns only on `plan`'s **dirty blocks**
    /// (see [`DecompPlan::dirty_blocks`]); clean blocks' tables are shared
    /// with `self` via [`Arc::clone`]. The AP table is rebuilt whenever any
    /// block is dirty, and shared on a no-op recustomization.
    ///
    /// Bit-identical to a cold [`Self::build_with_plan_mode`] on `plan`;
    /// cost scales with the dirty blocks' share of the graph.
    ///
    /// # Panics
    /// Panics unless `plan` shares this oracle's plan topology (i.e. it
    /// came from [`DecompPlan::recustomized`] on the same decomposition).
    pub fn recustomized(&self, plan: Arc<DecompPlan>, exec: &HeteroExecutor) -> ReducedOracle {
        assert!(
            self.plan.shares_topology(&plan),
            "recustomized requires a plan sharing this oracle's topology \
             (build it with DecompPlan::recustomized)"
        );
        let dirty = plan.dirty_blocks().to_vec();
        let _span = ear_obs::span_with("apsp.reduced_refresh", dirty.len() as u64);

        let (fresh, processing) = compute_reduced_tables(&plan, exec, self.sssp, &dirty);
        let mut srs = self.srs.clone();
        for (&b, t) in dirty.iter().zip(fresh) {
            srs[b as usize] = Arc::new(t);
        }
        // Only dirty blocks' AP-pair segments need recollecting.
        let mut ap_segments = self.ap_segments.clone();
        for &b in &dirty {
            ap_segments[b as usize] = Arc::new(reduced_ap_segment(&plan, b, &srs[b as usize]));
        }
        let ap_table = if dirty.is_empty() {
            Arc::clone(&self.ap_table)
        } else {
            Arc::new(compute_reduced_ap_table(&plan, self.sssp, &ap_segments))
        };

        if ear_obs::is_enabled() {
            ear_obs::counter_add("apsp.reduced_refreshes", 1);
            ear_obs::counter_add("apsp.reduced_refresh.dirty_blocks", dirty.len() as u64);
        }

        ReducedOracle {
            plan,
            sssp: self.sssp,
            srs,
            ap_table,
            ap_segments,
            processing,
        }
    }

    /// Stored table entries: `a² + Σ (nᵢʳ)²`.
    pub fn table_entries(&self) -> u64 {
        (self.ap_table.n() as u64).pow(2)
            + self
                .srs
                .iter()
                .map(|sr| (sr.n() as u64).pow(2))
                .sum::<u64>()
    }

    /// Shortest-path distance, `INF` when disconnected.
    pub fn dist(&self, u: VertexId, v: VertexId) -> Weight {
        if u == v {
            return 0;
        }
        let bct = self.plan.bct();
        match bct.route(u, v) {
            Route::Disconnected => INF,
            Route::SameBlock(b) => {
                let (Some(lu), Some(lv)) = (self.plan.local(b, u), self.plan.local(b, v)) else {
                    return INF;
                };
                block_pair_dist(self.plan.block(b), &self.srs[b as usize], lu, lv)
            }
            Route::ViaAps { a1, a2 } => {
                let d1 = if a1 == u { 0 } else { self.vertex_to_ap(u, a1) };
                let d2 = if a2 == v { 0 } else { self.vertex_to_ap(v, a2) };
                let i = bct.ap_index[a1 as usize];
                let j = bct.ap_index[a2 as usize];
                dist_add(d1, dist_add(self.ap_table.get(i, j), d2))
            }
        }
    }

    fn vertex_to_ap(&self, x: VertexId, ap: VertexId) -> Weight {
        let b = self.plan.bct().vertex_block[x as usize];
        debug_assert_ne!(b, u32::MAX);
        if let (Some(lx), Some(la)) = (self.plan.local(b, x), self.plan.local(b, ap)) {
            return block_pair_dist(self.plan.block(b), &self.srs[b as usize], lx, la);
        }
        // x is an articulation point whose stored block lacks `ap`: scan
        // x's own adjacent blocks (precomputed AP→blocks index) for one
        // holding both — O(deg(x)) instead of the old O(n_blocks) scan.
        for &b in self.plan.bct().blocks_of_ap(x) {
            if let (Some(lx), Some(la)) = (self.plan.local(b, x), self.plan.local(b, ap)) {
                return block_pair_dist(self.plan.block(b), &self.srs[b as usize], lx, la);
            }
        }
        INF
    }

    /// Number of vertices of the underlying graph.
    pub fn n(&self) -> usize {
        self.plan.n()
    }

    /// The decomposition plan this oracle was built from.
    pub fn plan(&self) -> &Arc<DecompPlan> {
        &self.plan
    }
}

/// The reduced all-sources Dijkstra phase for the given `blocks` only.
/// Returns one reduced table per requested block, aligned with `blocks`,
/// plus the executor report. The cold build passes every block; an
/// incremental refresh passes just the dirty ones.
fn compute_reduced_tables(
    plan: &Arc<DecompPlan>,
    exec: &HeteroExecutor,
    sssp: SsspMode,
    blocks: &[u32],
) -> (Vec<DistMatrix>, ExecutionReport) {
    let mut pos = vec![usize::MAX; plan.n_blocks()];
    for (i, &b) in blocks.iter().enumerate() {
        pos[b as usize] = i;
    }
    let mut srs: Vec<DistMatrix> = blocks
        .iter()
        .map(|&b| {
            let srn = plan
                .reduction(b)
                .map_or(plan.block(b).n(), |r| r.reduced.n());
            DistMatrix::new(srn)
        })
        .collect();

    let units: Vec<(u32, u32, u32)> = blocks
        .iter()
        .flat_map(|&b| {
            let srcs = srs[pos[b as usize]].n();
            sssp_units(srcs as u32, sssp)
                .into_iter()
                .map(move |(start, len)| (b, start, len))
        })
        .collect();
    let RunOutput {
        results: rows,
        report: processing,
    } = exec.run(
        units.clone(),
        |&(b, _, len)| (plan.block(b).m() as u64 + 1) * len as u64,
        |&(b, start, len)| {
            let target = match plan.reduction(b) {
                Some(r) => r.reduced.view(),
                None => plan.block_graph(b),
            };
            // Pooled engines: scratch reused across the (block,
            // source-range) workunits each worker thread handles.
            sssp_unit_rows(target, start, len, sssp)
        },
    );
    for ((b, start, _), unit_rows) in units.into_iter().zip(rows) {
        for (i, row) in unit_rows.into_iter().enumerate() {
            let s = start + i as u32;
            for (t, w) in row.into_iter().enumerate() {
                srs[pos[b as usize]].set(s, t as u32, w);
            }
        }
    }
    (srs, processing)
}

/// Block `b`'s contribution to the reduced AP graph: one edge per finite
/// AP pair, with within-block AP distances answered by the per-query
/// formula (an articulation point can itself be a degree-2 vertex of its
/// block). Deterministic `i < j` order, as the cold build has always used.
fn reduced_ap_segment(plan: &DecompPlan, b: u32, sr: &DistMatrix) -> Vec<(u32, u32, Weight)> {
    let bct = plan.bct();
    let aps = &bct.block_aps[b as usize];
    let mut seg = Vec::new();
    for i in 0..aps.len() {
        for j in i + 1..aps.len() {
            let (lu, lv) = (
                plan.local(b, aps[i]).unwrap(),
                plan.local(b, aps[j]).unwrap(),
            );
            let w = block_pair_dist(plan.block(b), sr, lu, lv);
            if w < INF {
                seg.push((
                    bct.ap_index[aps[i] as usize],
                    bct.ap_index[aps[j] as usize],
                    w,
                ));
            }
        }
    }
    seg
}

/// AP table over the AP graph, from prebuilt per-block edge segments —
/// a refresh recomputes only dirty blocks' segments. Concatenation in
/// block id order keeps the result bit-identical to a cold build.
fn compute_reduced_ap_table(
    plan: &Arc<DecompPlan>,
    sssp: SsspMode,
    segments: &[ApSegment],
) -> DistMatrix {
    let a = plan.bct().ap_count();
    let ap_edges: Vec<(u32, u32, Weight)> = segments
        .iter()
        .flat_map(|seg| seg.iter().copied())
        .collect();
    let ap_graph = CsrGraph::from_edges(a, &ap_edges);
    let ap_rows: Vec<Vec<Weight>> = sssp_units(a as u32, sssp)
        .into_iter()
        .flat_map(|(start, len)| sssp_unit_rows(ap_graph.view(), start, len, sssp).0)
        .collect();
    DistMatrix::from_rows(ap_rows)
}

/// Within-block distance between two block-local vertices, computed from
/// the reduced table with the paper's §2.1.3 minima.
fn block_pair_dist(bp: &BlockPlan, sr: &DistMatrix, u: VertexId, v: VertexId) -> Weight {
    if u == v {
        return 0;
    }
    let Some(r) = &bp.reduction else {
        return sr.get(u, v);
    };
    match (r.removed_info(u), r.removed_info(v)) {
        (None, None) => sr.get(r.to_reduced[u as usize], r.to_reduced[v as usize]),
        (None, Some(iy)) => {
            let lu = r.to_reduced[u as usize];
            two_way(sr, lu, r, &iy)
        }
        (Some(ix), None) => {
            let lv = r.to_reduced[v as usize];
            two_way(sr, lv, r, &ix)
        }
        (Some(ix), Some(iy)) => {
            let (lxl, lxr) = (
                r.to_reduced[ix.left as usize],
                r.to_reduced[ix.right as usize],
            );
            let (lyl, lyr) = (
                r.to_reduced[iy.left as usize],
                r.to_reduced[iy.right as usize],
            );
            let mut best = dist_add(ix.w_left, dist_add(sr.get(lxl, lyl), iy.w_left))
                .min(dist_add(ix.w_left, dist_add(sr.get(lxl, lyr), iy.w_right)))
                .min(dist_add(ix.w_right, dist_add(sr.get(lxr, lyl), iy.w_left)))
                .min(dist_add(ix.w_right, dist_add(sr.get(lxr, lyr), iy.w_right)));
            if ix.chain == iy.chain {
                best = best.min(ix.w_left.abs_diff(iy.w_left));
            }
            best
        }
    }
}

#[inline]
fn two_way(
    sr: &DistMatrix,
    retained_local: VertexId,
    r: &ReducedGraph,
    info: &ear_decomp::reduce::RemovedInfo,
) -> Weight {
    let ll = r.to_reduced[info.left as usize];
    let lr = r.to_reduced[info.right as usize];
    dist_add(sr.get(retained_local, ll), info.w_left)
        .min(dist_add(sr.get(retained_local, lr), info.w_right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::floyd_warshall;
    use crate::oracle::{build_oracle, ApspMethod};

    fn check(g: &CsrGraph) -> ReducedOracle {
        let exec = HeteroExecutor::sequential();
        let ro = ReducedOracle::build(g, &exec);
        let fw = floyd_warshall(g);
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                assert_eq!(ro.dist(u, v), fw.get(u, v), "({u},{v})");
            }
        }
        ro
    }

    #[test]
    fn matches_oracle_on_mixed_graph() {
        // triangle - bridge - square(chained) - pendant, plus a chain-heavy
        // theta block.
        let g = CsrGraph::from_edges(
            11,
            &[
                (0, 1, 2),
                (1, 2, 3),
                (2, 0, 4),
                (2, 3, 5),
                (3, 4, 1),
                (4, 5, 2),
                (5, 6, 3),
                (6, 3, 4),
                (5, 7, 9),
                (0, 8, 1),
                (8, 9, 1),
                (9, 10, 1),
                (10, 0, 1),
            ],
        );
        let ro = check(&g);
        let full = build_oracle(&g, &HeteroExecutor::sequential(), ApspMethod::Ear);
        assert!(
            ro.table_entries() <= full.stats().table_entries,
            "reduced {} vs full {}",
            ro.table_entries(),
            full.stats().table_entries
        );
    }

    #[test]
    fn articulation_point_inside_a_chain() {
        // Two pure cycles sharing vertex 0: within each block, vertex 0 has
        // degree 2 and is contracted away — queries must still route
        // through it correctly.
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 3, 3),
                (3, 0, 4),
                (0, 4, 5),
                (4, 5, 6),
                (5, 6, 7),
                (6, 0, 8),
            ],
        );
        check(&g);
    }

    #[test]
    fn chain_heavy_block_saves_memory() {
        // A ring of 40 with two chords: most vertices are degree-2.
        let mut edges: Vec<(u32, u32, u64)> = (0..40).map(|i| (i, (i + 1) % 40, 2)).collect();
        edges.push((0, 20, 3));
        edges.push((10, 30, 3));
        let g = CsrGraph::from_edges(40, &edges);
        let ro = check(&g);
        let full = build_oracle(&g, &HeteroExecutor::sequential(), ApspMethod::Ear);
        assert!(ro.table_entries() * 10 < full.stats().table_entries);
    }

    #[test]
    fn disconnected_and_isolated() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        let ro = check(&g);
        assert_eq!(ro.dist(0, 4), INF);
        assert_eq!(ro.dist(3, 3), 0);
    }

    #[test]
    fn pure_cycle_component() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4), (4, 0, 5)]);
        check(&g);
    }

    #[test]
    fn recustomized_matches_cold_build_and_shares_clean_tables() {
        // triangle — bridge — square (chained): three blocks.
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 2),
                (1, 2, 3),
                (2, 0, 4),
                (2, 3, 5),
                (3, 4, 1),
                (4, 5, 2),
                (5, 6, 3),
                (6, 3, 4),
            ],
        );
        let exec = HeteroExecutor::sequential();
        let plan = Arc::new(DecompPlan::build(&g));
        let ro = ReducedOracle::build_with_plan(Arc::clone(&plan), &exec);
        let mut w: Vec<Weight> = g.edges().iter().map(|e| e.w).collect();
        w[0] = 30; // triangle block only
        let warm_plan = Arc::new(plan.recustomized(&w));
        let warm = ro.recustomized(Arc::clone(&warm_plan), &exec);
        let cold = ReducedOracle::build(&g.reweighted(&w), &exec);
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                assert_eq!(warm.dist(u, v), cold.dist(u, v), "({u},{v})");
            }
        }
        assert_eq!(warm.table_entries(), cold.table_entries());
        // Clean blocks' tables are the parent's allocations.
        let dirty = warm_plan.dirty_blocks();
        assert_eq!(dirty.len(), 1);
        for b in 0..plan.n_blocks() {
            let shared = Arc::ptr_eq(&ro.srs[b], &warm.srs[b]);
            assert_eq!(shared, !dirty.contains(&(b as u32)), "block {b}");
            let seg_shared = Arc::ptr_eq(&ro.ap_segments[b], &warm.ap_segments[b]);
            assert_eq!(seg_shared, !dirty.contains(&(b as u32)), "segment {b}");
        }
        // No-op refresh shares everything, including the AP table.
        let noop = ro.recustomized(Arc::new(plan.recustomized(plan.edge_weights())), &exec);
        assert!(Arc::ptr_eq(&ro.ap_table, &noop.ap_table));
        for b in 0..plan.n_blocks() {
            assert!(Arc::ptr_eq(&ro.srs[b], &noop.srs[b]));
        }
    }
}
