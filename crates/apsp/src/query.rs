//! The query fast path: precomputed gateway routing over fused flat
//! tables, a batched many-to-many kernel, and fast path realization.
//!
//! [`crate::DistanceOracle::dist`] pays, on every call, a binary-lifting
//! LCA walk over the block-cut tree, a chain of `Vec<Arc<DistMatrix>>`
//! indirections, and (for articulation-point sources) a membership probe
//! per candidate block. None of that work depends on the weights — it is
//! pure routing, and it can all be precomputed. [`QueryEngine`] does so:
//!
//! * **Gateway records** — for every vertex `v`, the articulation points
//!   of its home block (`v` itself when `v` is an AP) with the
//!   within-block distance `d(v, a)` folded in at build time. Routing a
//!   query `d(u,v)` is then no tree walk at all: the answer is
//!   `min over a ∈ gw(u), a' ∈ gw(v) of d(u,a) + A[a,a'] + d(a',v)`,
//!   which equals the paper's `d(u,a₁) + A[a₁,a₂] + d(a₂,v)` exactly —
//!   the LCA-routed pair `(a₁,a₂)` is in the min, and no pair can beat
//!   the true distance (each term is an exact distance, so every summand
//!   is a valid walk length). Same-home-block pairs short-circuit to one
//!   flat table read. The per-vertex layout is tuned for serving: one
//!   16-byte [`VertexRoute`] record answers every classification question
//!   (home block, local id, component, AP-ness, gateway span) in a single
//!   cache line, and each gateway is one 16-byte `(AP index, folded
//!   distance)` record, so resolving an endpoint touches two lines total.
//! * **Fused flat tables** — the `a × a` AP table and every per-block
//!   table packed into one contiguous arena (`[A | B₀ | B₁ | …]`) with
//!   per-block `(offset, stride)` headers, so the hot read is one slice
//!   index instead of `Arc` + `Vec` + `DistMatrix` hops. The arena is
//!   Arc-shared at the arena level: a no-op [`QueryEngine::recustomized`]
//!   shares the whole [`FusedTables`] allocation, and a dirty refresh
//!   clones the arena (clean spans are a memcpy, never recomputed) and
//!   overwrites only the AP span, the dirty blocks' spans, and the dirty
//!   blocks' gateway distances.
//! * **Batched kernel** — [`QueryEngine::dist_batch`] answers `|S| × |T|`
//!   pairs by hoisting gateway resolution out of the pair loop: the
//!   distinct target gateway APs are collected once, each source
//!   min-reduces its gateway rows of `A` into a `mid[]` vector row-wise,
//!   and each pair finishes in `O(|gw(t)|)` adds. `dist_add` saturates at
//!   [`INF`], making it associative, so the regrouped reduction is
//!   **bit-identical** to the scalar formula.
//! * **Fast path realization** — [`QueryEngine::path`] runs the same
//!   greedy tight-edge descent as the legacy
//!   [`crate::DistanceOracle::path`] (same tie-breaks, bit-identical
//!   output) but hoists the target's whole gateway resolution into a
//!   per-query `tgt_mid[a] = min over a' ∈ gw(v) of A[a,a'] + d(a',v)`
//!   vector (a few hundred bytes, cache-resident for the whole descent),
//!   after which probing `d(y, v)` for a neighbor is `O(|gw(y)|)`
//!   saturating adds with **no** AP-table access at all — again
//!   bit-identical by the associativity of `dist_add`.
//!
//! `tests/query_fastpath_differential.rs` pins all of it — scalar,
//! batch and path — bit-identical to the legacy query path across every
//! testkit family, both layouts, before and after recustomization.

use std::sync::Arc;

use ear_decomp::plan::DecompPlan;
use ear_graph::{dist_add, CsrGraph, VertexId, Weight, INF};

use crate::oracle::DistanceOracle;

/// Marks an articulation point in [`VertexRoute::gw_start`]'s top bit
/// (and in [`PackedRoute::meta`]).
const AP_FLAG: u32 = 1 << 31;

/// Marks, in [`PackedRoute::meta`], a gateway list too long to inline —
/// the scalar path falls back to the CSR spans.
const OVF_FLAG: u32 = 1 << 30;

/// Gateway records inlined in a [`PackedRoute`] — sized so the whole
/// record is exactly one 64-byte cache line.
const GW_INLINE: usize = 3;

/// Everything the hot path needs to know about one vertex, packed into 16
/// bytes so endpoint classification is a single cache-line read. Stored
/// as `n + 1` records: entry `v + 1`'s `gw_start` closes vertex `v`'s
/// gateway span.
#[derive(Clone, Copy, Debug)]
struct VertexRoute {
    /// Home block id (`u32::MAX` for isolated vertices).
    home: u32,
    /// Local id within the home block (`u32::MAX` isolated).
    home_local: u32,
    /// Connected-component id (`u32::MAX` isolated).
    comp: u32,
    /// Start of the vertex's records in [`FusedTables::gw`], with
    /// [`AP_FLAG`] or-ed in when the vertex is an articulation point.
    gw_start: u32,
}

/// One gateway record: an articulation point of the vertex's home block
/// (the vertex itself when it is an AP) and the folded within-block
/// distance to it. 16 bytes, so a typical gateway list is one line.
#[derive(Clone, Copy, Debug)]
struct GwRec {
    /// AP index (row of the fused AP table).
    ap: u32,
    /// `d(v, ap)`, exact global distance (0 for an AP's self-record).
    dist: Weight,
}

/// One vertex's entire endpoint resolution in a single cache line: the
/// classification fields of [`VertexRoute`] plus up to [`GW_INLINE`]
/// gateway records inlined. The scalar `dist` and `path` hot loops read
/// exactly one of these per endpoint; vertices with longer gateway lists
/// carry [`OVF_FLAG`] and fall back to the CSR spans. Lives in
/// [`FusedTables`] (the gateway distances are weight-dependent).
#[repr(C, align(64))]
#[derive(Clone, Copy, Debug)]
struct PackedRoute {
    /// Home block id (`u32::MAX` for isolated vertices).
    home: u32,
    /// Local id within the home block.
    home_local: u32,
    /// Connected-component id (`u32::MAX` isolated).
    comp: u32,
    /// [`AP_FLAG`] | [`OVF_FLAG`] | inline gateway count.
    meta: u32,
    /// The inline gateway records (first `meta & !flags` valid).
    gw: [GwRec; GW_INLINE],
}

/// Arena placement of one block's table.
#[derive(Clone, Copy, Debug)]
struct BlockHeader {
    /// Offset of the block's `n × n` table in the arena.
    off: usize,
    /// Side length (row stride).
    n: u32,
}

/// The weight-independent routing layer: per-vertex route records and the
/// fused arena's layout headers. Derived once per decomposition and
/// shared (via [`Arc`]) by every [`QueryEngine::recustomized`] refresh.
#[derive(Debug)]
pub struct QueryTopology {
    /// Articulation-point count (the AP table is `ap_count × ap_count`).
    ap_count: usize,
    /// Per-vertex packed routing records (`n + 1` entries; see
    /// [`VertexRoute`]).
    routes: Vec<VertexRoute>,
    /// Weight-independent template of the gateway records: the `dist`
    /// fields are garbage here and are folded per customization into
    /// [`FusedTables::gw`].
    gw_template: Vec<GwRec>,
    /// Arena placement of each block's table; the AP table occupies
    /// `arena[0 .. ap_count²]`.
    blocks: Vec<BlockHeader>,
    /// Total arena length (`ap_count² + Σ block_n²`).
    arena_len: usize,
    /// Non-AP home vertices of each block (CSR) — exactly the vertices
    /// whose gateway distances a dirty block invalidates.
    bm_start: Vec<u32>,
    bm_vtx: Vec<u32>,
    /// Local id, within its block, of each AP in the block's gateway
    /// order (CSR aligned with the per-block gateway AP lists).
    bap_start: Vec<u32>,
    bap_local: Vec<u32>,
}

impl QueryTopology {
    fn new(plan: &DecompPlan) -> QueryTopology {
        let bct = plan.bct();
        let n = plan.n();
        let nb = plan.n_blocks();
        let ap_count = bct.ap_count();

        // Per-block gateway AP lists (indices + block-local ids), in the
        // deterministic `block_aps` order.
        let mut bap_start = vec![0u32; nb + 1];
        for b in 0..nb {
            bap_start[b + 1] = bap_start[b] + bct.block_aps[b].len() as u32;
        }
        let mut bap_ap = vec![0u32; bap_start[nb] as usize];
        let mut bap_local = vec![0u32; bap_start[nb] as usize];
        for (b, aps) in bct.block_aps.iter().enumerate() {
            for (k, &apv) in aps.iter().enumerate() {
                let i = bap_start[b] as usize + k;
                bap_ap[i] = bct.ap_index[apv as usize];
                bap_local[i] = plan
                    .local(b as u32, apv)
                    .expect("block must contain its APs");
            }
        }

        // Packed per-vertex routes plus the gateway template: an AP
        // routes through itself (one record, distance 0); everyone else
        // through the home block's APs.
        let mut routes = Vec::with_capacity(n + 1);
        let mut gw_template = Vec::new();
        for v in 0..n {
            let home = bct.vertex_block[v];
            let ap = bct.ap_index[v];
            let comp = bct.component_of(v as VertexId).unwrap_or(u32::MAX);
            let home_local = if home == u32::MAX {
                u32::MAX
            } else {
                plan.local(home, v as VertexId)
                    .expect("home block must contain its vertex")
            };
            let mut gw_start = gw_template.len() as u32;
            if ap != u32::MAX {
                gw_start |= AP_FLAG;
                gw_template.push(GwRec { ap, dist: 0 });
            } else if home != u32::MAX {
                let b = home as usize;
                for &a in &bap_ap[bap_start[b] as usize..bap_start[b + 1] as usize] {
                    gw_template.push(GwRec { ap: a, dist: INF });
                }
            }
            routes.push(VertexRoute {
                home,
                home_local,
                comp,
                gw_start,
            });
        }
        routes.push(VertexRoute {
            home: u32::MAX,
            home_local: u32::MAX,
            comp: u32::MAX,
            gw_start: gw_template.len() as u32,
        });
        assert!(
            gw_template.len() < AP_FLAG as usize,
            "gateway table overflows the AP flag bit"
        );

        // Non-AP home members of each block, for targeted gateway
        // refreshes.
        let mut bm_start = vec![0u32; nb + 1];
        for r in &routes[..n] {
            if r.gw_start & AP_FLAG == 0 && r.home != u32::MAX {
                bm_start[r.home as usize + 1] += 1;
            }
        }
        for b in 0..nb {
            bm_start[b + 1] += bm_start[b];
        }
        let mut bm_vtx = vec![0u32; bm_start[nb] as usize];
        let mut cursor = bm_start.clone();
        for (v, r) in routes[..n].iter().enumerate() {
            if r.gw_start & AP_FLAG == 0 && r.home != u32::MAX {
                let b = r.home as usize;
                bm_vtx[cursor[b] as usize] = v as u32;
                cursor[b] += 1;
            }
        }

        // Arena headers: AP table first, then blocks in id order.
        let mut blocks = Vec::with_capacity(nb);
        let mut off = ap_count * ap_count;
        for b in 0..nb {
            let bn = plan.block(b as u32).n();
            blocks.push(BlockHeader { off, n: bn as u32 });
            off += bn * bn;
        }

        QueryTopology {
            ap_count,
            routes,
            gw_template,
            blocks,
            arena_len: off,
            bm_start,
            bm_vtx,
            bap_start,
            bap_local,
        }
    }

    /// Gateway record range of a vertex (flag bit stripped).
    #[inline]
    fn gw_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let lo = (self.routes[v as usize].gw_start & !AP_FLAG) as usize;
        let hi = (self.routes[v as usize + 1].gw_start & !AP_FLAG) as usize;
        lo..hi
    }
}

/// The weight-dependent layer: one contiguous arena holding the AP table
/// and every per-block table, plus the gateway records with their folded
/// distances. Shared at the arena level — see the module docs.
#[derive(Debug)]
pub struct FusedTables {
    /// `[ AP table (a²) | block 0 (n₀²) | block 1 (n₁²) | … ]`, row-major.
    arena: Vec<Weight>,
    /// Per-vertex gateway records, spans addressed by
    /// [`QueryTopology::gw_range`].
    gw: Vec<GwRec>,
    /// One cache line per vertex for the scalar hot paths — the same
    /// routing + gateway data as `routes`/`gw`, repacked (see
    /// [`PackedRoute`]).
    packed: Vec<PackedRoute>,
}

impl FusedTables {
    fn build(topo: &QueryTopology, oracle: &DistanceOracle) -> FusedTables {
        let mut arena = Vec::with_capacity(topo.arena_len);
        arena.extend_from_slice(oracle.ap_table().data());
        for t in oracle.block_tables() {
            arena.extend_from_slice(t.data());
        }
        debug_assert_eq!(arena.len(), topo.arena_len);
        // The template already carries the AP self-records (dist 0);
        // every member record is refolded below.
        let mut gw = topo.gw_template.clone();
        for b in 0..topo.blocks.len() {
            Self::fill_block_gw(topo, oracle, b as u32, &mut gw);
        }
        let packed = Self::pack_routes(topo, &gw);
        FusedTables { arena, gw, packed }
    }

    /// Repacks the CSR routing + gateway state into the one-line-per-
    /// vertex [`PackedRoute`] array.
    fn pack_routes(topo: &QueryTopology, gw: &[GwRec]) -> Vec<PackedRoute> {
        let n = topo.routes.len() - 1;
        let mut packed = Vec::with_capacity(n);
        for v in 0..n {
            let r = topo.routes[v];
            let range = topo.gw_range(v as u32);
            let mut meta = r.gw_start & AP_FLAG;
            let mut recs = [GwRec { ap: 0, dist: INF }; GW_INLINE];
            if range.len() <= GW_INLINE {
                meta |= range.len() as u32;
                recs[..range.len()].copy_from_slice(&gw[range]);
            } else {
                meta |= OVF_FLAG;
            }
            packed.push(PackedRoute {
                home: r.home,
                home_local: r.home_local,
                comp: r.comp,
                meta,
                gw: recs,
            });
        }
        packed
    }

    /// Mirrors block `b`'s refreshed gateway distances from the CSR into
    /// the packed records (refresh path; build packs from scratch).
    fn sync_packed_block(topo: &QueryTopology, b: u32, gw: &[GwRec], packed: &mut [PackedRoute]) {
        let members = &topo.bm_vtx
            [topo.bm_start[b as usize] as usize..topo.bm_start[b as usize + 1] as usize];
        for &v in members {
            let p = &mut packed[v as usize];
            if p.meta & OVF_FLAG == 0 {
                let range = topo.gw_range(v);
                p.gw[..range.len()].copy_from_slice(&gw[range]);
            }
        }
    }

    /// (Re)folds `d(v, gateway)` for every non-AP home vertex of block
    /// `b` from the oracle's current table of that block.
    fn fill_block_gw(topo: &QueryTopology, oracle: &DistanceOracle, b: u32, gw: &mut [GwRec]) {
        let table = &oracle.block_tables()[b as usize];
        let locals = &topo.bap_local
            [topo.bap_start[b as usize] as usize..topo.bap_start[b as usize + 1] as usize];
        let members = &topo.bm_vtx
            [topo.bm_start[b as usize] as usize..topo.bm_start[b as usize + 1] as usize];
        for &v in members {
            let lv = topo.routes[v as usize].home_local;
            let out = &mut gw[topo.gw_range(v)];
            for (slot, &la) in out.iter_mut().zip(locals) {
                slot.dist = table.get(lv, la);
            }
        }
    }
}

/// Reusable scratch for [`QueryEngine::dist_batch_into`]: stamp-versioned
/// AP marking plus the per-source `mid[]` reduction vector. Steady-state
/// batches through a warmed scratch allocate nothing. Also carries the
/// per-query `tgt_mid` vector of [`QueryEngine::path`].
#[derive(Debug, Default)]
pub struct QueryScratch {
    stamp: u32,
    /// Per AP index: stamp when the AP is in `t_aps` for the current batch.
    mark: Vec<u32>,
    /// Per AP index: its position in `t_aps` (valid while marked).
    pos: Vec<u32>,
    /// Distinct target gateway AP indices of the current batch.
    t_aps: Vec<u32>,
    /// Per `t_aps` entry: `min over s-gateways of d(s,a) + A[a, t_ap]`.
    mid: Vec<Weight>,
}

impl QueryScratch {
    /// Fresh scratch; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, ap_count: usize) {
        if self.mark.len() < ap_count {
            self.mark.resize(ap_count, 0);
            self.pos.resize(ap_count, 0);
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.mark.fill(0);
            self.stamp = 1;
        }
    }
}

/// The serving-grade query layer over a built [`DistanceOracle`] — see
/// the module docs for the data layout and the bit-identity argument.
///
/// Cheaply cloneable (three `Arc`s). [`QueryEngine::recustomized`]
/// follows an oracle refresh while sharing the routing topology always
/// and the fused arena whenever no block is dirty.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    plan: Arc<DecompPlan>,
    topo: Arc<QueryTopology>,
    tables: Arc<FusedTables>,
}

impl QueryEngine {
    /// Builds the engine from a built oracle: derives the gateway routing
    /// topology and packs the oracle's tables into the fused arena.
    pub fn new(oracle: &DistanceOracle) -> QueryEngine {
        let _span = ear_obs::span_with("query.build", oracle.plan().n() as u64);
        let topo = Arc::new(QueryTopology::new(oracle.plan()));
        let tables = Arc::new(FusedTables::build(&topo, oracle));
        if ear_obs::is_enabled() {
            ear_obs::counter_add("query.engines", 1);
            ear_obs::counter_add("query.gateway_records", tables.gw.len() as u64);
            ear_obs::counter_add("query.arena_entries", topo.arena_len as u64);
        }
        QueryEngine {
            plan: Arc::clone(oracle.plan()),
            topo,
            tables,
        }
    }

    /// Follows an incremental oracle refresh: the routing topology is
    /// always shared with `self`, and the fused arena is shared outright
    /// on a no-op refresh. A dirty refresh clones the arena — clean block
    /// spans are memcpy'd, never recomputed — and overwrites only the AP
    /// span, the dirty blocks' spans and the dirty blocks' folded gateway
    /// distances.
    ///
    /// # Panics
    /// Panics unless `oracle`'s plan shares this engine's plan topology.
    pub fn recustomized(&self, oracle: &DistanceOracle) -> QueryEngine {
        assert!(
            self.plan.shares_topology(oracle.plan()),
            "recustomized requires an oracle sharing this engine's topology"
        );
        let dirty = oracle.plan().dirty_blocks();
        let _span = ear_obs::span_with("query.refresh", dirty.len() as u64);
        if ear_obs::is_enabled() {
            ear_obs::counter_add("query.refreshes", 1);
            ear_obs::counter_add("query.refresh.dirty_blocks", dirty.len() as u64);
        }
        if dirty.is_empty() {
            return QueryEngine {
                plan: Arc::clone(oracle.plan()),
                topo: Arc::clone(&self.topo),
                tables: Arc::clone(&self.tables),
            };
        }
        let topo = &*self.topo;
        let mut arena = self.tables.arena.clone();
        let mut gw = self.tables.gw.clone();
        let mut packed = self.tables.packed.clone();
        // Any dirty block can reroute AP-to-AP paths globally, so the
        // oracle rebuilt the whole AP table; take it wholesale.
        let a2 = topo.ap_count * topo.ap_count;
        arena[..a2].copy_from_slice(oracle.ap_table().data());
        for &b in dirty {
            let h = topo.blocks[b as usize];
            let len = (h.n as usize).pow(2);
            arena[h.off..h.off + len].copy_from_slice(oracle.block_tables()[b as usize].data());
            FusedTables::fill_block_gw(topo, oracle, b, &mut gw);
            FusedTables::sync_packed_block(topo, b, &gw, &mut packed);
        }
        QueryEngine {
            plan: Arc::clone(oracle.plan()),
            topo: Arc::clone(&self.topo),
            tables: Arc::new(FusedTables { arena, gw, packed }),
        }
    }

    /// Shortest-path distance between any two vertices (`INF` when
    /// disconnected) — bit-identical to [`DistanceOracle::dist`], at flat
    /// array-read cost.
    #[inline]
    pub fn dist(&self, u: VertexId, v: VertexId) -> Weight {
        if ear_obs::is_enabled() {
            ear_obs::counter_add("query.p2p", 1);
        }
        self.dist_inner(u, v)
    }

    /// The uncounted core of [`Self::dist`] (shared with the batch and
    /// path kernels, which account for themselves). Each endpoint costs
    /// one [`PackedRoute`] cache line; only overflow gateway lists
    /// (longer than [`GW_INLINE`]) touch the CSR spans.
    #[inline]
    fn dist_inner(&self, u: VertexId, v: VertexId) -> Weight {
        if u == v {
            return 0;
        }
        let t = &*self.topo;
        let pu = &self.tables.packed[u as usize];
        let pv = &self.tables.packed[v as usize];
        if (pu.meta | pv.meta) & AP_FLAG == 0 && pu.home == pv.home {
            // Both non-AP with one home block: a single flat table read
            // (INF for two isolated vertices, which share the sentinel).
            if pu.home == u32::MAX {
                return INF;
            }
            let h = t.blocks[pu.home as usize];
            return self.tables.arena
                [h.off + pu.home_local as usize * h.n as usize + pv.home_local as usize];
        }
        if pu.comp != pv.comp || pu.comp == u32::MAX {
            return INF;
        }
        let gw = &self.tables.gw[..];
        let gu: &[GwRec] = if pu.meta & OVF_FLAG == 0 {
            &pu.gw[..(pu.meta & !AP_FLAG) as usize]
        } else {
            &gw[t.gw_range(u)]
        };
        let gv: &[GwRec] = if pv.meta & OVF_FLAG == 0 {
            &pv.gw[..(pv.meta & !AP_FLAG) as usize]
        } else {
            &gw[t.gw_range(v)]
        };
        self.gateway_min(gu, gv)
    }

    /// `min over a ∈ gw(u), a' ∈ gw(v) of d(u,a) + A[a,a'] + d(a',v)` —
    /// the O(1)-routed cross-block (and any-AP-endpoint) distance, over
    /// already-resolved gateway spans.
    #[inline]
    fn gateway_min(&self, gu: &[GwRec], gv: &[GwRec]) -> Weight {
        let a = self.topo.ap_count;
        let arena = &self.tables.arena[..];
        // 2×2 is the shape of every chain-interior block (two cut
        // vertices): unrolled so both AP-table row reads issue in
        // parallel and the four candidates reduce without loop carries.
        // Same min over the same candidates — bit-identical result.
        if let ([u0, u1], [v0, v1]) = (gu, gv) {
            let r0 = &arena[u0.ap as usize * a..][..a];
            let r1 = &arena[u1.ap as usize * a..][..a];
            let c00 = dist_add(u0.dist, dist_add(r0[v0.ap as usize], v0.dist));
            let c01 = dist_add(u0.dist, dist_add(r0[v1.ap as usize], v1.dist));
            let c10 = dist_add(u1.dist, dist_add(r1[v0.ap as usize], v0.dist));
            let c11 = dist_add(u1.dist, dist_add(r1[v1.ap as usize], v1.dist));
            return c00.min(c01).min(c10).min(c11);
        }
        let mut best = INF;
        for ru in gu {
            let row = &arena[ru.ap as usize * a..][..a];
            for rv in gv {
                let cand = dist_add(ru.dist, dist_add(row[rv.ap as usize], rv.dist));
                if cand < best {
                    best = cand;
                }
            }
        }
        best
    }

    /// Many-to-many distances: one entry per `(source, target)` pair,
    /// row-major `sources.len() × targets.len()`. Convenience wrapper over
    /// [`Self::dist_batch_into`] that allocates its own scratch.
    pub fn dist_batch(&self, sources: &[VertexId], targets: &[VertexId]) -> Vec<Weight> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.dist_batch_into(sources, targets, &mut scratch, &mut out);
        out
    }

    /// The batched many-to-many kernel. Gateway resolution is hoisted out
    /// of the pair loop: distinct target gateway APs are collected once,
    /// each source min-reduces its AP-table rows into `mid[]` row-wise,
    /// and each pair finishes in `O(|gw(target)|)` saturating adds —
    /// bit-identical to calling [`Self::dist`] per pair (associativity of
    /// `dist_add`; the differential suite pins it). Steady-state calls
    /// through a warmed `scratch`/`out` allocate nothing.
    pub fn dist_batch_into(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
        scratch: &mut QueryScratch,
        out: &mut Vec<Weight>,
    ) {
        let pairs = (sources.len() * targets.len()) as u64;
        let _span = ear_obs::span_with("query.batch", pairs);
        if ear_obs::is_enabled() {
            ear_obs::counter_add("query.batches", 1);
            ear_obs::counter_add("query.batch_queries", pairs);
        }
        let t = &*self.topo;
        let arena = &self.tables.arena[..];
        let gw = &self.tables.gw[..];
        out.clear();
        out.reserve(sources.len() * targets.len());
        scratch.ensure(t.ap_count);
        let stamp = scratch.stamp;

        // Distinct gateway APs across all targets, positions recorded.
        scratch.t_aps.clear();
        for &tv in targets {
            for rec in &gw[t.gw_range(tv)] {
                let a = rec.ap as usize;
                if scratch.mark[a] != stamp {
                    scratch.mark[a] = stamp;
                    scratch.pos[a] = scratch.t_aps.len() as u32;
                    scratch.t_aps.push(rec.ap);
                }
            }
        }
        scratch.mid.clear();
        scratch.mid.resize(scratch.t_aps.len(), INF);

        for &s in sources {
            // mid[j] = min over s-gateways of d(s,a) + A[a, t_aps[j]],
            // walked row-wise over the fused AP table.
            for m in scratch.mid.iter_mut() {
                *m = INF;
            }
            for rec in &gw[t.gw_range(s)] {
                let row = &arena[rec.ap as usize * t.ap_count..][..t.ap_count];
                for (m, &aj) in scratch.mid.iter_mut().zip(&scratch.t_aps) {
                    let cand = dist_add(rec.dist, row[aj as usize]);
                    if cand < *m {
                        *m = cand;
                    }
                }
            }
            let rs = t.routes[s as usize];
            for &tv in targets {
                let rt = t.routes[tv as usize];
                let d = if s == tv {
                    0
                } else if (rs.gw_start | rt.gw_start) & AP_FLAG == 0 && rs.home == rt.home {
                    if rs.home == u32::MAX {
                        INF
                    } else {
                        let h = t.blocks[rs.home as usize];
                        arena
                            [h.off + rs.home_local as usize * h.n as usize + rt.home_local as usize]
                    }
                } else if rs.comp != rt.comp || rs.comp == u32::MAX {
                    INF
                } else {
                    let mut best = INF;
                    for rec in &gw[t.gw_range(tv)] {
                        let cand =
                            dist_add(scratch.mid[scratch.pos[rec.ap as usize] as usize], rec.dist);
                        if cand < best {
                            best = cand;
                        }
                    }
                    best
                };
                out.push(d);
            }
        }
    }

    /// Reconstructs an actual shortest path `u → v` (inclusive of both
    /// endpoints), `None` when disconnected — bit-identical to the legacy
    /// [`DistanceOracle::path`]: the same greedy tight-edge descent with
    /// the same smallest-edge-id tie-break, but the target's gateway
    /// resolution is hoisted into a per-query `tgt_mid` vector, so every
    /// `d(neighbor, target)` probe is `O(|gw(neighbor)|)` saturating adds
    /// over cache-resident state instead of an LCA-routed oracle query.
    pub fn path(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
        if ear_obs::is_enabled() {
            ear_obs::counter_add("query.paths", 1);
        }
        if self.dist_inner(u, v) >= INF {
            return None;
        }
        let t = &*self.topo;
        let arena = &self.tables.arena[..];
        let gw = &self.tables.gw[..];
        // tgt_mid[a] = min over a' ∈ gw(v) of A[a,a'] + d(a',v): the
        // whole AP table's contribution to d(·, v), folded once. The AP
        // table is symmetric (undirected distances), so the fold streams
        // rows instead of columns.
        let mut tgt_mid = vec![INF; t.ap_count];
        for rec in &gw[t.gw_range(v)] {
            let row = &arena[rec.ap as usize * t.ap_count..][..t.ap_count];
            for (m, &aw) in tgt_mid.iter_mut().zip(row) {
                let cand = dist_add(aw, rec.dist);
                if cand < *m {
                    *m = cand;
                }
            }
        }
        let packed = &self.tables.packed[..];
        let pv = &packed[v as usize];
        // d(y, v) through the hoisted fold — bit-identical to
        // `dist_inner` by the associativity of `dist_add`. One packed
        // cache line per probe.
        let d_to_target = |y: VertexId| -> Weight {
            if y == v {
                return 0;
            }
            let py = &packed[y as usize];
            if (py.meta | pv.meta) & AP_FLAG == 0 && py.home == pv.home {
                if py.home == u32::MAX {
                    return INF;
                }
                let h = t.blocks[py.home as usize];
                return arena
                    [h.off + py.home_local as usize * h.n as usize + pv.home_local as usize];
            }
            if py.comp != pv.comp || py.comp == u32::MAX {
                return INF;
            }
            let gy: &[GwRec] = if py.meta & OVF_FLAG == 0 {
                &py.gw[..(py.meta & !AP_FLAG) as usize]
            } else {
                &gw[t.gw_range(y)]
            };
            let mut best = INF;
            for rec in gy {
                let cand = dist_add(rec.dist, tgt_mid[rec.ap as usize]);
                if cand < best {
                    best = cand;
                }
            }
            best
        };
        let mut path = vec![u];
        let mut x = u;
        // d(x, v), carried across hops: a tight step along edge `e`
        // means d(y, v) = d(x, v) - w(e) with everything finite, so the
        // chosen neighbor's probe doubles as the next hop's `dx` and
        // only neighbors are probed per hop.
        let mut dx = d_to_target(u);
        let mut guard = g.n() + 1;
        while x != v {
            let mut next: Option<(VertexId, ear_graph::EdgeId, Weight)> = None;
            for &(y, e) in g.neighbors(x) {
                if y == x {
                    continue;
                }
                // Once a tight edge is in hand, only a smaller edge id
                // can displace it — skip the probe for the rest (same
                // selected edge as the unfiltered scan, so the output
                // stays bit-identical to legacy).
                if next.is_some_and(|(_, be, _)| e >= be) {
                    continue;
                }
                let dy = d_to_target(y);
                if dist_add(g.weight(e), dy) == dx {
                    next = Some((y, e, dy));
                }
            }
            let (y, _, dy) = next.expect("finite distance must have a tight edge");
            path.push(y);
            x = y;
            dx = dy;
            guard -= 1;
            assert!(guard > 0, "path reconstruction looped");
        }
        Some(path)
    }

    /// The decomposition plan this engine serves.
    pub fn plan(&self) -> &Arc<DecompPlan> {
        &self.plan
    }

    /// Total gateway records across all vertices.
    pub fn gateway_records(&self) -> usize {
        self.tables.gw.len()
    }

    /// Entries in the fused arena (`a² + Σ nᵢ²`).
    pub fn arena_entries(&self) -> usize {
        self.topo.arena_len
    }

    /// True when `other` shares this engine's routing topology allocation
    /// (always the case across [`Self::recustomized`] refreshes).
    pub fn shares_topology_with(&self, other: &QueryEngine) -> bool {
        Arc::ptr_eq(&self.topo, &other.topo)
    }

    /// True when `other` shares this engine's fused-arena allocation
    /// (the case exactly for no-op refreshes).
    pub fn shares_tables_with(&self, other: &QueryEngine) -> bool {
        Arc::ptr_eq(&self.tables, &other.tables)
    }

    /// The arena span of one block's table (tests: clean spans of a dirty
    /// refresh must be byte-identical to the parent's).
    pub fn block_span(&self, b: u32) -> &[Weight] {
        let h = self.topo.blocks[b as usize];
        &self.tables.arena[h.off..h.off + (h.n as usize).pow(2)]
    }

    /// The arena span of the AP table.
    pub fn ap_span(&self) -> &[Weight] {
        &self.tables.arena[..self.topo.ap_count * self.topo.ap_count]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{build_oracle, build_oracle_with_plan, ApspMethod};
    use ear_hetero::HeteroExecutor;

    /// triangle — bridge — square — pendant (same shape as the oracle
    /// tests).
    fn mixed_graph() -> CsrGraph {
        CsrGraph::from_edges(
            8,
            &[
                (0, 1, 2),
                (1, 2, 3),
                (2, 0, 4),
                (2, 3, 5),
                (3, 4, 1),
                (4, 5, 2),
                (5, 6, 3),
                (6, 3, 4),
                (5, 7, 9),
            ],
        )
    }

    #[test]
    fn dist_matches_oracle_on_every_pair() {
        let g = mixed_graph();
        let exec = HeteroExecutor::sequential();
        let oracle = build_oracle(&g, &exec, ApspMethod::Ear);
        let q = QueryEngine::new(&oracle);
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                assert_eq!(q.dist(u, v), oracle.dist(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn batch_matches_scalar() {
        let g = mixed_graph();
        let exec = HeteroExecutor::sequential();
        let oracle = build_oracle(&g, &exec, ApspMethod::Ear);
        let q = QueryEngine::new(&oracle);
        let all: Vec<u32> = (0..g.n() as u32).collect();
        let out = q.dist_batch(&all, &all);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(out[u * g.n() + v], q.dist(u as u32, v as u32), "({u},{v})");
            }
        }
    }

    #[test]
    fn path_matches_legacy() {
        let g = mixed_graph();
        let exec = HeteroExecutor::sequential();
        let oracle = build_oracle(&g, &exec, ApspMethod::Ear);
        let q = QueryEngine::new(&oracle);
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                assert_eq!(q.path(&g, u, v), oracle.path(&g, u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_inf() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (2, 3, 1)]);
        let exec = HeteroExecutor::sequential();
        let oracle = build_oracle(&g, &exec, ApspMethod::Ear);
        let q = QueryEngine::new(&oracle);
        assert_eq!(q.dist(0, 2), INF);
        assert_eq!(q.dist(0, 4), INF); // isolated
        assert_eq!(q.dist(4, 4), 0);
        assert!(q.path(&g, 0, 2).is_none());
    }

    #[test]
    fn refresh_shares_topology_and_noop_shares_arena() {
        let g = mixed_graph();
        let exec = HeteroExecutor::sequential();
        let plan = Arc::new(DecompPlan::build(&g));
        let oracle = build_oracle_with_plan(Arc::clone(&plan), &exec, ApspMethod::Ear);
        let q = QueryEngine::new(&oracle);

        let w: Vec<Weight> = g.edges().iter().map(|e| e.w).collect();
        let noop_oracle = oracle.recustomized(Arc::new(plan.recustomized(&w)), &exec);
        let noop = q.recustomized(&noop_oracle);
        assert!(q.shares_topology_with(&noop));
        assert!(q.shares_tables_with(&noop));

        let mut w2 = w.clone();
        w2[0] = 50; // triangle block only
        let warm_plan = Arc::new(plan.recustomized(&w2));
        let dirty = warm_plan.dirty_blocks().to_vec();
        let warm_oracle = oracle.recustomized(Arc::clone(&warm_plan), &exec);
        let warm = q.recustomized(&warm_oracle);
        assert!(q.shares_topology_with(&warm));
        assert!(!q.shares_tables_with(&warm));
        // Clean spans are byte-identical memcpys of the parent arena.
        for b in 0..plan.n_blocks() as u32 {
            if !dirty.contains(&b) {
                assert_eq!(q.block_span(b), warm.block_span(b), "clean block {b}");
            }
        }
        // And the refreshed engine answers like a cold engine on the
        // refreshed oracle.
        let cold = QueryEngine::new(&warm_oracle);
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                assert_eq!(warm.dist(u, v), cold.dist(u, v), "({u},{v})");
            }
        }
    }
}
