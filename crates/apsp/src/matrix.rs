//! Dense symmetric distance-matrix storage.

use ear_graph::{Weight, INF};

/// A dense `n × n` distance matrix (row-major `u64` entries).
///
/// Stored square rather than triangular: the post-processing and query
/// loops are row-streaming, and the paper's memory accounting (Table 1) is
/// reproduced analytically in [`crate::oracle::OracleStats`] rather than by
/// measuring this struct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistMatrix {
    n: usize,
    d: Vec<Weight>,
}

impl DistMatrix {
    /// An `n × n` matrix filled with `INF`, zero diagonal.
    pub fn new(n: usize) -> Self {
        let mut d = vec![INF; n * n];
        for i in 0..n {
            d[i * n + i] = 0;
        }
        DistMatrix { n, d }
    }

    /// Builds from already-computed rows (each of length `n`).
    pub fn from_rows(rows: Vec<Vec<Weight>>) -> Self {
        let n = rows.len();
        let mut d = Vec::with_capacity(n * n);
        for r in &rows {
            assert_eq!(r.len(), n, "row length mismatch");
            d.extend_from_slice(r);
        }
        DistMatrix { n, d }
    }

    /// Side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance entry.
    #[inline]
    pub fn get(&self, i: u32, j: u32) -> Weight {
        self.d[i as usize * self.n + j as usize]
    }

    /// Sets one entry (not mirrored — callers decide symmetry).
    #[inline]
    pub fn set(&mut self, i: u32, j: u32, w: Weight) {
        self.d[i as usize * self.n + j as usize] = w;
    }

    /// Sets `d[i][j]` and `d[j][i]`.
    #[inline]
    pub fn set_sym(&mut self, i: u32, j: u32, w: Weight) {
        self.set(i, j, w);
        self.set(j, i, w);
    }

    /// The whole row-major backing slice (`n * n` entries) — what the
    /// query engine's fused arena packs from.
    #[inline]
    pub fn data(&self) -> &[Weight] {
        &self.d
    }

    /// Immutable row view.
    #[inline]
    pub fn row(&self, i: u32) -> &[Weight] {
        &self.d[i as usize * self.n..(i as usize + 1) * self.n]
    }

    /// Mutable row view.
    #[inline]
    pub fn row_mut(&mut self, i: u32) -> &mut [Weight] {
        &mut self.d[i as usize * self.n..(i as usize + 1) * self.n]
    }

    /// Checks symmetry (used by tests; undirected distances are symmetric).
    pub fn is_symmetric(&self) -> bool {
        (0..self.n).all(|i| (i..self.n).all(|j| self.d[i * self.n + j] == self.d[j * self.n + i]))
    }

    /// Number of finite entries (reachable pairs, including the diagonal).
    pub fn finite_entries(&self) -> usize {
        self.d.iter().filter(|&&w| w < INF).count()
    }

    /// Bytes this matrix actually occupies.
    pub fn bytes(&self) -> usize {
        self.d.len() * std::mem::size_of::<Weight>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_zero_diagonal_inf_elsewhere() {
        let m = DistMatrix::new(3);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.get(1, 1), 0);
        assert_eq!(m.get(0, 2), INF);
        assert_eq!(m.finite_entries(), 3);
    }

    #[test]
    fn set_sym_mirrors() {
        let mut m = DistMatrix::new(4);
        m.set_sym(1, 3, 42);
        assert_eq!(m.get(1, 3), 42);
        assert_eq!(m.get(3, 1), 42);
        assert!(m.is_symmetric());
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![0, 5, 9], vec![5, 0, 4], vec![9, 4, 0]];
        let m = DistMatrix::from_rows(rows.clone());
        for i in 0..3u32 {
            assert_eq!(m.row(i), &rows[i as usize][..]);
        }
        assert!(m.is_symmetric());
    }

    #[test]
    fn asymmetry_is_detected() {
        let mut m = DistMatrix::new(2);
        m.set(0, 1, 7);
        assert!(!m.is_symmetric());
    }

    #[test]
    fn bytes_accounts_full_square() {
        let m = DistMatrix::new(10);
        assert_eq!(m.bytes(), 100 * 8);
    }
}
