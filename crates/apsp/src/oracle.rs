//! The general-graph APSP pipeline and distance oracle (paper §2.2–§2.3).
//!
//! Large sparse graphs are rarely biconnected, so the paper splits the
//! input into biconnected components, solves APSP inside each block
//! (with or without ear reduction — the "without" configuration *is* the
//! Banerjee et al. baseline of Figure 2), and stitches blocks through the
//! block-cut tree:
//!
//! * per-block tables `A_i` hold within-block distances — exact global
//!   distances, because a shortest path between two vertices of a block
//!   never leaves it (it would have to re-enter through the same
//!   articulation point);
//! * the `a × a` articulation-point table `A` holds distances between all
//!   articulation points, computed by Dijkstra over the *AP graph* (APs
//!   connected within each block by within-block distances);
//! * a query `d(u,v)` across blocks resolves its gateway articulation
//!   points with block-cut-tree LCA routing and sums
//!   `d(u,a₁) + A[a₁,a₂] + d(a₂,v)`.
//!
//! Storage is `O(a² + Σᵢ nᵢ²)` instead of `O(n²)` — the paper's Table 1
//! "Our's Memory" vs "Max Memory" columns, reproduced by [`OracleStats`].

use std::sync::Arc;

use ear_decomp::block_cut::{BlockCutTree, Route};
use ear_decomp::plan::DecompPlan;
use ear_graph::{
    dist_add, lane_batches, with_engine, with_multi_engine, CsrGraph, CsrView, SsspMode, VertexId,
    Weight, INF, LANES, MAX_BATCH_VERTICES, MIN_BATCH_VERTICES,
};
use ear_hetero::{ExecutionReport, HeteroExecutor, RunOutput, WorkCounters};

use crate::matrix::DistMatrix;

/// How each biconnected component is solved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApspMethod {
    /// The paper's approach: ear-decomposition reduction first.
    Ear,
    /// The Banerjee et al. baseline: plain all-sources Dijkstra per block.
    Plain,
}

/// Structural and memory statistics — the columns of the paper's Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleStats {
    /// `|V|`.
    pub n: usize,
    /// `|E|`.
    pub m: usize,
    /// Number of biconnected components.
    pub n_bccs: usize,
    /// Edges in the largest component, as a fraction of `|E|`.
    pub largest_bcc_edge_share: f64,
    /// Degree-2 vertices removed by preprocessing (all blocks), as stored.
    pub removed_vertices: usize,
    /// Articulation-point count `a`.
    pub articulation_points: usize,
    /// Stored table entries: `a² + Σ nᵢ²`.
    pub table_entries: u64,
    /// Entries a flat `n × n` table would need.
    pub max_entries: u64,
}

impl OracleStats {
    /// Fraction of vertices removed in preprocessing (Table 1 column
    /// "Nodes Removed (% |V|)").
    pub fn removed_share(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.removed_vertices as f64 / self.n as f64
        }
    }

    /// Paper-style memory in bytes: 4-byte entries, as the published MB
    /// figures imply (float distance tables).
    pub fn memory_bytes_f32(&self) -> u64 {
        self.table_entries * 4
    }

    /// Paper-style upper bound (`n²` 4-byte entries).
    pub fn max_memory_bytes_f32(&self) -> u64 {
        self.max_entries * 4
    }
}

/// One block's AP-pair edge list `(ap_i, ap_j, d)` feeding the AP-graph
/// Dijkstra, `Arc`-shared between an oracle and its warm refreshes.
pub(crate) type ApSegment = Arc<Vec<(u32, u32, Weight)>>;

/// The queryable distance oracle.
///
/// Per-block tables sit behind [`Arc`] so an incremental
/// [`DistanceOracle::recustomized`] refresh can share the tables of clean
/// blocks with its parent oracle instead of recomputing (or copying) them.
#[derive(Debug)]
pub struct DistanceOracle {
    plan: Arc<DecompPlan>,
    method: ApspMethod,
    sssp: SsspMode,
    tables: Vec<Arc<DistMatrix>>,
    ap_table: Arc<DistMatrix>,
    /// Per-block AP-pair edge lists feeding the AP-graph Dijkstra, cached
    /// so a refresh recollects only dirty blocks' segments.
    ap_segments: Vec<ApSegment>,
    stats: OracleStats,
    /// Executor report of the per-block processing phases (II + III).
    pub processing: ExecutionReport,
    /// Executor report of the articulation-point table construction.
    pub ap_phase: ExecutionReport,
}

impl DistanceOracle {
    /// Structural statistics (Table 1 columns).
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }

    /// The per-block method this oracle was built with.
    pub fn method(&self) -> ApspMethod {
        self.method
    }

    /// The decomposition plan this oracle was built from (shareable with
    /// other pipelines via [`Arc::clone`]).
    pub fn plan(&self) -> &Arc<DecompPlan> {
        &self.plan
    }

    /// Block-cut tree access.
    pub fn block_cut_tree(&self) -> &BlockCutTree {
        self.plan.bct()
    }

    /// Total modelled device time across all build phases.
    pub fn modelled_time_s(&self) -> f64 {
        self.processing.makespan_s + self.ap_phase.makespan_s
    }

    /// Shortest-path distance between any two vertices (`INF` when
    /// disconnected).
    pub fn dist(&self, u: VertexId, v: VertexId) -> Weight {
        if u == v {
            return 0;
        }
        match self.plan.bct().route(u, v) {
            Route::Disconnected => INF,
            Route::SameBlock(b) => self.block_dist(b, u, v),
            Route::ViaAps { a1, a2 } => {
                let d1 = if a1 == u {
                    0
                } else {
                    self.block_dist(self.common_block(u, a1), u, a1)
                };
                let d2 = if a2 == v {
                    0
                } else {
                    self.block_dist(self.common_block(v, a2), v, a2)
                };
                let mid = self.ap_dist(a1, a2);
                dist_add(d1, dist_add(mid, d2))
            }
        }
    }

    /// The per-block distance tables, indexed by block id. Shared storage:
    /// the query engine's fused arena packs from these.
    pub fn block_tables(&self) -> &[Arc<DistMatrix>] {
        &self.tables
    }

    /// The `a × a` articulation-point distance table.
    pub fn ap_table(&self) -> &Arc<DistMatrix> {
        &self.ap_table
    }

    /// Distance between two articulation points from the `a × a` table.
    pub fn ap_dist(&self, a1: VertexId, a2: VertexId) -> Weight {
        let bct = self.plan.bct();
        let i = bct.ap_index[a1 as usize];
        let j = bct.ap_index[a2 as usize];
        debug_assert!(i != u32::MAX && j != u32::MAX);
        self.ap_table.get(i, j)
    }

    /// Reconstructs an actual shortest path `u → v` as a vertex sequence
    /// (inclusive of both endpoints), or `None` when disconnected.
    ///
    /// This is the **legacy baseline** realization: greedy descent on the
    /// distance function — from `x`, some neighbor `y` always satisfies
    /// `w(x,y) + d(y,v) = d(x,v)` (ties break to the smallest edge id, so
    /// the path is deterministic) — with every `d(·,v)` answered by a full
    /// [`Self::dist`] query, i.e. an LCA route plus table reads per
    /// incident edge per hop. [`crate::QueryEngine::path`] walks the same
    /// descent over precomputed gateway records and the fused flat tables
    /// (bit-identical output, the differential suite holds it to that) and
    /// is the realization servers should call.
    pub fn path(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
        if self.dist(u, v) >= INF {
            return None;
        }
        let mut path = vec![u];
        let mut x = u;
        let mut guard = g.n() + 1;
        while x != v {
            let dx = self.dist(x, v);
            let mut next: Option<(VertexId, ear_graph::EdgeId)> = None;
            for &(y, e) in g.neighbors(x) {
                if y == x {
                    continue;
                }
                if dist_add(g.weight(e), self.dist(y, v)) == dx && next.is_none_or(|(_, be)| e < be)
                {
                    next = Some((y, e));
                }
            }
            let (y, _) = next.expect("finite distance must have a tight edge");
            path.push(y);
            x = y;
            guard -= 1;
            assert!(guard > 0, "path reconstruction looped");
        }
        Some(path)
    }

    /// Materialises the full `n × n` matrix (tests / small graphs only).
    pub fn materialize(&self) -> DistMatrix {
        let n = self.stats.n;
        let mut m = DistMatrix::new(n);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                m.set(u, v, self.dist(u, v));
            }
        }
        m
    }

    /// Incrementally refreshes the oracle for a recustomized plan: only the
    /// tables of `plan`'s **dirty blocks** (see
    /// [`DecompPlan::dirty_blocks`]) are recomputed — phases II and III run
    /// on exactly those blocks — while every clean block's table is shared
    /// with `self` via [`Arc::clone`]. The articulation-point table is
    /// rebuilt whenever any block is dirty (a changed within-block distance
    /// can reroute AP-to-AP paths globally); a no-op recustomization shares
    /// it too and runs nothing.
    ///
    /// The result is bit-identical to a cold
    /// [`build_oracle_with_plan_mode`] on `plan` — the differential suite
    /// holds it to that — at a cost proportional to the dirty blocks'
    /// share of the graph, not the graph size.
    ///
    /// # Panics
    /// Panics unless `plan` shares this oracle's plan topology (i.e. it
    /// came from [`DecompPlan::recustomized`] on the same decomposition).
    pub fn recustomized(&self, plan: Arc<DecompPlan>, exec: &HeteroExecutor) -> DistanceOracle {
        assert!(
            self.plan.shares_topology(&plan),
            "recustomized requires a plan sharing this oracle's topology \
             (build it with DecompPlan::recustomized)"
        );
        let dirty = plan.dirty_blocks().to_vec();
        let _span = ear_obs::span_with("apsp.refresh", dirty.len() as u64);

        let (fresh, processing) = compute_block_tables(&plan, exec, self.method, self.sssp, &dirty);
        let mut tables = self.tables.clone();
        for (&b, t) in dirty.iter().zip(fresh) {
            tables[b as usize] = Arc::new(t);
        }

        // Only dirty blocks' AP-pair segments need recollecting; clean
        // blocks' within-block AP distances are unchanged by construction.
        let mut ap_segments = self.ap_segments.clone();
        for &b in &dirty {
            ap_segments[b as usize] = Arc::new(ap_segment(&plan, b, &tables[b as usize]));
        }

        let (ap_table, ap_phase) = if dirty.is_empty() {
            (Arc::clone(&self.ap_table), processing.clone())
        } else {
            let (t, r) = compute_ap_table(&plan, exec, self.sssp, &ap_segments);
            (Arc::new(t), r)
        };

        if ear_obs::is_enabled() {
            ear_obs::counter_add("apsp.refreshes", 1);
            ear_obs::counter_add("apsp.refresh.dirty_blocks", dirty.len() as u64);
        }

        DistanceOracle {
            plan,
            method: self.method,
            sssp: self.sssp,
            tables,
            ap_table,
            ap_segments,
            stats: self.stats.clone(),
            processing,
            ap_phase,
        }
    }

    fn block_dist(&self, block: u32, u: VertexId, v: VertexId) -> Weight {
        let (Some(lu), Some(lv)) = (self.plan.local(block, u), self.plan.local(block, v)) else {
            return INF;
        };
        self.tables[block as usize].get(lu, lv)
    }

    /// A block containing both `x` (any vertex) and articulation point `a`.
    /// For the routing results this always exists: `a` is the gateway of
    /// `x`'s own block.
    fn common_block(&self, x: VertexId, a: VertexId) -> u32 {
        let b = self.plan.bct().vertex_block[x as usize];
        debug_assert_ne!(b, u32::MAX);
        if self.plan.local(b, a).is_some() {
            return b;
        }
        // `x` is itself an articulation point whose stored block does not
        // contain `a`: scan x's own adjacent blocks (the precomputed
        // AP→blocks index) for one holding `a` — O(deg(x)) instead of the
        // old O(n_blocks) all-blocks fallback.
        self.plan
            .bct()
            .blocks_of_ap(x)
            .iter()
            .copied()
            .find(|&blk| self.plan.local(blk, a).is_some())
            .expect("routing produced a non-adjacent gateway")
    }
}

/// Builds the oracle: BCC split, per-block APSP (`method` decides whether
/// ear reduction runs first), articulation-point table, routing structure.
///
/// ```
/// use ear_apsp::{build_oracle, ApspMethod};
/// use ear_graph::CsrGraph;
/// use ear_hetero::HeteroExecutor;
/// // Two triangles sharing vertex 2 (an articulation point).
/// let g = CsrGraph::from_edges(5, &[
///     (0, 1, 1), (1, 2, 2), (2, 0, 3),
///     (2, 3, 4), (3, 4, 5), (4, 2, 6),
/// ]);
/// let oracle = build_oracle(&g, &HeteroExecutor::cpu_gpu(), ApspMethod::Ear);
/// assert_eq!(oracle.dist(0, 3), 1 + 2 + 4); // 0-1-2-3
/// assert_eq!(oracle.stats().articulation_points, 1);
/// ```
pub fn build_oracle(g: &CsrGraph, exec: &HeteroExecutor, method: ApspMethod) -> DistanceOracle {
    build_oracle_with_plan(Arc::new(DecompPlan::build(g)), exec, method)
}

/// Runs every SSSP phase of `f` in lane batches when `sssp` is
/// [`SsspMode::Batched`], one scalar run per source otherwise. `total`
/// sources are consumed in order; `f` receives `(start, &sources)` per
/// workunit and must return one distance row per source plus summed
/// counters.
///
/// Batched mode applies the per-block size heuristic: a block narrower
/// than [`MIN_BATCH_VERTICES`] cannot fill a lane batch, and a scalar run
/// on it is cheap enough that the per-batch dispatch alone would cost a
/// double-digit percentage; a block wider than [`MAX_BATCH_VERTICES`]
/// makes the lane engines' aggregate scratch outgrow the cache a single
/// pooled engine stays warm in. Both get scalar-shaped units. The sweep
/// runs every vertex as a source, so `total` *is* the block's vertex
/// count and doubles as the size check.
pub(crate) fn sssp_units(total: u32, sssp: SsspMode) -> Vec<(u32, u32)> {
    match sssp {
        SsspMode::Batched
            if (MIN_BATCH_VERTICES..=MAX_BATCH_VERTICES).contains(&(total as usize)) =>
        {
            lane_batches(total).collect()
        }
        _ => (0..total).map(|s| (s, 1)).collect(),
    }
}

/// One Phase-II / AP-phase workunit: all sources `start..start + len` of
/// `target`, through the pooled lane engine in batched mode or one pooled
/// scalar run per source otherwise. Single-source units — scalar mode,
/// blocks outside the [`MIN_BATCH_VERTICES`]..=[`MAX_BATCH_VERTICES`]
/// band, and `len == 1` batch tails — take the scalar engine directly:
/// the lane engine would only delegate to it anyway, paying its batch
/// dispatch for nothing.
pub(crate) fn sssp_unit_rows(
    target: CsrView<'_>,
    start: u32,
    len: u32,
    sssp: SsspMode,
) -> (Vec<Vec<Weight>>, WorkCounters) {
    debug_assert!(len >= 1 && len as usize <= LANES);
    if sssp == SsspMode::Scalar || len == 1 {
        let mut counters = WorkCounters::default();
        let rows = (start..start + len)
            .map(|s| {
                with_engine(|eng| {
                    let stats = eng.run_view(target, s);
                    counters.edges_relaxed += stats.edges_relaxed;
                    counters.vertices_settled += stats.settled;
                    eng.dist_vec()
                })
            })
            .collect();
        return (rows, counters);
    }
    with_multi_engine(|me| {
        let mut sources = [0u32; LANES];
        for (i, s) in sources.iter_mut().enumerate().take(len as usize) {
            *s = start + i as u32;
        }
        me.run_batch_view(target, &sources[..len as usize]);
        let mut counters = WorkCounters::default();
        let rows = (0..len as usize)
            .map(|lane| {
                let stats = me.stats(lane);
                counters.edges_relaxed += stats.edges_relaxed;
                counters.vertices_settled += stats.settled;
                me.dist_vec(lane)
            })
            .collect();
        (rows, counters)
    })
}

/// Builds the oracle from a prebuilt [`DecompPlan`], skipping the BCC
/// split, block extraction and per-block reduction entirely.
///
/// The plan can be shared (`Arc::clone`) with the MCB pipeline,
/// [`crate::ReducedOracle`] and statistics over the same graph — a
/// server-style caller pays the decomposition once per graph, not once per
/// workload. In `Plain` mode the plan's reductions are simply ignored (and
/// [`OracleStats::removed_vertices`] reports zero), so one plan serves both
/// methods.
pub fn build_oracle_with_plan(
    plan: Arc<DecompPlan>,
    exec: &HeteroExecutor,
    method: ApspMethod,
) -> DistanceOracle {
    build_oracle_with_plan_mode(plan, exec, method, SsspMode::from_env())
}

/// [`build_oracle_with_plan`] with an explicit [`SsspMode`]: `Scalar`
/// drives one pooled [`SsspEngine`](ear_graph::SsspEngine) run per
/// workunit (the retained differential baseline); `Batched` feeds each
/// block's sources to the lane engine in [`LANES`]-wide batches, so one
/// CSR edge scan serves up to eight sources. The two modes produce
/// bit-identical oracles — `tests/sssp_multi_differential.rs` enforces it.
pub fn build_oracle_with_plan_mode(
    plan: Arc<DecompPlan>,
    exec: &HeteroExecutor,
    method: ApspMethod,
    sssp: SsspMode,
) -> DistanceOracle {
    let nb = plan.n_blocks();
    let _build_span = ear_obs::span_with("apsp.build", plan.n() as u64);

    let all: Vec<u32> = (0..nb as u32).collect();
    let (fresh, processing) = compute_block_tables(&plan, exec, method, sssp, &all);
    let tables: Vec<Arc<DistMatrix>> = fresh.into_iter().map(Arc::new).collect();

    let ap_segments: Vec<ApSegment> = tables
        .iter()
        .enumerate()
        .map(|(b, t)| Arc::new(ap_segment(&plan, b as u32, t)))
        .collect();
    let (ap_table, ap_phase) = compute_ap_table(&plan, exec, sssp, &ap_segments);

    // Statistics.
    let a = plan.bct().ap_count();
    let removed = match method {
        ApspMethod::Ear => plan.removed_vertices(),
        ApspMethod::Plain => 0,
    };
    let table_entries = (a as u64) * (a as u64)
        + plan
            .blocks()
            .iter()
            .map(|bp| (bp.n() as u64).pow(2))
            .sum::<u64>();
    let stats = OracleStats {
        n: plan.n(),
        m: plan.m(),
        n_bccs: nb,
        largest_bcc_edge_share: if plan.m() == 0 {
            0.0
        } else {
            plan.largest_block_edges() as f64 / plan.m() as f64
        },
        removed_vertices: removed,
        articulation_points: a,
        table_entries,
        max_entries: (plan.n() as u64).pow(2),
    };
    if ear_obs::is_enabled() {
        ear_obs::counter_add("apsp.oracles", 1);
        ear_obs::counter_add("apsp.table_entries", table_entries);
        ear_obs::counter_add("apsp.removed_vertices", removed as u64);
    }

    DistanceOracle {
        plan,
        method,
        sssp,
        tables,
        ap_table: Arc::new(ap_table),
        ap_segments,
        stats,
        processing,
        ap_phase,
    }
}

/// Phases II + III for the given `blocks` only: per-block (reduced)
/// all-sources SSSP, then — in `Ear` mode — the §2.1.3 extension to the
/// full block. Returns one table per requested block, aligned with
/// `blocks`, plus the merged executor report. The cold build passes every
/// block; an incremental refresh passes just the dirty ones.
fn compute_block_tables(
    plan: &Arc<DecompPlan>,
    exec: &HeteroExecutor,
    method: ApspMethod,
    sssp: SsspMode,
    blocks: &[u32],
) -> (Vec<DistMatrix>, ExecutionReport) {
    // Ear reduction requires simple blocks; a multigraph input's parallel
    // bundles fall back to plain processing for that block. The plan's
    // per-block `reduction` accessor is the single guard.
    let red = |b: u32| match method {
        ApspMethod::Ear => plan.reduction(b),
        ApspMethod::Plain => None,
    };
    // Position of each requested block in the output vector.
    let mut pos = vec![usize::MAX; plan.n_blocks()];
    for (i, &b) in blocks.iter().enumerate() {
        pos[b as usize] = i;
    }

    // Phase II: workunits are (block, source-range) — one source each in
    // scalar mode, a lane batch of up to LANES consecutive sources in
    // batched mode, so the executor sees fewer, larger units.
    let phase2_span = ear_obs::span("apsp.phase2");
    let units: Vec<(u32, u32, u32)> = blocks
        .iter()
        .flat_map(|&b| {
            let srcs = match red(b) {
                Some(r) => r.reduced.n(),
                None => plan.block(b).n(),
            };
            sssp_units(srcs as u32, sssp)
                .into_iter()
                .map(move |(start, len)| (b, start, len))
        })
        .collect();
    let RunOutput {
        results: rows,
        report: phase2,
    } = exec.run(
        units.clone(),
        |&(b, _, len)| {
            let per_source = match red(b) {
                Some(r) => r.reduced.m() as u64 + 1,
                None => plan.block(b).m() as u64 + 1,
            };
            per_source * len as u64
        },
        |&(b, start, len)| {
            let target = match red(b) {
                Some(r) => r.reduced.view(),
                None => plan.block_graph(b),
            };
            // Pooled engines: per-source scratch is reused across
            // workunits handled by the same worker thread.
            sssp_unit_rows(target, start, len, sssp)
        },
    );
    // Assemble per-block reduced (or full) matrices.
    let mut srs: Vec<DistMatrix> = blocks
        .iter()
        .map(|&b| match red(b) {
            Some(r) => DistMatrix::new(r.reduced.n()),
            None => DistMatrix::new(plan.block(b).n()),
        })
        .collect();
    for ((b, start, _), unit_rows) in units.into_iter().zip(rows) {
        for (i, row) in unit_rows.into_iter().enumerate() {
            let s = start + i as u32;
            for (t, w) in row.into_iter().enumerate() {
                srs[pos[b as usize]].set(s, t as u32, w);
            }
        }
    }
    drop(phase2_span);

    // Phase III (Ear only): extend each block's reduced matrix to the whole
    // block; workunits are (block, vertex) rows.
    let phase3_span = ear_obs::span("apsp.phase3");
    let (tables, phase3) = match method {
        ApspMethod::Plain => (srs, None),
        ApspMethod::Ear => {
            let units: Vec<(u32, u32)> = blocks
                .iter()
                .flat_map(|&b| (0..plan.block(b).n() as u32).map(move |x| (b, x)))
                .collect();
            let RunOutput {
                results: rows,
                report,
            } = exec.run(
                units.clone(),
                |&(b, _)| plan.block(b).n() as u64,
                |&(b, x)| match red(b) {
                    Some(r) => {
                        crate::ear::extend_row(plan.block(b).n(), r, &srs[pos[b as usize]], x)
                    }
                    // Non-simple block processed plainly: its reduced matrix
                    // is already the full per-block table.
                    None => (srs[pos[b as usize]].row(x).to_vec(), Default::default()),
                },
            );
            let mut tables: Vec<DistMatrix> = blocks
                .iter()
                .map(|&b| DistMatrix::new(plan.block(b).n()))
                .collect();
            for ((b, x), row) in units.into_iter().zip(rows) {
                for (t, w) in row.into_iter().enumerate() {
                    tables[pos[b as usize]].set(x, t as u32, w);
                }
            }
            (tables, Some(report))
        }
    };
    drop(phase3_span);

    let processing = match phase3 {
        Some(p3) => merge_reports(phase2, p3),
        None => phase2,
    };
    (tables, processing)
}

/// Block `b`'s contribution to the AP graph: one `(ap_index, ap_index,
/// within-block distance)` edge per finite AP pair of the block, in the
/// deterministic `i < j` order the cold build has always used.
fn ap_segment(plan: &DecompPlan, b: u32, table: &DistMatrix) -> Vec<(u32, u32, Weight)> {
    let bct = plan.bct();
    let aps = &bct.block_aps[b as usize];
    let mut seg = Vec::new();
    for i in 0..aps.len() {
        for j in i + 1..aps.len() {
            let (li, lj) = (
                plan.local(b, aps[i]).unwrap(),
                plan.local(b, aps[j]).unwrap(),
            );
            let w = table.get(li, lj);
            if w < INF {
                seg.push((
                    bct.ap_index[aps[i] as usize],
                    bct.ap_index[aps[j] as usize],
                    w,
                ));
            }
        }
    }
    seg
}

/// Stage 2 post-processing: the AP graph (APs connected within each block
/// by within-block distances) and its all-sources Dijkstra. Consumes
/// prebuilt per-block edge segments — a refresh recomputes only dirty
/// blocks' segments and reuses the rest, so the O(Σ aᵢ²) recollection no
/// longer reruns in full on every recustomization. Concatenation in block
/// id order keeps the AP graph's edge ids (and thus the Dijkstra results)
/// bit-identical to a cold build.
fn compute_ap_table(
    plan: &Arc<DecompPlan>,
    exec: &HeteroExecutor,
    sssp: SsspMode,
    segments: &[ApSegment],
) -> (DistMatrix, ExecutionReport) {
    let _ap_span = ear_obs::span("apsp.ap_table");
    let a = plan.bct().ap_count();
    let ap_edges: Vec<(u32, u32, Weight)> = segments
        .iter()
        .flat_map(|seg| seg.iter().copied())
        .collect();
    let ap_graph = CsrGraph::from_edges(a, &ap_edges);
    let RunOutput {
        results: ap_unit_rows,
        report: ap_phase,
    } = exec.run(
        sssp_units(a as u32, sssp),
        |&(_, len)| (ap_graph.m() as u64 + 1) * len as u64,
        |&(start, len)| sssp_unit_rows(ap_graph.view(), start, len, sssp),
    );
    let ap_table = DistMatrix::from_rows(ap_unit_rows.into_iter().flatten().collect());
    (ap_table, ap_phase)
}

fn merge_reports(mut a: ExecutionReport, b: ExecutionReport) -> ExecutionReport {
    for (da, dbr) in a.devices.iter_mut().zip(&b.devices) {
        da.units += dbr.units;
        da.batches += dbr.batches;
        da.busy_s += dbr.busy_s;
        da.counters.merge(&dbr.counters);
    }
    a.makespan_s += b.makespan_s;
    a.wall_s += b.wall_s;
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::floyd_warshall;

    fn check_both_methods(g: &CsrGraph) -> (DistanceOracle, DistanceOracle) {
        let exec = HeteroExecutor::sequential();
        let ear = build_oracle(g, &exec, ApspMethod::Ear);
        let plain = build_oracle(g, &exec, ApspMethod::Plain);
        let oracle = floyd_warshall(g);
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                assert_eq!(ear.dist(u, v), oracle.get(u, v), "ear ({u},{v})");
                assert_eq!(plain.dist(u, v), oracle.get(u, v), "plain ({u},{v})");
            }
        }
        (ear, plain)
    }

    /// triangle — bridge — square — pendant
    fn mixed_graph() -> CsrGraph {
        CsrGraph::from_edges(
            8,
            &[
                (0, 1, 2),
                (1, 2, 3),
                (2, 0, 4),
                (2, 3, 5),
                (3, 4, 1),
                (4, 5, 2),
                (5, 6, 3),
                (6, 3, 4),
                (5, 7, 9),
            ],
        )
    }

    #[test]
    fn mixed_graph_both_methods_match_oracle() {
        let g = mixed_graph();
        let (ear, plain) = check_both_methods(&g);
        assert_eq!(ear.stats().n_bccs, plain.stats().n_bccs);
        assert!(ear.stats().n_bccs >= 3);
        // The square 3-4-5-6 contains degree-2 vertices for ear to remove.
        assert!(ear.stats().removed_vertices > 0);
        assert_eq!(plain.stats().removed_vertices, 0);
    }

    #[test]
    fn memory_stats_beat_flat_table_on_blocky_graphs() {
        let g = mixed_graph();
        let (ear, _) = check_both_methods(&g);
        assert!(ear.stats().table_entries < ear.stats().max_entries);
        assert!(ear.stats().memory_bytes_f32() < ear.stats().max_memory_bytes_f32());
    }

    #[test]
    fn biconnected_graph_is_one_block() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 5)]);
        let (ear, _) = check_both_methods(&g);
        assert_eq!(ear.stats().n_bccs, 1);
        assert_eq!(ear.stats().articulation_points, 0);
    }

    #[test]
    fn disconnected_components_are_inf_apart() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (3, 4, 1), (4, 5, 2)]);
        let (ear, _) = check_both_methods(&g);
        assert_eq!(ear.dist(0, 3), INF);
        assert_eq!(ear.dist(0, 0), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 7)]);
        let (ear, _) = check_both_methods(&g);
        assert_eq!(ear.dist(2, 3), INF);
        assert_eq!(ear.dist(2, 2), 0);
        assert_eq!(ear.dist(0, 1), 7);
    }

    #[test]
    fn long_bridge_chain_between_blocks() {
        // Two triangles joined by a path of bridges; every interior path
        // vertex is an articulation point.
        let g = CsrGraph::from_edges(
            9,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 2),
                (3, 4, 2),
                (4, 5, 2),
                (5, 6, 1),
                (6, 7, 1),
                (7, 5, 1),
                (0, 8, 4),
            ],
        );
        check_both_methods(&g);
    }

    #[test]
    fn star_of_triangles() {
        // Hub vertex shared by three triangles: one AP, three blocks.
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 0, 3),
                (0, 3, 1),
                (3, 4, 2),
                (4, 0, 3),
                (0, 5, 1),
                (5, 6, 2),
                (6, 0, 3),
            ],
        );
        let (ear, _) = check_both_methods(&g);
        assert_eq!(ear.stats().articulation_points, 1);
        assert_eq!(ear.stats().n_bccs, 3);
    }

    #[test]
    fn materialize_matches_queries() {
        let g = mixed_graph();
        let exec = HeteroExecutor::sequential();
        let o = build_oracle(&g, &exec, ApspMethod::Ear);
        let m = o.materialize();
        assert!(m.is_symmetric());
        assert_eq!(m.get(0, 7), o.dist(0, 7));
    }

    #[test]
    fn path_reconstruction_is_tight() {
        let g = mixed_graph();
        let exec = HeteroExecutor::sequential();
        let o = build_oracle(&g, &exec, ApspMethod::Ear);
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                let p = o.path(&g, u, v).unwrap();
                assert_eq!(p[0], u);
                assert_eq!(*p.last().unwrap(), v);
                // Sum the walked edges.
                let mut total = 0;
                for w in p.windows(2) {
                    let best = g
                        .neighbors(w[0])
                        .iter()
                        .filter(|&&(y, _)| y == w[1])
                        .map(|&(_, e)| g.weight(e))
                        .min()
                        .expect("consecutive path vertices must be adjacent");
                    total += best;
                }
                assert_eq!(total, o.dist(u, v), "path ({u},{v})");
            }
        }
    }

    #[test]
    fn path_is_none_across_components() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let exec = HeteroExecutor::sequential();
        let o = build_oracle(&g, &exec, ApspMethod::Ear);
        assert!(o.path(&g, 0, 2).is_none());
        assert_eq!(o.path(&g, 0, 0), Some(vec![0]));
    }

    #[test]
    fn hetero_executor_matches_sequential() {
        let g = mixed_graph();
        let a = build_oracle(&g, &HeteroExecutor::sequential(), ApspMethod::Ear);
        let b = build_oracle(&g, &HeteroExecutor::cpu_gpu(), ApspMethod::Ear);
        assert_eq!(a.materialize(), b.materialize());
    }

    #[test]
    fn recustomized_oracle_matches_cold_build() {
        let g = mixed_graph();
        let exec = HeteroExecutor::sequential();
        let plan = Arc::new(DecompPlan::build(&g));
        for method in [ApspMethod::Ear, ApspMethod::Plain] {
            let oracle = build_oracle_with_plan(Arc::clone(&plan), &exec, method);
            let mut w: Vec<Weight> = g.edges().iter().map(|e| e.w).collect();
            w[0] = 50; // triangle block
            w[4] = 7; // square block
            let warm_plan = Arc::new(plan.recustomized(&w));
            let warm = oracle.recustomized(Arc::clone(&warm_plan), &exec);
            let cold = build_oracle(&g.reweighted(&w), &exec, method);
            assert_eq!(warm.materialize(), cold.materialize());
            assert_eq!(warm.stats(), cold.stats());
            // The refresh only reran the dirty blocks.
            assert_eq!(warm.processing.total_units(), {
                let (_, rep) = compute_block_tables(
                    &warm_plan,
                    &exec,
                    method,
                    warm.sssp,
                    warm_plan.dirty_blocks(),
                );
                rep.total_units()
            });
        }
    }

    #[test]
    fn noop_refresh_shares_every_table() {
        let g = mixed_graph();
        let exec = HeteroExecutor::sequential();
        let plan = Arc::new(DecompPlan::build(&g));
        let oracle = build_oracle_with_plan(Arc::clone(&plan), &exec, ApspMethod::Ear);
        let w: Vec<Weight> = g.edges().iter().map(|e| e.w).collect();
        let warm = oracle.recustomized(Arc::new(plan.recustomized(&w)), &exec);
        for (a, b) in oracle.tables.iter().zip(&warm.tables) {
            assert!(Arc::ptr_eq(a, b));
        }
        assert!(Arc::ptr_eq(&oracle.ap_table, &warm.ap_table));
        for (a, b) in oracle.ap_segments.iter().zip(&warm.ap_segments) {
            assert!(Arc::ptr_eq(a, b));
        }
        assert_eq!(warm.processing.total_units(), 0);
    }

    #[test]
    fn refresh_recollects_only_dirty_ap_segments() {
        let g = mixed_graph();
        let exec = HeteroExecutor::sequential();
        let plan = Arc::new(DecompPlan::build(&g));
        let oracle = build_oracle_with_plan(Arc::clone(&plan), &exec, ApspMethod::Ear);
        let mut w: Vec<Weight> = g.edges().iter().map(|e| e.w).collect();
        w[0] = 50; // dirties the triangle block only
        let warm_plan = Arc::new(plan.recustomized(&w));
        let dirty = warm_plan.dirty_blocks().to_vec();
        let warm = oracle.recustomized(warm_plan, &exec);
        for b in 0..plan.n_blocks() {
            let shared = Arc::ptr_eq(&oracle.ap_segments[b], &warm.ap_segments[b]);
            assert_eq!(shared, !dirty.contains(&(b as u32)), "block {b}");
        }
        // The rebuilt AP table still matches a cold one bit-for-bit.
        let cold = build_oracle(&g.reweighted(&w), &exec, ApspMethod::Ear);
        assert_eq!(*warm.ap_table, *cold.ap_table);
    }

    #[test]
    #[should_panic(expected = "sharing this oracle's topology")]
    fn refresh_rejects_foreign_plan() {
        let g = mixed_graph();
        let exec = HeteroExecutor::sequential();
        let oracle = build_oracle(&g, &exec, ApspMethod::Ear);
        let foreign = Arc::new(DecompPlan::build(&g));
        let _ = oracle.recustomized(foreign, &exec);
    }

    #[test]
    fn ear_phase2_does_less_work_than_plain() {
        // A graph rich in degree-2 chains.
        let mut edges = Vec::new();
        // ring of 30 with two hubs
        for i in 0..30u32 {
            edges.push((i, (i + 1) % 30, 1u64));
        }
        edges.push((0, 15, 1));
        edges.push((5, 20, 1));
        let g = CsrGraph::from_edges(30, &edges);
        let exec = HeteroExecutor::sequential();
        let ear = build_oracle(&g, &exec, ApspMethod::Ear);
        let plain = build_oracle(&g, &exec, ApspMethod::Plain);
        let e_relax = ear.processing.total_counters().edges_relaxed;
        let p_relax = plain.processing.total_counters().edges_relaxed;
        assert!(e_relax < p_relax, "ear {e_relax} vs plain {p_relax}");
        check_both_methods(&g);
    }
}
