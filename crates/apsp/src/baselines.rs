//! Reference APSP implementations.
//!
//! [`plain_apsp`] is the straightforward parallel Dijkstra-from-every-vertex
//! that the paper's Phase II uses on the reduced graph — here applied to the
//! whole graph, it doubles as the "no decomposition at all" baseline.
//! [`floyd_warshall`] is the exact `O(n³)` oracle every other implementation
//! is tested against on small graphs.

use ear_graph::{with_engine, CsrGraph, Weight, INF};
use ear_hetero::{HeteroExecutor, RunOutput, WorkCounters};

use crate::matrix::DistMatrix;

/// All-sources Dijkstra through the heterogeneous executor; one workunit
/// per source vertex, exactly like the paper's Phase II (`{cpu,gpu}`).
pub fn plain_apsp(
    g: &CsrGraph,
    exec: &HeteroExecutor,
) -> (DistMatrix, ear_hetero::ExecutionReport) {
    let sources: Vec<u32> = (0..g.n() as u32).collect();
    let m_hint = g.m() as u64 + 1;
    let RunOutput { results, report } = exec.run(
        sources,
        |_| m_hint,
        |&s| {
            with_engine(|eng| {
                let stats = eng.run(g, s);
                let counters = WorkCounters {
                    edges_relaxed: stats.edges_relaxed,
                    vertices_settled: stats.settled,
                    ..Default::default()
                };
                (eng.dist_vec(), counters)
            })
        },
    );
    (DistMatrix::from_rows(results), report)
}

/// Exact Floyd–Warshall, `k`-outer loop with row streaming. Parallel edges
/// and self-loops are handled by the initialisation (min over bundle, loops
/// ignored). Intended as a correctness oracle for graphs up to a few
/// thousand vertices.
pub fn floyd_warshall(g: &CsrGraph) -> DistMatrix {
    let n = g.n();
    let mut m = DistMatrix::new(n);
    for e in g.edges() {
        if e.is_self_loop() {
            continue;
        }
        if e.w < m.get(e.u, e.v) {
            m.set_sym(e.u, e.v, e.w);
        }
    }
    for k in 0..n as u32 {
        let row_k = m.row(k).to_vec();
        for i in 0..n as u32 {
            let dik = m.get(i, k);
            if dik >= INF {
                continue;
            }
            let row_i = m.row_mut(i);
            for (j, &dkj) in row_k.iter().enumerate() {
                if dkj >= INF {
                    continue;
                }
                let via: Weight = dik + dkj;
                if via < row_i[j] {
                    row_i[j] = via;
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_square() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (3, 0, 7), (0, 2, 10)])
    }

    #[test]
    fn floyd_warshall_matches_hand_computed() {
        let m = floyd_warshall(&weighted_square());
        assert_eq!(m.get(0, 2), 5); // 0-1-2
        assert_eq!(m.get(0, 3), 6); // 0-1-2-3
        assert_eq!(m.get(1, 3), 4); // 1-2-3
        assert!(m.is_symmetric());
    }

    #[test]
    fn plain_apsp_matches_floyd_warshall() {
        let g = weighted_square();
        let (m, report) = plain_apsp(&g, &HeteroExecutor::sequential());
        assert_eq!(m, floyd_warshall(&g));
        assert_eq!(report.total_units(), 4);
        assert!(report.total_counters().edges_relaxed > 0);
    }

    #[test]
    fn disconnected_pairs_are_inf() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let m = floyd_warshall(&g);
        assert_eq!(m.get(0, 2), INF);
        let (m2, _) = plain_apsp(&g, &HeteroExecutor::sequential());
        assert_eq!(m, m2);
    }

    #[test]
    fn multigraph_uses_cheapest_parallel_edge() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 9), (0, 1, 2), (0, 0, 5)]);
        let m = floyd_warshall(&g);
        assert_eq!(m.get(0, 1), 2);
        assert_eq!(m.get(0, 0), 0);
        let (m2, _) = plain_apsp(&g, &HeteroExecutor::sequential());
        assert_eq!(m, m2);
    }

    #[test]
    fn hetero_executor_gives_same_answer() {
        let g = weighted_square();
        let (a, _) = plain_apsp(&g, &HeteroExecutor::sequential());
        let (b, _) = plain_apsp(&g, &HeteroExecutor::cpu_gpu());
        assert_eq!(a, b);
    }
}
