//! Algorithm 1 of the paper: APSP through ear decomposition.
//!
//! Three phases:
//!
//! 1. **Preprocessing** — contract degree-2 chains ([`ear_decomp::reduce`])
//!    into the reduced graph `G^r`.
//! 2. **Processing** — Dijkstra from every vertex of `G^r`, one workunit per
//!    source, scheduled across the heterogeneous devices.
//! 3. **Post-processing** — extend `S^r` to all of `G` with the closed-form
//!    minima of paper §2.1.3: a removed vertex reaches the world only
//!    through its chain anchors `left(x)` / `right(x)`, so
//!    `S[x,v] = min(wt(x,ℓx) + S^r[ℓx,v], wt(x,rx) + S^r[rx,v])` and the
//!    four-way analogue for two removed endpoints, plus the same-chain
//!    direct-path case. Also one workunit per source vertex.
//!
//! The function accepts *any* simple graph (not just biconnected ones):
//! distances saturate at `INF` across connected components, and the reduced
//! graph construction is total (pure cycles keep one representative). The
//! biconnected-components pipeline of [`crate::oracle`] is the memory-frugal
//! way to handle general graphs; using `ear_apsp` directly trades memory
//! (`n²`) for simplicity.

use ear_decomp::reduce::{reduce_graph, ReducedGraph, RemovedInfo};
use ear_graph::{dijkstra_with_stats, dist_add, CsrGraph, VertexId, Weight};
use ear_hetero::{ExecutionReport, HeteroExecutor, RunOutput, WorkCounters};

use crate::matrix::DistMatrix;

/// Result of [`ear_apsp`].
#[derive(Debug)]
pub struct EarApspOutput {
    /// Full distance matrix over the vertices of the input graph.
    pub dist: DistMatrix,
    /// Reduced-graph vertex count (`|V^r|`).
    pub reduced_n: usize,
    /// Reduced-graph edge count (`|E^r|`, multigraph).
    pub reduced_m: usize,
    /// Degree-2 vertices removed by preprocessing.
    pub removed: usize,
    /// Executor report for Phase II (Dijkstra on `G^r`).
    pub processing: ExecutionReport,
    /// Executor report for Phase III (distance extension).
    pub post: ExecutionReport,
}

impl EarApspOutput {
    /// Combined modelled time of both device phases.
    pub fn modelled_time_s(&self) -> f64 {
        self.processing.makespan_s + self.post.makespan_s
    }
}

/// Runs the three-phase ear-decomposition APSP on `g`.
pub fn ear_apsp(g: &CsrGraph, exec: &HeteroExecutor) -> EarApspOutput {
    // Phase I.
    let r = reduce_graph(g.view()).expect("ear_apsp requires a simple graph");
    let nr = r.reduced.n();

    // Phase II: all-sources Dijkstra on G^r.
    let m_hint = r.reduced.m() as u64 + 1;
    let RunOutput {
        results: sr_rows,
        report: processing,
    } = exec.run(
        (0..nr as u32).collect::<Vec<_>>(),
        |_| m_hint,
        |&s| {
            let (dist, stats) = dijkstra_with_stats(&r.reduced, s);
            let counters = WorkCounters {
                edges_relaxed: stats.edges_relaxed,
                vertices_settled: stats.settled,
                ..Default::default()
            };
            (dist, counters)
        },
    );
    let sr = DistMatrix::from_rows(sr_rows);

    // Phase III: one workunit per original vertex (its row of S).
    let n = g.n();
    let RunOutput {
        results: rows,
        report: post,
    } = exec.run(
        (0..n as u32).collect::<Vec<_>>(),
        |_| n as u64,
        |&x| extend_row(n, &r, &sr, x),
    );
    let dist = DistMatrix::from_rows(rows);

    EarApspOutput {
        dist,
        reduced_n: nr,
        reduced_m: r.reduced.m(),
        removed: r.removed_count(),
        processing,
        post,
    }
}

/// Computes the full distance row of `x` in `G` from the reduced matrix
/// (the `UPDATE_DISTANCE(s)` of Algorithm 1), where `n` is the vertex
/// count of `G` — the whole graph never needs to be materialized, so the
/// per-BCC pipeline in [`crate::oracle`] can drive this from zero-copy
/// block views.
pub(crate) fn extend_row(
    n: usize,
    r: &ReducedGraph,
    sr: &DistMatrix,
    x: VertexId,
) -> (Vec<Weight>, WorkCounters) {
    let mut row = vec![0; n];
    let mut combos = 0u64;
    match r.removed_info(x) {
        None => {
            // x survives into G^r: its reduced row answers retained targets
            // directly and removed targets through their two anchors.
            let lx = r.to_reduced[x as usize];
            let sr_row = sr.row(lx);
            for y in 0..n as u32 {
                row[y as usize] = match r.removed_info(y) {
                    None => sr_row[r.to_reduced[y as usize] as usize],
                    Some(iy) => {
                        combos += 2;
                        via_anchors_one_sided(sr_row, r, &iy)
                    }
                };
            }
        }
        Some(ix) => {
            let ll = r.to_reduced[ix.left as usize];
            let lr = r.to_reduced[ix.right as usize];
            let row_l = sr.row(ll);
            let row_r = sr.row(lr);
            for y in 0..n as u32 {
                if y == x {
                    continue; // row[x] already 0
                }
                row[y as usize] = match r.removed_info(y) {
                    None => {
                        combos += 2;
                        let ly = r.to_reduced[y as usize] as usize;
                        dist_add(ix.w_left, row_l[ly]).min(dist_add(ix.w_right, row_r[ly]))
                    }
                    Some(iy) => {
                        combos += 4;
                        let lyl = r.to_reduced[iy.left as usize] as usize;
                        let lyr = r.to_reduced[iy.right as usize] as usize;
                        // The paper's four-way minimum: leave via ℓx or rx,
                        // enter via ℓy or ry.
                        let mut best = dist_add(ix.w_left, dist_add(row_l[lyl], iy.w_left))
                            .min(dist_add(ix.w_left, dist_add(row_l[lyr], iy.w_right)))
                            .min(dist_add(ix.w_right, dist_add(row_r[lyl], iy.w_left)))
                            .min(dist_add(ix.w_right, dist_add(row_r[lyr], iy.w_right)));
                        if ix.chain == iy.chain {
                            // Same ear: the direct sub-chain path never
                            // leaves the ear (paper: "the unique xy-path
                            // along P that does not use ℓx and rx").
                            combos += 1;
                            best = best.min(ix.w_left.abs_diff(iy.w_left));
                        }
                        best
                    }
                };
            }
        }
    }
    let counters = WorkCounters {
        distances_combined: combos,
        ..Default::default()
    };
    (row, counters)
}

/// `S[x,v]` for retained `x` (whose reduced row is `sr_row`) and removed `v`.
#[inline]
fn via_anchors_one_sided(sr_row: &[Weight], r: &ReducedGraph, iy: &RemovedInfo) -> Weight {
    let lyl = r.to_reduced[iy.left as usize] as usize;
    let lyr = r.to_reduced[iy.right as usize] as usize;
    dist_add(sr_row[lyl], iy.w_left).min(dist_add(sr_row[lyr], iy.w_right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::floyd_warshall;

    fn check(g: &CsrGraph) -> EarApspOutput {
        let out = ear_apsp(g, &HeteroExecutor::sequential());
        let oracle = floyd_warshall(g);
        for i in 0..g.n() as u32 {
            for j in 0..g.n() as u32 {
                assert_eq!(
                    out.dist.get(i, j),
                    oracle.get(i, j),
                    "mismatch at ({i},{j})"
                );
            }
        }
        out
    }

    #[test]
    fn theta_graph() {
        // Two chains plus a direct edge between the same anchors.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (0, 2, 10), (0, 3, 3), (3, 2, 4)]);
        let out = check(&g);
        assert_eq!(out.removed, 2);
        assert_eq!(out.reduced_n, 2);
    }

    #[test]
    fn pure_cycle() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4), (4, 0, 5)]);
        let out = check(&g);
        assert_eq!(out.reduced_n, 1);
        assert_eq!(out.removed, 4);
    }

    #[test]
    fn long_single_chain_between_hubs() {
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1, 5),
                (1, 2, 5),
                (2, 3, 5),
                (3, 4, 5),
                (0, 5, 1),
                (5, 4, 1),
                (0, 6, 2),
                (6, 4, 9),
                (0, 7, 1),
                (7, 4, 1),
            ],
        );
        check(&g);
    }

    #[test]
    fn no_degree_two_vertices() {
        let g = CsrGraph::from_edges(
            4,
            &[
                (0, 1, 1),
                (0, 2, 2),
                (0, 3, 3),
                (1, 2, 4),
                (1, 3, 5),
                (2, 3, 6),
            ],
        );
        let out = check(&g);
        assert_eq!(out.removed, 0);
        assert_eq!(out.reduced_n, 4);
    }

    #[test]
    fn disconnected_graph_saturates() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 2),
                (4, 5, 2),
                (5, 3, 2),
            ],
        );
        check(&g);
    }

    #[test]
    fn pendant_chains() {
        // Hub triangle with a dangling path 2-3-4-5.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 2),
                (3, 4, 3),
                (4, 5, 4),
            ],
        );
        let out = check(&g);
        // 3 and 4 are interior of the pendant chain; the triangle's 0 and 1
        // are also degree-2 (contracted into a 2→2 loop chain); 5 (degree 1)
        // and hub 2 stay.
        assert_eq!(out.removed, 4);
        assert_eq!(out.reduced_n, 2);
    }

    #[test]
    fn same_chain_shortcut_vs_around() {
        // Chain 0-1-2-3 between anchors 0,3 with a cheap bypass: going
        // around can beat the direct chain segment.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 10),
                (1, 2, 10),
                (2, 3, 10),
                (0, 3, 1),
                (0, 4, 1),
                (3, 4, 1),
                (0, 5, 1),
                (3, 5, 1),
            ],
        );
        let out = check(&g);
        // d(1,2) must consider 1-0-3-2 = 10 + 1 + 10 = 21 vs direct 10.
        assert_eq!(out.dist.get(1, 2), 10);
        // d(1, 2) with heavier middle: tested via oracle equality anyway.
    }

    #[test]
    fn around_beats_direct_on_same_chain() {
        // Heavy middle edge: direct 1-2 costs 100, around costs 22.
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1, 10),
                (1, 2, 100),
                (2, 3, 10),
                (0, 3, 2),
                (0, 4, 1),
                (3, 4, 1),
            ],
        );
        let out = check(&g);
        assert_eq!(out.dist.get(1, 2), 22); // 1-0 (10) + 0-3 (2) + 3-2 (10)
    }

    #[test]
    fn executor_variants_agree() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 3),
                (1, 2, 4),
                (2, 0, 5),
                (2, 3, 1),
                (3, 4, 2),
                (4, 5, 6),
                (5, 2, 7),
            ],
        );
        let a = ear_apsp(&g, &HeteroExecutor::sequential());
        let b = ear_apsp(&g, &HeteroExecutor::cpu_gpu());
        assert_eq!(a.dist, b.dist);
    }

    #[test]
    fn counters_report_real_reduction() {
        // A cycle with a long tail of degree-2 vertices: the reduced graph
        // is tiny, so Phase II relaxations must be far below plain APSP's.
        let mut edges = vec![];
        for i in 0..20u32 {
            edges.push((i, i + 1, 1u64));
        }
        edges.push((20, 0, 1));
        let g = CsrGraph::from_edges(21, &edges);
        let out = check(&g);
        assert_eq!(out.reduced_n, 1);
        let (_, plain_rep) = crate::baselines::plain_apsp(&g, &HeteroExecutor::sequential());
        assert!(
            out.processing.total_counters().edges_relaxed
                < plain_rep.total_counters().edges_relaxed / 10
        );
    }
}
