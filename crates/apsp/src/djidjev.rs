//! The Djidjev et al. partition-based APSP baseline (paper §2.4.3).
//!
//! Pipeline, following the paper's description:
//!
//! 1. partition the graph into `k` parts (METIS in the original; our
//!    region-growing partitioner here);
//! 2. all-sources Dijkstra *inside* each part;
//! 3. build the **boundary graph**: boundary vertices (endpoints of cut
//!    edges), the cut edges themselves, plus an edge `uv` for every
//!    same-part boundary pair weighted with the within-part distance;
//!    all-sources Dijkstra on it gives exact global boundary-to-boundary
//!    distances (the original recurses here; our boundary graphs are small
//!    enough to solve directly, which only makes the baseline *faster*);
//! 4. combine: a `u → v` path is either within-part or decomposes as
//!    `u →(part) b₁ →(boundary graph) b₂ →(part) v`.
//!
//! Efficient only when the boundary is small — which is why the paper (and
//! we) evaluate it on planar graphs.

use ear_graph::{dist_add, with_engine, CsrGraph, VertexId, Weight, INF};
use ear_hetero::{ExecutionReport, HeteroExecutor, RunOutput, WorkCounters};

use crate::matrix::DistMatrix;
use crate::partition::{partition_graph, Partition};

/// Result of [`djidjev_apsp`].
#[derive(Debug)]
pub struct DjidjevOutput {
    /// Full distance matrix.
    pub dist: DistMatrix,
    /// Number of parts used.
    pub k: usize,
    /// Boundary-graph vertex count.
    pub boundary_n: usize,
    /// Executor report of the per-part + boundary Dijkstra phases.
    pub processing: ExecutionReport,
    /// Executor report of the combine phase.
    pub combine: ExecutionReport,
}

impl DjidjevOutput {
    /// Combined modelled time of both phases.
    pub fn modelled_time_s(&self) -> f64 {
        self.processing.makespan_s + self.combine.makespan_s
    }
}

/// Runs the partition-based APSP with `k` parts.
pub fn djidjev_apsp(g: &CsrGraph, k: usize, exec: &HeteroExecutor) -> DjidjevOutput {
    let n = g.n();
    let p = partition_graph(g, k);
    let parts = p.members();
    let k = p.k;

    // Per-part induced subgraphs.
    let subs: Vec<(CsrGraph, ear_graph::SubgraphMap)> = parts
        .iter()
        .map(|m| ear_graph::induced_subgraph(g, m))
        .collect();

    // Phase A: all-sources Dijkstra inside every part, one workunit per
    // (part, source).
    let units: Vec<(u32, u32)> = (0..k as u32)
        .flat_map(|pi| (0..subs[pi as usize].0.n() as u32).map(move |s| (pi, s)))
        .collect();
    let RunOutput {
        results: local_rows,
        report: part_report,
    } = exec.run(
        units.clone(),
        |&(pi, _)| subs[pi as usize].0.m() as u64 + 1,
        |&(pi, s)| {
            with_engine(|eng| {
                let stats = eng.run(&subs[pi as usize].0, s);
                (
                    eng.dist_vec(),
                    WorkCounters {
                        edges_relaxed: stats.edges_relaxed,
                        vertices_settled: stats.settled,
                        ..Default::default()
                    },
                )
            })
        },
    );
    // Assemble per-part matrices.
    let mut local: Vec<DistMatrix> = subs.iter().map(|(sg, _)| DistMatrix::new(sg.n())).collect();
    for ((pi, s), row) in units.into_iter().zip(local_rows) {
        for (t, w) in row.into_iter().enumerate() {
            local[pi as usize].set(s, t as u32, w);
        }
    }

    // Phase B: the boundary graph.
    let boundary = p.boundary_vertices(g);
    let bn = boundary.len();
    let mut b_index = vec![u32::MAX; n];
    for (i, &v) in boundary.iter().enumerate() {
        b_index[v as usize] = i as u32;
    }
    let mut b_edges: Vec<(u32, u32, Weight)> = Vec::new();
    for e in p.cut_edges(g) {
        let r = g.edge(e);
        b_edges.push((b_index[r.u as usize], b_index[r.v as usize], r.w));
    }
    // Same-part boundary pairs, weighted with the within-part distance.
    let mut per_part_boundary: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for &v in &boundary {
        per_part_boundary[p.part[v as usize] as usize].push(v);
    }
    for (pi, bs) in per_part_boundary.iter().enumerate() {
        let (_, map) = &subs[pi];
        for i in 0..bs.len() {
            for j in i + 1..bs.len() {
                let (li, lj) = (map.local(bs[i]).unwrap(), map.local(bs[j]).unwrap());
                let w = local[pi].get(li, lj);
                if w < INF {
                    b_edges.push((b_index[bs[i] as usize], b_index[bs[j] as usize], w));
                }
            }
        }
    }
    let bg = CsrGraph::from_edges(bn, &b_edges);
    let RunOutput {
        results: b_rows,
        report: bnd_report,
    } = exec.run(
        (0..bn as u32).collect::<Vec<_>>(),
        |_| bg.m() as u64 + 1,
        |&s| {
            with_engine(|eng| {
                let stats = eng.run(&bg, s);
                (
                    eng.dist_vec(),
                    WorkCounters {
                        edges_relaxed: stats.edges_relaxed,
                        vertices_settled: stats.settled,
                        ..Default::default()
                    },
                )
            })
        },
    );
    let db = DistMatrix::from_rows(b_rows);

    // Phase C: combine — one workunit per source vertex.
    let RunOutput {
        results: rows,
        report: combine,
    } = exec.run(
        (0..n as u32).collect::<Vec<_>>(),
        |_| n as u64,
        |&u| {
            combine_row(
                g,
                &p,
                &subs,
                &local,
                &boundary,
                &b_index,
                &per_part_boundary,
                &db,
                u,
            )
        },
    );
    let dist = DistMatrix::from_rows(rows);

    let processing = merge_reports(part_report, bnd_report);
    DjidjevOutput {
        dist,
        k,
        boundary_n: bn,
        processing,
        combine,
    }
}

#[allow(clippy::too_many_arguments)]
fn combine_row(
    g: &CsrGraph,
    p: &Partition,
    subs: &[(CsrGraph, ear_graph::SubgraphMap)],
    local: &[DistMatrix],
    boundary: &[VertexId],
    b_index: &[u32],
    per_part_boundary: &[Vec<VertexId>],
    db: &DistMatrix,
    u: VertexId,
) -> (Vec<Weight>, WorkCounters) {
    let n = g.n();
    let pu = p.part[u as usize] as usize;
    let (_, map_u) = &subs[pu];
    let lu = map_u.local(u).expect("vertex in its own part");
    let mut combos = 0u64;

    // d(u, b) for every boundary vertex b: enter the boundary graph through
    // u's own part's boundary.
    let bn = boundary.len();
    let mut du_b = vec![INF; bn];
    for &b1 in &per_part_boundary[pu] {
        let l1 = map_u.local(b1).unwrap();
        let through = local[pu].get(lu, l1);
        if through >= INF {
            continue;
        }
        let db_row = db.row(b_index[b1 as usize]);
        for (bi, &dbb) in db_row.iter().enumerate() {
            combos += 1;
            let cand = dist_add(through, dbb);
            if cand < du_b[bi] {
                du_b[bi] = cand;
            }
        }
    }

    let mut row = vec![INF; n];
    row[u as usize] = 0;
    for v in 0..n as u32 {
        if v == u {
            continue;
        }
        let pv = p.part[v as usize] as usize;
        let (_, map_v) = &subs[pv];
        let lv = map_v.local(v).unwrap();
        let mut best = INF;
        if pv == pu {
            best = local[pu].get(lu, lv);
        }
        if b_index[v as usize] != u32::MAX {
            best = best.min(du_b[b_index[v as usize] as usize]);
        } else {
            // Last boundary vertex before entering v's part.
            for &b2 in &per_part_boundary[pv] {
                combos += 1;
                let l2 = map_v.local(b2).unwrap();
                let cand = dist_add(du_b[b_index[b2 as usize] as usize], local[pv].get(l2, lv));
                if cand < best {
                    best = cand;
                }
            }
        }
        row[v as usize] = best;
    }
    (
        row,
        WorkCounters {
            dense_combined: combos,
            ..Default::default()
        },
    )
}

fn merge_reports(mut a: ExecutionReport, b: ExecutionReport) -> ExecutionReport {
    for (da, dbr) in a.devices.iter_mut().zip(&b.devices) {
        da.units += dbr.units;
        da.batches += dbr.batches;
        da.busy_s += dbr.busy_s;
        da.counters.merge(&dbr.counters);
    }
    a.makespan_s += b.makespan_s;
    a.wall_s += b.wall_s;
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::floyd_warshall;

    fn grid(rows: u32, cols: u32) -> CsrGraph {
        let idx = |r: u32, c: u32| r * cols + c;
        let mut edges = Vec::new();
        let mut w = 1u64;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1), w));
                    w = w % 7 + 1;
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c), w));
                    w = w % 5 + 1;
                }
            }
        }
        CsrGraph::from_edges((rows * cols) as usize, &edges)
    }

    fn check(g: &CsrGraph, k: usize) -> DjidjevOutput {
        let out = djidjev_apsp(g, k, &HeteroExecutor::sequential());
        let oracle = floyd_warshall(g);
        for i in 0..g.n() as u32 {
            for j in 0..g.n() as u32 {
                assert_eq!(out.dist.get(i, j), oracle.get(i, j), "({i},{j})");
            }
        }
        out
    }

    #[test]
    fn grid_with_two_parts() {
        let out = check(&grid(5, 6), 2);
        assert_eq!(out.k, 2);
        assert!(out.boundary_n > 0);
    }

    #[test]
    fn grid_with_many_parts() {
        check(&grid(6, 6), 6);
    }

    #[test]
    fn single_part_degenerates_to_local_apsp() {
        let out = check(&grid(4, 4), 1);
        assert_eq!(out.boundary_n, 0);
    }

    #[test]
    fn weighted_ring_crossing_parts() {
        let edges: Vec<(u32, u32, u64)> = (0..12)
            .map(|i| (i, (i + 1) % 12, (i as u64 % 3) + 1))
            .collect();
        let g = CsrGraph::from_edges(12, &edges);
        check(&g, 3);
    }

    #[test]
    fn disconnected_graph() {
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 2),
                (1, 2, 2),
                (2, 0, 3),
                (3, 4, 1),
                (4, 5, 1),
                (5, 6, 1),
            ],
        );
        check(&g, 3);
    }

    #[test]
    fn hetero_executor_matches_sequential() {
        let g = grid(5, 5);
        let a = djidjev_apsp(&g, 3, &HeteroExecutor::sequential());
        let b = djidjev_apsp(&g, 3, &HeteroExecutor::cpu_gpu());
        assert_eq!(a.dist, b.dist);
    }

    #[test]
    fn path_that_leaves_and_reenters_a_part() {
        // Two parts where the best intra-part route detours through the
        // other part: a ladder with a heavy rung side.
        //   0 -100- 1      part boundary between columns
        //   |       |
        //   2 - 1 - 3
        let g = CsrGraph::from_edges(4, &[(0, 1, 100), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
        check(&g, 2);
    }
}
