//! Node orderings and the layout-mode switch for cache-aware CSR storage.
//!
//! A [`NodeOrder`] is a bijection between *original* vertex ids (the ids
//! the caller built the graph with, stable at every public API boundary)
//! and *rank* ids (positions in a reordered layout). [`CsrGraph::permute`]
//! rebuilds a graph so vertex `v` lives at `order.rank(v)`; results
//! computed on the permuted graph are mapped back with [`NodeOrder::node`]
//! (dense arrays go through [`NodeOrder::unpermute`]).
//!
//! The ordering that matters for this suite is DFS pre-order clustered by
//! biconnected block — the decomposition plan derives it from its own
//! block structure — but [`NodeOrder::dfs_preorder`] builds the plain
//! whole-graph variant so the permutation machinery can be exercised (and
//! benchmarked) without a plan.
//!
//! [`LayoutMode`] selects how the plan stores its per-block graphs:
//! `Copied` (one standalone [`CsrGraph`] per block, the differential
//! baseline) or `Viewed` (zero-copy windows of a shared
//! [`CsrArena`](crate::arena::CsrArena)). Both paths feed the same
//! [`CsrView`](crate::view::CsrView)-based solvers and are bit-identical.
//!
//! [`CsrGraph::permute`]: crate::csr::CsrGraph::permute

use std::sync::OnceLock;

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// A bijective vertex ordering: original id ↔ rank (position in the
/// reordered layout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeOrder {
    /// `rank[v]` = position of original vertex `v` in the new layout.
    rank: Vec<u32>,
    /// `node[r]` = original vertex at position `r` (inverse of `rank`).
    node: Vec<u32>,
}

impl NodeOrder {
    /// The identity ordering on `n` vertices.
    pub fn identity(n: usize) -> Self {
        let rank: Vec<u32> = (0..n as u32).collect();
        NodeOrder {
            node: rank.clone(),
            rank,
        }
    }

    /// Builds an ordering from a rank array (`rank[v]` = new position of
    /// original vertex `v`).
    ///
    /// # Panics
    /// Panics unless `rank` is a permutation of `0..n`.
    pub fn from_rank(rank: Vec<u32>) -> Self {
        let n = rank.len();
        let mut node = vec![u32::MAX; n];
        for (v, &r) in rank.iter().enumerate() {
            assert!((r as usize) < n, "rank {r} out of range for n = {n}");
            assert_eq!(node[r as usize], u32::MAX, "rank {r} assigned twice");
            node[r as usize] = v as u32;
        }
        NodeOrder { rank, node }
    }

    /// Builds an ordering from a node array (`node[r]` = original vertex
    /// placed at position `r`).
    ///
    /// # Panics
    /// Panics unless `node` is a permutation of `0..n`.
    pub fn from_node(node: Vec<u32>) -> Self {
        let n = node.len();
        let mut rank = vec![u32::MAX; n];
        for (r, &v) in node.iter().enumerate() {
            assert!((v as usize) < n, "vertex {v} out of range for n = {n}");
            assert_eq!(rank[v as usize], u32::MAX, "vertex {v} placed twice");
            rank[v as usize] = r as u32;
        }
        NodeOrder { rank, node }
    }

    /// DFS pre-order over the whole graph: roots in ascending id order,
    /// children pushed in reverse incidence order so they pop in incidence
    /// order. Keeps each connected component's vertices contiguous.
    pub fn dfs_preorder(g: &CsrGraph) -> Self {
        let n = g.n();
        let mut rank = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack: Vec<VertexId> = Vec::new();
        for root in 0..n as u32 {
            if rank[root as usize] != u32::MAX {
                continue;
            }
            rank[root as usize] = next;
            next += 1;
            stack.push(root);
            while let Some(u) = stack.pop() {
                for &(v, _) in g.neighbors(u).iter().rev() {
                    if rank[v as usize] == u32::MAX {
                        rank[v as usize] = next;
                        next += 1;
                        stack.push(v);
                    }
                }
            }
        }
        Self::from_rank(rank)
    }

    /// Number of vertices ordered.
    #[inline]
    pub fn n(&self) -> usize {
        self.rank.len()
    }

    /// Position of original vertex `v` in the reordered layout.
    #[inline]
    pub fn rank(&self, v: VertexId) -> VertexId {
        self.rank[v as usize]
    }

    /// Original vertex at position `r` (inverse of [`NodeOrder::rank`]).
    #[inline]
    pub fn node(&self, r: VertexId) -> VertexId {
        self.node[r as usize]
    }

    /// The full rank array (`rank[v]` = new position of `v`).
    #[inline]
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }

    /// The full node array (`node[r]` = original vertex at position `r`).
    #[inline]
    pub fn nodes(&self) -> &[u32] {
        &self.node
    }

    /// True if this is the identity ordering.
    pub fn is_identity(&self) -> bool {
        self.rank.iter().enumerate().all(|(v, &r)| v as u32 == r)
    }

    /// Maps a dense per-vertex array indexed by rank back to original-id
    /// indexing: `result[v] = by_rank[rank(v)]`.
    pub fn unpermute<T: Copy>(&self, by_rank: &[T]) -> Vec<T> {
        assert_eq!(by_rank.len(), self.n());
        self.rank.iter().map(|&r| by_rank[r as usize]).collect()
    }

    /// Maps a dense per-vertex array indexed by original id to rank
    /// indexing: `result[r] = by_node[node(r)]`.
    pub fn permute<T: Copy>(&self, by_node: &[T]) -> Vec<T> {
        assert_eq!(by_node.len(), self.n());
        self.node.iter().map(|&v| by_node[v as usize]).collect()
    }
}

/// How the decomposition plan stores per-block graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutMode {
    /// One standalone [`CsrGraph`] per block — the retained differential
    /// baseline.
    Copied,
    /// Zero-copy [`CsrView`](crate::view::CsrView) windows of one shared
    /// [`CsrArena`](crate::arena::CsrArena) laid out in block order.
    Viewed,
}

impl LayoutMode {
    /// Reads the process-wide default from `EAR_CSR_VIEWS` (cached on
    /// first call): `1`/`true`/`on` select [`LayoutMode::Viewed`].
    pub fn from_env() -> LayoutMode {
        static MODE: OnceLock<LayoutMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("EAR_CSR_VIEWS").ok().as_deref() {
            Some("1") | Some("true") | Some("on") => LayoutMode::Viewed,
            _ => LayoutMode::Copied,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trips() {
        let o = NodeOrder::identity(5);
        assert!(o.is_identity());
        for v in 0..5 {
            assert_eq!(o.rank(v), v);
            assert_eq!(o.node(v), v);
        }
    }

    #[test]
    fn from_rank_and_from_node_agree() {
        let rank = vec![2, 0, 3, 1];
        let a = NodeOrder::from_rank(rank.clone());
        let b = NodeOrder::from_node(a.nodes().to_vec());
        assert_eq!(a, b);
        for v in 0..4u32 {
            assert_eq!(a.node(a.rank(v)), v);
        }
    }

    #[test]
    #[should_panic]
    fn non_bijection_rejected() {
        NodeOrder::from_rank(vec![0, 0, 1]);
    }

    #[test]
    fn dfs_preorder_clusters_components() {
        // Two components: {0,2,4} (path 0-2-4) and {1,3} (edge).
        let g = CsrGraph::from_edges(5, &[(0, 2, 1), (2, 4, 1), (1, 3, 1)]);
        let o = NodeOrder::dfs_preorder(&g);
        assert_eq!(o.rank(0), 0);
        assert_eq!(o.rank(2), 1);
        assert_eq!(o.rank(4), 2);
        assert_eq!(o.rank(1), 3);
        assert_eq!(o.rank(3), 4);
    }

    #[test]
    fn permute_unpermute_round_trip() {
        let o = NodeOrder::from_rank(vec![2, 0, 3, 1]);
        let by_node = vec![10u64, 11, 12, 13];
        let by_rank = o.permute(&by_node);
        assert_eq!(by_rank, vec![11, 13, 10, 12]);
        assert_eq!(o.unpermute(&by_rank), by_node);
    }

    #[test]
    fn layout_mode_env_parses() {
        let m = LayoutMode::from_env();
        assert!(matches!(m, LayoutMode::Copied | LayoutMode::Viewed));
    }
}
