//! # ear-graph
//!
//! Graph substrate for the ear-decomposition shortest-path/cycle suite.
//!
//! The central type is [`CsrGraph`], a compact compressed-sparse-row
//! representation of an **undirected weighted multigraph**: parallel edges
//! and self-loops are first-class citizens because the reduced graphs
//! produced by degree-2 chain contraction (see the `ear-decomp` crate)
//! naturally contain both, and the minimum-cycle-basis algorithms must see
//! them as independent cycle generators.
//!
//! Design points, following the conventions of high-performance sparse graph
//! codes:
//!
//! * vertices and edges are dense `u32` ids ([`VertexId`], [`EdgeId`]);
//! * weights are exact `u64` integers ([`Weight`]) with an [`INF`] sentinel —
//!   fractional inputs should be fixed-point scaled by the caller, which
//!   keeps every distance comparison in the test-suite exact;
//! * adjacency is a single flat `(neighbor, edge-id)` array addressed by a
//!   per-vertex offset table, so traversals are cache-linear;
//! * algorithms ([`dijkstra`](crate::dijkstra::dijkstra), BFS/DFS, spanning
//!   forests) are instrumented with operation counters that the
//!   heterogeneous cost model in `ear-hetero` consumes.

pub mod arena;
pub mod builder;
pub mod csr;
pub mod dijkstra;
pub mod engine;
pub mod io;
pub mod layout;
pub mod multi;
pub mod spanning;
pub mod subgraph;
pub mod traverse;
pub mod types;
pub mod view;

pub use arena::{CsrArena, CsrSpan};
pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use dijkstra::{dijkstra, dijkstra_tree, dijkstra_with_stats, DijkstraStats, SsspTree};
pub use engine::{with_engine, SsspEngine};
pub use layout::{LayoutMode, NodeOrder};
pub use multi::{
    lane_batches, with_multi_engine, BatchPolicy, LaneMask, MultiSsspEngine, SsspMode, LANES,
    MAX_BATCH_VERTICES, MIN_BATCH_VERTICES,
};
pub use spanning::{non_tree_edges, spanning_forest, tree_edge_flags};
pub use subgraph::{
    edge_subgraph, edge_subgraph_into_arena, edge_subgraph_reusing, induced_subgraph,
    CompactSubgraphMap, SubgraphMap, SubgraphScratch,
};
pub use traverse::{bfs, bfs_tree, connected_components, BfsTree, Components};
pub use types::{dist_add, Edge, EdgeId, VertexId, Weight, INF};
pub use view::CsrView;
