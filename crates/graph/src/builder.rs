//! Incremental construction of [`CsrGraph`]s.

use crate::csr::CsrGraph;
use crate::types::{Edge, EdgeId, VertexId, Weight};

/// A mutable edge-list accumulator that freezes into a [`CsrGraph`].
///
/// ```
/// use ear_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 3);
/// b.add_edge(1, 2, 1);
/// let extra = b.add_vertex();
/// b.add_edge(2, extra, 2);
/// let g = b.build();
/// assert_eq!(g.n(), 5);
/// assert_eq!(g.m(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Starts a builder with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Starts a builder with `n` vertices and room for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Adds a fresh vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = self.n as VertexId;
        self.n += 1;
        id
    }

    /// Ensures the vertex id space covers `0..n`.
    pub fn grow_to(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Adds an undirected edge and returns its id. Parallel edges and
    /// self-loops are allowed; deduplication, when wanted, happens at
    /// [`CsrGraph::simplify_min_weight`] time.
    ///
    /// # Panics
    /// Panics if an endpoint is not a known vertex.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> EdgeId {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "endpoint out of range: ({u},{v}) with n={}",
            self.n
        );
        let id = self.edges.len() as EdgeId;
        self.edges.push(Edge::new(u, v, w));
        id
    }

    /// Current vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current edge count.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Freezes into an immutable CSR graph.
    pub fn build(self) -> CsrGraph {
        CsrGraph::from_edge_records(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::with_capacity(3, 2);
        let e0 = b.add_edge(0, 1, 7);
        let e1 = b.add_edge(1, 2, 9);
        assert_eq!((e0, e1), (0, 1));
        let g = b.build();
        assert_eq!(g.n(), 3);
        assert_eq!(g.weight(0), 7);
        assert_eq!(g.weight(1), 9);
    }

    #[test]
    fn add_vertex_extends_id_space() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_vertex();
        assert_eq!(v, 1);
        b.add_edge(0, v, 1);
        assert_eq!(b.build().n(), 2);
    }

    #[test]
    fn grow_to_never_shrinks() {
        let mut b = GraphBuilder::new(5);
        b.grow_to(3);
        assert_eq!(b.n(), 5);
        b.grow_to(8);
        assert_eq!(b.n(), 8);
    }

    #[test]
    #[should_panic]
    fn edge_to_unknown_vertex_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5, 1);
    }
}
