//! Compressed-sparse-row storage for undirected weighted multigraphs.

use std::sync::Arc;

use crate::layout::NodeOrder;
use crate::types::{Edge, EdgeId, VertexId, Weight};
use crate::view::CsrView;

/// An immutable undirected weighted multigraph in CSR form.
///
/// Construction is done through [`crate::builder::GraphBuilder`] or
/// [`CsrGraph::from_edges`]; once built the graph never changes, which lets
/// every algorithm in the suite share it freely across threads (`&CsrGraph`
/// is `Send + Sync`).
///
/// Storage layout:
///
/// * `edges[e]` — the canonical record of edge `e` (endpoints + weight);
/// * `adj[offsets[v] .. offsets[v+1]]` — the incidence list of vertex `v`
///   as `(neighbor, edge-id)` pairs.
///
/// Every non-loop edge contributes one incidence entry to each endpoint.
/// A **self-loop contributes a single entry** to its vertex, so
/// [`CsrGraph::degree`] counts a self-loop once; the suite's degree-based
/// reductions only run on simple graphs where this distinction is moot, and
/// the multigraph consumers (minimum cycle basis) never look at degrees.
///
/// The offsets/adjacency arrays are the graph's **topology layer**: the
/// counting-sort construction never looks at a weight, so two graphs with
/// the same edge list shape share them bit for bit. They live behind
/// [`Arc`] so [`CsrGraph::reweighted`] can produce a new graph that
/// recomputes only the **weight layer** (edge records + per-incidence
/// weights) while sharing the topology allocation with the original.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    n: usize,
    edges: Vec<Edge>,
    offsets: Arc<Vec<u32>>,
    adj: Arc<Vec<(VertexId, EdgeId)>>,
    /// Per-incidence weights, parallel to `adj` — relaxation loops stream
    /// this alongside the adjacency instead of gathering `edges[e].w`.
    adj_weights: Vec<Weight>,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, list: &[(VertexId, VertexId, Weight)]) -> Self {
        let edges: Vec<Edge> = list.iter().map(|&(u, v, w)| Edge::new(u, v, w)).collect();
        Self::from_edge_records(n, edges)
    }

    /// Builds a graph from pre-assembled [`Edge`] records.
    pub fn from_edge_records(n: usize, edges: Vec<Edge>) -> Self {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 id space");
        let mut deg = vec![0u32; n + 1];
        for e in &edges {
            assert!(
                (e.u as usize) < n && (e.v as usize) < n,
                "edge endpoint out of range"
            );
            deg[e.u as usize + 1] += 1;
            if !e.is_self_loop() {
                deg[e.v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg;
        let mut cursor = offsets.clone();
        let adj_len = *offsets.last().unwrap_or(&0) as usize;
        let mut adj = vec![(0u32, 0u32); adj_len];
        let mut adj_weights = vec![0 as Weight; adj_len];
        for (idx, e) in edges.iter().enumerate() {
            let id = idx as EdgeId;
            let cu = cursor[e.u as usize] as usize;
            adj[cu] = (e.v, id);
            adj_weights[cu] = e.w;
            cursor[e.u as usize] += 1;
            if !e.is_self_loop() {
                let cv = cursor[e.v as usize] as usize;
                adj[cv] = (e.u, id);
                adj_weights[cv] = e.w;
                cursor[e.v as usize] += 1;
            }
        }
        CsrGraph {
            n,
            edges,
            offsets: Arc::new(offsets),
            adj: Arc::new(adj),
            adj_weights,
        }
    }

    /// The same topology under new weights: `new_weights[e]` replaces the
    /// weight of edge `e` while endpoints, edge ids, adjacency order and the
    /// offsets array are untouched. The offsets/adjacency allocations are
    /// **shared** with `self` (no clone), and the result is bit-identical to
    /// [`CsrGraph::from_edge_records`] on the reweighted edge list — the
    /// counting sort never consults weights, so only the edge records and
    /// the per-incidence weight stream differ.
    ///
    /// # Panics
    /// Panics if `new_weights.len() != self.m()`.
    pub fn reweighted(&self, new_weights: &[Weight]) -> CsrGraph {
        assert_eq!(
            new_weights.len(),
            self.m(),
            "one weight per edge is required"
        );
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .zip(new_weights)
            .map(|(e, &w)| Edge::new(e.u, e.v, w))
            .collect();
        let adj_weights: Vec<Weight> = self
            .adj
            .iter()
            .map(|&(_, e)| new_weights[e as usize])
            .collect();
        CsrGraph {
            n: self.n,
            edges,
            offsets: Arc::clone(&self.offsets),
            adj: Arc::clone(&self.adj),
            adj_weights,
        }
    }

    /// True when `other` shares this graph's topology allocations (both
    /// came from the same [`CsrGraph::reweighted`] family). Pointer
    /// equality, O(1) — the customization tests use this to prove the
    /// weight swap did not clone the structure.
    pub fn shares_topology(&self, other: &CsrGraph) -> bool {
        Arc::ptr_eq(&self.offsets, &other.offsets) && Arc::ptr_eq(&self.adj, &other.adj)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (parallel edges and self-loops each count once).
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The full edge array.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The record of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e as usize]
    }

    /// Weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.edges[e as usize].w
    }

    /// Incidence list of `v` as `(neighbor, edge-id)` pairs.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Incidence list of `v` together with the parallel per-incidence
    /// weight slice — the relaxation loops' streaming access path.
    #[inline]
    pub fn incidences(&self, v: VertexId) -> (&[(VertexId, EdgeId)], &[Weight]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.adj[lo..hi], &self.adj_weights[lo..hi])
    }

    /// A zero-copy [`CsrView`] of the whole graph — the borrowed currency
    /// every solver in the suite traverses.
    #[inline]
    pub fn view(&self) -> CsrView<'_> {
        CsrView::from_raw_unchecked(
            self.n,
            &self.offsets,
            &self.adj,
            &self.adj_weights,
            &self.edges,
        )
    }

    /// Rebuilds the graph with vertex `v` stored at position
    /// `order.rank(v)`. Edge records keep their list order (edge ids are
    /// stable); only endpoints are renamed, so the result is the same
    /// multigraph under the bijection and [`NodeOrder::node`] maps
    /// per-vertex results back. Records the rebuild time in the
    /// `graph.layout.reorder_ns` counter.
    ///
    /// # Panics
    /// Panics if `order.n() != self.n()`.
    pub fn permute(&self, order: &NodeOrder) -> CsrGraph {
        assert_eq!(order.n(), self.n, "order must cover every vertex");
        let t0 = std::time::Instant::now();
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .map(|e| Edge::new(order.rank(e.u), order.rank(e.v), e.w))
            .collect();
        let g = CsrGraph::from_edge_records(self.n, edges);
        ear_obs::counter_add("graph.layout.reorder_ns", t0.elapsed().as_nanos() as u64);
        g
    }

    /// Incidence-list length of `v` (self-loops counted once).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n as VertexId
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// True if the graph contains no parallel edges and no self-loops.
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.m());
        for e in &self.edges {
            if e.is_self_loop() || !seen.insert(e.key()) {
                return false;
            }
        }
        true
    }

    /// Collapses the multigraph to a simple graph: self-loops are dropped and
    /// each bundle of parallel edges is replaced by its minimum-weight member
    /// (the right reduction for shortest-path computations — the paper's
    /// Section 2.1.1 prescribes exactly this for the reduced graph).
    ///
    /// Returns the simple graph together with, for each new edge, the id of
    /// the original edge it kept.
    pub fn simplify_min_weight(&self) -> (CsrGraph, Vec<EdgeId>) {
        use std::collections::HashMap;
        let mut best: HashMap<(VertexId, VertexId), EdgeId> = HashMap::with_capacity(self.m());
        for (idx, e) in self.edges.iter().enumerate() {
            if e.is_self_loop() {
                continue;
            }
            let id = idx as EdgeId;
            best.entry(e.key())
                .and_modify(|cur| {
                    if e.w < self.weight(*cur) {
                        *cur = id;
                    }
                })
                .or_insert(id);
        }
        let mut kept: Vec<EdgeId> = best.into_values().collect();
        kept.sort_unstable();
        let edges = kept.iter().map(|&id| self.edge(id)).collect();
        (CsrGraph::from_edge_records(self.n, edges), kept)
    }

    /// Sum of incidence-list lengths — `2m` minus the number of self-loops.
    pub fn adjacency_len(&self) -> usize {
        self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.adjacency_len(), 6);
    }

    #[test]
    fn neighbors_carry_edge_ids() {
        let g = triangle();
        let n0: Vec<_> = g.neighbors(0).to_vec();
        assert!(n0.contains(&(1, 0)));
        assert!(n0.contains(&(2, 2)));
    }

    #[test]
    fn self_loop_counts_once_in_adjacency() {
        let g = CsrGraph::from_edges(2, &[(0, 0, 5), (0, 1, 1)]);
        assert_eq!(g.degree(0), 2); // one loop entry + one edge entry
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.adjacency_len(), 3);
        assert!(!g.is_simple());
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 4), (0, 1, 9)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 2);
        assert!(!g.is_simple());
    }

    #[test]
    fn simplify_keeps_min_weight_parallel_edge() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 9), (0, 1, 4), (1, 2, 2), (2, 2, 7)]);
        let (s, kept) = g.simplify_min_weight();
        assert_eq!(s.m(), 2);
        assert!(s.is_simple());
        let w01: Vec<Weight> = s
            .edges()
            .iter()
            .filter(|e| e.key() == (0, 1))
            .map(|e| e.w)
            .collect();
        assert_eq!(w01, vec![4]);
        // kept maps back to original ids
        assert!(kept.contains(&1));
        assert!(kept.contains(&2));
        assert!(!kept.contains(&3)); // the self-loop is gone
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert!(g.is_simple());
    }

    #[test]
    fn isolated_vertices_have_empty_neighborhoods() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1)]);
        assert_eq!(g.degree(2), 0);
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_endpoint_panics() {
        CsrGraph::from_edges(2, &[(0, 2, 1)]);
    }

    #[test]
    fn total_weight_sums_all_edges() {
        assert_eq!(triangle().total_weight(), 6);
    }

    #[test]
    fn incidences_stream_matches_edge_gather() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 4), (0, 1, 9), (1, 1, 7), (1, 2, 2)]);
        for v in 0..g.n() as u32 {
            let (adj, wts) = g.incidences(v);
            assert_eq!(adj, g.neighbors(v));
            assert_eq!(wts.len(), adj.len());
            for (&(_, e), &w) in adj.iter().zip(wts) {
                assert_eq!(w, g.weight(e));
            }
        }
    }

    #[test]
    fn permute_renames_endpoints_and_keeps_edge_ids() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 3), (1, 2, 5), (2, 3, 7), (3, 3, 9)]);
        let order = crate::layout::NodeOrder::from_rank(vec![3, 1, 0, 2]);
        let p = g.permute(&order);
        assert_eq!(p.n(), g.n());
        assert_eq!(p.m(), g.m());
        for (id, e) in g.edges().iter().enumerate() {
            let pe = p.edge(id as u32);
            assert_eq!(pe.u, order.rank(e.u));
            assert_eq!(pe.v, order.rank(e.v));
            assert_eq!(pe.w, e.w);
        }
        // Degrees transport through the bijection.
        for v in 0..g.n() as u32 {
            assert_eq!(p.degree(order.rank(v)), g.degree(v));
        }
    }

    #[test]
    fn reweighted_matches_cold_construction_and_shares_topology() {
        let list = [(0, 1, 4), (0, 1, 9), (1, 1, 7), (1, 2, 2), (2, 0, 5)];
        let g = CsrGraph::from_edges(3, &list);
        let new_w: Vec<Weight> = vec![40, 90, 70, 20, 50];
        let r = g.reweighted(&new_w);
        let cold = CsrGraph::from_edges(
            3,
            &list
                .iter()
                .zip(&new_w)
                .map(|(&(u, v, _), &w)| (u, v, w))
                .collect::<Vec<_>>(),
        );
        assert_eq!(r.edges(), cold.edges());
        for v in 0..3u32 {
            assert_eq!(r.neighbors(v), cold.neighbors(v));
            assert_eq!(r.incidences(v), cold.incidences(v));
        }
        assert!(g.shares_topology(&r));
        assert!(!g.shares_topology(&cold));
        // Original untouched.
        assert_eq!(g.weight(0), 4);
    }

    #[test]
    #[should_panic]
    fn reweighted_rejects_wrong_length() {
        triangle().reweighted(&[1, 2]);
    }

    #[test]
    fn identity_permute_is_a_fixpoint() {
        let g = triangle();
        let p = g.permute(&crate::layout::NodeOrder::identity(g.n()));
        assert_eq!(p.edges(), g.edges());
        for v in 0..g.n() as u32 {
            assert_eq!(p.neighbors(v), g.neighbors(v));
        }
    }
}
