//! Subgraph extraction with bidirectional id maps.
//!
//! The biconnected-component pipeline slices the input graph into per-BCC
//! subgraphs that are processed independently (and in parallel); results are
//! then translated back through a [`SubgraphMap`].

use crate::csr::CsrGraph;
use crate::types::{EdgeId, VertexId};

/// Id translation between a subgraph and its parent graph.
#[derive(Clone, Debug)]
pub struct SubgraphMap {
    /// `local -> parent` vertex ids.
    pub to_parent_vertex: Vec<VertexId>,
    /// `local -> parent` edge ids.
    pub to_parent_edge: Vec<EdgeId>,
    /// `parent -> local` vertex ids (`u32::MAX` when absent). Kept as a dense
    /// array: BCC extraction touches every parent vertex anyway, and dense
    /// lookups are what the hot post-processing loops want.
    pub to_local_vertex: Vec<VertexId>,
}

impl SubgraphMap {
    /// Local id of a parent vertex, if present.
    #[inline]
    pub fn local(&self, parent: VertexId) -> Option<VertexId> {
        let l = self.to_local_vertex[parent as usize];
        (l != u32::MAX).then_some(l)
    }

    /// Parent id of a local vertex.
    #[inline]
    pub fn parent(&self, local: VertexId) -> VertexId {
        self.to_parent_vertex[local as usize]
    }
}

/// Extracts the subgraph spanned by `edge_ids` (vertices are those incident
/// to the listed edges, renumbered compactly in order of first appearance).
pub fn edge_subgraph(g: &CsrGraph, edge_ids: &[EdgeId]) -> (CsrGraph, SubgraphMap) {
    let mut to_local = vec![u32::MAX; g.n()];
    let mut to_parent_vertex = Vec::new();
    let mut list = Vec::with_capacity(edge_ids.len());
    let intern = |v: VertexId, to_local: &mut Vec<u32>, to_parent: &mut Vec<u32>| {
        if to_local[v as usize] == u32::MAX {
            to_local[v as usize] = to_parent.len() as u32;
            to_parent.push(v);
        }
        to_local[v as usize]
    };
    for &e in edge_ids {
        let r = g.edge(e);
        let lu = intern(r.u, &mut to_local, &mut to_parent_vertex);
        let lv = intern(r.v, &mut to_local, &mut to_parent_vertex);
        list.push((lu, lv, r.w));
    }
    let sub = CsrGraph::from_edges(to_parent_vertex.len(), &list);
    let map = SubgraphMap {
        to_parent_vertex,
        to_parent_edge: edge_ids.to_vec(),
        to_local_vertex: to_local,
    };
    (sub, map)
}

/// Extracts the subgraph induced by a vertex set: all edges of `g` whose
/// endpoints are both in `vertices`.
pub fn induced_subgraph(g: &CsrGraph, vertices: &[VertexId]) -> (CsrGraph, SubgraphMap) {
    let mut inset = vec![false; g.n()];
    for &v in vertices {
        inset[v as usize] = true;
    }
    let keep: Vec<EdgeId> = (0..g.m() as u32)
        .filter(|&e| {
            let r = g.edge(e);
            inset[r.u as usize] && inset[r.v as usize]
        })
        .collect();
    // Use edge_subgraph for the heavy lifting, then append isolated members
    // of `vertices` so the induced subgraph keeps its full vertex set.
    let (sub, mut map) = edge_subgraph(g, &keep);
    let mut extra = Vec::new();
    for &v in vertices {
        if map.to_local_vertex[v as usize] == u32::MAX {
            map.to_local_vertex[v as usize] = (map.to_parent_vertex.len() + extra.len()) as u32;
            extra.push(v);
        }
    }
    if extra.is_empty() {
        return (sub, map);
    }
    map.to_parent_vertex.extend_from_slice(&extra);
    let list: Vec<_> = sub.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
    let sub = CsrGraph::from_edges(map.to_parent_vertex.len(), &list);
    (sub, map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 5)])
    }

    #[test]
    fn edge_subgraph_renumbers_compactly() {
        let g = square_with_diagonal();
        let (sub, map) = edge_subgraph(&g, &[1, 2]); // edges (1,2) and (2,3)
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
        let parents: Vec<_> = (0..3).map(|l| map.parent(l)).collect();
        assert_eq!(parents, vec![1, 2, 3]);
        assert_eq!(map.local(0), None);
        assert_eq!(map.local(2), Some(1));
    }

    #[test]
    fn edge_subgraph_preserves_weights_and_edge_ids() {
        let g = square_with_diagonal();
        let (sub, map) = edge_subgraph(&g, &[4, 0]);
        assert_eq!(sub.weight(0), 5);
        assert_eq!(sub.weight(1), 1);
        assert_eq!(map.to_parent_edge, vec![4, 0]);
    }

    #[test]
    fn induced_subgraph_takes_all_internal_edges() {
        let g = square_with_diagonal();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 2]);
        // internal edges: (0,1), (1,2), (0,2)
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 3);
        assert!(map.local(3).is_none());
    }

    #[test]
    fn induced_subgraph_keeps_isolated_vertices() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let (sub, map) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 1);
        let l2 = map.local(2).unwrap();
        assert_eq!(sub.degree(l2), 0);
        assert_eq!(map.parent(l2), 2);
    }

    #[test]
    fn empty_edge_set_gives_empty_graph() {
        let g = square_with_diagonal();
        let (sub, _) = edge_subgraph(&g, &[]);
        assert_eq!(sub.n(), 0);
        assert_eq!(sub.m(), 0);
    }
}
