//! Subgraph extraction with bidirectional id maps.
//!
//! The biconnected-component pipeline slices the input graph into per-BCC
//! subgraphs that are processed independently (and in parallel); results are
//! then translated back through a [`SubgraphMap`].

use crate::arena::{CsrArena, CsrSpan};
use crate::csr::CsrGraph;
use crate::types::{EdgeId, VertexId, Weight};

/// Id translation between a subgraph and its parent graph.
#[derive(Clone, Debug)]
pub struct SubgraphMap {
    /// `local -> parent` vertex ids.
    pub to_parent_vertex: Vec<VertexId>,
    /// `local -> parent` edge ids.
    pub to_parent_edge: Vec<EdgeId>,
    /// `parent -> local` vertex ids (`u32::MAX` when absent). Kept as a dense
    /// array: BCC extraction touches every parent vertex anyway, and dense
    /// lookups are what the hot post-processing loops want.
    pub to_local_vertex: Vec<VertexId>,
}

impl SubgraphMap {
    /// Local id of a parent vertex, if present.
    #[inline]
    pub fn local(&self, parent: VertexId) -> Option<VertexId> {
        let l = self.to_local_vertex[parent as usize];
        (l != u32::MAX).then_some(l)
    }

    /// Parent id of a local vertex.
    #[inline]
    pub fn parent(&self, local: VertexId) -> VertexId {
        self.to_parent_vertex[local as usize]
    }
}

/// Id translation for a subgraph that does **not** carry the dense
/// `parent -> local` array: just the two `local -> parent` tables, both
/// sized by the subgraph.
///
/// Produced by [`edge_subgraph_reusing`], which keeps the dense lookup in a
/// caller-owned [`SubgraphScratch`] so repeated extractions over the same
/// parent stay O(subgraph) each. `to_parent_edge` is the edge-id vector the
/// caller passed in, taken by value — local edge `i` is parent edge
/// `to_parent_edge[i]`.
#[derive(Clone, Debug, Default)]
pub struct CompactSubgraphMap {
    /// `local -> parent` vertex ids.
    pub to_parent_vertex: Vec<VertexId>,
    /// `local -> parent` edge ids (ownership of the caller's id list).
    pub to_parent_edge: Vec<EdgeId>,
}

impl CompactSubgraphMap {
    /// Parent id of a local vertex.
    #[inline]
    pub fn parent(&self, local: VertexId) -> VertexId {
        self.to_parent_vertex[local as usize]
    }
}

/// Reusable workspace for [`edge_subgraph_reusing`].
///
/// Holds the parent-sized dense `parent -> local` array between calls. The
/// array is allocated (and `u32::MAX`-filled) once on first use and then
/// *reset sparsely* after each extraction by walking only the vertices the
/// extraction touched — so slicing a graph into all of its biconnected
/// components costs O(n + m) total instead of O(n · #components).
#[derive(Debug, Default)]
pub struct SubgraphScratch {
    /// Dense `parent -> local` map; `u32::MAX` everywhere between calls.
    to_local: Vec<u32>,
    /// Edge-list staging buffer for [`CsrGraph::from_edges`].
    list: Vec<(VertexId, VertexId, Weight)>,
}

impl SubgraphScratch {
    /// Creates an empty scratch; arrays are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scratch-reusing, edge-id-owning variant of [`edge_subgraph`].
///
/// Takes ownership of `edge_ids` (they become the map's `to_parent_edge`
/// verbatim — no copy) and reuses `scratch` across calls, so extracting
/// every block of a decomposition is O(block) per block after the first
/// call sizes the scratch. Returns a [`CompactSubgraphMap`]; callers that
/// need the dense `parent -> local` array should use [`edge_subgraph`].
pub fn edge_subgraph_reusing(
    g: &CsrGraph,
    edge_ids: Vec<EdgeId>,
    scratch: &mut SubgraphScratch,
) -> (CsrGraph, CompactSubgraphMap) {
    let mut to_parent_vertex: Vec<VertexId> = Vec::new();
    intern_edge_list(g, &edge_ids, scratch, &mut to_parent_vertex);
    let sub = CsrGraph::from_edges(to_parent_vertex.len(), &scratch.list);
    // Sparse reset: only the entries this extraction wrote.
    for &p in &to_parent_vertex {
        scratch.to_local[p as usize] = u32::MAX;
    }
    let map = CompactSubgraphMap {
        to_parent_vertex,
        to_parent_edge: edge_ids,
    };
    (sub, map)
}

/// [`edge_subgraph_reusing`], but the subgraph is appended to a shared
/// [`CsrArena`] instead of allocating a standalone [`CsrGraph`]. The
/// interning (and therefore every local id and the local edge order) is
/// the same shared core, and [`CsrArena::push`] mirrors
/// [`CsrGraph::from_edge_records`], so `arena.view(&span)` is bit-identical
/// to the graph the standalone variant would have built.
pub fn edge_subgraph_into_arena(
    g: &CsrGraph,
    edge_ids: Vec<EdgeId>,
    scratch: &mut SubgraphScratch,
    arena: &mut CsrArena,
) -> (CsrSpan, CompactSubgraphMap) {
    let mut to_parent_vertex: Vec<VertexId> = Vec::new();
    intern_edge_list(g, &edge_ids, scratch, &mut to_parent_vertex);
    let span = arena.push(to_parent_vertex.len(), &scratch.list);
    for &p in &to_parent_vertex {
        scratch.to_local[p as usize] = u32::MAX;
    }
    let map = CompactSubgraphMap {
        to_parent_vertex,
        to_parent_edge: edge_ids,
    };
    (span, map)
}

/// Shared interning core of the extraction functions: stages the local
/// edge list of `edge_ids` into `scratch.list`, assigning compact local
/// vertex ids in order of first appearance. Leaves `scratch.to_local`
/// holding the live `parent -> local` entries; the caller must sparse-reset
/// them (walking `to_parent_vertex`) when done.
fn intern_edge_list(
    g: &CsrGraph,
    edge_ids: &[EdgeId],
    scratch: &mut SubgraphScratch,
    to_parent_vertex: &mut Vec<VertexId>,
) {
    if scratch.to_local.len() < g.n() {
        scratch.to_local.resize(g.n(), u32::MAX);
    }
    let to_local = &mut scratch.to_local;
    scratch.list.clear();
    let intern = |v: VertexId, to_local: &mut [u32], to_parent: &mut Vec<u32>| {
        if to_local[v as usize] == u32::MAX {
            to_local[v as usize] = to_parent.len() as u32;
            to_parent.push(v);
        }
        to_local[v as usize]
    };
    for &e in edge_ids {
        let r = g.edge(e);
        let lu = intern(r.u, to_local, to_parent_vertex);
        let lv = intern(r.v, to_local, to_parent_vertex);
        scratch.list.push((lu, lv, r.w));
    }
}

/// Extracts the subgraph spanned by `edge_ids` (vertices are those incident
/// to the listed edges, renumbered compactly in order of first appearance).
///
/// One-shot convenience over [`edge_subgraph_reusing`]: allocates its own
/// scratch and rebuilds the dense `parent -> local` array for the returned
/// [`SubgraphMap`].
pub fn edge_subgraph(g: &CsrGraph, edge_ids: &[EdgeId]) -> (CsrGraph, SubgraphMap) {
    let mut scratch = SubgraphScratch::new();
    let (sub, compact) = edge_subgraph_reusing(g, edge_ids.to_vec(), &mut scratch);
    // The scratch's map was sparsely reset back to all-MAX; re-mark this
    // subgraph's vertices to hand out as the dense map.
    let mut to_local = scratch.to_local;
    for (l, &p) in compact.to_parent_vertex.iter().enumerate() {
        to_local[p as usize] = l as u32;
    }
    let map = SubgraphMap {
        to_parent_vertex: compact.to_parent_vertex,
        to_parent_edge: compact.to_parent_edge,
        to_local_vertex: to_local,
    };
    (sub, map)
}

/// Extracts the subgraph induced by a vertex set: all edges of `g` whose
/// endpoints are both in `vertices`, plus the isolated members of
/// `vertices`, which take the trailing local ids in caller order.
///
/// Built directly on the [`edge_subgraph_reusing`] interning core: the
/// isolated members are appended to the vertex table *before* the single
/// CSR construction, so there is no rebuild and no edge-id-list copy.
pub fn induced_subgraph(g: &CsrGraph, vertices: &[VertexId]) -> (CsrGraph, SubgraphMap) {
    let mut inset = vec![false; g.n()];
    for &v in vertices {
        inset[v as usize] = true;
    }
    let keep: Vec<EdgeId> = (0..g.m() as u32)
        .filter(|&e| {
            let r = g.edge(e);
            inset[r.u as usize] && inset[r.v as usize]
        })
        .collect();
    let mut scratch = SubgraphScratch::new();
    let mut to_parent_vertex: Vec<VertexId> = Vec::new();
    intern_edge_list(g, &keep, &mut scratch, &mut to_parent_vertex);
    for &v in vertices {
        if scratch.to_local[v as usize] == u32::MAX {
            scratch.to_local[v as usize] = to_parent_vertex.len() as u32;
            to_parent_vertex.push(v);
        }
    }
    let sub = CsrGraph::from_edges(to_parent_vertex.len(), &scratch.list);
    // `scratch.to_local` already holds exactly this subgraph's dense map
    // (parent-sized, `u32::MAX` outside the vertex set): hand it out.
    let map = SubgraphMap {
        to_parent_vertex,
        to_parent_edge: keep,
        to_local_vertex: scratch.to_local,
    };
    (sub, map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 5)])
    }

    #[test]
    fn edge_subgraph_renumbers_compactly() {
        let g = square_with_diagonal();
        let (sub, map) = edge_subgraph(&g, &[1, 2]); // edges (1,2) and (2,3)
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
        let parents: Vec<_> = (0..3).map(|l| map.parent(l)).collect();
        assert_eq!(parents, vec![1, 2, 3]);
        assert_eq!(map.local(0), None);
        assert_eq!(map.local(2), Some(1));
    }

    #[test]
    fn edge_subgraph_preserves_weights_and_edge_ids() {
        let g = square_with_diagonal();
        let (sub, map) = edge_subgraph(&g, &[4, 0]);
        assert_eq!(sub.weight(0), 5);
        assert_eq!(sub.weight(1), 1);
        assert_eq!(map.to_parent_edge, vec![4, 0]);
    }

    #[test]
    fn induced_subgraph_takes_all_internal_edges() {
        let g = square_with_diagonal();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 2]);
        // internal edges: (0,1), (1,2), (0,2)
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 3);
        assert!(map.local(3).is_none());
    }

    #[test]
    fn induced_subgraph_keeps_isolated_vertices() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let (sub, map) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 1);
        let l2 = map.local(2).unwrap();
        assert_eq!(sub.degree(l2), 0);
        assert_eq!(map.parent(l2), 2);
    }

    #[test]
    fn empty_edge_set_gives_empty_graph() {
        let g = square_with_diagonal();
        let (sub, _) = edge_subgraph(&g, &[]);
        assert_eq!(sub.n(), 0);
        assert_eq!(sub.m(), 0);
    }

    #[test]
    fn reusing_variant_matches_one_shot_across_repeated_extractions() {
        let g = square_with_diagonal();
        let mut scratch = SubgraphScratch::new();
        for ids in [vec![1, 2], vec![4, 0], vec![0, 1, 2, 3, 4], vec![3]] {
            let (sub_a, map_a) = edge_subgraph(&g, &ids);
            let (sub_b, map_b) = edge_subgraph_reusing(&g, ids.clone(), &mut scratch);
            assert_eq!(sub_a.n(), sub_b.n());
            assert_eq!(sub_a.edges(), sub_b.edges());
            assert_eq!(map_a.to_parent_vertex, map_b.to_parent_vertex);
            assert_eq!(map_b.to_parent_edge, ids);
        }
    }

    #[test]
    fn arena_extraction_matches_standalone() {
        let g = square_with_diagonal();
        let mut scratch = SubgraphScratch::new();
        let mut arena = CsrArena::new();
        for ids in [vec![1, 2], vec![4, 0], vec![0, 1, 2, 3, 4], vec![3]] {
            let (sub, map) = edge_subgraph_reusing(&g, ids.clone(), &mut scratch);
            let (span, amap) = edge_subgraph_into_arena(&g, ids, &mut scratch, &mut arena);
            let v = arena.view(&span);
            assert_eq!(v.n(), sub.n());
            assert_eq!(v.edges(), sub.edges());
            for u in 0..sub.n() as u32 {
                assert_eq!(v.neighbors(u), sub.neighbors(u));
            }
            assert_eq!(amap.to_parent_vertex, map.to_parent_vertex);
            assert_eq!(amap.to_parent_edge, map.to_parent_edge);
        }
        assert!(scratch.to_local.iter().all(|&l| l == u32::MAX));
    }

    #[test]
    fn induced_subgraph_orders_edges_then_isolated() {
        // Local ids: first appearance along kept edges, then isolated
        // members in caller order.
        let g = CsrGraph::from_edges(5, &[(3, 1, 1), (1, 0, 2), (2, 4, 5)]);
        let (sub, map) = induced_subgraph(&g, &[4, 0, 1, 3]);
        assert_eq!(sub.m(), 2); // (3,1) and (1,0)
        assert_eq!(map.to_parent_vertex, vec![3, 1, 0, 4]);
        assert_eq!(map.local(4), Some(3));
        assert_eq!(map.local(2), None);
        assert_eq!(sub.degree(3), 0);
    }

    #[test]
    fn scratch_is_clean_between_calls() {
        let g = square_with_diagonal();
        let mut scratch = SubgraphScratch::new();
        let _ = edge_subgraph_reusing(&g, vec![0, 1, 2, 3, 4], &mut scratch);
        assert!(scratch.to_local.iter().all(|&l| l == u32::MAX));
        // A later extraction on a disjoint edge set must renumber from zero.
        let (sub, map) = edge_subgraph_reusing(&g, vec![2], &mut scratch);
        assert_eq!(sub.n(), 2);
        assert_eq!(map.to_parent_vertex, vec![2, 3]);
    }
}
