//! Fundamental identifier and weight types shared across the suite.

/// Dense vertex identifier. Graphs in this suite always have vertex ids
/// `0..n` with no holes; subgraph extraction produces remapped ids together
/// with a [`crate::subgraph::SubgraphMap`] back to the parent graph.
pub type VertexId = u32;

/// Dense edge identifier, indexing the graph's edge array. Each undirected
/// edge (including each copy of a parallel edge bundle and each self-loop)
/// has exactly one id.
pub type EdgeId = u32;

/// Exact integer edge weight. Callers with fractional weights should scale
/// to fixed point; keeping weights integral makes every distance equality in
/// the test-suite exact, which matters for cross-validating five different
/// minimum-cycle-basis implementations against each other.
pub type Weight = u64;

/// "Unreachable" sentinel distance. Chosen as `u64::MAX / 4` so that
/// `INF + w + INF` for any realistic weight still cannot wrap.
pub const INF: Weight = u64::MAX / 4;

/// An undirected edge record: endpoints plus weight.
///
/// The `(u, v)` order is the insertion order and carries no meaning; use
/// [`Edge::other`] to walk from a known endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint (equal to `u` for a self-loop).
    pub v: VertexId,
    /// Edge weight.
    pub w: Weight,
}

impl Edge {
    /// Creates an edge record.
    pub fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        Edge { u, v, w }
    }

    /// Returns the endpoint opposite `x`.
    ///
    /// For a self-loop both endpoints coincide, so the answer is `x` itself.
    ///
    /// # Panics
    /// Panics in debug builds if `x` is not an endpoint.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        debug_assert!(x == self.u || x == self.v, "vertex {x} not on edge");
        if x == self.u {
            self.v
        } else {
            self.u
        }
    }

    /// True when both endpoints coincide.
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.u == self.v
    }

    /// Endpoints in ascending order, useful as a canonical key when
    /// deduplicating parallel edges.
    #[inline]
    pub fn key(&self) -> (VertexId, VertexId) {
        if self.u <= self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }
}

/// Saturating addition on distances that preserves the [`INF`] sentinel:
/// anything at or above `INF` stays `INF`.
#[inline]
pub fn dist_add(a: Weight, b: Weight) -> Weight {
    if a >= INF || b >= INF {
        INF
    } else {
        let s = a.saturating_add(b);
        if s >= INF {
            INF
        } else {
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_other_walks_both_ways() {
        let e = Edge::new(3, 7, 10);
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    fn edge_other_on_self_loop_is_identity() {
        let e = Edge::new(5, 5, 2);
        assert!(e.is_self_loop());
        assert_eq!(e.other(5), 5);
    }

    #[test]
    fn edge_key_is_canonical() {
        assert_eq!(Edge::new(9, 2, 1).key(), (2, 9));
        assert_eq!(Edge::new(2, 9, 1).key(), (2, 9));
    }

    #[test]
    fn dist_add_saturates_at_inf() {
        assert_eq!(dist_add(1, 2), 3);
        assert_eq!(dist_add(INF, 5), INF);
        assert_eq!(dist_add(5, INF), INF);
        assert_eq!(dist_add(INF - 1, INF - 1), INF);
        assert_eq!(dist_add(INF, INF), INF);
    }

    #[test]
    fn inf_headroom_cannot_wrap() {
        // Three INFs plus a large weight still fit in u64.
        assert!(INF
            .checked_add(INF)
            .and_then(|x| x.checked_add(INF))
            .is_some());
    }
}
