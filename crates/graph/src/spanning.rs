//! Spanning forests and tree/non-tree edge classification.
//!
//! The cycle-space machinery of the MCB algorithms is anchored on an
//! arbitrary spanning tree `T` of the (multi)graph: the non-tree edges
//! `E' = E \ T` index the witness space `{0,1}^f` (paper Section 3.2). Any
//! spanning tree works; we use a BFS forest, which is deterministic and
//! shallow.

use crate::csr::CsrGraph;
use crate::types::EdgeId;

/// Returns the edge ids of a BFS spanning forest (one tree per connected
/// component). Self-loops and the redundant members of parallel bundles are
/// never tree edges.
pub fn spanning_forest(g: &CsrGraph) -> Vec<EdgeId> {
    let n = g.n();
    let mut seen = vec![false; n];
    let mut tree = Vec::with_capacity(n.saturating_sub(1));
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as u32 {
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &(v, e) in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    tree.push(e);
                    queue.push_back(v);
                }
            }
        }
    }
    tree
}

/// Boolean mask over edge ids: `true` for spanning-forest edges.
///
/// The complement (non-tree edges, in ascending edge-id order) is exactly
/// the ordered set `E' = {e_1, ..., e_f}` that the de Pina witnesses are
/// built over.
pub fn tree_edge_flags(g: &CsrGraph) -> Vec<bool> {
    let mut flags = vec![false; g.m()];
    for e in spanning_forest(g) {
        flags[e as usize] = true;
    }
    flags
}

/// Ascending list of non-tree edge ids with respect to the BFS forest.
pub fn non_tree_edges(g: &CsrGraph) -> Vec<EdgeId> {
    tree_edge_flags(g)
        .iter()
        .enumerate()
        .filter(|(_, &t)| !t)
        .map(|(i, _)| i as EdgeId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::connected_components;

    #[test]
    fn forest_size_is_n_minus_components() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (3, 4, 1)]);
        let c = connected_components(&g);
        let f = spanning_forest(&g);
        assert_eq!(f.len(), g.n() - c.count);
    }

    #[test]
    fn tree_plus_nontree_partitions_edges() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 1)]);
        let flags = tree_edge_flags(&g);
        let tree: usize = flags.iter().filter(|&&t| t).count();
        let non = non_tree_edges(&g);
        assert_eq!(tree + non.len(), g.m());
        assert_eq!(tree, 3);
        assert_eq!(non.len(), 2);
    }

    #[test]
    fn self_loops_are_never_tree_edges() {
        let g = CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 1), (1, 1, 2)]);
        let flags = tree_edge_flags(&g);
        assert!(!flags[0]);
        assert!(flags[1]);
        assert!(!flags[2]);
    }

    #[test]
    fn parallel_bundle_contributes_one_tree_edge() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1), (0, 1, 2), (0, 1, 3)]);
        let flags = tree_edge_flags(&g);
        assert_eq!(flags.iter().filter(|&&t| t).count(), 1);
        assert_eq!(non_tree_edges(&g).len(), 2);
    }

    #[test]
    fn tree_connects_each_component() {
        // Verify spanning property: contracting tree edges yields one vertex
        // per component.
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 3, 1),
                (3, 0, 1),
                (4, 5, 1),
                (5, 6, 1),
                (6, 4, 1),
            ],
        );
        let tree = spanning_forest(&g);
        let sub: Vec<_> = tree
            .iter()
            .map(|&e| {
                let r = g.edge(e);
                (r.u, r.v, r.w)
            })
            .collect();
        let tg = CsrGraph::from_edges(7, &sub);
        let c = connected_components(&tg);
        assert_eq!(c.count, connected_components(&g).count);
    }
}
