//! Zero-copy borrowed views over CSR storage.
//!
//! A [`CsrView`] is the read-only solve currency of the suite: a `Copy`
//! bundle of slices — offsets window, `(neighbor, edge-id)` adjacency,
//! per-incidence weights, and local edge records — that can borrow either
//! a whole [`CsrGraph`] ([`CsrGraph::view`]) or one block's window of a
//! [`CsrArena`](crate::arena::CsrArena) ([`CsrArena::view`](crate::arena::CsrArena::view)).
//! The SSSP engines and the decomposition pipelines traverse views, so the
//! copied-block and arena-window layouts share one hot loop and stay
//! bit-identical by construction.
//!
//! The offsets window stores *absolute* positions into the backing
//! adjacency arena; [`CsrView::neighbors`] subtracts the window base. For
//! a whole-graph view the base is zero and the arithmetic disappears.
//!
//! The per-incidence `weights` slice is parallel to `adj`:
//! `weights[i]` is the weight of the edge behind `adj[i]`. Traversals use
//! [`CsrView::incidences`] to stream both together instead of gathering
//! `edges[e].w` per relaxation — on graphs that outgrow cache this is the
//! difference between one sequential stream and a random 16-byte load per
//! edge.

use crate::csr::CsrGraph;
use crate::types::{Edge, EdgeId, VertexId, Weight};

/// A borrowed, immutable CSR graph: either a whole [`CsrGraph`] or one
/// block window of a [`CsrArena`](crate::arena::CsrArena).
///
/// `Copy` by design — pass it by value like the `&CsrGraph` it replaces.
#[derive(Clone, Copy, Debug)]
pub struct CsrView<'a> {
    n: usize,
    /// Offsets window (`n + 1` entries); values are absolute positions in
    /// the backing adjacency arena — `base` rebases them onto `adj`.
    offsets: &'a [u32],
    /// `offsets[0]`, hoisted so `neighbors` pays no extra load.
    base: u32,
    /// Adjacency window as `(neighbor, edge-id)` pairs; edge ids are local
    /// to this view (indices into `edges`).
    adj: &'a [(VertexId, EdgeId)],
    /// Per-incidence weights, parallel to `adj`.
    weights: &'a [Weight],
    /// Local edge records.
    edges: &'a [Edge],
}

impl<'a> CsrView<'a> {
    /// Assembles a view from raw windows.
    ///
    /// # Panics
    /// Panics unless the windows are mutually consistent: `offsets` holds
    /// `n + 1` monotone entries spanning exactly `adj`, and `weights` is
    /// parallel to `adj`.
    pub fn from_raw(
        n: usize,
        offsets: &'a [u32],
        adj: &'a [(VertexId, EdgeId)],
        weights: &'a [Weight],
        edges: &'a [Edge],
    ) -> Self {
        assert_eq!(
            offsets.len(),
            n + 1,
            "offsets window must hold n + 1 entries"
        );
        let base = offsets[0];
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(
            (offsets[n] - base) as usize,
            adj.len(),
            "offsets window must span the adjacency window"
        );
        assert_eq!(weights.len(), adj.len(), "weights must parallel adj");
        CsrView {
            n,
            offsets,
            base,
            adj,
            weights,
            edges,
        }
    }

    /// Non-validating constructor for the in-crate producers
    /// ([`CsrGraph::view`], [`CsrArena::view`](crate::arena::CsrArena::view))
    /// whose windows are consistent by construction; skips the O(n)
    /// monotonicity sweep so taking a view costs nothing on hot paths.
    #[inline]
    pub(crate) fn from_raw_unchecked(
        n: usize,
        offsets: &'a [u32],
        adj: &'a [(VertexId, EdgeId)],
        weights: &'a [Weight],
        edges: &'a [Edge],
    ) -> Self {
        debug_assert_eq!(offsets.len(), n + 1);
        debug_assert_eq!(weights.len(), adj.len());
        CsrView {
            n,
            offsets,
            base: offsets[0],
            adj,
            weights,
            edges,
        }
    }

    /// The same topology window under different weights: reuses the
    /// offsets/adjacency slices of `self` and swaps in new per-incidence
    /// weights and edge records — the borrowed counterpart of
    /// [`CsrGraph::reweighted`](crate::csr::CsrGraph::reweighted).
    ///
    /// # Panics
    /// Panics unless `weights` parallels the adjacency window and `edges`
    /// has the same length as the current record window.
    pub fn with_weights(&self, weights: &'a [Weight], edges: &'a [Edge]) -> Self {
        assert_eq!(weights.len(), self.adj.len(), "weights must parallel adj");
        assert_eq!(
            edges.len(),
            self.edges.len(),
            "edge records must keep their count"
        );
        CsrView {
            n: self.n,
            offsets: self.offsets,
            base: self.base,
            adj: self.adj,
            weights,
            edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (parallel edges and self-loops each count once).
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The local edge records.
    #[inline]
    pub fn edges(&self) -> &'a [Edge] {
        self.edges
    }

    /// The record of local edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e as usize]
    }

    /// Weight of local edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.edges[e as usize].w
    }

    /// Incidence list of `v` as `(neighbor, edge-id)` pairs.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &'a [(VertexId, EdgeId)] {
        let lo = (self.offsets[v as usize] - self.base) as usize;
        let hi = (self.offsets[v as usize + 1] - self.base) as usize;
        &self.adj[lo..hi]
    }

    /// Incidence list of `v` together with the parallel per-incidence
    /// weight slice — the relaxation loops' streaming access path.
    #[inline]
    pub fn incidences(&self, v: VertexId) -> (&'a [(VertexId, EdgeId)], &'a [Weight]) {
        let lo = (self.offsets[v as usize] - self.base) as usize;
        let hi = (self.offsets[v as usize + 1] - self.base) as usize;
        (&self.adj[lo..hi], &self.weights[lo..hi])
    }

    /// The full per-incidence weight window, parallel to the adjacency
    /// window (every edge appears once per endpoint). One sequential pass
    /// over this slice is how the SSSP engine decides bucket-queue
    /// eligibility without touching the edge records.
    #[inline]
    pub fn incidence_weights(&self) -> &'a [Weight] {
        self.weights
    }

    /// Incidence-list length of `v` (self-loops counted once).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + 'a {
        0..self.n as VertexId
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// True if the viewed graph contains no parallel edges or self-loops.
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.m());
        for e in self.edges {
            if e.is_self_loop() || !seen.insert(e.key()) {
                return false;
            }
        }
        true
    }

    /// Copies the view into an owned [`CsrGraph`] — the escape hatch for
    /// algorithms that need owned storage (e.g. the full de Pina loop on a
    /// non-reduced block). The result is bit-identical to the copied-layout
    /// block: same local ids, same edge order, same adjacency order.
    pub fn materialize(&self) -> CsrGraph {
        CsrGraph::from_edge_records(self.n, self.edges.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        CsrGraph::from_edges(
            5,
            &[
                (0, 1, 3),
                (1, 2, 5),
                (2, 0, 7),
                (2, 2, 9),
                (3, 4, 1),
                (3, 4, 2),
            ],
        )
    }

    #[test]
    fn whole_graph_view_mirrors_graph() {
        let g = sample();
        let v = g.view();
        assert_eq!(v.n(), g.n());
        assert_eq!(v.m(), g.m());
        assert_eq!(v.edges(), g.edges());
        assert_eq!(v.total_weight(), g.total_weight());
        assert_eq!(v.is_simple(), g.is_simple());
        for u in 0..g.n() as u32 {
            assert_eq!(v.neighbors(u), g.neighbors(u));
            assert_eq!(v.degree(u), g.degree(u));
            let (adj, wts) = v.incidences(u);
            assert_eq!(adj, g.neighbors(u));
            for (&(_, e), &w) in adj.iter().zip(wts) {
                assert_eq!(w, g.weight(e));
            }
        }
    }

    #[test]
    fn materialize_round_trips() {
        let g = sample();
        let m = g.view().materialize();
        assert_eq!(m.n(), g.n());
        assert_eq!(m.edges(), g.edges());
        for u in 0..g.n() as u32 {
            assert_eq!(m.neighbors(u), g.neighbors(u));
        }
    }

    #[test]
    fn with_weights_swaps_only_the_weight_layer() {
        let g = sample();
        let new_w: Vec<Weight> = g.edges().iter().map(|e| e.w * 10).collect();
        let h = g.reweighted(&new_w);
        let v = g
            .view()
            .with_weights(h.view().incidence_weights(), h.edges());
        assert_eq!(v.edges(), h.edges());
        for u in 0..g.n() as u32 {
            assert_eq!(v.neighbors(u), g.neighbors(u));
            assert_eq!(v.incidences(u), h.view().incidences(u));
        }
        assert_eq!(v.total_weight(), g.total_weight() * 10);
    }

    #[test]
    #[should_panic]
    fn inconsistent_windows_are_rejected() {
        let g = sample();
        let v = g.view();
        // Truncated weights slice must trip the parallel-slice check.
        let _ = CsrView::from_raw(v.n(), v.offsets, v.adj, &v.weights[1..], v.edges);
    }
}
