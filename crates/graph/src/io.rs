//! Plain-text graph interchange: Matrix Market and weighted edge lists.
//!
//! The paper's general-graph datasets come from the University of Florida
//! Sparse Matrix Collection, distributed as Matrix Market files; this module
//! reads the `coordinate` flavour (pattern, real or integer entries) and
//! interprets the matrix as an undirected graph the way the paper does:
//! one vertex per row/column index, one edge per stored off-diagonal entry,
//! symmetric duplicates collapsed.

use std::io::{BufRead, Write};

use crate::csr::CsrGraph;
use crate::types::Weight;

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the input text.
    Parse { line: usize, msg: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Reads a Matrix Market `coordinate` file as an undirected graph.
///
/// * Pattern matrices get unit weights.
/// * Real/integer values are taken as weights via `weight_of` (absolute
///   value, rounded, clamped to at least 1) so that metric algorithms see
///   positive integer weights.
/// * Diagonal entries (self-loops) are skipped.
/// * For `general` symmetry, entries `(i,j)` and `(j,i)` are collapsed.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CsrGraph, IoError> {
    let mut lines = reader.lines().enumerate();
    // Header.
    let (hline, header) = loop {
        match lines.next() {
            Some((i, l)) => {
                let l = l?;
                if !l.trim().is_empty() {
                    break (i + 1, l);
                }
            }
            None => return Err(parse_err(0, "empty file")),
        }
    };
    let h: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_ascii_lowercase())
        .collect();
    if h.len() < 4 || h[0] != "%%matrixmarket" || h[1] != "matrix" || h[2] != "coordinate" {
        return Err(parse_err(
            hline,
            "expected '%%MatrixMarket matrix coordinate ...' header",
        ));
    }
    let pattern = h[3] == "pattern";
    // Size line (skipping comments).
    let (n, _declared_nnz, size_line) = loop {
        match lines.next() {
            Some((i, l)) => {
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                let parts: Vec<&str> = t.split_whitespace().collect();
                if parts.len() < 3 {
                    return Err(parse_err(i + 1, "size line needs rows cols nnz"));
                }
                let rows: usize = parts[0]
                    .parse()
                    .map_err(|_| parse_err(i + 1, "bad row count"))?;
                let cols: usize = parts[1]
                    .parse()
                    .map_err(|_| parse_err(i + 1, "bad col count"))?;
                let nnz: usize = parts[2].parse().map_err(|_| parse_err(i + 1, "bad nnz"))?;
                break (rows.max(cols), nnz, i + 1);
            }
            None => return Err(parse_err(0, "missing size line")),
        }
    };
    let _ = size_line;
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for (i, l) in lines {
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() < 2 {
            return Err(parse_err(i + 1, "entry needs at least row and col"));
        }
        let r: usize = parts[0]
            .parse()
            .map_err(|_| parse_err(i + 1, "bad row index"))?;
        let c: usize = parts[1]
            .parse()
            .map_err(|_| parse_err(i + 1, "bad col index"))?;
        if r == 0 || c == 0 || r > n || c > n {
            return Err(parse_err(i + 1, "index out of declared range"));
        }
        if r == c {
            continue; // diagonal entry = self-loop; the paper's graphs drop these
        }
        let w: Weight = if pattern || parts.len() < 3 {
            1
        } else {
            weight_of(parts[2]).ok_or_else(|| parse_err(i + 1, "bad value"))?
        };
        let (a, b) = ((r - 1) as u32, (c - 1) as u32);
        let key = if a < b { (a, b) } else { (b, a) };
        if seen.insert(key) {
            edges.push((key.0, key.1, w));
        }
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Maps a textual numeric value to a positive integer weight: `|x|` rounded,
/// clamped to ≥ 1 so that zero-valued entries still denote unit edges.
fn weight_of(s: &str) -> Option<Weight> {
    let x: f64 = s.parse().ok()?;
    if !x.is_finite() {
        return None;
    }
    Some((x.abs().round() as u64).max(1))
}

/// Reads a whitespace-separated weighted edge list: each non-comment line is
/// `u v [w]` with zero-based vertex ids; `w` defaults to 1. The vertex count
/// is `max id + 1` unless a larger `min_n` is given.
pub fn read_edge_list<R: BufRead>(reader: R, min_n: usize) -> Result<CsrGraph, IoError> {
    let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
    let mut n = min_n;
    for (i, l) in reader.lines().enumerate() {
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() < 2 {
            return Err(parse_err(i + 1, "edge line needs u v [w]"));
        }
        let u: u32 = parts[0].parse().map_err(|_| parse_err(i + 1, "bad u"))?;
        let v: u32 = parts[1].parse().map_err(|_| parse_err(i + 1, "bad v"))?;
        let w: Weight = if parts.len() >= 3 {
            parts[2].parse().map_err(|_| parse_err(i + 1, "bad w"))?
        } else {
            1
        };
        n = n.max(u as usize + 1).max(v as usize + 1);
        edges.push((u, v, w));
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Writes a graph in the edge-list format accepted by [`read_edge_list`].
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# n={} m={}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(out, "{} {} {}", e.u, e.v, e.w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn matrix_market_pattern_symmetric() {
        let text = "\
%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 3
2 1
3 1
3 2
";
        let g = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(g.is_simple());
    }

    #[test]
    fn matrix_market_real_general_collapses_duplicates_and_diagonal() {
        let text = "\
%%MatrixMarket matrix coordinate real general
3 3 5
1 2 2.6
2 1 2.6
1 1 9.0
2 3 -4.4
3 2 -4.4
";
        let g = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(g.m(), 2);
        let ws: Vec<_> = g.edges().iter().map(|e| e.w).collect();
        assert!(ws.contains(&3)); // |2.6| rounds to 3
        assert!(ws.contains(&4)); // |-4.4| rounds to 4
    }

    #[test]
    fn matrix_market_rejects_bad_header() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn matrix_market_rejects_out_of_range_index() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 5\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 5), (2, 3, 7), (1, 2, 1)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf), 0).unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn edge_list_default_weight_and_min_n() {
        let g = read_edge_list(Cursor::new("0 1\n"), 10).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.weight(0), 1);
    }

    #[test]
    fn zero_value_entries_get_unit_weight() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 0.0\n";
        let g = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(g.weight(0), 1);
    }
}
