//! Breadth-first traversal and connected components.

use crate::csr::CsrGraph;
use crate::types::{EdgeId, VertexId};

/// A BFS tree: hop distances and predecessors from a single root.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// Root vertex.
    pub source: VertexId,
    /// Hop count from the root; `u32::MAX` when unreachable.
    pub level: Vec<u32>,
    /// Predecessor vertex; `u32::MAX` at root / unreachable.
    pub parent_vertex: Vec<VertexId>,
    /// Predecessor edge; `u32::MAX` at root / unreachable.
    pub parent_edge: Vec<EdgeId>,
    /// Vertices in visit order (root first).
    pub order: Vec<VertexId>,
}

/// Unweighted BFS levels from `source` (`u32::MAX` = unreachable).
pub fn bfs(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    bfs_tree(g, source).level
}

/// BFS producing the full tree and visit order.
pub fn bfs_tree(g: &CsrGraph, source: VertexId) -> BfsTree {
    let n = g.n();
    assert!((source as usize) < n, "source out of range");
    let mut level = vec![u32::MAX; n];
    let mut parent_vertex = vec![u32::MAX; n];
    let mut parent_edge = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    level[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &(v, e) in g.neighbors(u) {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u as usize] + 1;
                parent_vertex[v as usize] = u;
                parent_edge[v as usize] = e;
                queue.push_back(v);
            }
        }
    }
    BfsTree {
        source,
        level,
        parent_vertex,
        parent_edge,
        order,
    }
}

/// Connected-component labelling.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component id of each vertex, compact in `0..count`.
    pub comp: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// True when the whole graph is one component (or empty).
    pub fn is_connected(&self) -> bool {
        self.count <= 1
    }

    /// Groups vertex ids by component.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &c) in self.comp.iter().enumerate() {
            out[c as usize].push(v as VertexId);
        }
        out
    }
}

/// Labels connected components with a linear scan of BFS traversals.
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.n();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as u32 {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = count;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components {
        comp,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_levels_on_path() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(&g, 3), vec![3, 2, 1, 0]);
    }

    #[test]
    fn bfs_order_and_parents_consistent() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 4, 1)]);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.order[0], 0);
        assert_eq!(t.order.len(), 5);
        for &v in &t.order {
            if v != 0 {
                let p = t.parent_vertex[v as usize];
                assert_eq!(t.level[v as usize], t.level[p as usize] + 1);
                let e = g.edge(t.parent_edge[v as usize]);
                assert!(e.u == v && e.v == p || e.u == p && e.v == v);
            }
        }
    }

    #[test]
    fn bfs_unreachable_vertices_keep_sentinel() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1)]);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.level[2], u32::MAX);
        assert_eq!(t.order.len(), 2);
    }

    #[test]
    fn components_on_two_islands() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (3, 4, 1)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert!(!c.is_connected());
        assert_eq!(c.comp[0], c.comp[2]);
        assert_ne!(c.comp[0], c.comp[3]);
        let groups = c.members();
        assert_eq!(groups[c.comp[0] as usize].len(), 3);
        assert_eq!(groups[c.comp[3] as usize].len(), 2);
    }

    #[test]
    fn isolated_vertices_are_singleton_components() {
        let g = CsrGraph::from_edges(3, &[]);
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(connected_components(&g).is_connected());
    }

    #[test]
    fn self_loops_and_parallel_edges_do_not_confuse_traversal() {
        let g = CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 1), (0, 1, 2)]);
        assert_eq!(bfs(&g, 0), vec![0, 1]);
        assert_eq!(connected_components(&g).count, 1);
    }
}
