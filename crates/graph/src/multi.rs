//! Lane-batched multi-source SSSP: K Dijkstra instances advanced in
//! lockstep over one shared CSR edge scan.
//!
//! The oracle build is "one Dijkstra per reduced-block vertex" — a
//! `Σ nᵢ²` loop over *small* graphs where per-run fixed costs (scratch
//! reset, heap setup, result extraction) rival the traversal itself.
//! [`MultiSsspEngine`] amortises them across a batch of up to [`LANES`]
//! sources of the *same* graph:
//!
//! * **Lane rows** — per vertex, one `[Weight; LANES]` distance row plus
//!   `u8` touched/settled bitmasks. All lanes relaxing an edge into `v`
//!   hit the same cache lines, and the batch resets scratch once, not
//!   once per source.
//! * **Lockstep rounds with a shared scan** — each round pops one vertex
//!   per still-active lane; lanes that popped the *same* vertex share a
//!   single pass over its CSR adjacency, relaxing their lanes off one
//!   `(neighbor, edge)` load.
//! * **Two frontiers** — small graphs (the reduced-block design point)
//!   use a shared linear scan over the active rows: one pass per round
//!   refreshes every lane's minimum at once and relaxations pay no heap
//!   maintenance at all. Larger graphs switch to per-lane indexed 4-ary
//!   heaps ([`SCAN_CUTOFF`]) to keep the asymptotics of the scalar
//!   engine. Both pop the minimum `(dist, vertex)` per lane, so both are
//!   bit-identical to [`crate::engine::SsspEngine`].
//! * **Delegated scalar fallback** — single-source batches, duplicate
//!   sources within a batch, and tiny graphs run through per-lane owned
//!   scalar engines with queries forwarded, so the query surface is
//!   uniform regardless of which path executed. [`BatchPolicy::Auto`]
//!   (the default) currently delegates *every* batch this way: measured
//!   across the bench block profiles, the lockstep paths trail the
//!   per-lane scalar engines at every block size (see the policy docs),
//!   so the lockstep loop is opt-in via [`BatchPolicy::Lanes`]. One level
//!   up, batched-mode *dispatch* skips the lane engine entirely for
//!   blocks narrower than [`MIN_BATCH_VERTICES`], where even the minimal
//!   per-batch shell is a double-digit fraction of a scalar run, and for
//!   blocks wider than [`MAX_BATCH_VERTICES`], where the lanes' aggregate
//!   scratch footprint outgrows the last-level cache a single pooled
//!   engine would stay warm in.
//!
//! Every lane is an *independent, conforming* Dijkstra: it pops the
//! minimum `(dist, vertex)` among its touched-unsettled vertices and
//! relaxes that vertex's incidences in CSR order, which pins down the
//! settle order, every distance, the `(distance, vertex, edge)` parent
//! tie-break and all three [`DijkstraStats`] counters. The differential
//! suite (`tests/sssp_multi_differential.rs`) holds the engine to that
//! contract on every testkit family.

use std::cell::RefCell;
use std::sync::{Mutex, OnceLock};

use crate::csr::CsrGraph;
use crate::dijkstra::{tie_prefers, DijkstraStats, SsspTree};
use crate::engine::SsspEngine;
use crate::types::{EdgeId, VertexId, Weight, INF};
use crate::view::CsrView;

/// Distance lanes per batch: one source per lane, one `[Weight; LANES]`
/// row per vertex. Eight keeps a row exactly one cache line.
pub const LANES: usize = 8;

/// Per-vertex lane bitmask (bit `i` = lane `i`).
pub type LaneMask = u8;

/// Vertex count at or below which the lockstep loop uses the shared
/// linear frontier scan instead of per-lane heaps.
const SCAN_CUTOFF: usize = 64;

/// `pos` sentinel: not currently in the lane's heap.
const NOT_IN_HEAP: u32 = u32::MAX;

/// Which SSSP engine the batch-capable pipelines drive.
///
/// `Scalar` is the retained differential baseline (exactly as
/// [`crate::dijkstra::legacy`] backs the scalar engine); `Batched` routes
/// the per-source loops through [`MultiSsspEngine`] lane batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SsspMode {
    /// One pooled [`SsspEngine`] run per source.
    Scalar,
    /// Lane batches of up to [`LANES`] sources per [`MultiSsspEngine`] run.
    Batched,
}

impl SsspMode {
    /// Reads the process-wide default from `EAR_SSSP_BATCHED` (cached on
    /// first call): `1`/`true`/`on` select [`SsspMode::Batched`].
    pub fn from_env() -> SsspMode {
        static MODE: OnceLock<SsspMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("EAR_SSSP_BATCHED").ok().as_deref() {
            Some("1") | Some("true") | Some("on") => SsspMode::Batched,
            _ => SsspMode::Scalar,
        })
    }
}

/// How [`MultiSsspEngine`] decides between the lockstep lane loop and the
/// delegated per-lane scalar fallback.
///
/// Correctness-mandatory fallbacks (single-source batches, duplicate
/// sources, `n <= 2`) apply under every policy; the policy only governs
/// the discretionary choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Measured dispatch — currently the delegated per-lane scalar
    /// engines for every batch, the production default.
    ///
    /// Calibration over the bench block profiles (`sssp_engine`, all
    /// families) put the lockstep paths behind the delegation at every
    /// block size: the shared frontier scan refreshes each lane's
    /// minimum from the same pass but still pays one `[Weight; LANES]`
    /// row probe per active lane per round (1.2–2.2× slower than
    /// per-lane heaps on reduced blocks with `n ≤ 64`), and heap-mode
    /// lanes pay a `[u32; LANES]`-strided `pos` row per relaxation
    /// (~1.2× at `n ≈ 256`). Cross-lane scan sharing only amortises when
    /// lanes co-pop a vertex in the same round, which distinct sources
    /// almost never do. The delegation *is* the scalar engine (one
    /// pooled instance per lane, queries forwarded), so batched mode
    /// tracks scalar mode to within dispatch noise — this is what keeps
    /// `--batched` within the 0.95× floor on every bench family. This
    /// variant is the single place to re-admit a lane band if a target
    /// ever measures one ahead.
    #[default]
    Auto,
    /// Always the lane loop (differential tests pin this to keep both
    /// lockstep frontier modes covered and bit-identical).
    Lanes,
    /// Always the delegated scalar fallback.
    Fallback,
}

/// Vertex count below which batched-mode dispatch should not form lane
/// batches at all. A block narrower than the lane width cannot fill even
/// one batch, and on such blocks a scalar run costs tens of nanoseconds —
/// the minimal per-batch dispatch (policy check, source copy, delegated
/// query indirection) shows up as a double-digit relative cost. Pipelines
/// compare the block's vertex count against this before calling
/// [`lane_batches`] and hand smaller blocks to the pooled scalar engine;
/// the lane engine itself still accepts any batch.
pub const MIN_BATCH_VERTICES: usize = LANES;

/// Vertex count above which batched-mode dispatch should stop forming
/// lane batches. The delegated batch keeps [`LANES`] scalar engines live
/// at once, so its scratch footprint is `LANES ×` the single engine's
/// ~24 bytes per vertex; past this size the aggregate outgrows the
/// cache tier that a *single* pooled engine keeps its working set warm
/// in across back-to-back sources, and the batch measurably trails the
/// scalar loop (≈0.96× on 15–25 K-vertex blocks, ≈0.92× at 60–100 K)
/// with no dispatch saving to show for it. The bound sits where the
/// aggregate lane scratch reaches L2 scale (`LANES × 8 Ki × ~24 B ≈
/// 1.5 MiB`). As with [`MIN_BATCH_VERTICES`], pipelines check the
/// block's vertex count and hand oversized blocks to the pooled scalar
/// engine; the lane engine itself still accepts any batch.
pub const MAX_BATCH_VERTICES: usize = 8 * 1024;

/// Splits `total` sources into `(start, len)` lane batches of at most
/// [`LANES`], in source order. The tail batch carries the remainder.
pub fn lane_batches(total: u32) -> impl Iterator<Item = (u32, u32)> {
    (0..total).step_by(LANES).map(move |start| {
        let len = (total - start).min(LANES as u32);
        (start, len)
    })
}

/// Per-(vertex, lane) tree state (tree runs only).
#[derive(Clone, Copy, Debug)]
struct ParentLane {
    vertex: VertexId,
    edge: EdgeId,
    depth: u32,
}

const PARENT_RESTING: ParentLane = ParentLane {
    vertex: u32::MAX,
    edge: u32::MAX,
    depth: 0,
};

/// A reusable lane-batched multi-source Dijkstra instance.
///
/// One engine serves one batch at a time; the query methods
/// ([`dist`](Self::dist), [`dist_vec`](Self::dist_vec),
/// [`tree`](Self::tree), [`stats`](Self::stats)) read the most recent
/// batch by lane index. Like the scalar engine, scratch grows
/// monotonically and is reused across graphs of different sizes.
#[derive(Debug)]
pub struct MultiSsspEngine {
    /// Vertex count of the most recent batch's graph.
    n: usize,
    /// Active lanes of the most recent batch.
    k: usize,
    /// Sources of the most recent batch (first `k` entries live).
    sources: [VertexId; LANES],
    /// Whether the most recent batch recorded parent pointers.
    tree_run: bool,
    /// Whether the most recent batch ran through the scalar fallback.
    fallback: bool,
    /// Whether the most recent lane run dirtied the `pos` rows.
    pos_dirty: bool,
    /// Per-vertex distance rows; resting value `[INF; LANES]`.
    dist: Vec<[Weight; LANES]>,
    /// Lanes that wrote `v` this batch; resting value 0.
    touched_mask: Vec<LaneMask>,
    /// Lanes that settled `v` this batch; resting value 0.
    settled_mask: Vec<LaneMask>,
    /// Per-(vertex, lane) heap slots (heap mode only); resting
    /// [`NOT_IN_HEAP`].
    pos: Vec<[u32; LANES]>,
    /// Per-(vertex, lane) parents; validity guarded by `touched_mask`.
    parent: Vec<[ParentLane; LANES]>,
    /// Per-lane 4-ary heaps, keys `(dist, vertex)` inline.
    heaps: Vec<Vec<(Weight, VertexId)>>,
    /// Every vertex any lane wrote this batch (reset list).
    touched: Vec<VertexId>,
    /// Scan-mode working set: touched vertices with at least one
    /// touched-but-unsettled lane.
    frontier: Vec<VertexId>,
    /// Scan-mode frontier membership (1 = in `frontier`); resting 0.
    /// Lets the pop pass compact rows whose touched lanes are all
    /// settled while still re-admitting them if a later lane arrives.
    in_frontier: Vec<u8>,
    /// Per-lane settle orders.
    orders: Vec<Vec<VertexId>>,
    /// Per-lane run counters.
    stats: Vec<DijkstraStats>,
    /// Lane-vs-fallback selection; see [`BatchPolicy`].
    policy: BatchPolicy,
    /// Owned per-lane scalar engines backing the fallback path. Fallback
    /// batches run each source on its own engine and every query method
    /// *delegates* to it — nothing is copied into the lane rows, so the
    /// fallback costs exactly one scalar run per source. A fixed-size
    /// array (not a `Vec`) so delegated queries index it without a
    /// bounds check.
    scalars: Box<[SsspEngine; LANES]>,
}

impl Default for MultiSsspEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl MultiSsspEngine {
    /// An empty engine; arrays grow on first use.
    pub fn new() -> Self {
        MultiSsspEngine {
            n: 0,
            k: 0,
            sources: [0; LANES],
            tree_run: false,
            fallback: false,
            pos_dirty: false,
            dist: Vec::new(),
            touched_mask: Vec::new(),
            settled_mask: Vec::new(),
            pos: Vec::new(),
            parent: Vec::new(),
            heaps: vec![Vec::new(); LANES],
            touched: Vec::new(),
            frontier: Vec::new(),
            in_frontier: Vec::new(),
            orders: vec![Vec::new(); LANES],
            stats: vec![DijkstraStats::default(); LANES],
            policy: BatchPolicy::default(),
            scalars: Box::new(std::array::from_fn(|_| SsspEngine::new())),
        }
    }

    /// Sets the lane-vs-fallback selection policy (sticky across batches).
    pub fn set_policy(&mut self, policy: BatchPolicy) {
        self.policy = policy;
    }

    /// The current [`BatchPolicy`].
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Grows the scratch arrays to hold `n` vertices (never shrinks). New
    /// entries start in the resting state the reset loop maintains.
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, [INF; LANES]);
            self.touched_mask.resize(n, 0);
            self.settled_mask.resize(n, 0);
            self.pos.resize(n, [NOT_IN_HEAP; LANES]);
            self.parent.resize(n, [PARENT_RESTING; LANES]);
            self.in_frontier.resize(n, 0);
        }
    }

    /// Distances-only batch over up to [`LANES`] sources of `g`. Lane `i`
    /// afterwards answers queries for `sources[i]`.
    #[inline]
    pub fn run_batch(&mut self, g: &CsrGraph, sources: &[VertexId]) {
        self.run_inner::<false>(g.view(), sources);
    }

    /// Full shortest-path-tree batch with the deterministic
    /// `(distance, vertex, edge)` parent tie-break per lane.
    #[inline]
    pub fn run_batch_trees(&mut self, g: &CsrGraph, sources: &[VertexId]) {
        self.run_inner::<true>(g.view(), sources);
    }

    /// [`run_batch`](Self::run_batch) on a borrowed [`CsrView`] (whole
    /// graph or arena block window) — same code path, bit-identical.
    #[inline]
    pub fn run_batch_view(&mut self, g: CsrView<'_>, sources: &[VertexId]) {
        self.run_inner::<false>(g, sources);
    }

    /// [`run_batch_trees`](Self::run_batch_trees) on a borrowed [`CsrView`].
    #[inline]
    pub fn run_batch_trees_view(&mut self, g: CsrView<'_>, sources: &[VertexId]) {
        self.run_inner::<true>(g, sources);
    }

    // Inlined so the per-batch dispatch shell (policy branch, source
    // copy, obs tail) fuses into the caller's batch loop; the delegated
    // fallback then costs k `run_view` calls plus a handful of stores,
    // which is what keeps `Auto` batches at parity with a hand-written
    // scalar-engine loop even on 4-vertex reduced blocks.
    #[inline]
    fn run_inner<const WANT_TREE: bool>(&mut self, g: CsrView<'_>, sources: &[VertexId]) {
        let k = sources.len();
        assert!(
            (1..=LANES).contains(&k),
            "batch must hold 1..={LANES} sources, got {k}"
        );
        let n = g.n();
        let _span = ear_obs::span_with("sssp.multi.batch", k as u64);
        self.k = k;
        // Hand-rolled copy: `copy_from_slice` on an unknown-length slice
        // compiles to a `memcpy` call, which costs more than the ≤8
        // stores it replaces on this per-batch dispatch path.
        for (dst, &s) in self.sources.iter_mut().zip(sources) {
            *dst = s;
        }
        self.tree_run = WANT_TREE;

        // Straggler batches — a lone source, duplicate sources sharing a
        // lane row, or a graph too small to win anything from lanes — must
        // take the scalar path under every policy; `Auto` delegates every
        // batch there (see its docs for the calibration). The fallback
        // delegates queries to per-lane scalar engines, so the two code
        // paths stay bit-identical by construction. The delegated path
        // never touches the lane-major scratch, so it skips the
        // capacity/reset work entirely — stale lane rows from an earlier
        // lockstep batch stay on the `touched` list and are cleared by
        // the next lockstep batch's reset.
        self.fallback = match self.policy {
            BatchPolicy::Auto | BatchPolicy::Fallback => true,
            BatchPolicy::Lanes => {
                k < 2 || n <= 2 || (1..k).any(|i| sources[..i].contains(&sources[i]))
            }
        };
        if self.fallback {
            // Source-range checks are the delegated engines' own; nothing
            // is duplicated on the hot dispatch path.
            self.run_fallback::<WANT_TREE>(g, sources);
        } else {
            self.run_lockstep::<WANT_TREE>(g, sources);
        }

        if ear_obs::is_enabled() {
            ear_obs::counter_add("sssp.multi.batches", 1);
            ear_obs::counter_add("sssp.multi.sources", k as u64);
            ear_obs::histogram_record("sssp.multi.lane_occupancy", k as u64);
            if self.fallback {
                // The scalar engine published the per-run `sssp.*` series
                // itself; only the delegated-batch count is ours to record.
                ear_obs::counter_add("sssp.multi.stragglers", 1);
            } else {
                ear_obs::counter_add("sssp.runs", k as u64);
                for lane in 0..k {
                    let st = self.stats[lane];
                    ear_obs::counter_add("sssp.settled", st.settled);
                    ear_obs::counter_add("sssp.edges_relaxed", st.edges_relaxed);
                    ear_obs::counter_add("sssp.heap_pushes", st.heap_pushes);
                    ear_obs::histogram_record("sssp.settled_per_run", st.settled);
                }
            }
        }
    }

    /// Restores the resting invariant (`dist == INF`, masks 0, `pos ==
    /// NOT_IN_HEAP`) for everything the previous batch wrote — O(touched
    /// rows), mirroring the scalar engine's reset. Parent rows are *not*
    /// reset; `touched_mask` guards their validity lazily.
    fn reset(&mut self) {
        let reset_pos = self.pos_dirty;
        for &v in &self.touched {
            let vi = v as usize;
            self.dist[vi] = [INF; LANES];
            self.touched_mask[vi] = 0;
            self.settled_mask[vi] = 0;
            self.in_frontier[vi] = 0;
            if reset_pos {
                self.pos[vi] = [NOT_IN_HEAP; LANES];
            }
        }
        self.touched.clear();
        self.frontier.clear();
        for lane in 0..LANES {
            self.heaps[lane].clear();
            self.orders[lane].clear();
            self.stats[lane] = DijkstraStats::default();
        }
        self.pos_dirty = false;
    }

    /// Lockstep-arm entry: validation, scratch sizing and reset, then the
    /// lane loop in the frontier mode `n` selects. Deliberately *not*
    /// inline — it keeps the inlined dispatch shell small.
    fn run_lockstep<const WANT_TREE: bool>(&mut self, g: CsrView<'_>, sources: &[VertexId]) {
        let n = g.n();
        for &s in sources {
            assert!((s as usize) < n, "source {s} out of range");
        }
        assert!(
            n <= (u32::MAX - 2) as usize,
            "graph too large for MultiSsspEngine"
        );
        self.ensure_capacity(n);
        self.reset();
        self.n = n;
        if n <= SCAN_CUTOFF {
            self.run_lanes::<WANT_TREE, true>(g, sources);
        } else {
            self.run_lanes::<WANT_TREE, false>(g, sources);
        }
    }

    /// The lockstep lane loop. `SCAN` selects the shared linear frontier
    /// scan (small graphs) or the per-lane indexed 4-ary heaps.
    fn run_lanes<const WANT_TREE: bool, const SCAN: bool>(
        &mut self,
        g: CsrView<'_>,
        sources: &[VertexId],
    ) {
        let k = sources.len();
        self.pos_dirty = !SCAN;
        for (lane, &s) in sources.iter().enumerate() {
            let si = s as usize;
            let bit = 1u8 << lane;
            if self.touched_mask[si] == 0 {
                self.touched.push(s);
            }
            self.touched_mask[si] |= bit;
            if SCAN && self.in_frontier[si] == 0 {
                self.in_frontier[si] = 1;
                self.frontier.push(s);
            }
            self.dist[si][lane] = 0;
            if WANT_TREE {
                self.parent[si][lane] = PARENT_RESTING;
            }
            if !SCAN {
                heap_insert(&mut self.heaps[lane], &mut self.pos, lane, 0, s);
            }
        }
        let mut edges_relaxed = [0u64; LANES];
        let mut heap_pushes = [0u64; LANES];

        loop {
            // ---- pop phase: the minimum (dist, vertex) per active lane,
            // grouped by vertex so co-popping lanes share one edge scan.
            let mut group_v = [0u32; LANES];
            let mut group_mask = [0u8; LANES];
            let mut groups = 0usize;
            if SCAN {
                // One pass over the frontier refreshes every lane's
                // minimum at once; rows with no touched-but-unsettled
                // lane left are compacted out in the same pass (a lane
                // arriving later re-admits them via `in_frontier`).
                let mut best = [(INF, u32::MAX); LANES];
                let mut keep = 0usize;
                for i in 0..self.frontier.len() {
                    let v = self.frontier[i];
                    let vi = v as usize;
                    let active = self.touched_mask[vi] & !self.settled_mask[vi];
                    if active == 0 {
                        self.in_frontier[vi] = 0;
                        continue;
                    }
                    self.frontier[keep] = v;
                    keep += 1;
                    let mut m = active;
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let d = self.dist[vi][lane];
                        // A tie-touched-at-INF vertex never enters the
                        // scalar heap and must not settle here either.
                        if d < INF && (d, v) < best[lane] {
                            best[lane] = (d, v);
                        }
                    }
                }
                self.frontier.truncate(keep);
                for (lane, &(d, u)) in best.iter().enumerate().take(k) {
                    if u == u32::MAX {
                        continue;
                    }
                    debug_assert!(d < INF);
                    self.settle(lane, u, &mut group_v, &mut group_mask, &mut groups);
                }
            } else {
                for lane in 0..k {
                    let Some((_, u)) = heap_pop_min(&mut self.heaps[lane], &mut self.pos, lane)
                    else {
                        continue;
                    };
                    self.settle(lane, u, &mut group_v, &mut group_mask, &mut groups);
                }
            }
            if groups == 0 {
                break;
            }

            // ---- scan phase: one pass over each popped vertex's CSR
            // adjacency, relaxing every lane that popped it.
            for gi in 0..groups {
                let u = group_v[gi];
                let mask = group_mask[gi];
                let ui = u as usize;
                let (nbrs, wts) = g.incidences(u);
                // Every incidence (self-loops included) counts once per
                // popping lane — the scalar engine's accounting. Lanes are
                // outermost: their states are independent, so relax order
                // across lanes is unobservable, and the (overwhelmingly
                // common) single-lane group becomes a tight scalar loop
                // over the shared, cache-hot edge slice.
                let mut lanes = mask;
                while lanes != 0 {
                    let lane = lanes.trailing_zeros() as usize;
                    lanes &= lanes - 1;
                    let bit = 1u8 << lane;
                    edges_relaxed[lane] += nbrs.len() as u64;
                    let du = self.dist[ui][lane];
                    let udepth = if WANT_TREE {
                        self.parent[ui][lane].depth
                    } else {
                        0
                    };
                    // `w` streams from the parallel weights window instead
                    // of a random `edges[e]` gather per relaxation.
                    for (&(v, e), &w) in nbrs.iter().zip(wts) {
                        if v == u {
                            continue; // self-loops never improve a distance
                        }
                        let vi = v as usize;
                        let nd = du + w;
                        let cur = self.dist[vi][lane];
                        let strictly_better = nd < cur;
                        // `nd == cur == INF` on an untouched lane
                        // replicates the legacy parent tie against the
                        // (u32::MAX, u32::MAX) sentinel pair.
                        let tie_better =
                            WANT_TREE && nd == cur && self.settled_mask[vi] & bit == 0 && {
                                let (pv, pe) = if self.touched_mask[vi] & bit != 0 {
                                    let p = self.parent[vi][lane];
                                    (p.vertex, p.edge)
                                } else {
                                    (u32::MAX, u32::MAX)
                                };
                                tie_prefers(u, e, pv, pe)
                            };
                        if strictly_better || tie_better {
                            if self.touched_mask[vi] == 0 {
                                self.touched.push(v);
                            }
                            self.touched_mask[vi] |= bit;
                            if SCAN && self.in_frontier[vi] == 0 {
                                self.in_frontier[vi] = 1;
                                self.frontier.push(v);
                            }
                            self.dist[vi][lane] = nd;
                            if WANT_TREE {
                                self.parent[vi][lane] = ParentLane {
                                    vertex: u,
                                    edge: e,
                                    depth: udepth + 1,
                                };
                            }
                            if strictly_better {
                                heap_pushes[lane] += 1;
                                if !SCAN {
                                    let p = self.pos[vi][lane];
                                    if p == NOT_IN_HEAP {
                                        heap_insert(
                                            &mut self.heaps[lane],
                                            &mut self.pos,
                                            lane,
                                            nd,
                                            v,
                                        );
                                    } else {
                                        heap_decrease(
                                            &mut self.heaps[lane],
                                            &mut self.pos,
                                            lane,
                                            p as usize,
                                            nd,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        for lane in 0..k {
            self.stats[lane] = DijkstraStats {
                settled: self.orders[lane].len() as u64,
                edges_relaxed: edges_relaxed[lane],
                heap_pushes: heap_pushes[lane],
            };
        }
    }

    /// Records a pop: settle bookkeeping plus round-group insertion
    /// (lanes that popped the same vertex share its edge scan).
    #[inline]
    fn settle(
        &mut self,
        lane: usize,
        u: VertexId,
        group_v: &mut [u32; LANES],
        group_mask: &mut [u8; LANES],
        groups: &mut usize,
    ) {
        self.settled_mask[u as usize] |= 1 << lane;
        self.orders[lane].push(u);
        for gi in 0..*groups {
            if group_v[gi] == u {
                group_mask[gi] |= 1 << lane;
                return;
            }
        }
        group_v[*groups] = u;
        group_mask[*groups] = 1 << lane;
        *groups += 1;
    }

    /// Fallback path: one scalar run per source on that lane's owned
    /// engine. Nothing is copied into the lane rows — the query methods
    /// delegate to `scalars[lane]` while `fallback` is set — so this path
    /// costs exactly `k` scalar runs plus dispatch, which is what lets
    /// [`BatchPolicy::Auto`] hand large graphs to it without regressing
    /// against the scalar engine.
    fn run_fallback<const WANT_TREE: bool>(&mut self, g: CsrView<'_>, sources: &[VertexId]) {
        for (eng, &s) in self.scalars.iter_mut().zip(sources) {
            if WANT_TREE {
                eng.run_tree_view(g, s);
            } else {
                eng.run_view(g, s);
            }
        }
    }

    // ---- queries over the most recent batch ----

    /// Active lanes of the most recent batch.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Source assigned to `lane` in the most recent batch.
    #[inline]
    pub fn source(&self, lane: usize) -> VertexId {
        assert!(lane < self.k, "lane {lane} out of range (k = {})", self.k);
        self.sources[lane]
    }

    /// True when the most recent batch took the scalar straggler path.
    #[inline]
    pub fn was_fallback(&self) -> bool {
        self.fallback
    }

    /// Distance from lane `lane`'s source to `v` (`INF` when unreachable
    /// or out of range).
    #[inline]
    pub fn dist(&self, lane: usize, v: VertexId) -> Weight {
        assert!(lane < self.k, "lane {lane} out of range (k = {})", self.k);
        if self.fallback {
            // The mask is a no-op (`lane < k <= LANES`) that lets the
            // compiler drop the bounds check on the fixed-size array —
            // this read sits in per-vertex result-extraction loops.
            return self.scalars[lane & (LANES - 1)].dist(v);
        }
        let vi = v as usize;
        if vi < self.n {
            self.dist[vi][lane]
        } else {
            INF
        }
    }

    /// Materialises lane `lane`'s distance array (`INF` for untouched
    /// vertices) — bit-identical to the scalar engine's `dist_vec`.
    pub fn dist_vec(&self, lane: usize) -> Vec<Weight> {
        assert!(lane < self.k, "lane {lane} out of range (k = {})", self.k);
        if self.fallback {
            return self.scalars[lane].dist_vec();
        }
        let mut out = vec![INF; self.n];
        for &v in &self.touched {
            out[v as usize] = self.dist[v as usize][lane];
        }
        out
    }

    /// Operation counters of lane `lane`'s run.
    #[inline]
    pub fn stats(&self, lane: usize) -> DijkstraStats {
        assert!(lane < self.k, "lane {lane} out of range (k = {})", self.k);
        if self.fallback {
            return self.scalars[lane & (LANES - 1)].stats();
        }
        self.stats[lane]
    }

    /// Settle order of lane `lane` (non-decreasing distance pop order).
    pub fn settle_order(&self, lane: usize) -> &[VertexId] {
        assert!(lane < self.k, "lane {lane} out of range (k = {})", self.k);
        if self.fallback {
            return self.scalars[lane].settle_order();
        }
        &self.orders[lane]
    }

    /// Lanes that settled `v` in the most recent batch.
    pub fn settled_lanes(&self, v: VertexId) -> LaneMask {
        if self.fallback {
            let mut mask = 0u8;
            for lane in 0..self.k {
                if self.scalars[lane].is_settled(v) {
                    mask |= 1 << lane;
                }
            }
            return mask;
        }
        let vi = v as usize;
        if vi < self.n {
            self.settled_mask[vi] & lane_mask(self.k)
        } else {
            0
        }
    }

    /// Materialises lane `lane`'s shortest-path tree, bit-identical to
    /// [`SsspEngine::tree`] for the same source.
    ///
    /// # Panics
    /// Panics if the most recent batch was distances-only.
    pub fn tree(&self, lane: usize) -> SsspTree {
        assert!(
            self.tree_run,
            "MultiSsspEngine::tree() requires a preceding run_batch_trees()"
        );
        assert!(lane < self.k, "lane {lane} out of range (k = {})", self.k);
        if self.fallback {
            return self.scalars[lane].tree();
        }
        let bit = 1u8 << lane;
        let n = self.n;
        let mut dist = vec![INF; n];
        let mut parent_vertex = vec![u32::MAX; n];
        let mut parent_edge = vec![u32::MAX; n];
        let mut depths = vec![0u32; n];
        for &v in &self.touched {
            let vi = v as usize;
            if self.touched_mask[vi] & bit == 0 {
                continue;
            }
            dist[vi] = self.dist[vi][lane];
            let p = self.parent[vi][lane];
            parent_vertex[vi] = p.vertex;
            parent_edge[vi] = p.edge;
            depths[vi] = p.depth;
        }
        SsspTree {
            source: self.sources[lane],
            dist,
            parent_vertex,
            parent_edge,
            depths,
            settle_order: self.orders[lane].clone(),
            stats: self.stats[lane],
        }
    }
}

#[inline]
fn lane_mask(k: usize) -> LaneMask {
    debug_assert!((1..=LANES).contains(&k));
    if k == LANES {
        u8::MAX
    } else {
        (1u8 << k) - 1
    }
}

// ---- per-lane indexed 4-ary heaps (one `pos` column per lane) ----
//
// Free functions rather than methods so the lockstep loop can borrow one
// lane's heap and the shared `pos` rows disjointly from `self`.

#[inline(always)]
fn heap_insert(
    heap: &mut Vec<(Weight, VertexId)>,
    pos: &mut [[u32; LANES]],
    lane: usize,
    key: Weight,
    v: VertexId,
) {
    let i = heap.len();
    heap.push((key, v));
    sift_up(heap, pos, lane, i);
}

#[inline(always)]
fn heap_decrease(
    heap: &mut [(Weight, VertexId)],
    pos: &mut [[u32; LANES]],
    lane: usize,
    i: usize,
    key: Weight,
) {
    debug_assert!(heap[i].0 >= key);
    heap[i].0 = key;
    sift_up(heap, pos, lane, i);
}

#[inline(always)]
fn heap_pop_min(
    heap: &mut Vec<(Weight, VertexId)>,
    pos: &mut [[u32; LANES]],
    lane: usize,
) -> Option<(Weight, VertexId)> {
    let top = *heap.first()?;
    pos[top.1 as usize][lane] = NOT_IN_HEAP;
    let last = heap.pop().expect("heap is non-empty");
    if !heap.is_empty() {
        heap[0] = last;
        sift_down(heap, pos, lane, 0);
    }
    Some(top)
}

fn sift_up(heap: &mut [(Weight, VertexId)], pos: &mut [[u32; LANES]], lane: usize, mut i: usize) {
    let entry = heap[i];
    while i > 0 {
        let p = (i - 1) / 4;
        let parent = heap[p];
        if entry < parent {
            heap[i] = parent;
            pos[parent.1 as usize][lane] = i as u32;
            i = p;
        } else {
            break;
        }
    }
    heap[i] = entry;
    pos[entry.1 as usize][lane] = i as u32;
}

fn sift_down(heap: &mut [(Weight, VertexId)], pos: &mut [[u32; LANES]], lane: usize, mut i: usize) {
    let entry = heap[i];
    let len = heap.len();
    loop {
        let first = 4 * i + 1;
        if first >= len {
            break;
        }
        let end = (first + 4).min(len);
        let mut best = first;
        let mut best_entry = heap[first];
        for (c, &e) in heap.iter().enumerate().take(end).skip(first + 1) {
            if e < best_entry {
                best = c;
                best_entry = e;
            }
        }
        if best_entry < entry {
            heap[i] = best_entry;
            pos[best_entry.1 as usize][lane] = i as u32;
            i = best;
        } else {
            break;
        }
    }
    heap[i] = entry;
    pos[entry.1 as usize][lane] = i as u32;
}

// ---- per-thread engine pool (mirrors `engine::with_engine`) ----

/// Global free list feeding threads that have no multi engine yet.
static FREE_MULTI: Mutex<Vec<MultiSsspEngine>> = Mutex::new(Vec::new());
const MAX_POOLED: usize = 64;

thread_local! {
    static TLS_MULTI: RefCell<TlsSlot> = const { RefCell::new(TlsSlot(None)) };
}

/// Thread-local slot whose `Drop` returns the engine to the global free
/// list, so warm lane scratch outlives the executor's short-lived worker
/// threads (same lifecycle as the scalar engine pool).
struct TlsSlot(Option<MultiSsspEngine>);

impl Drop for TlsSlot {
    fn drop(&mut self) {
        if let Some(e) = self.0.take() {
            recycle(e);
        }
    }
}

fn recycle(e: MultiSsspEngine) {
    if let Ok(mut free) = FREE_MULTI.lock() {
        if free.len() < MAX_POOLED {
            free.push(e);
        }
    }
}

fn checkout() -> MultiSsspEngine {
    if let Ok(Some(e)) = TLS_MULTI.try_with(|slot| slot.borrow_mut().0.take()) {
        ear_obs::counter_add("sssp.multi.pool.tls_hits", 1);
        return e;
    }
    if let Some(e) = FREE_MULTI.lock().ok().and_then(|mut v| v.pop()) {
        ear_obs::counter_add("sssp.multi.pool.freelist_hits", 1);
        return e;
    }
    ear_obs::counter_add("sssp.multi.pool.misses", 1);
    MultiSsspEngine::new()
}

fn checkin(e: MultiSsspEngine) {
    match TLS_MULTI.try_with(|slot| slot.borrow_mut().0.replace(e)) {
        Ok(Some(displaced)) => recycle(displaced),
        Ok(None) => {}
        Err(_) => {}
    }
}

/// Runs `f` with a pooled per-thread [`MultiSsspEngine`] (thread-local
/// slot, then global free list, then fresh — exactly the
/// [`crate::engine::with_engine`] lifecycle).
pub fn with_multi_engine<R>(f: impl FnOnce(&mut MultiSsspEngine) -> R) -> R {
    let mut engine = checkout();
    let r = f(&mut engine);
    checkin(engine);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::legacy;

    fn theta() -> CsrGraph {
        CsrGraph::from_edges(
            5,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (0, 2, 10),
                (0, 3, 3),
                (3, 2, 4),
                (2, 4, 1),
            ],
        )
    }

    fn assert_lane_matches(g: &CsrGraph, me: &MultiSsspEngine, lane: usize, s: VertexId) {
        let (ld, lstats) = legacy::dijkstra_with_stats(g, s);
        assert_eq!(me.stats(lane), lstats, "lane {lane} stats");
        assert_eq!(me.dist_vec(lane), ld, "lane {lane} dist_vec");
        for v in 0..g.n() as u32 {
            assert_eq!(me.dist(lane, v), ld[v as usize], "lane {lane} dist({v})");
        }
        assert_eq!(me.dist(lane, g.n() as u32), INF);
    }

    #[test]
    fn full_batch_matches_legacy() {
        // `Lanes` pins the lockstep loop (the default `Auto` delegates to
        // the scalar engines, which this test would not distinguish).
        let g = theta();
        let sources: Vec<u32> = (0..5).collect();
        let mut me = MultiSsspEngine::new();
        me.set_policy(BatchPolicy::Lanes);
        me.run_batch(&g, &sources);
        assert!(!me.was_fallback());
        for (lane, &s) in sources.iter().enumerate() {
            assert_lane_matches(&g, &me, lane, s);
        }
    }

    #[test]
    fn tree_batch_matches_legacy() {
        let g = theta();
        let sources = [4u32, 0, 2];
        let mut me = MultiSsspEngine::new();
        me.set_policy(BatchPolicy::Lanes);
        me.run_batch_trees(&g, &sources);
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(me.tree(lane), legacy::dijkstra_tree(&g, s), "lane {lane}");
            assert_eq!(
                me.settle_order(lane),
                &legacy::dijkstra_tree(&g, s).settle_order[..]
            );
        }
    }

    #[test]
    fn single_source_batch_falls_back() {
        let g = theta();
        let mut me = MultiSsspEngine::new();
        me.run_batch(&g, &[3]);
        assert!(me.was_fallback());
        assert_lane_matches(&g, &me, 0, 3);
    }

    #[test]
    fn duplicate_sources_fall_back_and_match() {
        let g = theta();
        let sources = [1u32, 4, 1];
        let mut me = MultiSsspEngine::new();
        me.run_batch_trees(&g, &sources);
        assert!(me.was_fallback());
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(me.tree(lane), legacy::dijkstra_tree(&g, s), "lane {lane}");
        }
    }

    #[test]
    fn reuse_across_graphs_of_different_sizes() {
        let big = CsrGraph::from_edges(6, &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (4, 5, 1)]);
        let small = CsrGraph::from_edges(3, &[(0, 1, 7), (1, 2, 1)]);
        let mut me = MultiSsspEngine::new();
        me.set_policy(BatchPolicy::Lanes);
        me.run_batch(&big, &[0, 4, 5, 2]);
        for (lane, s) in [0u32, 4, 5, 2].into_iter().enumerate() {
            assert_lane_matches(&big, &me, lane, s);
        }
        me.run_batch(&small, &[2, 0, 1]);
        for (lane, s) in [2u32, 0, 1].into_iter().enumerate() {
            assert_lane_matches(&small, &me, lane, s);
        }
        me.run_batch(&big, &[5, 3, 1]);
        for (lane, s) in [5u32, 3, 1].into_iter().enumerate() {
            assert_lane_matches(&big, &me, lane, s);
        }
    }

    #[test]
    fn heap_mode_on_large_graph_matches() {
        // A ring with chords, comfortably past SCAN_CUTOFF. Pinning
        // `Lanes` keeps the heap-mode lane path covered now that `Auto`
        // hands graphs this size to the scalar fallback.
        let n = (SCAN_CUTOFF + 40) as u32;
        let mut edges: Vec<(u32, u32, u64)> = (0..n)
            .map(|i| (i, (i + 1) % n, 1 + (i as u64 % 5)))
            .collect();
        edges.push((0, n / 2, 2));
        edges.push((n / 4, 3 * n / 4, 3));
        let g = CsrGraph::from_edges(n as usize, &edges);
        let sources: Vec<u32> = (0..LANES as u32).map(|i| i * 7 % n).collect();
        let mut me = MultiSsspEngine::new();
        me.set_policy(BatchPolicy::Lanes);
        me.run_batch(&g, &sources);
        assert!(!me.was_fallback());
        for (lane, &s) in sources.iter().enumerate() {
            assert_lane_matches(&g, &me, lane, s);
        }
        me.run_batch_trees(&g, &sources);
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(me.tree(lane), legacy::dijkstra_tree(&g, s), "lane {lane}");
        }
    }

    #[test]
    fn auto_policy_delegates_every_batch() {
        // Small (scan band) and large (heap band) graphs both delegate
        // under the calibrated default, with the full query surface
        // forwarded per lane.
        let small = theta();
        let n = (SCAN_CUTOFF + 10) as u32;
        let edges: Vec<(u32, u32, u64)> =
            (0..n - 1).map(|i| (i, i + 1, 1 + (i as u64 % 3))).collect();
        let large = CsrGraph::from_edges(n as usize, &edges);
        let mut me = MultiSsspEngine::new();
        assert_eq!(me.policy(), BatchPolicy::Auto);
        for g in [&small, &large] {
            let sources = [0u32, g.n() as u32 / 3, g.n() as u32 - 1];
            me.run_batch_trees(g, &sources);
            assert!(me.was_fallback());
            for (lane, &s) in sources.iter().enumerate() {
                assert_lane_matches(g, &me, lane, s);
                assert_eq!(me.tree(lane), legacy::dijkstra_tree(g, s), "lane {lane}");
            }
            // Settled-lane queries delegate per lane.
            assert_eq!(me.settled_lanes(0), 0b111);
        }
    }

    #[test]
    fn forced_fallback_matches_lanes_on_small_graph() {
        let g = theta();
        let sources = [0u32, 2, 4];
        let mut lanes = MultiSsspEngine::new();
        lanes.set_policy(BatchPolicy::Lanes);
        lanes.run_batch_trees(&g, &sources);
        assert!(!lanes.was_fallback());
        let mut fb = MultiSsspEngine::new();
        fb.set_policy(BatchPolicy::Fallback);
        fb.run_batch_trees(&g, &sources);
        assert!(fb.was_fallback());
        for lane in 0..sources.len() {
            assert_eq!(fb.tree(lane), lanes.tree(lane), "lane {lane}");
            assert_eq!(fb.stats(lane), lanes.stats(lane), "lane {lane}");
            assert_eq!(fb.settle_order(lane), lanes.settle_order(lane));
            assert_eq!(fb.dist_vec(lane), lanes.dist_vec(lane));
        }
        for v in 0..g.n() as u32 {
            assert_eq!(fb.settled_lanes(v), lanes.settled_lanes(v), "vertex {v}");
        }
    }

    #[test]
    fn unreachable_lane_is_all_inf() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 1), (1, 2, 1), (3, 4, 1), (4, 5, 2)]);
        let mut me = MultiSsspEngine::new();
        me.set_policy(BatchPolicy::Lanes);
        me.run_batch(&g, &[0, 3, 2]);
        assert_eq!(me.dist(0, 4), INF);
        assert_eq!(me.dist(1, 0), INF);
        assert_eq!(me.dist(1, 5), 3);
        assert_eq!(me.settled_lanes(4), 0b010);
    }

    #[test]
    fn lane_batches_cover_sources_in_order() {
        let batches: Vec<(u32, u32)> = lane_batches(19).collect();
        assert_eq!(batches, vec![(0, 8), (8, 8), (16, 3)]);
        assert!(lane_batches(0).next().is_none());
        assert_eq!(lane_batches(8).collect::<Vec<_>>(), vec![(0, 8)]);
    }

    #[test]
    fn pooled_multi_engine_is_reused_on_one_thread() {
        let g = theta();
        let d = with_multi_engine(|me| {
            me.run_batch(&g, &[0, 1, 2]);
            me.dist_vec(0)
        });
        let d2 = with_multi_engine(|me| {
            me.run_batch(&g, &[0, 4, 3]);
            me.dist_vec(0)
        });
        assert_eq!(d, d2);
        assert_eq!(d, legacy::dijkstra(&g, 0));
    }

    #[test]
    fn mode_env_default_is_scalar_shaped() {
        // `from_env` caches; in the test process the variable is unset (or
        // whatever the harness set), so just exercise both arms compile.
        let m = SsspMode::from_env();
        assert!(matches!(m, SsspMode::Scalar | SsspMode::Batched));
    }
}
