//! Reusable zero-allocation SSSP engine with pooled scratch state.
//!
//! The paper's whole pipeline is "run one Dijkstra per source of the
//! reduced graph" (§2.1.2), so per-source constant factors dominate. The
//! free functions in [`crate::dijkstra`] allocate four O(n) vectors and a
//! heap per call; [`SsspEngine`] preallocates them once and reuses them
//! across runs:
//!
//! * **Generation-stamped scratch** — instead of clearing `dist`/`parent`
//!   arrays between runs, every write is tagged with the current run's
//!   generation number (`stamp[v] == gen` means "touched this run").
//!   Resetting is a single counter bump: O(1) per run, O(touched) total
//!   work instead of O(n). When the `u32` generation wraps, the stamps are
//!   cleared once in full so a stale stamp can never alias a new run.
//! * **Indexed 4-ary heap** — replaces the lazy-deletion `BinaryHeap` with
//!   a decrease-key heap keyed on `(dist, vertex)`. No stale entries, at
//!   most one slot per vertex, and the 4-way fanout keeps sift-downs cache
//!   friendly.
//! * **Engine pool** — [`with_engine`] hands out a per-thread engine
//!   (thread-local slot backed by a global free list), so the hot
//!   `kernel-per-source` loops in `ear-apsp` / `ear-mcb` / `ear-bc` reuse
//!   scratch even when the executor spawns fresh worker threads per batch.
//! * **Dial bucket queue for the large-graph regime** — once a block
//!   outgrows [`DIAL_MIN_N`] vertices, the heap's random `pos[]` writes
//!   and sift chains are the dominant cache-miss source. When every edge
//!   weight fits the bucket range (`1..DIAL_BUCKETS`), the engine swaps
//!   the heap for a circular array of [`DIAL_BUCKETS`] distance buckets:
//!   pushes append to a sequential `Vec`, pops drain one bucket at a
//!   time, and a [`DIAL_BUCKETS`]-bit occupancy mask skips empty buckets
//!   with word-level scans.
//!   Draining each bucket in ascending vertex order replicates the
//!   heap's `(dist, vertex)` pop order *exactly* (with strictly positive
//!   weights, no relaxation from a distance-`d` vertex can create
//!   another distance-`d` entry), so the fast path stays bit-identical.
//! * **Two-level overflow above the bucket range** — chain contraction
//!   re-weights a reduced edge to its whole chain's weight sum, so a
//!   single chain of ≥ [`DIAL_BUCKETS`] unit edges used to push its
//!   entire block back onto the heap. Weights in
//!   `DIAL_BUCKETS..DIAL_WEIGHT_LIMIT` now keep the bucket path: the
//!   buckets hold a **fixed window** of [`DIAL_BUCKETS`] consecutive
//!   distances, tentative distances past the window park in a flat
//!   overflow list, and whenever the window drains the engine jumps it
//!   to the smallest parked distance and promotes everything now in
//!   range. Equal distances always land on the same side of the window
//!   boundary, so each bucket still drains complete and sorted — the
//!   settle order (and every downstream bit) is unchanged. Only weights
//!   at or above [`DIAL_WEIGHT_LIMIT`] (or zero-weight edges) still fall
//!   back to the heap, ticking `sssp.dial.range_fallback`.
//!
//! Results are **bit-identical** to the legacy free functions
//! ([`crate::dijkstra::legacy`]): the lazy-deletion heap always pops the
//! minimum `(dist, vertex)` among unsettled touched vertices, which is
//! exactly the key this heap orders by, so the settle order — and with it
//! every distance, parent choice, and statistic — is the same. The
//! deterministic `(distance, vertex, edge)` parent tie-break is shared
//! verbatim. `heap_pushes` counts every strictly-improving relaxation even
//! when it is implemented as a decrease-key or a bucket append rather
//! than a push.

use std::cell::RefCell;
use std::sync::Mutex;

use crate::csr::CsrGraph;
use crate::dijkstra::{tie_prefers, DijkstraStats, SsspTree};
use crate::types::{EdgeId, VertexId, Weight, INF};
use crate::view::CsrView;

/// `pos` sentinel: touched this generation but not currently in the heap
/// (either settled-and-popped is tracked by [`SETTLED`], or never pushed —
/// a vertex whose only known "distance" is the `INF` parent-tie case).
const NOT_IN_HEAP: u32 = u32::MAX;
/// `pos` sentinel: settled (popped from the heap) this generation.
const SETTLED: u32 = u32::MAX - 1;

/// Below this vertex count the indexed heap wins: the whole working set is
/// cache-resident, so the bucket array's footprint and the per-run weight
/// scan cost more than the heap's sifts save.
pub const DIAL_MIN_N: usize = 256;
/// Bucket count of the Dial fast path (power of two). Tentative distances
/// span at most `max_weight <= DIAL_BUCKETS - 1` above the settling
/// distance, so `d % DIAL_BUCKETS` is collision-free and the occupancy
/// mask is a fixed 128 words. The range is sized for *reduced* blocks,
/// not just raw ones: chain contraction re-weights a reduced edge to the
/// whole chain's weight sum, so blocks that left the reducer carry
/// weights far above the raw generator range.
pub const DIAL_BUCKETS: usize = 8192;
const DIAL_MASK_WORDS: usize = DIAL_BUCKETS / 64;
/// Upper weight bound (exclusive) of the two-level Dial path. Weights in
/// `DIAL_BUCKETS..DIAL_WEIGHT_LIMIT` run through the overflow level: an
/// out-of-window push parks in a flat list and is re-scanned once per
/// window jump, so an entry is touched at most
/// `DIAL_WEIGHT_LIMIT / DIAL_BUCKETS + 1` times before it settles. 128
/// window spans keeps that rescan bound small while covering the chain
/// weights (tens of thousands) that reduced blocks actually produce;
/// anything heavier falls back to the heap.
pub const DIAL_WEIGHT_LIMIT: usize = DIAL_BUCKETS * 128;

/// Which priority queue a run takes (see [`SsspEngine::dial_mode`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DialMode {
    /// Sliding-window Dial buckets: all weights in `1..DIAL_BUCKETS`.
    Plain,
    /// Fixed-window Dial buckets plus the overflow level: all weights in
    /// `1..DIAL_WEIGHT_LIMIT`, at least one `>= DIAL_BUCKETS`.
    Overflow,
    /// Indexed 4-ary heap: small graph, zero weights, or weights past
    /// [`DIAL_WEIGHT_LIMIT`].
    Heap,
}

/// Per-vertex hot state, packed so one relaxation touches one cache line
/// instead of three separate arrays.
#[derive(Clone, Copy, Debug)]
struct VertexState {
    /// Tentative distance; meaningful while `stamp == ` the engine's gen.
    dist: Weight,
    /// Generation tag: equal to the engine's `gen` iff touched this run.
    stamp: u32,
    /// Heap slot, or [`NOT_IN_HEAP`] / [`SETTLED`].
    pos: u32,
}

/// Per-vertex tree state (written only by [`SsspEngine::run_tree`]).
#[derive(Clone, Copy, Debug)]
struct ParentState {
    vertex: VertexId,
    edge: EdgeId,
    depth: u32,
}

/// A reusable Dijkstra instance: preallocated arrays, generation-stamp
/// lazy reset, indexed 4-ary decrease-key heap.
///
/// One engine serves one run at a time; query methods ([`dist`](Self::dist),
/// [`dist_vec`](Self::dist_vec), [`tree`](Self::tree),
/// [`settle_order`](Self::settle_order)) read the most recent run. Engines
/// grow monotonically to the largest graph they have seen and can be reused
/// across graphs of different sizes.
#[derive(Debug)]
pub struct SsspEngine {
    /// Current generation; `state[v].stamp == gen` marks `v` as touched.
    gen: u32,
    /// Vertex count of the most recent run's graph.
    n: usize,
    /// Source of the most recent run.
    source: VertexId,
    /// Whether the most recent run recorded parent pointers.
    tree_run: bool,
    state: Vec<VertexState>,
    /// Parent pointers; stale (ignored) for distances-only runs.
    parent: Vec<ParentState>,
    /// The 4-ary heap: `(dist, vertex)` entries, keys inline for
    /// cache-local comparisons.
    heap: Vec<(Weight, VertexId)>,
    /// Dial fast path: `buckets[d % DIAL_BUCKETS]` holds vertices whose
    /// tentative distance is `d`. Lazily sized to [`DIAL_BUCKETS`] on the
    /// first bucket run; always fully drained (empty) between runs.
    buckets: Vec<Vec<VertexId>>,
    /// Occupancy bit per bucket, so advancing past empty buckets costs a
    /// word scan instead of a per-bucket probe.
    bucket_live: [u64; DIAL_MASK_WORDS],
    /// Overflow level of the two-level Dial path: `(dist, vertex)` entries
    /// whose tentative distance lies past the current bucket window,
    /// promoted in bulk when the window jumps. Always drained (empty)
    /// between runs.
    overflow: Vec<(Weight, VertexId)>,
    /// Every vertex written this run (superset of `order`).
    touched: Vec<VertexId>,
    /// Settle order of the most recent run (non-decreasing distance).
    order: Vec<VertexId>,
    stats: DijkstraStats,
}

impl Default for SsspEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SsspEngine {
    /// An empty engine; arrays grow on first use.
    pub fn new() -> Self {
        SsspEngine {
            gen: 0,
            n: 0,
            source: 0,
            tree_run: false,
            state: Vec::new(),
            parent: Vec::new(),
            heap: Vec::new(),
            buckets: Vec::new(),
            bucket_live: [0; DIAL_MASK_WORDS],
            overflow: Vec::new(),
            touched: Vec::new(),
            order: Vec::new(),
            stats: DijkstraStats::default(),
        }
    }

    /// Grows the scratch arrays to hold `n` vertices (never shrinks).
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.state.len() < n {
            // New stamp entries are 0; the generation is bumped to >= 1
            // before every run, so 0 can never equal a live generation.
            self.state.resize(
                n,
                VertexState {
                    dist: INF,
                    stamp: 0,
                    pos: NOT_IN_HEAP,
                },
            );
            self.parent.resize(
                n,
                ParentState {
                    vertex: u32::MAX,
                    edge: u32::MAX,
                    depth: 0,
                },
            );
        }
    }

    /// Distances-only run (no parent bookkeeping). Returns the run's
    /// operation counters.
    pub fn run(&mut self, g: &CsrGraph, source: VertexId) -> DijkstraStats {
        self.run_inner::<false>(g.view(), source)
    }

    /// Full shortest-path-tree run with the deterministic
    /// `(distance, vertex, edge)` parent tie-break.
    pub fn run_tree(&mut self, g: &CsrGraph, source: VertexId) -> DijkstraStats {
        self.run_inner::<true>(g.view(), source)
    }

    /// [`run`](Self::run) on a borrowed [`CsrView`] (whole graph or arena
    /// block window) — the same code path, so results are bit-identical.
    pub fn run_view(&mut self, g: CsrView<'_>, source: VertexId) -> DijkstraStats {
        self.run_inner::<false>(g, source)
    }

    /// [`run_tree`](Self::run_tree) on a borrowed [`CsrView`].
    pub fn run_tree_view(&mut self, g: CsrView<'_>, source: VertexId) -> DijkstraStats {
        self.run_inner::<true>(g, source)
    }

    // Monomorphised on `WANT_TREE` so the distances-only path carries no
    // per-edge tree branches at all.
    fn run_inner<const WANT_TREE: bool>(
        &mut self,
        g: CsrView<'_>,
        source: VertexId,
    ) -> DijkstraStats {
        let _span = ear_obs::span_with("sssp.run", source as u64);
        let n = g.n();
        assert!((source as usize) < n, "source out of range");
        // Heap positions < n must stay clear of the two sentinels.
        assert!(
            n <= (u32::MAX - 2) as usize,
            "graph too large for SsspEngine"
        );
        self.ensure_capacity(n);
        self.bump_gen();
        // Restore the resting invariant `dist == INF, pos == NOT_IN_HEAP`
        // for everything the previous run wrote — O(touched), and it keeps
        // the hot relaxation below at a single `nd < dist` compare, with no
        // stamp check on the fast path. (Parent state is *not* reset here;
        // the generation stamp guards its validity lazily.)
        for &v in &self.touched {
            let vi = v as usize;
            self.state[vi].dist = INF;
            self.state[vi].pos = NOT_IN_HEAP;
        }
        self.n = n;
        self.source = source;
        self.tree_run = WANT_TREE;
        self.heap.clear();
        self.overflow.clear();
        self.touched.clear();
        self.order.clear();
        self.stats = DijkstraStats::default();

        let s = source as usize;
        self.state[s] = VertexState {
            dist: 0,
            stamp: self.gen,
            pos: NOT_IN_HEAP,
        };
        if WANT_TREE {
            self.parent[s] = ParentState {
                vertex: u32::MAX,
                edge: u32::MAX,
                depth: 0,
            };
        }
        self.touched.push(source);

        let (edges_relaxed, heap_pushes) = match self.dial_mode(g) {
            DialMode::Plain => self.run_buckets::<WANT_TREE, false>(g),
            DialMode::Overflow => self.run_buckets::<WANT_TREE, true>(g),
            DialMode::Heap => self.run_heap::<WANT_TREE>(g),
        };
        self.stats.settled = self.order.len() as u64;
        self.stats.edges_relaxed = edges_relaxed;
        self.stats.heap_pushes = heap_pushes;
        if ear_obs::is_enabled() {
            ear_obs::counter_add("sssp.runs", 1);
            ear_obs::counter_add("sssp.settled", self.stats.settled);
            ear_obs::counter_add("sssp.edges_relaxed", edges_relaxed);
            ear_obs::counter_add("sssp.heap_pushes", heap_pushes);
            ear_obs::histogram_record("sssp.settled_per_run", self.stats.settled);
        }
        self.stats
    }

    /// Picks the queue for this run: the heap for small graphs (the whole
    /// working set is cache-resident anyway), zero weights (they break the
    /// bucket invariant) and weights at or above [`DIAL_WEIGHT_LIMIT`];
    /// the plain sliding-window Dial path when every weight fits the
    /// bucket span; and the two-level overflow Dial path in between. One
    /// sequential pass over the incidence weight window decides.
    ///
    /// When a large-enough positive-weight graph is forced onto the heap
    /// purely by weight range — the case a weight recustomization can
    /// newly trigger — the `sssp.dial.range_fallback` counter records it.
    #[inline]
    fn dial_mode(&self, g: CsrView<'_>) -> DialMode {
        if g.n() <= DIAL_MIN_N {
            return DialMode::Heap;
        }
        let mut max_w: Weight = 0;
        for &w in g.incidence_weights() {
            if w == 0 {
                return DialMode::Heap;
            }
            max_w = max_w.max(w);
        }
        if max_w <= (DIAL_BUCKETS - 1) as Weight {
            DialMode::Plain
        } else if max_w < DIAL_WEIGHT_LIMIT as Weight {
            DialMode::Overflow
        } else {
            if ear_obs::is_enabled() {
                ear_obs::counter_add("sssp.dial.range_fallback", 1);
            }
            DialMode::Heap
        }
    }

    /// The indexed-heap main loop (the general path: any weights, any
    /// size). Assumes the prologue has seeded `state[source]`.
    fn run_heap<const WANT_TREE: bool>(&mut self, g: CsrView<'_>) -> (u64, u64) {
        self.heap_insert(0, self.source);

        // Counters live in locals so the optimiser keeps them in registers
        // across the loop body (incrementing through `&mut self` would
        // force a load/store per edge next to the other `self` accesses).
        let gen = self.gen;
        let mut edges_relaxed = 0u64;
        let mut heap_pushes = 0u64;

        while let Some((du, u)) = self.heap_pop_min() {
            self.order.push(u);
            let u_depth = if WANT_TREE {
                self.parent[u as usize].depth
            } else {
                0
            };
            let (adj, wts) = g.incidences(u);
            for (&(v, e), &w) in adj.iter().zip(wts) {
                edges_relaxed += 1;
                if v == u {
                    continue; // self-loops never improve a distance
                }
                // `w == g.weight(e)` by the parallel-slice invariant; the
                // zipped stream replaces a random 16-byte `edges[e]` gather
                // per relaxation.
                let nd = du + w;
                let vi = v as usize;
                // The resting invariant (untouched reads as INF /
                // NOT_IN_HEAP) makes this the same single data-dependent
                // compare as the legacy loop's `nd < dist[v]`.
                let st = self.state[vi];
                let strictly_better = nd < st.dist;
                // `nd == dist == INF` on an untouched vertex replicates the
                // legacy parent-tie against the (u32::MAX, u32::MAX)
                // sentinel pair, which always prefers the real `(u, e)`.
                // A settled vertex (pos == SETTLED) never changes: with
                // non-negative weights nd >= dist, and the legacy tie
                // branch requires an unsettled vertex.
                let tie_better = WANT_TREE && nd == st.dist && st.pos != SETTLED && {
                    let (pv, pe) = if st.stamp == gen {
                        let p = self.parent[vi];
                        (p.vertex, p.edge)
                    } else {
                        (u32::MAX, u32::MAX)
                    };
                    tie_prefers(u, e, pv, pe)
                };
                if strictly_better || tie_better {
                    if st.stamp != gen {
                        self.state[vi].stamp = gen;
                        self.touched.push(v);
                    }
                    self.state[vi].dist = nd;
                    if WANT_TREE {
                        self.parent[vi] = ParentState {
                            vertex: u,
                            edge: e,
                            depth: u_depth + 1,
                        };
                    }
                    if strictly_better {
                        if st.pos == NOT_IN_HEAP {
                            self.heap_insert(nd, v);
                        } else {
                            self.heap_decrease(st.pos as usize, nd);
                        }
                        heap_pushes += 1;
                    }
                }
            }
        }
        (edges_relaxed, heap_pushes)
    }

    /// The Dial bucket-queue main loop, monomorphised on `OVERFLOW`:
    /// `false` is the plain sliding-window path (all weights inside the
    /// bucket span — no window bookkeeping at all), `true` is the
    /// two-level path whose buckets hold the fixed distance window
    /// `[window_end - DIAL_BUCKETS, window_end)` while farther tentative
    /// distances park in `self.overflow`. Both are bit-identical to
    /// [`run_heap`] (see the module docs for the settle-order argument):
    /// every bucket is drained in ascending vertex order, with strictly
    /// positive weights no relaxation from the settling distance can feed
    /// the bucket currently draining, and — in overflow mode — equal
    /// distances always land on the same side of `window_end`, so a
    /// bucket is always complete when it drains.
    ///
    /// [`run_heap`]: Self::run_heap
    fn run_buckets<const WANT_TREE: bool, const OVERFLOW: bool>(
        &mut self,
        g: CsrView<'_>,
    ) -> (u64, u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![Vec::new(); DIAL_BUCKETS];
        }
        let gen = self.gen;
        let mut edges_relaxed = 0u64;
        let mut heap_pushes = 0u64;
        // Total entries across all buckets, stale ones included — the
        // window is exhausted exactly when the circular array is empty,
        // which also restores the "all buckets drained" resting invariant.
        let mut entries = 1usize;
        self.buckets[0].push(self.source);
        self.bucket_live[0] |= 1;
        let mut cur_i = 0usize;
        let mut cur_d: Weight = 0;
        // Exclusive upper distance bound of the bucket window (overflow
        // mode only; the plain path's invariant `nd < cur_d +
        // DIAL_BUCKETS` needs no tracking).
        let mut window_end: Weight = DIAL_BUCKETS as Weight;
        loop {
            if entries == 0 {
                if !OVERFLOW || self.overflow.is_empty() {
                    break;
                }
                // Window jump: the smallest parked distance is the true
                // next settle distance (every unsettled tentative
                // distance lives in the — empty — buckets or here), so
                // start the new window at it and promote everything now
                // in range. Stale parked entries promote harmlessly: the
                // settled/superseded check at drain time skips them.
                let base = self
                    .overflow
                    .iter()
                    .map(|&(d, _)| d)
                    .min()
                    .expect("overflow is non-empty");
                cur_d = base;
                cur_i = (base % DIAL_BUCKETS as Weight) as usize;
                window_end = base + DIAL_BUCKETS as Weight;
                let mut i = 0;
                while i < self.overflow.len() {
                    let (d, v) = self.overflow[i];
                    if d < window_end {
                        let b = (d % DIAL_BUCKETS as Weight) as usize;
                        self.buckets[b].push(v);
                        self.bucket_live[b / 64] |= 1u64 << (b % 64);
                        entries += 1;
                        self.overflow.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
            let idx = self.next_live_bucket(cur_i);
            cur_d += ((idx + DIAL_BUCKETS - cur_i) % DIAL_BUCKETS) as Weight;
            cur_i = idx;
            self.bucket_live[idx / 64] &= !(1u64 << (idx % 64));
            let mut bucket = std::mem::take(&mut self.buckets[idx]);
            entries -= bucket.len();
            // Ascending vertex order within one distance replicates the
            // heap's (dist, vertex) pop order. A vertex appears at most
            // once per bucket (an equal-distance relaxation is not
            // strictly better), so the sort never reorders duplicates.
            bucket.sort_unstable();
            for &u in &bucket {
                let ui = u as usize;
                let st_u = self.state[ui];
                if st_u.pos == SETTLED || st_u.dist != cur_d {
                    continue; // superseded: improved into an earlier bucket
                }
                self.state[ui].pos = SETTLED;
                self.order.push(u);
                let u_depth = if WANT_TREE { self.parent[ui].depth } else { 0 };
                let (adj, wts) = g.incidences(u);
                for (&(v, e), &w) in adj.iter().zip(wts) {
                    edges_relaxed += 1;
                    if v == u {
                        continue; // self-loops never improve a distance
                    }
                    let nd = cur_d + w;
                    let vi = v as usize;
                    let st = self.state[vi];
                    let strictly_better = nd < st.dist;
                    // Same tie handling as the heap loop; see the
                    // comments there.
                    let tie_better = WANT_TREE && nd == st.dist && st.pos != SETTLED && {
                        let (pv, pe) = if st.stamp == gen {
                            let p = self.parent[vi];
                            (p.vertex, p.edge)
                        } else {
                            (u32::MAX, u32::MAX)
                        };
                        tie_prefers(u, e, pv, pe)
                    };
                    if strictly_better || tie_better {
                        if st.stamp != gen {
                            self.state[vi].stamp = gen;
                            self.touched.push(v);
                        }
                        self.state[vi].dist = nd;
                        if WANT_TREE {
                            self.parent[vi] = ParentState {
                                vertex: u,
                                edge: e,
                                depth: u_depth + 1,
                            };
                        }
                        if strictly_better {
                            if OVERFLOW && nd >= window_end {
                                self.overflow.push((nd, v));
                            } else {
                                let b = (nd % DIAL_BUCKETS as Weight) as usize;
                                self.buckets[b].push(v);
                                self.bucket_live[b / 64] |= 1u64 << (b % 64);
                                entries += 1;
                            }
                            heap_pushes += 1;
                        }
                    }
                }
            }
            bucket.clear();
            self.buckets[idx] = bucket;
        }
        (edges_relaxed, heap_pushes)
    }

    /// Index of the first occupied bucket at or (circularly) after
    /// `start`. Only called while `entries > 0`, so some bit is set.
    #[inline]
    fn next_live_bucket(&self, start: usize) -> usize {
        let mut wi = start / 64;
        let mut m = self.bucket_live[wi] & (!0u64 << (start % 64));
        loop {
            if m != 0 {
                return wi * 64 + m.trailing_zeros() as usize;
            }
            wi = (wi + 1) % DIAL_MASK_WORDS;
            m = self.bucket_live[wi];
        }
    }

    /// Distance to `v` from the most recent run's source (`INF` when
    /// unreachable or out of range).
    #[inline]
    pub fn dist(&self, v: VertexId) -> Weight {
        let vi = v as usize;
        if vi < self.n && self.state[vi].stamp == self.gen {
            self.state[vi].dist
        } else {
            INF
        }
    }

    /// Materialises the most recent run's distance array (`INF` for
    /// untouched vertices).
    pub fn dist_vec(&self) -> Vec<Weight> {
        let mut out = vec![INF; self.n];
        for &v in &self.touched {
            out[v as usize] = self.state[v as usize].dist;
        }
        out
    }

    /// Settle order of the most recent run: vertices in the order they
    /// were popped, i.e. non-decreasing distance.
    pub fn settle_order(&self) -> &[VertexId] {
        &self.order
    }

    /// Every vertex the most recent run wrote (a superset of
    /// [`settle_order`](Self::settle_order)), in first-touch order.
    pub fn touched(&self) -> &[VertexId] {
        &self.touched
    }

    /// True iff `v` was settled (popped) by the most recent run.
    pub fn is_settled(&self, v: VertexId) -> bool {
        let vi = v as usize;
        vi < self.n && self.state[vi].stamp == self.gen && self.state[vi].pos == SETTLED
    }

    /// Parent vertex of `v` in the most recent tree run (`u32::MAX` at the
    /// source and at untouched vertices).
    pub fn parent_vertex(&self, v: VertexId) -> VertexId {
        debug_assert!(self.tree_run, "parents require a run_tree()");
        let vi = v as usize;
        if vi < self.n && self.state[vi].stamp == self.gen {
            self.parent[vi].vertex
        } else {
            u32::MAX
        }
    }

    /// Parent edge of `v` in the most recent tree run (`u32::MAX` at the
    /// source and at untouched vertices).
    pub fn parent_edge(&self, v: VertexId) -> EdgeId {
        debug_assert!(self.tree_run, "parents require a run_tree()");
        let vi = v as usize;
        if vi < self.n && self.state[vi].stamp == self.gen {
            self.parent[vi].edge
        } else {
            u32::MAX
        }
    }

    /// Operation counters of the most recent run.
    #[inline]
    pub fn stats(&self) -> DijkstraStats {
        self.stats
    }

    /// Source vertex of the most recent run.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Materialises the most recent [`run_tree`](Self::run_tree) as an
    /// owned [`SsspTree`], bit-identical to what
    /// [`crate::dijkstra::dijkstra_tree`] returns.
    ///
    /// # Panics
    /// Panics if the most recent run was distances-only.
    pub fn tree(&self) -> SsspTree {
        assert!(
            self.tree_run,
            "SsspEngine::tree() requires a preceding run_tree()"
        );
        let n = self.n;
        let mut dist = vec![INF; n];
        let mut parent_vertex = vec![u32::MAX; n];
        let mut parent_edge = vec![u32::MAX; n];
        let mut depths = vec![0u32; n];
        for &v in &self.touched {
            let vi = v as usize;
            dist[vi] = self.state[vi].dist;
            parent_vertex[vi] = self.parent[vi].vertex;
            parent_edge[vi] = self.parent[vi].edge;
            depths[vi] = self.parent[vi].depth;
        }
        SsspTree {
            source: self.source,
            dist,
            parent_vertex,
            parent_edge,
            depths,
            settle_order: self.order.clone(),
            stats: self.stats,
        }
    }

    /// Current generation counter (testing / introspection).
    pub fn generation(&self) -> u32 {
        self.gen
    }

    /// Testing hook: jump the generation counter (e.g. to just below
    /// `u32::MAX`) to exercise the wraparound path. Clears every stamp so
    /// the "no stamp exceeds the generation" invariant is preserved.
    pub fn jump_generation(&mut self, gen: u32) {
        self.gen = gen;
        for st in &mut self.state {
            st.stamp = 0;
        }
    }

    fn bump_gen(&mut self) {
        if self.gen == u32::MAX {
            // Wraparound: clear all stamps once so values from the
            // previous epoch can never alias the restarted counter.
            for st in &mut self.state {
                st.stamp = 0;
            }
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }

    // ---- indexed 4-ary heap keyed on (dist, vertex) ----
    //
    // Entries carry their key `(dist, vertex)` inline so sift comparisons
    // stay cache-local instead of chasing random `dist[]` loads — the
    // difference between winning and losing to the legacy lazy-deletion
    // heap once the distance array outgrows L2.

    #[inline(always)]
    fn heap_insert(&mut self, key: Weight, v: VertexId) {
        let i = self.heap.len();
        self.heap.push((key, v));
        self.sift_up(i);
    }

    /// Lowers the key of the entry at heap slot `i` and restores order.
    #[inline(always)]
    fn heap_decrease(&mut self, i: usize, key: Weight) {
        debug_assert!(self.heap[i].0 >= key);
        self.heap[i].0 = key;
        self.sift_up(i);
    }

    #[inline(always)]
    fn heap_pop_min(&mut self) -> Option<(Weight, VertexId)> {
        let top = *self.heap.first()?;
        self.state[top.1 as usize].pos = SETTLED;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Hole-based sift: the moving entry is written (and its `pos` stamped)
    /// once at its final slot, displaced entries move one hop each.
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let p = (i - 1) / 4;
            let parent = self.heap[p];
            if entry < parent {
                self.heap[i] = parent;
                self.state[parent.1 as usize].pos = i as u32;
                i = p;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
        self.state[entry.1 as usize].pos = i as u32;
    }

    fn sift_down(&mut self, mut i: usize) {
        let entry = self.heap[i];
        let len = self.heap.len();
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let end = (first + 4).min(len);
            let mut best = first;
            let mut best_entry = self.heap[first];
            for c in first + 1..end {
                if self.heap[c] < best_entry {
                    best = c;
                    best_entry = self.heap[c];
                }
            }
            if best_entry < entry {
                self.heap[i] = best_entry;
                self.state[best_entry.1 as usize].pos = i as u32;
                i = best;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
        self.state[entry.1 as usize].pos = i as u32;
    }
}

// ---- per-thread engine pool ----

/// Global free list feeding threads that have no engine yet. Bounded so a
/// burst of short-lived worker threads cannot hoard memory forever.
static FREE_ENGINES: Mutex<Vec<SsspEngine>> = Mutex::new(Vec::new());
const MAX_POOLED: usize = 64;

thread_local! {
    static TLS_ENGINE: RefCell<TlsSlot> = const { RefCell::new(TlsSlot(None)) };
}

/// Thread-local engine slot whose `Drop` returns the engine to the global
/// free list — essential because the executor / rayon shim spawn fresh
/// scoped worker threads per batch, so warm engines must outlive threads.
struct TlsSlot(Option<SsspEngine>);

impl Drop for TlsSlot {
    fn drop(&mut self) {
        if let Some(e) = self.0.take() {
            recycle(e);
        }
    }
}

fn recycle(e: SsspEngine) {
    if let Ok(mut free) = FREE_ENGINES.lock() {
        if free.len() < MAX_POOLED {
            free.push(e);
        }
    }
}

fn checkout() -> SsspEngine {
    if let Ok(Some(e)) = TLS_ENGINE.try_with(|slot| slot.borrow_mut().0.take()) {
        ear_obs::counter_add("sssp.pool.tls_hits", 1);
        return e;
    }
    if let Some(e) = FREE_ENGINES.lock().ok().and_then(|mut v| v.pop()) {
        ear_obs::counter_add("sssp.pool.freelist_hits", 1);
        return e;
    }
    ear_obs::counter_add("sssp.pool.misses", 1);
    SsspEngine::default()
}

fn checkin(e: SsspEngine) {
    match TLS_ENGINE.try_with(|slot| slot.borrow_mut().0.replace(e)) {
        // Nested `with_engine` calls can displace an engine; keep both.
        Ok(Some(displaced)) => recycle(displaced),
        Ok(None) => {}
        // Thread is tearing down: the engine is dropped with the closure.
        Err(_) => {}
    }
}

/// Runs `f` with a pooled per-thread [`SsspEngine`].
///
/// The engine comes from (in order) the calling thread's slot, the global
/// free list, or a fresh allocation; afterwards it is parked back in the
/// thread's slot. Warm scratch therefore survives both sequential loops on
/// one thread and repeated fan-outs over short-lived worker threads.
pub fn with_engine<R>(f: impl FnOnce(&mut SsspEngine) -> R) -> R {
    let mut engine = checkout();
    let r = f(&mut engine);
    checkin(engine);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::legacy;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)])
    }

    #[test]
    fn matches_legacy_distances_and_stats() {
        let g = diamond();
        let mut e = SsspEngine::new();
        for s in 0..4u32 {
            let stats = e.run(&g, s);
            let (ld, ls) = legacy::dijkstra_with_stats(&g, s);
            assert_eq!(e.dist_vec(), ld);
            assert_eq!(stats, ls);
        }
    }

    #[test]
    fn matches_legacy_tree() {
        let g = diamond();
        let mut e = SsspEngine::new();
        e.run_tree(&g, 0);
        let mine = e.tree();
        let theirs = legacy::dijkstra_tree(&g, 0);
        assert_eq!(mine.dist, theirs.dist);
        assert_eq!(mine.parent_vertex, theirs.parent_vertex);
        assert_eq!(mine.parent_edge, theirs.parent_edge);
        assert_eq!(mine.depths, theirs.depths);
        assert_eq!(mine.settle_order, theirs.settle_order);
        assert_eq!(mine.stats, theirs.stats);
    }

    #[test]
    fn reuse_across_graphs_of_different_sizes() {
        let big = CsrGraph::from_edges(6, &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (4, 5, 1)]);
        let small = CsrGraph::from_edges(2, &[(0, 1, 7)]);
        let mut e = SsspEngine::new();
        e.run(&big, 0);
        assert_eq!(e.dist_vec(), legacy::dijkstra(&big, 0));
        e.run(&small, 1);
        assert_eq!(e.dist_vec(), legacy::dijkstra(&small, 1));
        assert_eq!(e.dist_vec().len(), 2);
        e.run(&big, 4);
        assert_eq!(e.dist_vec(), legacy::dijkstra(&big, 4));
    }

    #[test]
    fn generation_wraparound_is_transparent() {
        let g = diamond();
        let mut e = SsspEngine::new();
        e.run(&g, 0); // populate stamps with a live generation
        e.jump_generation(u32::MAX - 2);
        for s in [0u32, 1, 2, 3, 0, 1] {
            // Crosses the u32::MAX boundary mid-sequence.
            e.run(&g, s);
            assert_eq!(e.dist_vec(), legacy::dijkstra(&g, s));
        }
        assert!(e.generation() < 10, "generation restarted after wrap");
    }

    #[test]
    fn pooled_engine_is_reused_on_one_thread() {
        let g = diamond();
        let d0 = with_engine(|e| {
            e.run(&g, 0);
            e.dist_vec()
        });
        let d0_again = with_engine(|e| {
            assert!(e.generation() > 0, "engine carries state across calls");
            e.run(&g, 0);
            e.dist_vec()
        });
        assert_eq!(d0, d0_again);
    }

    /// Deterministic multigraph (parallel edges and self-loops possible)
    /// from a splitmix-style LCG — big enough to cross [`DIAL_MIN_N`].
    fn random_graph(n: usize, m: usize, wmax: u64, seed: u64) -> CsrGraph {
        let mut s = seed | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let edges: Vec<(u32, u32, Weight)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as u32,
                    (next() % n as u64) as u32,
                    1 + next() % wmax,
                )
            })
            .collect();
        CsrGraph::from_edges(n, &edges)
    }

    fn assert_matches_legacy(g: &CsrGraph, sources: &[u32]) {
        let mut e = SsspEngine::new();
        for &s in sources {
            let stats = e.run(g, s);
            let (ld, ls) = legacy::dijkstra_with_stats(g, s);
            assert_eq!(e.dist_vec(), ld, "dist mismatch from source {s}");
            assert_eq!(stats, ls, "stats mismatch from source {s}");
            e.run_tree(g, s);
            let mine = e.tree();
            let theirs = legacy::dijkstra_tree(g, s);
            assert_eq!(mine.dist, theirs.dist);
            assert_eq!(mine.parent_vertex, theirs.parent_vertex);
            assert_eq!(mine.parent_edge, theirs.parent_edge);
            assert_eq!(mine.depths, theirs.depths);
            assert_eq!(mine.settle_order, theirs.settle_order);
            assert_eq!(mine.stats, theirs.stats);
        }
    }

    #[test]
    fn bucket_path_matches_legacy_at_scale() {
        // n > DIAL_MIN_N with in-range weights selects the Dial path;
        // distances, trees, settle order, and stats stay bit-identical.
        let g = random_graph(400, 1600, 100, 99);
        assert_matches_legacy(&g, &[0, 7, 399]);
    }

    #[test]
    fn bucket_path_handles_equal_weight_ties() {
        // Unit weights maximise equal-distance buckets, stressing the
        // ascending-vertex drain order and the parent tie-break.
        let g = random_graph(300, 2400, 1, 5);
        assert_matches_legacy(&g, &[0, 123, 299]);
    }

    #[test]
    fn bucket_wraparound_on_long_paths() {
        // A path of near-maximal weights makes distances wrap the
        // circular bucket array hundreds of times.
        let edges: Vec<(u32, u32, Weight)> = (0..499u32)
            .map(|i| (i, i + 1, DIAL_BUCKETS as Weight - 2))
            .collect();
        let g = CsrGraph::from_edges(500, &edges);
        assert_matches_legacy(&g, &[0, 250]);
    }

    #[test]
    fn overflow_path_matches_legacy_at_scale() {
        // Weights far above the bucket span select the two-level overflow
        // path; distances, trees, settle order, and stats stay
        // bit-identical to the heap baseline.
        let g = random_graph(400, 1600, 100_000, 77);
        assert_eq!(
            SsspEngine::new().dial_mode(g.view()),
            DialMode::Overflow,
            "fixture must exercise the overflow path"
        );
        assert_matches_legacy(&g, &[0, 7, 399]);
    }

    #[test]
    fn overflow_equal_weight_ties_across_windows() {
        // One constant overflow-range weight makes whole distance levels
        // collide, each level landing a fresh window jump away — the
        // promote-then-sorted-drain order must still match the heap.
        let g = random_graph(300, 2400, 1, 5);
        let edges: Vec<(u32, u32, Weight)> = g.edges().iter().map(|e| (e.u, e.v, 10_000)).collect();
        let g = CsrGraph::from_edges(300, &edges);
        assert_eq!(SsspEngine::new().dial_mode(g.view()), DialMode::Overflow);
        assert_matches_legacy(&g, &[0, 123, 299]);
    }

    #[test]
    fn overflow_window_jumps_on_heavy_chains() {
        // Alternating tiny and near-limit weights force entries onto both
        // sides of every window boundary, and the total distance crosses
        // tens of thousands of windows.
        let edges: Vec<(u32, u32, Weight)> = (0..499u32)
            .map(|i| {
                let w = if i % 2 == 0 {
                    DIAL_WEIGHT_LIMIT as Weight - 1
                } else {
                    3
                };
                (i, i + 1, w)
            })
            .collect();
        let g = CsrGraph::from_edges(500, &edges);
        assert_eq!(SsspEngine::new().dial_mode(g.view()), DialMode::Overflow);
        assert_matches_legacy(&g, &[0, 250, 499]);
    }

    #[test]
    fn dial_mode_boundary_weights() {
        let _guard = RANGE_FALLBACK_LOCK.lock().unwrap();
        let chain = |w: Weight| {
            let edges: Vec<(u32, u32, Weight)> = (0..399u32).map(|i| (i, i + 1, w)).collect();
            CsrGraph::from_edges(400, &edges)
        };
        let e = SsspEngine::new();
        assert_eq!(
            e.dial_mode(chain(DIAL_BUCKETS as Weight - 1).view()),
            DialMode::Plain
        );
        assert_eq!(
            e.dial_mode(chain(DIAL_BUCKETS as Weight).view()),
            DialMode::Overflow
        );
        assert_eq!(
            e.dial_mode(chain(DIAL_WEIGHT_LIMIT as Weight - 1).view()),
            DialMode::Overflow
        );
        assert_eq!(
            e.dial_mode(chain(DIAL_WEIGHT_LIMIT as Weight).view()),
            DialMode::Heap
        );
    }

    /// Serialises the tests that run overweight graphs against the global
    /// `sssp.dial.range_fallback` counter, so the exact-delta assertion
    /// below cannot race with a concurrent fallback run.
    static RANGE_FALLBACK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn wide_weights_fall_back_to_the_heap() {
        let _guard = RANGE_FALLBACK_LOCK.lock().unwrap();
        // A single weight at or above DIAL_WEIGHT_LIMIT keeps the whole
        // run on the heap path — same results either way.
        let mut edges: Vec<(u32, u32, Weight)> = (0..499u32).map(|i| (i, i + 1, 3)).collect();
        edges.push((0, 499, DIAL_WEIGHT_LIMIT as Weight + 7));
        let g = CsrGraph::from_edges(500, &edges);
        assert_eq!(SsspEngine::new().dial_mode(g.view()), DialMode::Heap);
        assert_matches_legacy(&g, &[0, 499]);
    }

    #[test]
    fn range_fallback_counter_counts_overweight_heap_runs() {
        // Same shape as `wide_weights_fall_back_to_the_heap`: big enough
        // for Dial, pushed to the heap only by one edge past the overflow
        // limit. With observability on, each such run must tick the
        // fallback counter — and runs that miss Dial for other reasons
        // (small graph, zero weight) or that the overflow level now
        // absorbs (weight >= DIAL_BUCKETS but < DIAL_WEIGHT_LIMIT) must
        // not: the overflow family's delta is exactly zero.
        let mut edges: Vec<(u32, u32, Weight)> = (0..499u32).map(|i| (i, i + 1, 3)).collect();
        edges.push((0, 499, DIAL_WEIGHT_LIMIT as Weight + 7));
        let overweight = CsrGraph::from_edges(500, &edges);
        let small = diamond();
        let mut zero_edges: Vec<(u32, u32, Weight)> = (0..499u32).map(|i| (i, i + 1, 3)).collect();
        zero_edges.push((0, 499, 0));
        let zero_weight = CsrGraph::from_edges(500, &zero_edges);
        let mut of_edges: Vec<(u32, u32, Weight)> = (0..499u32).map(|i| (i, i + 1, 3)).collect();
        of_edges.push((0, 499, DIAL_BUCKETS as Weight + 7));
        let overflow_family = CsrGraph::from_edges(500, &of_edges);

        let _guard = RANGE_FALLBACK_LOCK.lock().unwrap();
        ear_obs::enable();
        let before = ear_obs::counter_value("sssp.dial.range_fallback");
        let mut e = SsspEngine::new();
        e.run(&overweight, 0);
        e.run(&overweight, 499);
        e.run(&small, 0); // too small: not a range fallback
        e.run(&zero_weight, 0); // zero weight: not a range fallback
        e.run(&overflow_family, 0); // overflow Dial handles it: no tick
        e.run(&overflow_family, 499);
        let after = ear_obs::counter_value("sssp.dial.range_fallback");
        ear_obs::disable();
        assert_eq!(after - before, 2);
    }

    #[test]
    fn bucket_and_heap_runs_interleave_on_one_engine() {
        // The same engine must flip between all three paths without state
        // leaking: buckets stay drained, overflow stays drained, heap
        // stays cleared, stamps stay valid.
        let _guard = RANGE_FALLBACK_LOCK.lock().unwrap();
        let dial = random_graph(320, 1200, 50, 11);
        let over = random_graph(320, 1200, 80_000, 13);
        let heap = random_graph(320, 1200, 5_000_000, 12);
        let small = diamond();
        let mut e = SsspEngine::new();
        assert_eq!(e.dial_mode(dial.view()), DialMode::Plain);
        assert_eq!(e.dial_mode(over.view()), DialMode::Overflow);
        assert_eq!(e.dial_mode(heap.view()), DialMode::Heap);
        for s in [0u32, 31, 64] {
            e.run(&dial, s);
            assert_eq!(e.dist_vec(), legacy::dijkstra(&dial, s));
            e.run(&over, s);
            assert_eq!(e.dist_vec(), legacy::dijkstra(&over, s));
            e.run(&heap, s);
            assert_eq!(e.dist_vec(), legacy::dijkstra(&heap, s));
            e.run(&small, s % 4);
            assert_eq!(e.dist_vec(), legacy::dijkstra(&small, s % 4));
        }
    }

    #[test]
    fn nested_with_engine_is_safe() {
        let g = diamond();
        let (outer, inner) = with_engine(|a| {
            a.run(&g, 0);
            let inner = with_engine(|b| {
                b.run(&g, 1);
                b.dist_vec()
            });
            (a.dist_vec(), inner)
        });
        assert_eq!(outer, legacy::dijkstra(&g, 0));
        assert_eq!(inner, legacy::dijkstra(&g, 1));
    }
}
