//! Concatenated CSR storage for many small graphs: one allocation family,
//! zero-copy per-graph views.
//!
//! The decomposition plan's copied layout builds one standalone
//! [`CsrGraph`](crate::csr::CsrGraph) per biconnected block — four heap allocations and an
//! allocator-chosen address per block, so a sweep over the blocks hops
//! around the heap. A [`CsrArena`] instead appends every block into four
//! shared arrays in block order (the plan's locality order): pushing a
//! graph returns a [`CsrSpan`], and [`CsrArena::view`] reopens it as a
//! zero-copy [`CsrView`] window.
//!
//! [`CsrArena::push`] runs the exact construction
//! [`CsrGraph::from_edge_records`](crate::csr::CsrGraph::from_edge_records) runs — counting sort of the edge list
//! into per-vertex incidence lists, self-loops contributing a single entry
//! — so an arena window and a standalone per-block graph are bit-identical
//! term by term (`tests` below and the layout differential suite hold both
//! to that).

use std::sync::Arc;

use crate::types::{Edge, EdgeId, VertexId, Weight};
use crate::view::CsrView;

/// One pushed graph's windows inside a [`CsrArena`] (plain indices, `Copy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsrSpan {
    /// Vertex count of the pushed graph.
    pub n: u32,
    /// Edge count of the pushed graph.
    pub m: u32,
    /// Start of the offsets window (`n + 1` entries).
    pub off: u32,
    /// Start of the adjacency / weights windows.
    pub adj: u32,
    /// Length of the adjacency / weights windows.
    pub adj_len: u32,
    /// Start of the edge-record window (`m` entries).
    pub edge: u32,
}

/// Append-only concatenated CSR storage; see the [module docs](self).
///
/// The offsets/adjacency arrays are the arena's weight-independent
/// **topology layer** and live behind [`Arc`]: during construction the
/// arena is the sole owner so [`Arc::make_mut`] appends in place without
/// cloning, and [`CsrArena::reweighted`] later produces a new arena that
/// shares them while recomputing only the weight/edge arrays.
#[derive(Clone, Debug, Default)]
pub struct CsrArena {
    /// Concatenated per-graph offset windows; values are absolute
    /// positions in `adj`.
    offsets: Arc<Vec<u32>>,
    adj: Arc<Vec<(VertexId, EdgeId)>>,
    weights: Vec<Weight>,
    edges: Vec<Edge>,
}

impl CsrArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the backing arrays (`n_total` vertices + one offsets
    /// entry per graph, `adj_total` incidence entries, `m_total` edges).
    pub fn with_capacity(n_total: usize, adj_total: usize, m_total: usize) -> Self {
        CsrArena {
            offsets: Arc::new(Vec::with_capacity(n_total)),
            adj: Arc::new(Vec::with_capacity(adj_total)),
            weights: Vec::with_capacity(adj_total),
            edges: Vec::with_capacity(m_total),
        }
    }

    /// Appends a graph with `n` vertices and the given local edge list;
    /// returns its windows. Mirrors [`CsrGraph::from_edge_records`](crate::csr::CsrGraph::from_edge_records)
    /// exactly: edges keep list order (local edge id = list index) and
    /// each vertex's incidence list ends up in ascending edge-id order.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn push(&mut self, n: usize, list: &[(VertexId, VertexId, Weight)]) -> CsrSpan {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 id space");
        // During construction the arena is the sole owner of its topology
        // arrays, so `make_mut` appends in place (no clone); once spans
        // have been handed out the arena is only read or `reweighted`.
        let offsets = Arc::make_mut(&mut self.offsets);
        let adj = Arc::make_mut(&mut self.adj);
        let off = offsets.len();
        let adj_base = adj.len();
        let edge_base = self.edges.len();

        // Degree counts into the fresh offsets window.
        offsets.resize(off + n + 1, 0);
        let win = &mut offsets[off..];
        for &(u, v, _) in list {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            win[u as usize + 1] += 1;
            if u != v {
                win[v as usize + 1] += 1;
            }
        }
        // Prefix sum, rebased onto the shared adjacency array.
        win[0] = adj_base as u32;
        for i in 0..n {
            win[i + 1] += win[i];
        }
        let adj_len = (win[n] as usize) - adj_base;

        // Counting-sort fill, same traversal as `from_edge_records`.
        adj.resize(adj_base + adj_len, (0, 0));
        self.weights.resize(adj_base + adj_len, 0);
        let mut cursor: Vec<u32> = offsets[off..off + n + 1].to_vec();
        for (idx, &(u, v, w)) in list.iter().enumerate() {
            let id = idx as EdgeId;
            self.edges.push(Edge::new(u, v, w));
            let cu = cursor[u as usize] as usize;
            adj[cu] = (v, id);
            self.weights[cu] = w;
            cursor[u as usize] += 1;
            if u != v {
                let cv = cursor[v as usize] as usize;
                adj[cv] = (u, id);
                self.weights[cv] = w;
                cursor[v as usize] += 1;
            }
        }

        CsrSpan {
            n: n as u32,
            m: list.len() as u32,
            off: off as u32,
            adj: adj_base as u32,
            adj_len: adj_len as u32,
            edge: edge_base as u32,
        }
    }

    /// Reopens a span as a zero-copy [`CsrView`].
    #[inline]
    pub fn view(&self, s: &CsrSpan) -> CsrView<'_> {
        let off = s.off as usize;
        let adj = s.adj as usize;
        let adj_hi = adj + s.adj_len as usize;
        let edge = s.edge as usize;
        CsrView::from_raw_unchecked(
            s.n as usize,
            &self.offsets[off..off + s.n as usize + 1],
            &self.adj[adj..adj_hi],
            &self.weights[adj..adj_hi],
            &self.edges[edge..edge + s.m as usize],
        )
    }

    /// The same concatenated topology under new weights. `new_weights` is
    /// indexed by **arena edge record** (length [`CsrArena::edges_len`]);
    /// the caller maps its own weight space onto arena records via the
    /// spans it kept from [`CsrArena::push`] (global record of span `s`'s
    /// local edge `i` is `s.edge + i`). The offsets/adjacency allocations
    /// are shared with `self`; only the edge records and the per-incidence
    /// weight stream are rebuilt, and each rebuilt window is bit-identical
    /// to a fresh [`CsrArena::push`] of the reweighted list.
    ///
    /// # Panics
    /// Panics if `new_weights.len() != self.edges_len()` or the spans do
    /// not belong to this arena.
    pub fn reweighted(&self, spans: &[CsrSpan], new_weights: &[Weight]) -> CsrArena {
        assert_eq!(
            new_weights.len(),
            self.edges.len(),
            "one weight per arena edge record is required"
        );
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .zip(new_weights)
            .map(|(e, &w)| Edge::new(e.u, e.v, w))
            .collect();
        // The adjacency stores span-local edge ids, so the parallel weight
        // stream needs each span's edge base to find the global record.
        let mut weights = vec![0 as Weight; self.adj.len()];
        for s in spans {
            let lo = s.adj as usize;
            let hi = lo + s.adj_len as usize;
            assert!(
                hi <= self.adj.len() && (s.edge + s.m) as usize <= self.edges.len(),
                "span does not belong to this arena"
            );
            for (slot, &(_, le)) in weights[lo..hi].iter_mut().zip(&self.adj[lo..hi]) {
                *slot = new_weights[(s.edge + le) as usize];
            }
        }
        CsrArena {
            offsets: Arc::clone(&self.offsets),
            adj: Arc::clone(&self.adj),
            weights,
            edges,
        }
    }

    /// True when `other` shares this arena's topology allocations (both
    /// came from the same [`CsrArena::reweighted`] family). Pointer
    /// equality, O(1).
    pub fn shares_topology(&self, other: &CsrArena) -> bool {
        Arc::ptr_eq(&self.offsets, &other.offsets) && Arc::ptr_eq(&self.adj, &other.adj)
    }

    /// Total offsets entries (tiling checks).
    pub fn offsets_len(&self) -> usize {
        self.offsets.len()
    }

    /// Total adjacency entries (tiling checks).
    pub fn adj_len(&self) -> usize {
        self.adj.len()
    }

    /// Total edge records (tiling checks).
    pub fn edges_len(&self) -> usize {
        self.edges.len()
    }

    /// Bytes of backing storage currently in use (not capacity) — what a
    /// copied layout would have had to allocate per block to hold the same
    /// data.
    pub fn used_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.adj.len() * std::mem::size_of::<(VertexId, EdgeId)>()
            + self.weights.len() * std::mem::size_of::<Weight>()
            + self.edges.len() * std::mem::size_of::<Edge>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    fn assert_view_matches_graph(v: CsrView<'_>, g: &CsrGraph) {
        assert_eq!(v.n(), g.n());
        assert_eq!(v.m(), g.m());
        assert_eq!(v.edges(), g.edges());
        for u in 0..g.n() as u32 {
            assert_eq!(v.neighbors(u), g.neighbors(u), "vertex {u}");
            let (adj, wts) = v.incidences(u);
            assert_eq!(adj, g.neighbors(u));
            for (&(_, e), &w) in adj.iter().zip(wts) {
                assert_eq!(w, g.weight(e));
            }
        }
    }

    #[test]
    fn pushed_graphs_match_standalone_construction() {
        type EdgeList = (usize, Vec<(u32, u32, u64)>);
        let lists: Vec<EdgeList> = vec![
            (3, vec![(0, 1, 1), (1, 2, 2), (2, 0, 3)]),
            (2, vec![(0, 0, 5), (0, 1, 1), (0, 1, 9)]), // loop + parallel pair
            (4, vec![(3, 0, 2), (1, 3, 4)]),            // isolated vertex 2
            (1, vec![]),
            (0, vec![]),
        ];
        let mut arena = CsrArena::new();
        let spans: Vec<CsrSpan> = lists.iter().map(|(n, l)| arena.push(*n, l)).collect();
        for ((n, l), s) in lists.iter().zip(&spans) {
            let g = CsrGraph::from_edges(*n, l);
            assert_view_matches_graph(arena.view(s), &g);
        }
        // The spans tile the arena exactly.
        let mut off = 0;
        let mut adj = 0;
        let mut edge = 0;
        for s in &spans {
            assert_eq!((s.off, s.adj, s.edge), (off, adj, edge));
            off += s.n + 1;
            adj += s.adj_len;
            edge += s.m;
        }
        assert_eq!(off as usize, arena.offsets_len());
        assert_eq!(adj as usize, arena.adj_len());
        assert_eq!(edge as usize, arena.edges_len());
    }

    #[test]
    fn reweighted_matches_fresh_push_and_shares_topology() {
        type EdgeList = (usize, Vec<(u32, u32, u64)>);
        let lists: Vec<EdgeList> = vec![
            (3, vec![(0, 1, 1), (1, 2, 2), (2, 0, 3)]),
            (2, vec![(0, 0, 5), (0, 1, 1), (0, 1, 9)]),
            (4, vec![(3, 0, 2), (1, 3, 4)]),
        ];
        let mut arena = CsrArena::new();
        let spans: Vec<CsrSpan> = lists.iter().map(|(n, l)| arena.push(*n, l)).collect();

        // Double every weight, indexed by arena edge record.
        let new_w: Vec<u64> = lists
            .iter()
            .flat_map(|(_, l)| l.iter().map(|&(_, _, w)| w * 2))
            .collect();
        let re = arena.reweighted(&spans, &new_w);
        assert!(arena.shares_topology(&re));

        // The reweighted arena is bit-identical to pushing the doubled
        // lists into a fresh arena.
        let mut fresh = CsrArena::new();
        for (n, l) in &lists {
            let doubled: Vec<(u32, u32, u64)> = l.iter().map(|&(u, v, w)| (u, v, w * 2)).collect();
            fresh.push(*n, &doubled);
        }
        assert!(!fresh.shares_topology(&re));
        for s in &spans {
            let a = re.view(s);
            let b = fresh.view(s);
            assert_eq!(a.edges(), b.edges());
            for u in 0..s.n {
                assert_eq!(a.incidences(u), b.incidences(u));
            }
        }
        // Original untouched.
        assert_eq!(arena.view(&spans[0]).weight(0), 1);
    }

    #[test]
    fn used_bytes_counts_all_four_arrays() {
        let mut arena = CsrArena::new();
        arena.push(2, &[(0, 1, 7)]);
        // 3 offsets * 4 + 2 adj * 8 + 2 weights * 8 + 1 edge * 16
        assert_eq!(arena.used_bytes(), 12 + 16 + 16 + 16);
    }
}
