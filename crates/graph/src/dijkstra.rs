//! Single-source shortest paths (Dijkstra) with operation instrumentation.
//!
//! The paper runs one Dijkstra instance per source vertex of the reduced
//! graph, each instance on its own thread/GPU workunit (Section 2.1.2).
//! The free functions here ([`dijkstra`], [`dijkstra_with_stats`],
//! [`dijkstra_tree`]) are thin compatibility wrappers that borrow a pooled
//! [`SsspEngine`](crate::engine::SsspEngine) — preallocated scratch with
//! generation-stamp reset and an indexed 4-ary decrease-key heap — so
//! repeated per-source calls no longer allocate O(n) state each time.
//!
//! The original allocate-per-source implementation is retained verbatim in
//! [`legacy`]: it is the differential-testing reference and the baseline
//! the `sssp_engine` benchmark measures against. Both paths produce
//! bit-identical distances, parents, settle orders, and statistics.

use crate::csr::CsrGraph;
use crate::engine::with_engine;
use crate::types::{EdgeId, VertexId, Weight, INF};

/// Operation counters for one SSSP run. These feed the heterogeneous cost
/// model: `edges_relaxed` is the unit the paper's MTEPS metric counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DijkstraStats {
    /// Settled heap pops (at most one per vertex).
    pub settled: u64,
    /// Edge relaxations attempted.
    pub edges_relaxed: u64,
    /// Strictly-improving relaxations (heap pushes or decrease-keys).
    pub heap_pushes: u64,
}

impl DijkstraStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &DijkstraStats) {
        self.settled += other.settled;
        self.edges_relaxed += other.edges_relaxed;
        self.heap_pushes += other.heap_pushes;
    }
}

/// A shortest-path tree rooted at [`SsspTree::source`].
///
/// `parent_vertex[v]` / `parent_edge[v]` describe the last hop of the chosen
/// shortest path to `v`; the source (and unreachable vertices) have
/// `u32::MAX` sentinels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsspTree {
    /// Root of the tree.
    pub source: VertexId,
    /// Distance from the source to every vertex (`INF` when unreachable).
    pub dist: Vec<Weight>,
    /// Predecessor vertex on the shortest path, `u32::MAX` at the root /
    /// unreachable vertices.
    pub parent_vertex: Vec<VertexId>,
    /// Edge id of the last hop, `u32::MAX` at the root / unreachable.
    pub parent_edge: Vec<EdgeId>,
    /// Hop depth of every vertex (0 at the root and at unreachable
    /// vertices), recorded during the run so [`depth`](Self::depth) is O(1).
    pub depths: Vec<u32>,
    /// Vertices in the order they were settled: non-decreasing distance,
    /// parents before children. Unreachable vertices are absent.
    pub settle_order: Vec<VertexId>,
    /// Instrumentation for the run that built this tree.
    pub stats: DijkstraStats,
}

impl SsspTree {
    /// True if `v` is reachable from the source.
    pub fn reachable(&self, v: VertexId) -> bool {
        self.dist[v as usize] < INF
    }

    /// Walks the tree path from `v` back to the source, returning the edge
    /// ids in leaf-to-root order. Returns `None` if `v` is unreachable.
    pub fn path_edges_to_root(&self, v: VertexId) -> Option<Vec<EdgeId>> {
        if !self.reachable(v) {
            return None;
        }
        let mut out = Vec::with_capacity(self.depths[v as usize] as usize);
        let mut cur = v;
        while cur != self.source {
            let pe = self.parent_edge[cur as usize];
            debug_assert_ne!(pe, u32::MAX);
            out.push(pe);
            cur = self.parent_vertex[cur as usize];
        }
        Some(out)
    }

    /// Depth (hop count) of `v` in the tree; `None` if unreachable. O(1):
    /// depths are recorded while the tree is built.
    pub fn depth(&self, v: VertexId) -> Option<u32> {
        if !self.reachable(v) {
            return None;
        }
        Some(self.depths[v as usize])
    }

    /// Vertices in order of non-decreasing distance (root first); ties are
    /// broken by vertex id so the order is deterministic. Unreachable
    /// vertices are omitted. This is the level-order style traversal the
    /// label-computation pass of the MCB algorithm needs (parents always
    /// precede children).
    ///
    /// Built from the recorded settle order — already non-decreasing in
    /// distance — so only equal-distance runs need sorting, not the whole
    /// vertex set.
    pub fn top_down_order(&self) -> Vec<VertexId> {
        let mut order = self.settle_order.clone();
        let mut i = 0;
        while i < order.len() {
            let d = self.dist[order[i] as usize];
            let mut j = i + 1;
            while j < order.len() && self.dist[order[j] as usize] == d {
                j += 1;
            }
            order[i..j].sort_unstable();
            i = j;
        }
        order
    }
}

/// Plain Dijkstra: distances only. Borrows a pooled engine.
pub fn dijkstra(g: &CsrGraph, source: VertexId) -> Vec<Weight> {
    with_engine(|e| {
        e.run(g, source);
        e.dist_vec()
    })
}

/// Dijkstra with distances plus counters, avoiding the tree bookkeeping.
/// Borrows a pooled engine.
pub fn dijkstra_with_stats(g: &CsrGraph, source: VertexId) -> (Vec<Weight>, DijkstraStats) {
    with_engine(|e| {
        let stats = e.run(g, source);
        (e.dist_vec(), stats)
    })
}

/// Dijkstra producing the full shortest-path tree. Borrows a pooled engine.
///
/// Tie-breaking is deterministic: among equal-distance relaxations the first
/// one found with the smaller `(distance, vertex, edge)` ordering wins, so
/// two runs on the same graph always produce the same tree. Deterministic
/// trees keep the Mehlhorn–Michail candidate set stable across the
/// sequential / multicore / GPU execution modes.
pub fn dijkstra_tree(g: &CsrGraph, source: VertexId) -> SsspTree {
    with_engine(|e| {
        e.run_tree(g, source);
        e.tree()
    })
}

/// Deterministic tie-break for equal-distance parents: prefer the smaller
/// (parent vertex, edge id) pair. Shared by the engine and the legacy path.
#[inline]
pub(crate) fn tie_prefers(u: VertexId, e: EdgeId, cur_pv: VertexId, cur_pe: EdgeId) -> bool {
    (u, e) < (cur_pv, cur_pe)
}

/// The original allocate-per-source Dijkstra, kept as the differential
/// reference and benchmark baseline for the pooled
/// [`SsspEngine`](crate::engine::SsspEngine) path.
///
/// Four O(n) vectors and a lazy-deletion binary heap are allocated on every
/// call; output is bit-identical to the engine.
pub mod legacy {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use super::{tie_prefers, CsrGraph, DijkstraStats, SsspTree, VertexId, Weight, INF};

    /// Allocate-per-source equivalent of [`crate::dijkstra::dijkstra`].
    pub fn dijkstra(g: &CsrGraph, source: VertexId) -> Vec<Weight> {
        run(g, source, false).dist
    }

    /// Allocate-per-source equivalent of
    /// [`crate::dijkstra::dijkstra_with_stats`].
    pub fn dijkstra_with_stats(g: &CsrGraph, source: VertexId) -> (Vec<Weight>, DijkstraStats) {
        let t = run(g, source, false);
        (t.dist, t.stats)
    }

    /// Allocate-per-source equivalent of
    /// [`crate::dijkstra::dijkstra_tree`].
    pub fn dijkstra_tree(g: &CsrGraph, source: VertexId) -> SsspTree {
        run(g, source, true)
    }

    fn run(g: &CsrGraph, source: VertexId, want_tree: bool) -> SsspTree {
        let n = g.n();
        assert!((source as usize) < n, "source out of range");
        let mut dist = vec![INF; n];
        let mut parent_vertex = vec![u32::MAX; n];
        let mut parent_edge = vec![u32::MAX; n];
        let mut depths = vec![0u32; n];
        let mut done = vec![false; n];
        let mut settle_order = Vec::new();
        let mut stats = DijkstraStats::default();

        let mut heap: BinaryHeap<Reverse<(Weight, VertexId)>> = BinaryHeap::new();
        dist[source as usize] = 0;
        heap.push(Reverse((0, source)));

        while let Some(Reverse((d, u))) = heap.pop() {
            if done[u as usize] {
                continue; // stale entry (lazy deletion)
            }
            done[u as usize] = true;
            settle_order.push(u);
            stats.settled += 1;
            debug_assert_eq!(d, dist[u as usize]);
            for &(v, e) in g.neighbors(u) {
                stats.edges_relaxed += 1;
                if v == u {
                    continue; // self-loops never improve a distance
                }
                let nd = d + g.weight(e);
                let strictly_better = nd < dist[v as usize];
                // With non-negative weights a settled vertex can never be
                // strictly improved, so `strictly_better` implies `!done[v]`.
                let tie_better = want_tree
                    && nd == dist[v as usize]
                    && !done[v as usize]
                    && tie_prefers(u, e, parent_vertex[v as usize], parent_edge[v as usize]);
                if strictly_better || tie_better {
                    dist[v as usize] = nd;
                    if want_tree {
                        parent_vertex[v as usize] = u;
                        parent_edge[v as usize] = e;
                        depths[v as usize] = depths[u as usize] + 1;
                    }
                    if strictly_better {
                        heap.push(Reverse((nd, v)));
                        stats.heap_pushes += 1;
                    }
                }
            }
        }

        SsspTree {
            source,
            dist,
            parent_vertex,
            parent_edge,
            depths,
            settle_order,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -1- 1 -1- 2
    ///  \----5----/
    fn line_with_shortcut() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 5)])
    }

    #[test]
    fn picks_shorter_multi_hop_path() {
        let d = dijkstra(&line_with_shortcut(), 0);
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], INF);
    }

    #[test]
    fn parallel_edges_use_cheapest() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 9), (0, 1, 3)]);
        assert_eq!(dijkstra(&g, 0)[1], 3);
    }

    #[test]
    fn self_loops_are_ignored() {
        let g = CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 4)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 4]);
    }

    #[test]
    fn tree_paths_reconstruct_distances() {
        let g = line_with_shortcut();
        let t = dijkstra_tree(&g, 0);
        let p2 = t.path_edges_to_root(2).unwrap();
        let w: Weight = p2.iter().map(|&e| g.weight(e)).sum();
        assert_eq!(w, t.dist[2]);
        assert_eq!(t.depth(2), Some(2));
        assert_eq!(t.depth(0), Some(0));
    }

    #[test]
    fn tree_is_deterministic_under_ties() {
        // Two equal-weight routes 0->1->3 and 0->2->3.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
        let a = dijkstra_tree(&g, 0);
        let b = dijkstra_tree(&g, 0);
        assert_eq!(a.parent_vertex, b.parent_vertex);
        assert_eq!(a.parent_edge, b.parent_edge);
    }

    #[test]
    fn stats_count_relaxations() {
        let g = line_with_shortcut();
        let (_, s) = dijkstra_with_stats(&g, 0);
        assert_eq!(s.settled, 3);
        assert_eq!(s.edges_relaxed, 6); // every incidence scanned once
    }

    #[test]
    fn top_down_order_puts_parents_first() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 2), (1, 2, 2), (0, 3, 1), (3, 4, 10)]);
        let t = dijkstra_tree(&g, 0);
        let order = t.top_down_order();
        let pos = |v: VertexId| order.iter().position(|&x| x == v).unwrap();
        for v in 0..5u32 {
            let p = t.parent_vertex[v as usize];
            if p != u32::MAX {
                assert!(pos(p) < pos(v), "parent {p} should precede {v}");
            }
        }
    }

    #[test]
    fn top_down_order_matches_full_sort() {
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (0, 2, 1),
                (1, 3, 1),
                (2, 4, 1),
                (3, 5, 3),
                (4, 6, 3),
            ],
        );
        let t = dijkstra_tree(&g, 0);
        let mut expected: Vec<VertexId> = (0..t.dist.len() as u32)
            .filter(|&v| t.reachable(v))
            .collect();
        expected.sort_unstable_by_key(|&v| (t.dist[v as usize], v));
        assert_eq!(t.top_down_order(), expected);
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::from_edges(1, &[]);
        let t = dijkstra_tree(&g, 0);
        assert_eq!(t.dist, vec![0]);
        assert_eq!(t.path_edges_to_root(0), Some(vec![]));
        assert_eq!(t.settle_order, vec![0]);
    }

    #[test]
    fn wrappers_match_legacy() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 1), (1, 2, 1), (0, 2, 2), (2, 3, 5), (4, 5, 1)]);
        for s in 0..6u32 {
            let (d, st) = dijkstra_with_stats(&g, s);
            let (ld, lst) = legacy::dijkstra_with_stats(&g, s);
            assert_eq!(d, ld);
            assert_eq!(st, lst);
            let t = dijkstra_tree(&g, s);
            let lt = legacy::dijkstra_tree(&g, s);
            assert_eq!(t.dist, lt.dist);
            assert_eq!(t.parent_vertex, lt.parent_vertex);
            assert_eq!(t.parent_edge, lt.parent_edge);
            assert_eq!(t.depths, lt.depths);
            assert_eq!(t.settle_order, lt.settle_order);
            assert_eq!(t.stats, lt.stats);
        }
    }
}
