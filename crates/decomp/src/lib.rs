//! # ear-decomp
//!
//! Structural graph decompositions used by the ear-decomposition APSP and
//! minimum-cycle-basis algorithms:
//!
//! * [`bcc`] — biconnected components, articulation points and bridges
//!   (iterative Hopcroft–Tarjan with an explicit edge stack);
//! * [`block_cut`] — the block-cut tree with binary-lifting LCA, used to
//!   stitch shortest paths across biconnected components (paper §2.2);
//! * [`ear`] — open ear decomposition of biconnected graphs via Schmidt's
//!   chain decomposition, plus a validity checker;
//! * [`reduce`] — contraction of maximal degree-2 chains into single
//!   weighted edges, producing the *reduced graph* `G^r` together with all
//!   the per-removed-vertex metadata (`left(x)`, `right(x)`, prefix weights)
//!   that the APSP post-processing formulas of paper §2.1.3 consume;
//! * [`fvs`] — feedback vertex sets for the Mehlhorn–Michail candidate
//!   restriction in the MCB algorithm;
//! * [`pendant`] — iterative degree-1 peeling (the Banerjee et al.
//!   optimisation the paper compares against);
//! * [`plan`] — the [`DecompPlan`]: all of the above front half (BCC split,
//!   block-cut tree, per-block subgraphs, per-block reductions) built once
//!   and shared — via `Arc` — by the APSP, MCB and statistics pipelines.

pub mod bcc;
pub mod block_cut;
pub mod ear;
pub mod fvs;
pub mod pendant;
pub mod plan;
pub mod reduce;

pub use bcc::{biconnected_components, Bcc};
pub use block_cut::BlockCutTree;
pub use ear::{ear_decomposition, validate_ears, Ear, EarDecomposition, EarError};
pub use fvs::feedback_vertex_set;
pub use pendant::{peel_pendants, PendantPeel};
pub use plan::{BlockPlan, CustomizedPlan, DecompPlan, PlanTopology};
pub use reduce::{
    reduce_graph, reduce_graph_parallel, ChainTopology, EdgeOrigin, NotSimpleError, ReducedGraph,
    ReducedTopology, RemovedInfo, RemovedSlot,
};
