//! Open ear decomposition of biconnected graphs.
//!
//! A graph has an ear decomposition iff it is 2-edge-connected, and an
//! *open* ear decomposition (every ear after the first is a simple path) iff
//! it is biconnected (Whitney; see paper §2.1.1). We construct it with
//! Schmidt's *chain decomposition*: perform a DFS, then for every back edge
//! — taken in DFS-discovery order of its upper endpoint — walk from the
//! lower tree endpoint upward until hitting an already-visited vertex.
//! Chain 0 is a cycle (the paper's `P0 ∪ P1`); every later chain is an open
//! ear when the graph is biconnected.
//!
//! The paper's PRAM construction (Ramachandran) is replaced by this
//! linear-time sequential pass: the decomposition is never the bottleneck
//! (it is a once-per-graph preprocessing step), while the chain-contraction
//! that follows *is* parallelised (see [`crate::reduce`]).

use ear_graph::{CsrGraph, EdgeId, VertexId};

/// One ear: a path (or, for the first ear only, a cycle).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ear {
    /// Edge ids along the ear, in path order.
    pub edges: Vec<EdgeId>,
    /// Vertices along the ear in path order, endpoints included. For a
    /// cycle the first and last entries coincide.
    pub vertices: Vec<VertexId>,
    /// True only for the initial cycle.
    pub is_cycle: bool,
}

impl Ear {
    /// The two attachment endpoints (equal for the initial cycle).
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (
            *self.vertices.first().unwrap(),
            *self.vertices.last().unwrap(),
        )
    }

    /// Vertices strictly inside the ear (everything except the endpoints).
    pub fn interior(&self) -> &[VertexId] {
        &self.vertices[1..self.vertices.len() - 1]
    }
}

/// An open ear decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EarDecomposition {
    /// Ears in construction order; `ears[0]` is the initial cycle.
    pub ears: Vec<Ear>,
}

/// Why a graph failed to decompose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EarError {
    /// Fewer than two vertices, or no edges.
    TooSmall,
    /// The graph is not connected.
    Disconnected,
    /// A bridge or isolated vertex was found: not 2-edge-connected.
    NotTwoEdgeConnected,
    /// 2-edge-connected but has an articulation point: ears would be closed.
    NotBiconnected,
    /// Self-loops are not supported by ear decomposition.
    HasSelfLoop,
}

impl std::fmt::Display for EarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            EarError::TooSmall => "graph too small for an ear decomposition",
            EarError::Disconnected => "graph is disconnected",
            EarError::NotTwoEdgeConnected => "graph has a bridge (not 2-edge-connected)",
            EarError::NotBiconnected => "graph has an articulation point (not biconnected)",
            EarError::HasSelfLoop => "graph has a self-loop",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for EarError {}

/// Computes an open ear decomposition of a biconnected graph.
///
/// Returns an error describing which precondition failed otherwise.
/// Parallel edges are allowed (each extra copy becomes a one-edge ear).
///
/// ```
/// use ear_decomp::ear::{ear_decomposition, validate_ears};
/// use ear_graph::CsrGraph;
/// // A theta graph: cycle 0-1-2-3 plus the path 0-4-2.
/// let g = CsrGraph::from_edges(5, &[
///     (0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 4, 1), (4, 2, 1),
/// ]);
/// let d = ear_decomposition(&g).unwrap();
/// assert_eq!(d.ears.len(), g.m() - g.n() + 1); // cycle rank
/// assert!(d.ears[0].is_cycle);
/// validate_ears(&g, &d).unwrap();
/// ```
pub fn ear_decomposition(g: &CsrGraph) -> Result<EarDecomposition, EarError> {
    let n = g.n();
    if n < 2 || g.m() == 0 {
        return Err(EarError::TooSmall);
    }
    if g.edges().iter().any(|e| e.is_self_loop()) {
        return Err(EarError::HasSelfLoop);
    }

    // DFS from vertex 0: discovery order, parents.
    let mut disc = vec![u32::MAX; n];
    let mut parent_vertex = vec![u32::MAX; n];
    let mut parent_edge = vec![u32::MAX; n];
    let mut stack: Vec<(VertexId, u32)> = vec![(0, 0)];
    disc[0] = 0;
    let mut t = 1u32;
    while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
        let nbrs = g.neighbors(u);
        if (*cursor as usize) < nbrs.len() {
            let (v, e) = nbrs[*cursor as usize];
            *cursor += 1;
            if disc[v as usize] == u32::MAX {
                disc[v as usize] = t;
                t += 1;
                parent_vertex[v as usize] = u;
                parent_edge[v as usize] = e;
                stack.push((v, 0));
            }
        } else {
            stack.pop();
        }
    }
    if disc.contains(&u32::MAX) {
        return Err(EarError::Disconnected);
    }
    let mut by_disc: Vec<VertexId> = (0..n as u32).collect();
    by_disc.sort_unstable_by_key(|&v| disc[v as usize]);

    // Chain decomposition: visit vertices in discovery order; for each back
    // edge whose *upper* endpoint is the current vertex, walk down-to-up.
    let mut visited_v = vec![false; n];
    let mut used_e = vec![false; g.m()];
    // Mark tree edges as "used" only when swept into a chain; everything
    // left unused at the end certifies a bridge.
    let mut ears: Vec<Ear> = Vec::new();
    let mut saw_late_cycle = false;
    visited_v[0] = true;

    for &u in &by_disc {
        // Deterministic ear order: scan the adjacency list in CSR order.
        for &(v, e) in g.neighbors(u) {
            if used_e[e as usize] {
                continue;
            }
            let is_tree = parent_edge[v as usize] == e || parent_edge[u as usize] == e;
            if is_tree {
                continue;
            }
            // Non-tree edge; only start a chain from the upper endpoint.
            if disc[u as usize] > disc[v as usize] {
                continue;
            }
            used_e[e as usize] = true;
            // Schmidt's rule: the chain's start vertex is itself marked
            // visited before the walk, so the walk can never run past it —
            // a chain that closes back on an unvisited start would otherwise
            // swallow the bridge above it. (On a biconnected graph `u` is
            // always visited already; an unvisited `u` implies a bridge
            // above it, which the edge-coverage check below reports.)
            visited_v[u as usize] = true;
            let mut edges = vec![e];
            let mut vertices = vec![u, v];
            let mut cur = v;
            while !visited_v[cur as usize] {
                visited_v[cur as usize] = true;
                let pe = parent_edge[cur as usize];
                debug_assert_ne!(pe, u32::MAX, "root is always visited");
                used_e[pe as usize] = true;
                cur = parent_vertex[cur as usize];
                edges.push(pe);
                vertices.push(cur);
            }
            let is_cycle = vertices.first() == vertices.last() && vertices.len() > 1;
            if !ears.is_empty() && is_cycle {
                // A later closed chain certifies an articulation point (or a
                // chain whose start vertex was reachable only through it).
                saw_late_cycle = true;
            }
            ears.push(Ear {
                edges,
                vertices,
                is_cycle,
            });
        }
    }

    if used_e.iter().any(|&u| !u) || visited_v.iter().any(|&v| !v) {
        // An edge on no chain is a bridge; a vertex on no chain hangs off
        // bridges only. Either way the graph is not even 2-edge-connected,
        // which is the more precise diagnosis than `NotBiconnected`.
        return Err(EarError::NotTwoEdgeConnected);
    }
    if saw_late_cycle {
        return Err(EarError::NotBiconnected);
    }
    if !ears[0].is_cycle {
        return Err(EarError::NotTwoEdgeConnected);
    }
    Ok(EarDecomposition { ears })
}

/// Validates the defining properties of an open ear decomposition
/// (paper §2.1.1): the ears partition `E`; the first ear is a simple cycle;
/// every later ear is a simple path whose endpoints — and only its endpoints
/// — lie on earlier ears.
pub fn validate_ears(g: &CsrGraph, d: &EarDecomposition) -> Result<(), String> {
    let mut edge_seen = vec![false; g.m()];
    let mut vertex_on_earlier = vec![false; g.n()];
    for (i, ear) in d.ears.iter().enumerate() {
        if ear.edges.len() + 1 != ear.vertices.len() {
            return Err(format!("ear {i}: edge/vertex count mismatch"));
        }
        // Consecutive vertices joined by the listed edges.
        for (k, &e) in ear.edges.iter().enumerate() {
            let r = g.edge(e);
            let (a, b) = (ear.vertices[k], ear.vertices[k + 1]);
            if !(r.u == a && r.v == b || r.u == b && r.v == a) {
                return Err(format!("ear {i}: edge {e} does not join step {k}"));
            }
            if edge_seen[e as usize] {
                return Err(format!("edge {e} appears in two ears"));
            }
            edge_seen[e as usize] = true;
        }
        // Simplicity of the interior walk.
        let mut inner = ear.vertices.clone();
        if ear.is_cycle {
            inner.pop();
        }
        let mut sorted = inner.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != inner.len() {
            return Err(format!("ear {i}: repeated vertex"));
        }
        if i == 0 {
            if !ear.is_cycle {
                return Err("ear 0 must be a cycle".into());
            }
        } else {
            if ear.is_cycle {
                return Err(format!("ear {i}: only ear 0 may be a cycle"));
            }
            let (a, b) = ear.endpoints();
            if !vertex_on_earlier[a as usize] || !vertex_on_earlier[b as usize] {
                return Err(format!("ear {i}: endpoint not on earlier ears"));
            }
            for &v in ear.interior() {
                if vertex_on_earlier[v as usize] {
                    return Err(format!("ear {i}: interior vertex {v} already covered"));
                }
            }
        }
        for &v in &ear.vertices {
            vertex_on_earlier[v as usize] = true;
        }
    }
    if edge_seen.iter().any(|&s| !s) {
        return Err("ears do not cover all edges".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> CsrGraph {
        let edges: Vec<_> = (0..n)
            .map(|i| (i as u32, ((i + 1) % n) as u32, 1u64))
            .collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn simple_cycle_is_one_ear() {
        let g = cycle(5);
        let d = ear_decomposition(&g).unwrap();
        assert_eq!(d.ears.len(), 1);
        assert!(d.ears[0].is_cycle);
        validate_ears(&g, &d).unwrap();
    }

    #[test]
    fn theta_graph_has_two_ears() {
        // cycle 0-1-2-3 plus chord path 0-4-2
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 3, 1),
                (3, 0, 1),
                (0, 4, 1),
                (4, 2, 1),
            ],
        );
        let d = ear_decomposition(&g).unwrap();
        assert_eq!(d.ears.len(), 2);
        assert!(!d.ears[1].is_cycle);
        validate_ears(&g, &d).unwrap();
    }

    #[test]
    fn complete_graph_k4() {
        let g = CsrGraph::from_edges(
            4,
            &[
                (0, 1, 1),
                (0, 2, 1),
                (0, 3, 1),
                (1, 2, 1),
                (1, 3, 1),
                (2, 3, 1),
            ],
        );
        let d = ear_decomposition(&g).unwrap();
        // m - n + 1 = 6 - 4 + 1 = 3 ears.
        assert_eq!(d.ears.len(), 3);
        validate_ears(&g, &d).unwrap();
    }

    #[test]
    fn ear_count_is_cycle_rank() {
        // For any biconnected graph the number of ears equals m - n + 1.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 0, 1),
                (0, 3, 1),
                (1, 4, 1),
            ],
        );
        let d = ear_decomposition(&g).unwrap();
        assert_eq!(d.ears.len(), g.m() - g.n() + 1);
        validate_ears(&g, &d).unwrap();
    }

    #[test]
    fn parallel_edge_is_single_edge_ear() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 1, 5)]);
        let d = ear_decomposition(&g).unwrap();
        assert_eq!(d.ears.len(), 2);
        let one_edge = d.ears.iter().find(|e| e.edges.len() == 1).unwrap();
        assert_eq!(one_edge.endpoints(), (0, 1));
        validate_ears(&g, &d).unwrap();
    }

    #[test]
    fn bridge_is_rejected() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
        );
        assert_eq!(ear_decomposition(&g), Err(EarError::NotTwoEdgeConnected));
    }

    #[test]
    fn articulation_point_is_rejected() {
        // Two triangles sharing vertex 2: 2-edge-connected but not
        // biconnected, so only a closed (non-open) decomposition exists.
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 2, 1),
            ],
        );
        assert_eq!(ear_decomposition(&g), Err(EarError::NotBiconnected));
    }

    #[test]
    fn disconnected_is_rejected() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
        );
        assert_eq!(ear_decomposition(&g), Err(EarError::Disconnected));
    }

    #[test]
    fn self_loop_is_rejected() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (1, 1, 1)]);
        assert_eq!(ear_decomposition(&g), Err(EarError::HasSelfLoop));
    }

    #[test]
    fn too_small_is_rejected() {
        assert_eq!(
            ear_decomposition(&CsrGraph::from_edges(1, &[])),
            Err(EarError::TooSmall)
        );
        assert_eq!(
            ear_decomposition(&CsrGraph::from_edges(0, &[])),
            Err(EarError::TooSmall)
        );
    }

    #[test]
    fn grid_graph_decomposes() {
        // 3x3 grid: biconnected.
        let idx = |r: u32, c: u32| r * 3 + c;
        let mut edges = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                if c + 1 < 3 {
                    edges.push((idx(r, c), idx(r, c + 1), 1u64));
                }
                if r + 1 < 3 {
                    edges.push((idx(r, c), idx(r + 1, c), 1u64));
                }
            }
        }
        let g = CsrGraph::from_edges(9, &edges);
        let d = ear_decomposition(&g).unwrap();
        assert_eq!(d.ears.len(), g.m() - g.n() + 1);
        validate_ears(&g, &d).unwrap();
    }

    #[test]
    fn validator_rejects_tampered_decomposition() {
        let g = cycle(4);
        let mut d = ear_decomposition(&g).unwrap();
        d.ears[0].edges.pop();
        assert!(validate_ears(&g, &d).is_err());
    }
}
