//! Degree-2 chain contraction: the paper's *reduced graph* `G^r`.
//!
//! Vertices retained in `G^r` are those whose degree differs from two (the
//! paper's biconnected setting makes these exactly the degree ≥ 3 vertices);
//! every maximal chain of degree-2 vertices between two retained anchors is
//! replaced by a single edge whose weight is the chain's total weight
//! (paper §2.1.1). Components that are pure cycles (every vertex degree 2)
//! get one honorary anchor so the cycle survives as a self-loop — the paper
//! implicitly assumes this case away; keeping it makes the reduction total.
//!
//! The contraction retains, for every removed vertex `x`, the anchors
//! `left(x)`/`right(x)` and the exact prefix weights `wt(x, left(x))` /
//! `wt(x, right(x))` along its chain: these are precisely the inputs of the
//! APSP post-processing formulas (paper §2.1.3), and the chain edge lists
//! drive the MCB cycle re-expansion (paper Lemma 3.1).
//!
//! `G^r` is a **multigraph**: parallel chains between the same anchor pair
//! become parallel edges and anchor-to-self chains become self-loops. The
//! MCB pipeline needs them (each is an independent cycle generator); APSP
//! simply lets Dijkstra skip the non-minimal copies.
//!
//! # Topology / weight layering
//!
//! The contraction is split into two layers. [`ReducedTopology`] is
//! everything the chain walks discover that does not depend on weights:
//! the anchor set, the retained numbering, the chain edge/interior lists,
//! and each reduced edge's origin. The weight layer — chain totals, the
//! per-removed-vertex prefix weights, and the reduced multigraph's edge
//! weights — is recomputed from a recorded topology by one pass over the
//! chain edge lists, **without re-walking the degree-2 paths**:
//! [`ReducedGraph::reweighted`] shares the topology (an [`Arc`]) and the
//! reduced CSR's structure arrays with the original and is bit-identical
//! to a cold [`reduce_graph`] of the reweighted block.

use std::ops::Deref;
use std::sync::Arc;

use ear_graph::{CsrGraph, CsrView, EdgeId, VertexId, Weight};

/// Error returned when chain contraction is asked to reduce a non-simple
/// graph (self-loops or parallel edges present).
///
/// Contraction is defined on *simple* graphs only: a degree-2 vertex with a
/// self-loop or a parallel pair does not sit on a well-defined chain, and
/// the paper's `left/right` bookkeeping (§2.1.1) assumes distinct chain
/// neighbors. Callers that slice a multigraph into biconnected blocks
/// should check each block (e.g. via the plan's per-block simplicity flag,
/// [`crate::plan::DecompPlan::is_simple`]) and fall back to the unreduced
/// block instead of reducing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotSimpleError;

impl std::fmt::Display for NotSimpleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("chain contraction requires a simple graph (no self-loops or parallel edges)")
    }
}

impl std::error::Error for NotSimpleError {}

/// A maximal degree-2 chain that was contracted into one reduced edge —
/// the weight-independent part (edge ids and vertex ids only; totals and
/// prefix weights live in the owning [`ReducedGraph`]'s weight layer).
#[derive(Clone, Debug)]
pub struct ChainTopology {
    /// Left anchor (original vertex id, retained in `G^r`).
    pub left: VertexId,
    /// Right anchor (may equal `left` when the chain closes on itself).
    pub right: VertexId,
    /// Original edges in path order, `left → right`.
    pub edges: Vec<EdgeId>,
    /// Removed interior vertices in path order.
    pub interior: Vec<VertexId>,
}

/// Where a reduced edge came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOrigin {
    /// An original edge between two retained vertices, kept verbatim.
    Direct(EdgeId),
    /// A contracted chain, indexing [`ReducedTopology::chains`].
    Chain(u32),
}

/// Weight-independent placement of a removed vertex on its chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemovedSlot {
    /// Chain the vertex sits on.
    pub chain: u32,
    /// Position inside [`ChainTopology::interior`].
    pub pos: u32,
    /// `left(x)` — original id of the anchor towards the chain head.
    pub left: VertexId,
    /// `right(x)` — original id of the anchor towards the chain tail.
    pub right: VertexId,
}

/// Per-removed-vertex metadata: the `left/right` functions of paper §2.1.1
/// together with the exact chain prefix distances. Assembled on demand by
/// [`ReducedGraph::removed_info`] from the topology slot and the current
/// weight layer.
#[derive(Clone, Copy, Debug)]
pub struct RemovedInfo {
    /// Chain the vertex sits on.
    pub chain: u32,
    /// Position inside [`ChainTopology::interior`].
    pub pos: u32,
    /// `left(x)` — original id of the anchor towards the chain head.
    pub left: VertexId,
    /// `right(x)` — original id of the anchor towards the chain tail.
    pub right: VertexId,
    /// `wt(x, left(x))`: exact distance along the chain to the left anchor.
    pub w_left: Weight,
    /// `wt(x, right(x))`: exact distance along the chain to the right anchor.
    pub w_right: Weight,
}

/// The weight-independent layer of a contraction: anchors, numbering,
/// chains and reduced-edge origins. Shared by every [`ReducedGraph`] in a
/// `reweighted` family via [`Arc`].
#[derive(Clone, Debug)]
pub struct ReducedTopology {
    /// `local → original` vertex ids.
    pub retained: Vec<VertexId>,
    /// `original → local` vertex ids (`u32::MAX` for removed vertices).
    pub to_reduced: Vec<u32>,
    /// One entry per reduced edge describing its origin.
    pub edge_origin: Vec<EdgeOrigin>,
    /// All contracted chains (weight-independent part).
    pub chains: Vec<ChainTopology>,
    /// `original vertex → chain slot` (`None` for retained vertices).
    pub removed: Vec<Option<RemovedSlot>>,
}

impl ReducedTopology {
    /// True if `x` was removed by the contraction.
    pub fn is_removed(&self, x: VertexId) -> bool {
        self.removed[x as usize].is_some()
    }

    /// Number of vertices removed.
    pub fn removed_count(&self) -> usize {
        self.removed.iter().filter(|r| r.is_some()).count()
    }

    /// Local reduced id of an original vertex, if retained.
    pub fn local(&self, original: VertexId) -> Option<VertexId> {
        let l = self.to_reduced[original as usize];
        (l != u32::MAX).then_some(l)
    }

    /// Expands a reduced edge back to the original edge ids it stands for,
    /// in path order from the edge's `u` endpoint.
    pub fn expand_edge(&self, reduced_edge: EdgeId) -> Vec<EdgeId> {
        match self.edge_origin[reduced_edge as usize] {
            EdgeOrigin::Direct(e) => vec![e],
            EdgeOrigin::Chain(c) => self.chains[c as usize].edges.clone(),
        }
    }
}

/// The reduced graph `G^r` plus everything needed to map results back to
/// the original graph.
///
/// Internally two-layered: an [`Arc<ReducedTopology>`] (shared, immutable)
/// plus the weight layer (`reduced` multigraph, chain totals, prefix
/// weights). Derefs to [`ReducedTopology`], so topology reads
/// (`r.retained`, `r.chains`, `r.expand_edge(..)`) keep their call shape.
#[derive(Clone, Debug)]
pub struct ReducedGraph {
    topo: Arc<ReducedTopology>,
    /// The contracted multigraph on the retained vertices (local ids).
    pub reduced: CsrGraph,
    /// Total weight per chain (the reduced chain-edge's weight).
    chain_weights: Vec<Weight>,
    /// Flattened `wt(x, left)` per interior vertex, chain-major; window of
    /// chain `c` is `chain_off[c] .. chain_off[c + 1]`.
    prefix_weights: Vec<Weight>,
    chain_off: Vec<u32>,
}

impl Deref for ReducedGraph {
    type Target = ReducedTopology;

    fn deref(&self) -> &ReducedTopology {
        &self.topo
    }
}

impl ReducedGraph {
    /// Assembles the weight layer for `topo` from the block's current
    /// weights — the one construction path shared by the cold build and
    /// [`ReducedGraph::reweighted`], so both are bit-identical by
    /// construction.
    fn customize(topo: Arc<ReducedTopology>, g: CsrView<'_>) -> ReducedGraph {
        let (chain_weights, prefix_weights, chain_off) = compute_chain_weights(&topo, g);
        let reduced_edges: Vec<(u32, u32, Weight)> = topo
            .edge_origin
            .iter()
            .map(|&o| match o {
                EdgeOrigin::Direct(e) => {
                    let r = g.edge(e);
                    (
                        topo.to_reduced[r.u as usize],
                        topo.to_reduced[r.v as usize],
                        r.w,
                    )
                }
                EdgeOrigin::Chain(c) => {
                    let ch = &topo.chains[c as usize];
                    (
                        topo.to_reduced[ch.left as usize],
                        topo.to_reduced[ch.right as usize],
                        chain_weights[c as usize],
                    )
                }
            })
            .collect();
        let reduced = CsrGraph::from_edges(topo.retained.len(), &reduced_edges);
        ReducedGraph {
            topo,
            reduced,
            chain_weights,
            prefix_weights,
            chain_off,
        }
    }

    /// The same contraction under the block's new weights: reuses the
    /// recorded chains (no degree-2 re-walk) to resum chain totals and
    /// prefix weights, and swaps the reduced multigraph's weight layer via
    /// [`CsrGraph::reweighted`]. `g` must be the *same block topology* the
    /// contraction was built from, only reweighted. The result is
    /// bit-identical to a cold [`reduce_graph`] of `g` while sharing the
    /// topology [`Arc`] and the reduced CSR's structure arrays with `self`.
    pub fn reweighted(&self, g: CsrView<'_>) -> ReducedGraph {
        let (chain_weights, prefix_weights, chain_off) = compute_chain_weights(&self.topo, g);
        let new_reduced_w: Vec<Weight> = self
            .topo
            .edge_origin
            .iter()
            .map(|&o| match o {
                EdgeOrigin::Direct(e) => g.weight(e),
                EdgeOrigin::Chain(c) => chain_weights[c as usize],
            })
            .collect();
        ReducedGraph {
            topo: Arc::clone(&self.topo),
            reduced: self.reduced.reweighted(&new_reduced_w),
            chain_weights,
            prefix_weights,
            chain_off,
        }
    }

    /// The shared weight-independent layer.
    pub fn topology(&self) -> &Arc<ReducedTopology> {
        &self.topo
    }

    /// True when `other` shares this contraction's topology layer (both
    /// came from the same [`ReducedGraph::reweighted`] family). O(1).
    pub fn shares_topology(&self, other: &ReducedGraph) -> bool {
        Arc::ptr_eq(&self.topo, &other.topo) && self.reduced.shares_topology(&other.reduced)
    }

    /// Removal metadata of `x` under the current weights (`None` for
    /// retained vertices): the topology slot joined with the chain prefix
    /// weights — the inputs of the paper's §2.1.3 extension formulas.
    pub fn removed_info(&self, x: VertexId) -> Option<RemovedInfo> {
        let s = self.topo.removed[x as usize]?;
        let w_left =
            self.prefix_weights[self.chain_off[s.chain as usize] as usize + s.pos as usize];
        let total = self.chain_weights[s.chain as usize];
        Some(RemovedInfo {
            chain: s.chain,
            pos: s.pos,
            left: s.left,
            right: s.right,
            w_left,
            w_right: total - w_left,
        })
    }

    /// Total weight of chain `c` (the reduced chain-edge's weight).
    pub fn chain_weight(&self, c: u32) -> Weight {
        self.chain_weights[c as usize]
    }
}

/// One pass over the recorded chain edge lists: totals plus the
/// per-interior-vertex prefix weights, in chain order. Edge `k` of a chain
/// joins the previous vertex to `interior[k]`, so `wt(interior[k], left)`
/// is the sum of edges `0..=k` — the exact summation order of the original
/// inline walk, preserved for bit-identity.
fn compute_chain_weights(
    topo: &ReducedTopology,
    g: CsrView<'_>,
) -> (Vec<Weight>, Vec<Weight>, Vec<u32>) {
    let mut chain_weights = Vec::with_capacity(topo.chains.len());
    let mut chain_off = Vec::with_capacity(topo.chains.len() + 1);
    let total_interior: usize = topo.chains.iter().map(|c| c.interior.len()).sum();
    let mut prefix_weights = Vec::with_capacity(total_interior);
    chain_off.push(0);
    for ch in &topo.chains {
        let mut acc: Weight = 0;
        for (pos, &e) in ch.edges.iter().enumerate() {
            acc += g.weight(e);
            if pos < ch.interior.len() {
                prefix_weights.push(acc);
            }
        }
        chain_weights.push(acc);
        chain_off.push(prefix_weights.len() as u32);
    }
    (chain_weights, prefix_weights, chain_off)
}

/// Contracts all maximal degree-2 chains of `g`.
///
/// # Errors
/// Returns [`NotSimpleError`] if `g` has self-loops or parallel edges —
/// reduction is only defined on simple graphs (see the error type's docs
/// for why, and for what callers should do with non-simple blocks).
pub fn reduce_graph(g: CsrView<'_>) -> Result<ReducedGraph, NotSimpleError> {
    let topo = reduce_topology(g)?;
    Ok(ReducedGraph::customize(Arc::new(topo), g))
}

/// The weight-independent half of [`reduce_graph`]: anchor discovery,
/// retained numbering and the chain walks. Weights are never read.
fn reduce_topology(g: CsrView<'_>) -> Result<ReducedTopology, NotSimpleError> {
    if !g.is_simple() {
        return Err(NotSimpleError);
    }
    let n = g.n();

    // Anchor set: degree != 2, plus one honorary anchor per pure-cycle
    // component (smallest vertex id in the cycle).
    let mut anchor = vec![false; n];
    for v in 0..n as u32 {
        if g.degree(v) != 2 {
            anchor[v as usize] = true;
        }
    }
    mark_pure_cycle_anchors(g, &mut anchor);

    // Retained vertex numbering.
    let mut to_reduced = vec![u32::MAX; n];
    let mut retained = Vec::new();
    for v in 0..n as u32 {
        if anchor[v as usize] {
            to_reduced[v as usize] = retained.len() as u32;
            retained.push(v);
        }
    }

    let mut chains: Vec<ChainTopology> = Vec::new();
    let mut removed: Vec<Option<RemovedSlot>> = vec![None; n];
    let mut edge_origin: Vec<EdgeOrigin> = Vec::new();

    // Direct edges: both endpoints anchors.
    for (idx, e) in g.edges().iter().enumerate() {
        if anchor[e.u as usize] && anchor[e.v as usize] {
            edge_origin.push(EdgeOrigin::Direct(idx as EdgeId));
        }
    }

    // Chains: walk from each anchor into each degree-2 neighbor.
    let mut on_chain = vec![false; n];
    for &a in &retained {
        for &(first, first_edge) in g.neighbors(a) {
            if anchor[first as usize] || on_chain[first as usize] {
                continue;
            }
            let chain = walk_chain(g, &anchor, &mut on_chain, a, first, first_edge);
            let cid = chains.len() as u32;
            for (pos, &x) in chain.interior.iter().enumerate() {
                removed[x as usize] = Some(RemovedSlot {
                    chain: cid,
                    pos: pos as u32,
                    left: chain.left,
                    right: chain.right,
                });
            }
            edge_origin.push(EdgeOrigin::Chain(cid));
            chains.push(chain);
        }
    }

    Ok(ReducedTopology {
        retained,
        to_reduced,
        edge_origin,
        chains,
        removed,
    })
}

/// Walks a maximal chain starting at anchor `a` through degree-2 vertex
/// `first`, reached by `first_edge`, until the next anchor.
fn walk_chain(
    g: CsrView<'_>,
    anchor: &[bool],
    on_chain: &mut [bool],
    a: VertexId,
    first: VertexId,
    first_edge: EdgeId,
) -> ChainTopology {
    let mut edges = vec![first_edge];
    let mut interior = vec![first];
    on_chain[first as usize] = true;
    let mut prev_edge = first_edge;
    let mut cur = first;
    loop {
        // A degree-2 vertex has exactly two incidences; take the one we did
        // not arrive by (edge-id comparison, so parallel topologies cannot
        // confuse the walk).
        let nbrs = g.neighbors(cur);
        debug_assert_eq!(nbrs.len(), 2);
        let (next, e) = if nbrs[0].1 == prev_edge {
            nbrs[1]
        } else {
            nbrs[0]
        };
        edges.push(e);
        if anchor[next as usize] {
            return ChainTopology {
                left: a,
                right: next,
                edges,
                interior,
            };
        }
        on_chain[next as usize] = true;
        interior.push(next);
        prev_edge = e;
        cur = next;
    }
}

/// Finds components where every vertex has degree exactly two (pure cycles)
/// and marks their smallest vertex as an anchor.
fn mark_pure_cycle_anchors(g: CsrView<'_>, anchor: &mut [bool]) {
    let n = g.n();
    let mut seen = vec![false; n];
    for s in 0..n as u32 {
        if seen[s as usize] || anchor[s as usize] {
            continue;
        }
        // Walk the component of s; if we ever meet an anchor it is not a
        // pure cycle.
        let mut stack = vec![s];
        seen[s as usize] = true;
        let mut members = vec![s];
        let mut pure = true;
        while let Some(u) = stack.pop() {
            for &(v, _) in g.neighbors(u) {
                if anchor[v as usize] {
                    pure = false;
                    continue;
                }
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    members.push(v);
                    stack.push(v);
                }
            }
        }
        if pure {
            let rep = *members.iter().min().unwrap();
            anchor[rep as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_graph::dijkstra;

    /// Square 0-1-2-3 where 1 and 3 are degree-2; plus pendant chain at 0
    /// and a hub edge 0-2 making 0 and 2 degree >= 3.
    ///   0 -(1)- 1 -(2)- 2
    ///   0 -(10)--------- 2
    ///   0 -(3)- 3 -(4)- 2
    fn theta() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (0, 2, 10), (0, 3, 3), (3, 2, 4)])
    }

    #[test]
    fn theta_contracts_two_chains() {
        let g = theta();
        let r = reduce_graph(g.view()).unwrap();
        assert_eq!(r.retained, vec![0, 2]);
        assert_eq!(r.removed_count(), 2);
        assert_eq!(r.reduced.n(), 2);
        assert_eq!(r.reduced.m(), 3); // direct 0-2 plus two chain edges
        let mut ws: Vec<Weight> = r.reduced.edges().iter().map(|e| e.w).collect();
        ws.sort_unstable();
        assert_eq!(ws, vec![3, 7, 10]);
        assert_eq!(r.chains.len(), 2);
    }

    #[test]
    fn removed_info_prefix_weights() {
        let g = theta();
        let r = reduce_graph(g.view()).unwrap();
        let i1 = r.removed_info(1).unwrap();
        assert_eq!(i1.w_left + i1.w_right, 3);
        // distance to the anchors along the chain must match Dijkstra on the
        // original graph restricted to the chain (here global shortest too).
        let d = dijkstra(&g, 1);
        let (dl, dr) = (d[i1.left as usize], d[i1.right as usize]);
        assert_eq!(i1.w_left.min(i1.w_right), dl.min(dr));
        let i3 = r.removed_info(3).unwrap();
        assert_eq!(i3.w_left + i3.w_right, 7);
        assert_eq!(i3.w_left, 3);
        assert_eq!(i3.w_right, 4);
    }

    #[test]
    fn long_chain_positions_and_weights() {
        // anchors 0 (deg 3 via extra edges) ... chain 0-1-2-3-4 with 4 deg>=3.
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 3, 3),
                (3, 4, 4),
                // make 0 and 4 degree 3:
                (0, 5, 1),
                (0, 6, 1),
                (4, 5, 1),
                (4, 6, 1),
            ],
        );
        let r = reduce_graph(g.view()).unwrap();
        assert!(!r.is_removed(0));
        assert!(!r.is_removed(4));
        for (x, wl) in [(1u32, 1u64), (2, 3), (3, 6)] {
            let info = r.removed_info(x).unwrap();
            let (l, rgt) = if info.left == 0 {
                (info.w_left, info.w_right)
            } else {
                (info.w_right, info.w_left)
            };
            assert_eq!(l, wl, "vertex {x}");
            assert_eq!(l + rgt, 10);
        }
        let cid = r.removed_info(1).unwrap().chain;
        assert_eq!(r.chains[cid as usize].interior.len(), 3);
        assert_eq!(r.chain_weight(cid), 10);
    }

    #[test]
    fn pure_cycle_becomes_self_loop() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let r = reduce_graph(g.view()).unwrap();
        assert_eq!(r.retained, vec![0]);
        assert_eq!(r.reduced.m(), 1);
        let e = r.reduced.edge(0);
        assert!(e.is_self_loop());
        assert_eq!(e.w, 4);
        assert_eq!(r.removed_count(), 3);
    }

    #[test]
    fn graph_without_degree_two_is_untouched() {
        let g = CsrGraph::from_edges(
            4,
            &[
                (0, 1, 1),
                (0, 2, 1),
                (0, 3, 1),
                (1, 2, 1),
                (1, 3, 1),
                (2, 3, 1),
            ],
        );
        let r = reduce_graph(g.view()).unwrap();
        assert_eq!(r.removed_count(), 0);
        assert_eq!(r.reduced.n(), 4);
        assert_eq!(r.reduced.m(), 6);
        assert!(r
            .edge_origin
            .iter()
            .all(|o| matches!(o, EdgeOrigin::Direct(_))));
    }

    #[test]
    fn pendant_path_keeps_leaf_as_anchor() {
        // 0 (hub deg 3) with pendant chain 0-4-5 (5 is a degree-1 leaf).
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (0, 3, 1),
                (3, 1, 1),
                (0, 4, 2),
                (4, 5, 3),
            ],
        );
        let r = reduce_graph(g.view()).unwrap();
        assert!(r.is_removed(4));
        assert!(!r.is_removed(5)); // degree-1 vertices are anchors
        let info = r.removed_info(4).unwrap();
        assert_eq!(info.w_left + info.w_right, 5);
        // Edge 0..5 chain became one reduced edge of weight 5.
        let w: Vec<Weight> = r
            .chains
            .iter()
            .enumerate()
            .filter(|(_, c)| (c.left == 0 && c.right == 5) || (c.left == 5 && c.right == 0))
            .map(|(cid, _)| r.chain_weight(cid as u32))
            .collect();
        assert_eq!(w, vec![5]);
    }

    #[test]
    fn parallel_chains_become_parallel_edges() {
        // Two vertices joined by three chains of lengths 2,2,1 edges.
        let g = CsrGraph::from_edges(4, &[(0, 2, 1), (2, 1, 1), (0, 3, 2), (3, 1, 2), (0, 1, 9)]);
        let r = reduce_graph(g.view()).unwrap();
        assert_eq!(r.reduced.n(), 2);
        assert_eq!(r.reduced.m(), 3);
        assert!(!r.reduced.is_simple()); // parallel edges preserved
        let mut ws: Vec<Weight> = r.reduced.edges().iter().map(|e| e.w).collect();
        ws.sort_unstable();
        assert_eq!(ws, vec![2, 4, 9]);
    }

    #[test]
    fn expand_edge_roundtrips_chains() {
        let g = theta();
        let r = reduce_graph(g.view()).unwrap();
        for re in 0..r.reduced.m() as u32 {
            let orig = r.expand_edge(re);
            let total: Weight = orig.iter().map(|&e| g.weight(e)).sum();
            assert_eq!(total, r.reduced.weight(re));
        }
    }

    #[test]
    fn chain_edge_count_partitions_original_edges() {
        let g = theta();
        let r = reduce_graph(g.view()).unwrap();
        let mut covered: Vec<EdgeId> = (0..r.reduced.m() as u32)
            .flat_map(|re| r.expand_edge(re))
            .collect();
        covered.sort_unstable();
        let all: Vec<EdgeId> = (0..g.m() as u32).collect();
        assert_eq!(covered, all);
    }

    #[test]
    fn anchor_to_self_chain_is_self_loop() {
        // Hub 0 (degree 4) with a lollipop cycle 0-1-2-0 of degree-2 vertices.
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 3, 1), (0, 4, 1)]);
        let r = reduce_graph(g.view()).unwrap();
        let loops: Vec<_> = r
            .reduced
            .edges()
            .iter()
            .filter(|e| e.is_self_loop())
            .collect();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].w, 3);
    }

    #[test]
    fn rejects_multigraph_input_with_error() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1), (0, 1, 2)]);
        assert_eq!(reduce_graph(g.view()).unwrap_err(), NotSimpleError);
        assert_eq!(reduce_graph_parallel(g.view()).unwrap_err(), NotSimpleError);
        let g = CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 2)]);
        assert_eq!(reduce_graph(g.view()).unwrap_err(), NotSimpleError);
    }

    #[test]
    fn reweighted_matches_cold_reduce_and_shares_topology() {
        let g = theta();
        let r = reduce_graph(g.view()).unwrap();
        let new_w: Vec<Weight> = g.edges().iter().map(|e| e.w * 3 + 1).collect();
        let h = g.reweighted(&new_w);
        let warm = r.reweighted(h.view());
        let cold = reduce_graph(h.view()).unwrap();
        assert_eq!(warm.reduced.edges(), cold.reduced.edges());
        for x in 0..g.n() as u32 {
            match (warm.removed_info(x), cold.removed_info(x)) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_eq!(
                    (a.chain, a.pos, a.left, a.right, a.w_left, a.w_right),
                    (b.chain, b.pos, b.left, b.right, b.w_left, b.w_right)
                ),
                _ => panic!("removed mismatch at {x}"),
            }
        }
        for c in 0..warm.chains.len() as u32 {
            assert_eq!(warm.chain_weight(c), cold.chain_weight(c));
        }
        assert!(r.shares_topology(&warm));
        assert!(!r.shares_topology(&cold));
        // Original's weight layer untouched.
        assert_eq!(r.chain_weight(0) + r.chain_weight(1), 10);
    }

    #[test]
    fn reweighted_noop_is_bit_identical() {
        let g = theta();
        let r = reduce_graph(g.view()).unwrap();
        let same = r.reweighted(g.view());
        assert_eq!(same.reduced.edges(), r.reduced.edges());
        assert!(same.shares_topology(&r));
    }
}

/// Parallel variant of [`reduce_graph`]: chain walks are independent, so
/// they fan out across the Rayon pool. Every chain is walked from both of
/// its anchor ends; the walk that the sequential algorithm would have kept
/// (the one whose `(anchor rank, adjacency index)` start comes first) wins,
/// which makes the output **bit-identical** to [`reduce_graph`] — the
/// equivalence is property-tested.
///
/// This replaces the paper's PRAM ear-decomposition parallelism
/// (Ramachandran) at the step that actually matters in practice: the
/// decomposition itself is a linear scan, while chain contraction touches
/// every edge.
///
/// # Errors
/// Returns [`NotSimpleError`] under the same conditions as [`reduce_graph`].
pub fn reduce_graph_parallel(g: CsrView<'_>) -> Result<ReducedGraph, NotSimpleError> {
    use rayon::prelude::*;

    if !g.is_simple() {
        return Err(NotSimpleError);
    }
    let n = g.n();
    let mut anchor = vec![false; n];
    for v in 0..n as u32 {
        if g.degree(v) != 2 {
            anchor[v as usize] = true;
        }
    }
    mark_pure_cycle_anchors(g, &mut anchor);

    let mut to_reduced = vec![u32::MAX; n];
    let mut retained = Vec::new();
    for v in 0..n as u32 {
        if anchor[v as usize] {
            to_reduced[v as usize] = retained.len() as u32;
            retained.push(v);
        }
    }

    // All chain starts with their sequential-order rank.
    let starts: Vec<(u32, u32, VertexId, VertexId, EdgeId)> = retained
        .iter()
        .enumerate()
        .flat_map(|(rank, &a)| {
            g.neighbors(a)
                .iter()
                .enumerate()
                .filter(|(_, &(first, _))| !anchor[first as usize])
                .map(move |(ai, &(first, first_edge))| {
                    (rank as u32, ai as u32, a, first, first_edge)
                })
                .collect::<Vec<_>>()
        })
        .collect();

    // Parallel walks; a dummy visited map per walk is unnecessary — the
    // walk is fully determined by its start.
    let walked: Vec<((u32, u32), ChainTopology)> = starts
        .par_iter()
        .map(|&(rank, ai, a, first, first_edge)| {
            (
                (rank, ai),
                walk_chain_pure(g, &anchor, a, first, first_edge),
            )
        })
        .collect();

    // Keep the first-start walk per chain. A chain's identity is its edge
    // set; the boundary edge pair (unordered) identifies it uniquely in a
    // simple graph.
    use std::collections::HashMap;
    let mut best: HashMap<(EdgeId, EdgeId), usize> = HashMap::with_capacity(walked.len());
    for (i, ((_, _), chain)) in walked.iter().enumerate() {
        let (e0, e1) = (*chain.edges.first().unwrap(), *chain.edges.last().unwrap());
        let key = (e0.min(e1), e0.max(e1));
        match best.entry(key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(i);
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if walked[i].0 < walked[*o.get()].0 {
                    o.insert(i);
                }
            }
        }
    }
    let mut kept: Vec<usize> = best.into_values().collect();
    kept.sort_unstable_by_key(|&i| walked[i].0);

    // Assemble in the sequential layout: direct edges first, then chains.
    let mut chains: Vec<ChainTopology> = Vec::with_capacity(kept.len());
    let mut removed: Vec<Option<RemovedSlot>> = vec![None; n];
    let mut edge_origin: Vec<EdgeOrigin> = Vec::new();
    for (idx, e) in g.edges().iter().enumerate() {
        if anchor[e.u as usize] && anchor[e.v as usize] {
            edge_origin.push(EdgeOrigin::Direct(idx as EdgeId));
        }
    }
    for i in kept {
        let chain = walked[i].1.clone();
        let cid = chains.len() as u32;
        for (pos, &x) in chain.interior.iter().enumerate() {
            removed[x as usize] = Some(RemovedSlot {
                chain: cid,
                pos: pos as u32,
                left: chain.left,
                right: chain.right,
            });
        }
        edge_origin.push(EdgeOrigin::Chain(cid));
        chains.push(chain);
    }

    let topo = ReducedTopology {
        retained,
        to_reduced,
        edge_origin,
        chains,
        removed,
    };
    Ok(ReducedGraph::customize(Arc::new(topo), g))
}

/// Side-effect-free chain walk (no shared visited map): a degree-2 interior
/// uniquely determines the continuation, so the walk needs no marking.
fn walk_chain_pure(
    g: CsrView<'_>,
    anchor: &[bool],
    a: VertexId,
    first: VertexId,
    first_edge: EdgeId,
) -> ChainTopology {
    let mut edges = vec![first_edge];
    let mut interior = vec![first];
    let mut prev_edge = first_edge;
    let mut cur = first;
    loop {
        let nbrs = g.neighbors(cur);
        debug_assert_eq!(nbrs.len(), 2);
        let (next, e) = if nbrs[0].1 == prev_edge {
            nbrs[1]
        } else {
            nbrs[0]
        };
        edges.push(e);
        if anchor[next as usize] {
            return ChainTopology {
                left: a,
                right: next,
                edges,
                interior,
            };
        }
        interior.push(next);
        prev_edge = e;
        cur = next;
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    fn assert_identical(g: &CsrGraph) {
        let a = reduce_graph(g.view()).unwrap();
        let b = reduce_graph_parallel(g.view()).unwrap();
        assert_eq!(a.retained, b.retained);
        assert_eq!(a.to_reduced, b.to_reduced);
        assert_eq!(a.reduced.edges(), b.reduced.edges());
        assert_eq!(a.edge_origin.len(), b.edge_origin.len());
        for (x, y) in a.edge_origin.iter().zip(&b.edge_origin) {
            assert_eq!(x, y);
        }
        assert_eq!(a.chains.len(), b.chains.len());
        for (ca, cb) in a.chains.iter().zip(&b.chains) {
            assert_eq!(ca.edges, cb.edges);
            assert_eq!(ca.interior, cb.interior);
            assert_eq!((ca.left, ca.right), (cb.left, cb.right));
        }
        for c in 0..a.chains.len() as u32 {
            assert_eq!(a.chain_weight(c), b.chain_weight(c));
        }
        for v in 0..g.n() as u32 {
            match (a.removed_info(v), b.removed_info(v)) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(
                        (x.chain, x.pos, x.left, x.right, x.w_left, x.w_right),
                        (y.chain, y.pos, y.left, y.right, y.w_left, y.w_right)
                    );
                }
                _ => panic!("removed mismatch at {v}"),
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_theta() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (0, 2, 10), (0, 3, 3), (3, 2, 4)]);
        assert_identical(&g);
    }

    #[test]
    fn parallel_matches_sequential_on_pure_cycle() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 0, 1)]);
        assert_identical(&g);
    }

    #[test]
    fn parallel_matches_sequential_on_loop_chain() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 3, 1), (0, 4, 1)]);
        assert_identical(&g);
    }

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(6..60);
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for _ in 0..rng.gen_range(n..4 * n) {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u != v && seen.insert((u.min(v), u.max(v))) {
                    edges.push((u, v, rng.gen_range(1..50u64)));
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            assert_identical(&g);
        }
    }
}
