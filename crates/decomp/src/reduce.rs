//! Degree-2 chain contraction: the paper's *reduced graph* `G^r`.
//!
//! Vertices retained in `G^r` are those whose degree differs from two (the
//! paper's biconnected setting makes these exactly the degree ≥ 3 vertices);
//! every maximal chain of degree-2 vertices between two retained anchors is
//! replaced by a single edge whose weight is the chain's total weight
//! (paper §2.1.1). Components that are pure cycles (every vertex degree 2)
//! get one honorary anchor so the cycle survives as a self-loop — the paper
//! implicitly assumes this case away; keeping it makes the reduction total.
//!
//! The contraction retains, for every removed vertex `x`, the anchors
//! `left(x)`/`right(x)` and the exact prefix weights `wt(x, left(x))` /
//! `wt(x, right(x))` along its chain: these are precisely the inputs of the
//! APSP post-processing formulas (paper §2.1.3), and the chain edge lists
//! drive the MCB cycle re-expansion (paper Lemma 3.1).
//!
//! `G^r` is a **multigraph**: parallel chains between the same anchor pair
//! become parallel edges and anchor-to-self chains become self-loops. The
//! MCB pipeline needs them (each is an independent cycle generator); APSP
//! simply lets Dijkstra skip the non-minimal copies.

use ear_graph::{CsrGraph, CsrView, EdgeId, VertexId, Weight};

/// Error returned when chain contraction is asked to reduce a non-simple
/// graph (self-loops or parallel edges present).
///
/// Contraction is defined on *simple* graphs only: a degree-2 vertex with a
/// self-loop or a parallel pair does not sit on a well-defined chain, and
/// the paper's `left/right` bookkeeping (§2.1.1) assumes distinct chain
/// neighbors. Callers that slice a multigraph into biconnected blocks
/// should check each block (e.g. via the plan's per-block simplicity flag,
/// [`crate::plan::DecompPlan::is_simple`]) and fall back to the unreduced
/// block instead of reducing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotSimpleError;

impl std::fmt::Display for NotSimpleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("chain contraction requires a simple graph (no self-loops or parallel edges)")
    }
}

impl std::error::Error for NotSimpleError {}

/// A maximal degree-2 chain that was contracted into one reduced edge.
#[derive(Clone, Debug)]
pub struct Chain {
    /// Left anchor (original vertex id, retained in `G^r`).
    pub left: VertexId,
    /// Right anchor (may equal `left` when the chain closes on itself).
    pub right: VertexId,
    /// Original edges in path order, `left → right`.
    pub edges: Vec<EdgeId>,
    /// Removed interior vertices in path order.
    pub interior: Vec<VertexId>,
    /// Total chain weight (the reduced edge's weight).
    pub total_weight: Weight,
}

/// Where a reduced edge came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOrigin {
    /// An original edge between two retained vertices, kept verbatim.
    Direct(EdgeId),
    /// A contracted chain, indexing [`ReducedGraph::chains`].
    Chain(u32),
}

/// Per-removed-vertex metadata: the `left/right` functions of paper §2.1.1.
#[derive(Clone, Copy, Debug)]
pub struct RemovedInfo {
    /// Chain the vertex sits on.
    pub chain: u32,
    /// Position inside [`Chain::interior`].
    pub pos: u32,
    /// `left(x)` — original id of the anchor towards the chain head.
    pub left: VertexId,
    /// `right(x)` — original id of the anchor towards the chain tail.
    pub right: VertexId,
    /// `wt(x, left(x))`: exact distance along the chain to the left anchor.
    pub w_left: Weight,
    /// `wt(x, right(x))`: exact distance along the chain to the right anchor.
    pub w_right: Weight,
}

/// The reduced graph `G^r` plus everything needed to map results back to
/// the original graph.
#[derive(Clone, Debug)]
pub struct ReducedGraph {
    /// The contracted multigraph on the retained vertices (local ids).
    pub reduced: CsrGraph,
    /// `local → original` vertex ids.
    pub retained: Vec<VertexId>,
    /// `original → local` vertex ids (`u32::MAX` for removed vertices).
    pub to_reduced: Vec<u32>,
    /// One entry per reduced edge describing its origin.
    pub edge_origin: Vec<EdgeOrigin>,
    /// All contracted chains.
    pub chains: Vec<Chain>,
    /// `original vertex → removal metadata` (`None` for retained vertices).
    pub removed: Vec<Option<RemovedInfo>>,
}

impl ReducedGraph {
    /// True if `x` was removed by the contraction.
    pub fn is_removed(&self, x: VertexId) -> bool {
        self.removed[x as usize].is_some()
    }

    /// Number of vertices removed.
    pub fn removed_count(&self) -> usize {
        self.removed.iter().filter(|r| r.is_some()).count()
    }

    /// Local reduced id of an original vertex, if retained.
    pub fn local(&self, original: VertexId) -> Option<VertexId> {
        let l = self.to_reduced[original as usize];
        (l != u32::MAX).then_some(l)
    }

    /// Expands a reduced edge back to the original edge ids it stands for,
    /// in path order from the edge's `u` endpoint.
    pub fn expand_edge(&self, reduced_edge: EdgeId) -> Vec<EdgeId> {
        match self.edge_origin[reduced_edge as usize] {
            EdgeOrigin::Direct(e) => vec![e],
            EdgeOrigin::Chain(c) => self.chains[c as usize].edges.clone(),
        }
    }
}

/// Contracts all maximal degree-2 chains of `g`.
///
/// # Errors
/// Returns [`NotSimpleError`] if `g` has self-loops or parallel edges —
/// reduction is only defined on simple graphs (see the error type's docs
/// for why, and for what callers should do with non-simple blocks).
pub fn reduce_graph(g: CsrView<'_>) -> Result<ReducedGraph, NotSimpleError> {
    if !g.is_simple() {
        return Err(NotSimpleError);
    }
    let n = g.n();

    // Anchor set: degree != 2, plus one honorary anchor per pure-cycle
    // component (smallest vertex id in the cycle).
    let mut anchor = vec![false; n];
    for v in 0..n as u32 {
        if g.degree(v) != 2 {
            anchor[v as usize] = true;
        }
    }
    mark_pure_cycle_anchors(g, &mut anchor);

    // Retained vertex numbering.
    let mut to_reduced = vec![u32::MAX; n];
    let mut retained = Vec::new();
    for v in 0..n as u32 {
        if anchor[v as usize] {
            to_reduced[v as usize] = retained.len() as u32;
            retained.push(v);
        }
    }

    let mut chains: Vec<Chain> = Vec::new();
    let mut removed: Vec<Option<RemovedInfo>> = vec![None; n];
    let mut reduced_edges: Vec<(u32, u32, Weight)> = Vec::new();
    let mut edge_origin: Vec<EdgeOrigin> = Vec::new();

    // Direct edges: both endpoints anchors.
    for (idx, e) in g.edges().iter().enumerate() {
        if anchor[e.u as usize] && anchor[e.v as usize] {
            reduced_edges.push((to_reduced[e.u as usize], to_reduced[e.v as usize], e.w));
            edge_origin.push(EdgeOrigin::Direct(idx as EdgeId));
        }
    }

    // Chains: walk from each anchor into each degree-2 neighbor.
    let mut on_chain = vec![false; n];
    for &a in &retained {
        for &(first, first_edge) in g.neighbors(a) {
            if anchor[first as usize] || on_chain[first as usize] {
                continue;
            }
            let chain = walk_chain(g, &anchor, &mut on_chain, a, first, first_edge);
            let cid = chains.len() as u32;
            // Prefix weights along the chain: edge `k` joins the previous
            // vertex to `interior[k]`, so `wt(interior[k], left)` is the sum
            // of edges `0..=k`.
            let mut acc: Weight = 0;
            for (pos, &x) in chain.interior.iter().enumerate() {
                acc += g.weight(chain.edges[pos]);
                removed[x as usize] = Some(RemovedInfo {
                    chain: cid,
                    pos: pos as u32,
                    left: chain.left,
                    right: chain.right,
                    w_left: acc,
                    w_right: chain.total_weight - acc,
                });
            }
            reduced_edges.push((
                to_reduced[chain.left as usize],
                to_reduced[chain.right as usize],
                chain.total_weight,
            ));
            edge_origin.push(EdgeOrigin::Chain(cid));
            chains.push(chain);
        }
    }

    let reduced = CsrGraph::from_edges(retained.len(), &reduced_edges);
    Ok(ReducedGraph {
        reduced,
        retained,
        to_reduced,
        edge_origin,
        chains,
        removed,
    })
}

/// Walks a maximal chain starting at anchor `a` through degree-2 vertex
/// `first`, reached by `first_edge`, until the next anchor.
fn walk_chain(
    g: CsrView<'_>,
    anchor: &[bool],
    on_chain: &mut [bool],
    a: VertexId,
    first: VertexId,
    first_edge: EdgeId,
) -> Chain {
    let mut edges = vec![first_edge];
    let mut interior = vec![first];
    let mut total = g.weight(first_edge);
    on_chain[first as usize] = true;
    let mut prev_edge = first_edge;
    let mut cur = first;
    loop {
        // A degree-2 vertex has exactly two incidences; take the one we did
        // not arrive by (edge-id comparison, so parallel topologies cannot
        // confuse the walk).
        let nbrs = g.neighbors(cur);
        debug_assert_eq!(nbrs.len(), 2);
        let (next, e) = if nbrs[0].1 == prev_edge {
            nbrs[1]
        } else {
            nbrs[0]
        };
        edges.push(e);
        total += g.weight(e);
        if anchor[next as usize] {
            return Chain {
                left: a,
                right: next,
                edges,
                interior,
                total_weight: total,
            };
        }
        on_chain[next as usize] = true;
        interior.push(next);
        prev_edge = e;
        cur = next;
    }
}

/// Finds components where every vertex has degree exactly two (pure cycles)
/// and marks their smallest vertex as an anchor.
fn mark_pure_cycle_anchors(g: CsrView<'_>, anchor: &mut [bool]) {
    let n = g.n();
    let mut seen = vec![false; n];
    for s in 0..n as u32 {
        if seen[s as usize] || anchor[s as usize] {
            continue;
        }
        // Walk the component of s; if we ever meet an anchor it is not a
        // pure cycle.
        let mut stack = vec![s];
        seen[s as usize] = true;
        let mut members = vec![s];
        let mut pure = true;
        while let Some(u) = stack.pop() {
            for &(v, _) in g.neighbors(u) {
                if anchor[v as usize] {
                    pure = false;
                    continue;
                }
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    members.push(v);
                    stack.push(v);
                }
            }
        }
        if pure {
            let rep = *members.iter().min().unwrap();
            anchor[rep as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_graph::dijkstra;

    /// Square 0-1-2-3 where 1 and 3 are degree-2; plus pendant chain at 0
    /// and a hub edge 0-2 making 0 and 2 degree >= 3.
    ///   0 -(1)- 1 -(2)- 2
    ///   0 -(10)--------- 2
    ///   0 -(3)- 3 -(4)- 2
    fn theta() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (0, 2, 10), (0, 3, 3), (3, 2, 4)])
    }

    #[test]
    fn theta_contracts_two_chains() {
        let g = theta();
        let r = reduce_graph(g.view()).unwrap();
        assert_eq!(r.retained, vec![0, 2]);
        assert_eq!(r.removed_count(), 2);
        assert_eq!(r.reduced.n(), 2);
        assert_eq!(r.reduced.m(), 3); // direct 0-2 plus two chain edges
        let mut ws: Vec<Weight> = r.reduced.edges().iter().map(|e| e.w).collect();
        ws.sort_unstable();
        assert_eq!(ws, vec![3, 7, 10]);
        assert_eq!(r.chains.len(), 2);
    }

    #[test]
    fn removed_info_prefix_weights() {
        let g = theta();
        let r = reduce_graph(g.view()).unwrap();
        let i1 = r.removed[1].unwrap();
        assert_eq!(i1.w_left + i1.w_right, 3);
        // distance to the anchors along the chain must match Dijkstra on the
        // original graph restricted to the chain (here global shortest too).
        let d = dijkstra(&g, 1);
        let (dl, dr) = (d[i1.left as usize], d[i1.right as usize]);
        assert_eq!(i1.w_left.min(i1.w_right), dl.min(dr));
        let i3 = r.removed[3].unwrap();
        assert_eq!(i3.w_left + i3.w_right, 7);
        assert_eq!({ i3.w_left }, 3);
        assert_eq!({ i3.w_right }, 4);
    }

    #[test]
    fn long_chain_positions_and_weights() {
        // anchors 0 (deg 3 via extra edges) ... chain 0-1-2-3-4 with 4 deg>=3.
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 3, 3),
                (3, 4, 4),
                // make 0 and 4 degree 3:
                (0, 5, 1),
                (0, 6, 1),
                (4, 5, 1),
                (4, 6, 1),
            ],
        );
        let r = reduce_graph(g.view()).unwrap();
        assert!(!r.is_removed(0));
        assert!(!r.is_removed(4));
        for (x, wl) in [(1u32, 1u64), (2, 3), (3, 6)] {
            let info = r.removed[x as usize].unwrap();
            let (l, rgt) = if info.left == 0 {
                (info.w_left, info.w_right)
            } else {
                (info.w_right, info.w_left)
            };
            assert_eq!(l, wl, "vertex {x}");
            assert_eq!(l + rgt, 10);
        }
        let chain = &r.chains[r.removed[1].unwrap().chain as usize];
        assert_eq!(chain.interior.len(), 3);
        assert_eq!(chain.total_weight, 10);
    }

    #[test]
    fn pure_cycle_becomes_self_loop() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let r = reduce_graph(g.view()).unwrap();
        assert_eq!(r.retained, vec![0]);
        assert_eq!(r.reduced.m(), 1);
        let e = r.reduced.edge(0);
        assert!(e.is_self_loop());
        assert_eq!(e.w, 4);
        assert_eq!(r.removed_count(), 3);
    }

    #[test]
    fn graph_without_degree_two_is_untouched() {
        let g = CsrGraph::from_edges(
            4,
            &[
                (0, 1, 1),
                (0, 2, 1),
                (0, 3, 1),
                (1, 2, 1),
                (1, 3, 1),
                (2, 3, 1),
            ],
        );
        let r = reduce_graph(g.view()).unwrap();
        assert_eq!(r.removed_count(), 0);
        assert_eq!(r.reduced.n(), 4);
        assert_eq!(r.reduced.m(), 6);
        assert!(r
            .edge_origin
            .iter()
            .all(|o| matches!(o, EdgeOrigin::Direct(_))));
    }

    #[test]
    fn pendant_path_keeps_leaf_as_anchor() {
        // 0 (hub deg 3) with pendant chain 0-4-5 (5 is a degree-1 leaf).
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (0, 3, 1),
                (3, 1, 1),
                (0, 4, 2),
                (4, 5, 3),
            ],
        );
        let r = reduce_graph(g.view()).unwrap();
        assert!(r.is_removed(4));
        assert!(!r.is_removed(5)); // degree-1 vertices are anchors
        let info = r.removed[4].unwrap();
        assert_eq!(info.w_left + info.w_right, 5);
        // Edge 0..5 chain became one reduced edge of weight 5.
        let w: Vec<Weight> = r
            .chains
            .iter()
            .filter(|c| (c.left == 0 && c.right == 5) || (c.left == 5 && c.right == 0))
            .map(|c| c.total_weight)
            .collect();
        assert_eq!(w, vec![5]);
    }

    #[test]
    fn parallel_chains_become_parallel_edges() {
        // Two vertices joined by three chains of lengths 2,2,1 edges.
        let g = CsrGraph::from_edges(4, &[(0, 2, 1), (2, 1, 1), (0, 3, 2), (3, 1, 2), (0, 1, 9)]);
        let r = reduce_graph(g.view()).unwrap();
        assert_eq!(r.reduced.n(), 2);
        assert_eq!(r.reduced.m(), 3);
        assert!(!r.reduced.is_simple()); // parallel edges preserved
        let mut ws: Vec<Weight> = r.reduced.edges().iter().map(|e| e.w).collect();
        ws.sort_unstable();
        assert_eq!(ws, vec![2, 4, 9]);
    }

    #[test]
    fn expand_edge_roundtrips_chains() {
        let g = theta();
        let r = reduce_graph(g.view()).unwrap();
        for re in 0..r.reduced.m() as u32 {
            let orig = r.expand_edge(re);
            let total: Weight = orig.iter().map(|&e| g.weight(e)).sum();
            assert_eq!(total, r.reduced.weight(re));
        }
    }

    #[test]
    fn chain_edge_count_partitions_original_edges() {
        let g = theta();
        let r = reduce_graph(g.view()).unwrap();
        let mut covered: Vec<EdgeId> = (0..r.reduced.m() as u32)
            .flat_map(|re| r.expand_edge(re))
            .collect();
        covered.sort_unstable();
        let all: Vec<EdgeId> = (0..g.m() as u32).collect();
        assert_eq!(covered, all);
    }

    #[test]
    fn anchor_to_self_chain_is_self_loop() {
        // Hub 0 (degree 4) with a lollipop cycle 0-1-2-0 of degree-2 vertices.
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 3, 1), (0, 4, 1)]);
        let r = reduce_graph(g.view()).unwrap();
        let loops: Vec<_> = r
            .reduced
            .edges()
            .iter()
            .filter(|e| e.is_self_loop())
            .collect();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].w, 3);
    }

    #[test]
    fn rejects_multigraph_input_with_error() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1), (0, 1, 2)]);
        assert_eq!(reduce_graph(g.view()).unwrap_err(), NotSimpleError);
        assert_eq!(reduce_graph_parallel(g.view()).unwrap_err(), NotSimpleError);
        let g = CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 2)]);
        assert_eq!(reduce_graph(g.view()).unwrap_err(), NotSimpleError);
    }
}

/// Parallel variant of [`reduce_graph`]: chain walks are independent, so
/// they fan out across the Rayon pool. Every chain is walked from both of
/// its anchor ends; the walk that the sequential algorithm would have kept
/// (the one whose `(anchor rank, adjacency index)` start comes first) wins,
/// which makes the output **bit-identical** to [`reduce_graph`] — the
/// equivalence is property-tested.
///
/// This replaces the paper's PRAM ear-decomposition parallelism
/// (Ramachandran) at the step that actually matters in practice: the
/// decomposition itself is a linear scan, while chain contraction touches
/// every edge.
///
/// # Errors
/// Returns [`NotSimpleError`] under the same conditions as [`reduce_graph`].
pub fn reduce_graph_parallel(g: CsrView<'_>) -> Result<ReducedGraph, NotSimpleError> {
    use rayon::prelude::*;

    if !g.is_simple() {
        return Err(NotSimpleError);
    }
    let n = g.n();
    let mut anchor = vec![false; n];
    for v in 0..n as u32 {
        if g.degree(v) != 2 {
            anchor[v as usize] = true;
        }
    }
    mark_pure_cycle_anchors(g, &mut anchor);

    let mut to_reduced = vec![u32::MAX; n];
    let mut retained = Vec::new();
    for v in 0..n as u32 {
        if anchor[v as usize] {
            to_reduced[v as usize] = retained.len() as u32;
            retained.push(v);
        }
    }

    // All chain starts with their sequential-order rank.
    let starts: Vec<(u32, u32, VertexId, VertexId, EdgeId)> = retained
        .iter()
        .enumerate()
        .flat_map(|(rank, &a)| {
            g.neighbors(a)
                .iter()
                .enumerate()
                .filter(|(_, &(first, _))| !anchor[first as usize])
                .map(move |(ai, &(first, first_edge))| {
                    (rank as u32, ai as u32, a, first, first_edge)
                })
                .collect::<Vec<_>>()
        })
        .collect();

    // Parallel walks; a dummy visited map per walk is unnecessary — the
    // walk is fully determined by its start.
    let walked: Vec<((u32, u32), Chain)> = starts
        .par_iter()
        .map(|&(rank, ai, a, first, first_edge)| {
            (
                (rank, ai),
                walk_chain_pure(g, &anchor, a, first, first_edge),
            )
        })
        .collect();

    // Keep the first-start walk per chain. A chain's identity is its edge
    // set; the boundary edge pair (unordered) identifies it uniquely in a
    // simple graph.
    use std::collections::HashMap;
    let mut best: HashMap<(EdgeId, EdgeId), usize> = HashMap::with_capacity(walked.len());
    for (i, ((_, _), chain)) in walked.iter().enumerate() {
        let (e0, e1) = (*chain.edges.first().unwrap(), *chain.edges.last().unwrap());
        let key = (e0.min(e1), e0.max(e1));
        match best.entry(key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(i);
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if walked[i].0 < walked[*o.get()].0 {
                    o.insert(i);
                }
            }
        }
    }
    let mut kept: Vec<usize> = best.into_values().collect();
    kept.sort_unstable_by_key(|&i| walked[i].0);

    // Assemble in the sequential layout: direct edges first, then chains.
    let mut chains: Vec<Chain> = Vec::with_capacity(kept.len());
    let mut removed: Vec<Option<RemovedInfo>> = vec![None; n];
    let mut reduced_edges: Vec<(u32, u32, Weight)> = Vec::new();
    let mut edge_origin: Vec<EdgeOrigin> = Vec::new();
    for (idx, e) in g.edges().iter().enumerate() {
        if anchor[e.u as usize] && anchor[e.v as usize] {
            reduced_edges.push((to_reduced[e.u as usize], to_reduced[e.v as usize], e.w));
            edge_origin.push(EdgeOrigin::Direct(idx as EdgeId));
        }
    }
    for i in kept {
        let chain = walked[i].1.clone();
        let cid = chains.len() as u32;
        let mut acc: Weight = 0;
        for (pos, &x) in chain.interior.iter().enumerate() {
            acc += g.weight(chain.edges[pos]);
            removed[x as usize] = Some(RemovedInfo {
                chain: cid,
                pos: pos as u32,
                left: chain.left,
                right: chain.right,
                w_left: acc,
                w_right: chain.total_weight - acc,
            });
        }
        reduced_edges.push((
            to_reduced[chain.left as usize],
            to_reduced[chain.right as usize],
            chain.total_weight,
        ));
        edge_origin.push(EdgeOrigin::Chain(cid));
        chains.push(chain);
    }

    let reduced = CsrGraph::from_edges(retained.len(), &reduced_edges);
    Ok(ReducedGraph {
        reduced,
        retained,
        to_reduced,
        edge_origin,
        chains,
        removed,
    })
}

/// Side-effect-free chain walk (no shared visited map): a degree-2 interior
/// uniquely determines the continuation, so the walk needs no marking.
fn walk_chain_pure(
    g: CsrView<'_>,
    anchor: &[bool],
    a: VertexId,
    first: VertexId,
    first_edge: EdgeId,
) -> Chain {
    let mut edges = vec![first_edge];
    let mut interior = vec![first];
    let mut total = g.weight(first_edge);
    let mut prev_edge = first_edge;
    let mut cur = first;
    loop {
        let nbrs = g.neighbors(cur);
        debug_assert_eq!(nbrs.len(), 2);
        let (next, e) = if nbrs[0].1 == prev_edge {
            nbrs[1]
        } else {
            nbrs[0]
        };
        edges.push(e);
        total += g.weight(e);
        if anchor[next as usize] {
            return Chain {
                left: a,
                right: next,
                edges,
                interior,
                total_weight: total,
            };
        }
        interior.push(next);
        prev_edge = e;
        cur = next;
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    fn assert_identical(g: &CsrGraph) {
        let a = reduce_graph(g.view()).unwrap();
        let b = reduce_graph_parallel(g.view()).unwrap();
        assert_eq!(a.retained, b.retained);
        assert_eq!(a.to_reduced, b.to_reduced);
        assert_eq!(a.reduced.edges(), b.reduced.edges());
        assert_eq!(a.edge_origin.len(), b.edge_origin.len());
        for (x, y) in a.edge_origin.iter().zip(&b.edge_origin) {
            assert_eq!(x, y);
        }
        assert_eq!(a.chains.len(), b.chains.len());
        for (ca, cb) in a.chains.iter().zip(&b.chains) {
            assert_eq!(ca.edges, cb.edges);
            assert_eq!(ca.interior, cb.interior);
            assert_eq!((ca.left, ca.right), (cb.left, cb.right));
        }
        for v in 0..g.n() {
            match (&a.removed[v], &b.removed[v]) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(
                        (x.chain, x.pos, x.left, x.right, x.w_left, x.w_right),
                        (y.chain, y.pos, y.left, y.right, y.w_left, y.w_right)
                    );
                }
                _ => panic!("removed mismatch at {v}"),
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_theta() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (0, 2, 10), (0, 3, 3), (3, 2, 4)]);
        assert_identical(&g);
    }

    #[test]
    fn parallel_matches_sequential_on_pure_cycle() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 0, 1)]);
        assert_identical(&g);
    }

    #[test]
    fn parallel_matches_sequential_on_loop_chain() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 3, 1), (0, 4, 1)]);
        assert_identical(&g);
    }

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(6..60);
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for _ in 0..rng.gen_range(n..4 * n) {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u != v && seen.insert((u.min(v), u.max(v))) {
                    edges.push((u, v, rng.gen_range(1..50u64)));
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            assert_identical(&g);
        }
    }
}
