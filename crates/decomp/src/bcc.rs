//! Biconnected components, articulation points and bridges.
//!
//! Iterative Hopcroft–Tarjan: a DFS with an explicit frame stack (no
//! recursion — the paper's graphs have hundred-thousand-vertex chains that
//! would blow the call stack) and an edge stack that is flushed into a
//! component every time a subtree cannot reach above its attachment point
//! (`low[child] >= disc[parent]`).
//!
//! Multigraph rules:
//! * parallel edges are honest cycles — only the *specific* tree edge to the
//!   parent is skipped (by edge id), so a second parallel edge correctly
//!   registers as a back edge and merges the endpoints into one component;
//! * each self-loop forms its own singleton component and never affects
//!   articulation status.

use ear_graph::{CsrGraph, EdgeId, VertexId};

/// Result of [`biconnected_components`].
#[derive(Clone, Debug)]
pub struct Bcc {
    /// Edge ids of each biconnected component.
    pub comps: Vec<Vec<EdgeId>>,
    /// Component id of every edge.
    pub edge_comp: Vec<u32>,
    /// Articulation-point flags per vertex.
    pub is_articulation: Vec<bool>,
    /// Edges whose removal disconnects their endpoints (the single-edge
    /// non-loop components).
    pub bridges: Vec<EdgeId>,
}

impl Bcc {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.comps.len()
    }

    /// Articulation-point vertex ids in ascending order.
    pub fn articulation_points(&self) -> Vec<VertexId> {
        self.is_articulation
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Distinct vertices of component `c`, ascending.
    pub fn comp_vertices(&self, g: &CsrGraph, c: usize) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = self.comps[c]
            .iter()
            .flat_map(|&e| {
                let r = g.edge(e);
                [r.u, r.v]
            })
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Index of the component with the most edges, if any.
    pub fn largest(&self) -> Option<usize> {
        (0..self.comps.len()).max_by_key(|&i| self.comps[i].len())
    }
}

/// Computes the biconnected components of an undirected multigraph.
pub fn biconnected_components(g: &CsrGraph) -> Bcc {
    let n = g.n();
    let m = g.m();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise time+1
    let mut low = vec![0u32; n];
    let mut time = 0u32;
    let mut is_articulation = vec![false; n];
    let mut comps: Vec<Vec<EdgeId>> = Vec::new();
    let mut edge_comp = vec![u32::MAX; m];
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    // DFS frame: (vertex, incoming tree edge id, cursor into neighbor list).
    let mut frames: Vec<(VertexId, EdgeId, u32)> = Vec::new();

    for root in 0..n as u32 {
        if disc[root as usize] != 0 {
            continue;
        }
        time += 1;
        disc[root as usize] = time;
        low[root as usize] = time;
        frames.push((root, u32::MAX, 0));
        let mut root_children = 0u32;

        while let Some(&mut (u, pe, ref mut cursor)) = frames.last_mut() {
            let nbrs = g.neighbors(u);
            if (*cursor as usize) < nbrs.len() {
                let (v, e) = nbrs[*cursor as usize];
                *cursor += 1;
                if e == pe || v == u {
                    continue; // incoming tree edge, or a self-loop
                }
                if disc[v as usize] == 0 {
                    // Tree edge: descend.
                    edge_stack.push(e);
                    time += 1;
                    disc[v as usize] = time;
                    low[v as usize] = time;
                    frames.push((v, e, 0));
                } else if disc[v as usize] < disc[u as usize] {
                    // Back edge to a strict ancestor (or parallel edge to the
                    // parent): record once, from the deeper endpoint.
                    edge_stack.push(e);
                    low[u as usize] = low[u as usize].min(disc[v as usize]);
                }
            } else {
                // Finished u: propagate low to the parent and maybe flush a
                // component. `pe` is the tree edge (p, u) — parallel (p, u)
                // back edges sit above it on the edge stack, so flushing
                // until exactly `pe` pops the whole component and nothing
                // more.
                frames.pop();
                if let Some(&mut (p, _, _)) = frames.last_mut() {
                    low[p as usize] = low[p as usize].min(low[u as usize]);
                    if low[u as usize] >= disc[p as usize] {
                        if frames.len() == 1 {
                            root_children += 1;
                        } else {
                            is_articulation[p as usize] = true;
                        }
                        let cid = comps.len() as u32;
                        let mut comp = Vec::new();
                        loop {
                            let e = edge_stack.pop().expect("edge stack underflow");
                            edge_comp[e as usize] = cid;
                            comp.push(e);
                            if e == pe {
                                break;
                            }
                        }
                        comps.push(comp);
                    }
                }
            }
        }
        if root_children >= 2 {
            is_articulation[root as usize] = true;
        }
    }

    // Every self-loop is its own component.
    for e in 0..m as u32 {
        if g.edge(e).is_self_loop() {
            let cid = comps.len() as u32;
            edge_comp[e as usize] = cid;
            comps.push(vec![e]);
        }
    }

    let bridges = comps
        .iter()
        .filter(|c| c.len() == 1 && !g.edge(c[0]).is_self_loop())
        .map(|c| c[0])
        .collect();

    Bcc {
        comps,
        edge_comp,
        is_articulation,
        bridges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_graph::CsrGraph;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let b = biconnected_components(&g);
        assert_eq!(b.count(), 1);
        assert!(b.articulation_points().is_empty());
        assert!(b.bridges.is_empty());
        assert_eq!(sorted(b.comps[0].clone()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // 0-1-2-0 and 2-3-4-2; vertex 2 is the articulation point.
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 2, 1),
            ],
        );
        let b = biconnected_components(&g);
        assert_eq!(b.count(), 2);
        assert_eq!(b.articulation_points(), vec![2]);
        assert!(b.bridges.is_empty());
        // Each component has 3 edges.
        assert!(b.comps.iter().all(|c| c.len() == 3));
        // edge_comp is consistent with comps.
        for (cid, comp) in b.comps.iter().enumerate() {
            for &e in comp {
                assert_eq!(b.edge_comp[e as usize], cid as u32);
            }
        }
    }

    #[test]
    fn path_is_all_bridges() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let b = biconnected_components(&g);
        assert_eq!(b.count(), 3);
        assert_eq!(sorted(b.bridges.clone()), vec![0, 1, 2]);
        assert_eq!(b.articulation_points(), vec![1, 2]);
    }

    #[test]
    fn star_center_is_articulation() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]);
        let b = biconnected_components(&g);
        assert_eq!(b.count(), 3);
        assert_eq!(b.articulation_points(), vec![0]);
    }

    #[test]
    fn barbell_bridge_between_triangles() {
        // triangle 0-1-2, bridge 2-3, triangle 3-4-5
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
        );
        let b = biconnected_components(&g);
        assert_eq!(b.count(), 3);
        assert_eq!(b.bridges, vec![3]);
        assert_eq!(b.articulation_points(), vec![2, 3]);
    }

    #[test]
    fn parallel_edges_are_biconnected() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1), (0, 1, 2)]);
        let b = biconnected_components(&g);
        assert_eq!(b.count(), 1);
        assert_eq!(b.comps[0].len(), 2);
        assert!(b.bridges.is_empty());
        assert!(b.articulation_points().is_empty());
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let g = CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 1)]);
        let b = biconnected_components(&g);
        assert_eq!(b.count(), 2);
        assert_eq!(b.bridges, vec![1]);
        let loop_comp = b.edge_comp[0] as usize;
        assert_eq!(b.comps[loop_comp], vec![0]);
        // A self-loop plus one bridge does not make vertex 0 an articulation
        // point of anything.
        assert!(b.articulation_points().is_empty());
    }

    #[test]
    fn disconnected_graph_handles_each_piece() {
        let g = CsrGraph::from_edges(7, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (3, 4, 1), (5, 6, 1)]);
        let b = biconnected_components(&g);
        assert_eq!(b.count(), 3);
        assert_eq!(sorted(b.bridges.clone()), vec![3, 4]);
    }

    #[test]
    fn comp_vertices_extracts_distinct_endpoints() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        let b = biconnected_components(&g);
        assert_eq!(b.comp_vertices(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn largest_finds_biggest_component() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
                (3, 5, 1),
            ],
        );
        let b = biconnected_components(&g);
        let l = b.largest().unwrap();
        assert_eq!(b.comps[l].len(), 4);
    }

    #[test]
    fn edges_partition_into_components() {
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 2, 1),
                (4, 5, 1),
                (5, 6, 1),
                (6, 7, 1),
                (7, 5, 1),
            ],
        );
        let b = biconnected_components(&g);
        let total: usize = b.comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.m());
        assert!(b.edge_comp.iter().all(|&c| c != u32::MAX));
    }
}
