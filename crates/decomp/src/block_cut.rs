//! The block-cut tree and articulation-point routing (paper §2.2, Stage 2).
//!
//! Nodes are the biconnected components (*blocks*) plus the articulation
//! points; a block is adjacent to exactly the articulation points it
//! contains. The structure is a forest (one tree per connected component of
//! the graph). Binary-lifting LCA answers, for any two vertices in
//! different blocks, *which* articulation point their shortest path leaves
//! the first block through and enters the last block through — exactly the
//! `a_1`/`a_2` of the paper's cross-component distance formula
//! `d(n_1,n_2) = d(n_1,a_1) + d(a_1,a_2) + d(a_2,n_2)`.

use crate::bcc::Bcc;
use ear_graph::{CsrGraph, VertexId};

/// Block-cut tree with LCA acceleration.
#[derive(Clone, Debug)]
pub struct BlockCutTree {
    /// Number of blocks (tree nodes `0..n_blocks`).
    pub n_blocks: usize,
    /// Articulation vertices; tree node of `aps[i]` is `n_blocks + i`.
    pub aps: Vec<VertexId>,
    /// `vertex → index into aps` (`u32::MAX` when not an articulation point).
    pub ap_index: Vec<u32>,
    /// `vertex → a block containing it` (`u32::MAX` for isolated vertices).
    /// Unique for non-articulation vertices.
    pub vertex_block: Vec<u32>,
    /// Articulation points contained in each block.
    pub block_aps: Vec<Vec<VertexId>>,
    /// Blocks adjacent to each articulation point: `ap_blocks[i]` is the
    /// ascending list of block ids containing `aps[i]`. The inverse of
    /// `block_aps`, so "which blocks hold this AP?" is a slice read instead
    /// of an O(n_blocks) membership scan.
    ap_blocks: Vec<Vec<u32>>,
    parent: Vec<u32>,
    depth: Vec<u32>,
    tree_id: Vec<u32>,
    up: Vec<Vec<u32>>, // binary-lifting table, up[k][node]
}

/// How two vertices relate in the block-cut forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Different connected components: no path at all.
    Disconnected,
    /// Some common block contains both vertices: the within-block table
    /// already has the answer.
    SameBlock(u32),
    /// The path must run `u → a1 → … → a2 → v`; `a1 == a2` is possible
    /// (single shared articulation point).
    ViaAps {
        /// Articulation point through which the path leaves `u`'s block.
        a1: VertexId,
        /// Articulation point through which the path enters `v`'s block.
        a2: VertexId,
    },
}

impl BlockCutTree {
    /// Builds the tree from a graph and its biconnected components.
    pub fn new(g: &CsrGraph, bcc: &Bcc) -> Self {
        let n = g.n();
        let n_blocks = bcc.count();
        let mut ap_index = vec![u32::MAX; n];
        let mut aps = Vec::new();
        for v in 0..n as u32 {
            if bcc.is_articulation[v as usize] {
                ap_index[v as usize] = aps.len() as u32;
                aps.push(v);
            }
        }
        let node_count = n_blocks + aps.len();

        let mut vertex_block = vec![u32::MAX; n];
        let mut block_aps: Vec<Vec<VertexId>> = vec![Vec::new(); n_blocks];
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); node_count];
        for b in 0..n_blocks {
            for v in bcc.comp_vertices(g, b) {
                if ap_index[v as usize] != u32::MAX {
                    block_aps[b].push(v);
                    let ap_node = n_blocks as u32 + ap_index[v as usize];
                    adj[b].push(ap_node);
                    adj[ap_node as usize].push(b as u32);
                    // For an AP, keep any one containing block.
                    vertex_block[v as usize] = b as u32;
                } else {
                    vertex_block[v as usize] = b as u32;
                }
            }
        }

        // BFS forest over tree nodes.
        let mut parent = vec![u32::MAX; node_count];
        let mut depth = vec![0u32; node_count];
        let mut tree_id = vec![u32::MAX; node_count];
        let mut queue = std::collections::VecDeque::new();
        let mut trees = 0u32;
        for r in 0..node_count as u32 {
            if tree_id[r as usize] != u32::MAX {
                continue;
            }
            tree_id[r as usize] = trees;
            queue.push_back(r);
            while let Some(x) = queue.pop_front() {
                for &y in &adj[x as usize] {
                    if tree_id[y as usize] == u32::MAX {
                        tree_id[y as usize] = trees;
                        parent[y as usize] = x;
                        depth[y as usize] = depth[x as usize] + 1;
                        queue.push_back(y);
                    }
                }
            }
            trees += 1;
        }

        // AP → adjacent blocks: the AP nodes' tree adjacency is exactly
        // that list, already ascending because the block loop above runs in
        // block-id order.
        let ap_blocks: Vec<Vec<u32>> = adj[n_blocks..].to_vec();

        // Binary lifting table.
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let levels = (32 - u32::leading_zeros(max_depth.max(1))) as usize;
        let mut up = Vec::with_capacity(levels);
        up.push(parent.clone());
        for k in 1..levels {
            let prev = &up[k - 1];
            let next: Vec<u32> = (0..node_count)
                .map(|x| {
                    let p = prev[x];
                    if p == u32::MAX {
                        u32::MAX
                    } else {
                        prev[p as usize]
                    }
                })
                .collect();
            up.push(next);
        }

        BlockCutTree {
            n_blocks,
            aps,
            ap_index,
            vertex_block,
            block_aps,
            ap_blocks,
            parent,
            depth,
            tree_id,
            up,
        }
    }

    /// Number of articulation points.
    pub fn ap_count(&self) -> usize {
        self.aps.len()
    }

    /// Tree node of a vertex: its AP node when articulation, otherwise its
    /// unique block. `None` for isolated vertices.
    pub fn node_of_vertex(&self, v: VertexId) -> Option<u32> {
        let ai = self.ap_index[v as usize];
        if ai != u32::MAX {
            return Some(self.n_blocks as u32 + ai);
        }
        let b = self.vertex_block[v as usize];
        (b != u32::MAX).then_some(b)
    }

    /// Lifts `x` up by `steps` ancestors.
    fn ancestor(&self, mut x: u32, mut steps: u32) -> u32 {
        let mut k = 0;
        while steps > 0 && x != u32::MAX {
            if steps & 1 == 1 {
                x = self.up[k][x as usize];
            }
            steps >>= 1;
            k += 1;
        }
        x
    }

    /// Lowest common ancestor of two tree nodes, `None` across trees.
    pub fn lca(&self, mut x: u32, mut y: u32) -> Option<u32> {
        if self.tree_id[x as usize] != self.tree_id[y as usize] {
            return None;
        }
        if self.depth[x as usize] < self.depth[y as usize] {
            std::mem::swap(&mut x, &mut y);
        }
        x = self.ancestor(x, self.depth[x as usize] - self.depth[y as usize]);
        if x == y {
            return Some(x);
        }
        for k in (0..self.up.len()).rev() {
            let (px, py) = (self.up[k][x as usize], self.up[k][y as usize]);
            if px != py {
                x = px;
                y = py;
            }
        }
        Some(self.up[0][x as usize])
    }

    /// First node after `x` on the tree path from `x` to `y` (`x != y`,
    /// same tree).
    fn first_step(&self, x: u32, y: u32) -> u32 {
        let l = self.lca(x, y).expect("same tree");
        if l == x {
            // Descend: the child of x that is an ancestor of y.
            self.ancestor(y, self.depth[y as usize] - self.depth[x as usize] - 1)
        } else {
            self.parent[x as usize]
        }
    }

    /// Resolves which articulation points a `u → v` path crosses.
    pub fn route(&self, u: VertexId, v: VertexId) -> Route {
        let (Some(nu), Some(nv)) = (self.node_of_vertex(u), self.node_of_vertex(v)) else {
            return Route::Disconnected;
        };
        if self.tree_id[nu as usize] != self.tree_id[nv as usize] {
            return Route::Disconnected;
        }
        let u_is_ap = self.ap_index[u as usize] != u32::MAX;
        let v_is_ap = self.ap_index[v as usize] != u32::MAX;
        // Same-block fast paths.
        if nu == nv {
            return Route::SameBlock(nu);
        }
        if !u_is_ap && !v_is_ap {
            // Both are plain block nodes; distinct blocks.
        } else if u_is_ap && !v_is_ap {
            // If u sits in v's block the within-block table answers.
            if self.block_contains_ap(nv, u) {
                return Route::SameBlock(nv);
            }
        } else if !u_is_ap && v_is_ap {
            if self.block_contains_ap(nu, v) {
                return Route::SameBlock(nu);
            }
        } else {
            // Both APs; adjacent in the tree through a shared block?
            if let Some(b) = self.shared_block(u, v) {
                return Route::SameBlock(b);
            }
        }
        let a1 = if u_is_ap {
            u
        } else {
            self.ap_of_node(self.first_step(nu, nv))
        };
        let a2 = if v_is_ap {
            v
        } else {
            self.ap_of_node(self.first_step(nv, nu))
        };
        Route::ViaAps { a1, a2 }
    }

    fn ap_of_node(&self, node: u32) -> VertexId {
        debug_assert!(node as usize >= self.n_blocks, "expected an AP node");
        self.aps[node as usize - self.n_blocks]
    }

    fn block_contains_ap(&self, block: u32, ap: VertexId) -> bool {
        self.block_aps[block as usize].contains(&ap)
    }

    /// Blocks containing articulation point `ap`, ascending by block id.
    /// Empty when `ap` is not an articulation point.
    pub fn blocks_of_ap(&self, ap: VertexId) -> &[u32] {
        let ai = self.ap_index[ap as usize];
        if ai == u32::MAX {
            return &[];
        }
        &self.ap_blocks[ai as usize]
    }

    /// Connected-component id of a vertex (`None` for isolated vertices).
    /// Two vertices have a path between them iff their component ids match.
    pub fn component_of(&self, v: VertexId) -> Option<u32> {
        self.node_of_vertex(v)
            .map(|node| self.tree_id[node as usize])
    }

    /// Smallest block id containing both articulation points, via a merge
    /// over their sorted adjacent-block lists — O(deg) instead of the old
    /// O(n_blocks) scan.
    fn shared_block(&self, a: VertexId, b: VertexId) -> Option<u32> {
        let (mut xs, mut ys) = (self.blocks_of_ap(a), self.blocks_of_ap(b));
        while let (Some(&x), Some(&y)) = (xs.first(), ys.first()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Equal => return Some(x),
                std::cmp::Ordering::Less => xs = &xs[1..],
                std::cmp::Ordering::Greater => ys = &ys[1..],
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcc::biconnected_components;

    /// triangle(0,1,2) — AP 2 — triangle(2,3,4) — AP 4 — edge(4,5)
    fn chain_of_blocks() -> (CsrGraph, Bcc, BlockCutTree) {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 2, 1),
                (4, 5, 1),
            ],
        );
        let b = biconnected_components(&g);
        let t = BlockCutTree::new(&g, &b);
        (g, b, t)
    }

    #[test]
    fn counts_blocks_and_aps() {
        let (_, b, t) = chain_of_blocks();
        assert_eq!(t.n_blocks, b.count());
        assert_eq!(t.n_blocks, 3);
        assert_eq!(t.aps, vec![2, 4]);
    }

    #[test]
    fn same_block_routing() {
        let (_, _, t) = chain_of_blocks();
        match t.route(0, 1) {
            Route::SameBlock(_) => {}
            r => panic!("expected SameBlock, got {r:?}"),
        }
        // AP with a vertex of its own block.
        match t.route(2, 0) {
            Route::SameBlock(_) => {}
            r => panic!("expected SameBlock, got {r:?}"),
        }
    }

    #[test]
    fn cross_block_routing_finds_the_aps() {
        let (_, _, t) = chain_of_blocks();
        match t.route(0, 5) {
            Route::ViaAps { a1, a2 } => {
                assert_eq!(a1, 2);
                assert_eq!(a2, 4);
            }
            r => panic!("expected ViaAps, got {r:?}"),
        }
        match t.route(5, 0) {
            Route::ViaAps { a1, a2 } => {
                assert_eq!(a1, 4);
                assert_eq!(a2, 2);
            }
            r => panic!("expected ViaAps, got {r:?}"),
        }
    }

    #[test]
    fn adjacent_blocks_share_single_ap() {
        let (_, _, t) = chain_of_blocks();
        match t.route(0, 3) {
            Route::ViaAps { a1, a2 } => {
                assert_eq!(a1, 2);
                assert_eq!(a2, 2);
            }
            r => panic!("expected ViaAps, got {r:?}"),
        }
    }

    #[test]
    fn two_aps_in_shared_block() {
        let (_, _, t) = chain_of_blocks();
        // 2 and 4 share the middle triangle.
        match t.route(2, 4) {
            Route::SameBlock(_) => {}
            r => panic!("expected SameBlock, got {r:?}"),
        }
    }

    #[test]
    fn ap_to_distant_vertex() {
        let (_, _, t) = chain_of_blocks();
        match t.route(2, 5) {
            Route::ViaAps { a1, a2 } => {
                assert_eq!(a1, 2);
                assert_eq!(a2, 4);
            }
            r => panic!("expected ViaAps, got {r:?}"),
        }
    }

    #[test]
    fn disconnected_vertices() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (3, 4, 1)]);
        let b = biconnected_components(&g);
        let t = BlockCutTree::new(&g, &b);
        assert_eq!(t.route(0, 3), Route::Disconnected);
        assert_eq!(t.route(0, 4), Route::Disconnected);
        match t.route(3, 4) {
            Route::SameBlock(_) => {}
            r => panic!("expected SameBlock, got {r:?}"),
        }
    }

    #[test]
    fn isolated_vertex_routes_nowhere() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1)]);
        let b = biconnected_components(&g);
        let t = BlockCutTree::new(&g, &b);
        assert_eq!(t.route(0, 2), Route::Disconnected);
    }

    #[test]
    fn long_chain_of_bridges() {
        // Path 0-1-2-3-4: every edge a block, inner vertices APs.
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)]);
        let b = biconnected_components(&g);
        let t = BlockCutTree::new(&g, &b);
        assert_eq!(t.ap_count(), 3);
        match t.route(0, 4) {
            Route::ViaAps { a1, a2 } => {
                assert_eq!(a1, 1);
                assert_eq!(a2, 3);
            }
            r => panic!("expected ViaAps, got {r:?}"),
        }
        match t.route(1, 3) {
            Route::ViaAps { a1, a2 } => {
                assert_eq!((a1, a2), (1, 3));
            }
            r => panic!("expected ViaAps, got {r:?}"),
        }
    }

    #[test]
    fn ap_block_index_inverts_block_aps() {
        let (_, _, t) = chain_of_blocks();
        for (i, &ap) in t.aps.iter().enumerate() {
            let blocks = t.blocks_of_ap(ap);
            assert!(!blocks.is_empty(), "AP {ap} adjacent to no block");
            assert!(blocks.windows(2).all(|w| w[0] < w[1]), "unsorted");
            for b in 0..t.n_blocks as u32 {
                assert_eq!(
                    blocks.contains(&b),
                    t.block_aps[b as usize].contains(&ap),
                    "AP {i} block {b}"
                );
            }
        }
        // Non-APs have no adjacent-block list.
        assert!(t.blocks_of_ap(0).is_empty());
    }

    #[test]
    fn component_ids_partition_the_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (3, 4, 1)]);
        let b = biconnected_components(&g);
        let t = BlockCutTree::new(&g, &b);
        assert_eq!(t.component_of(0), t.component_of(2));
        assert_eq!(t.component_of(3), t.component_of(4));
        assert_ne!(t.component_of(0), t.component_of(3));
        assert_eq!(t.component_of(5), None); // isolated
    }

    #[test]
    fn star_graph_hub_is_everyones_gateway() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]);
        let b = biconnected_components(&g);
        let t = BlockCutTree::new(&g, &b);
        match t.route(1, 2) {
            Route::ViaAps { a1, a2 } => {
                assert_eq!((a1, a2), (0, 0));
            }
            r => panic!("expected ViaAps, got {r:?}"),
        }
    }
}
