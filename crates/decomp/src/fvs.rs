//! Feedback vertex sets.
//!
//! The Mehlhorn–Michail candidate restriction (paper §3.2) only needs a set
//! `Z` that intersects every cycle — minimality affects the number of
//! shortest-path trees built, not correctness. Computing a minimum FVS is
//! NP-complete (Karp); the paper points at the Bafna–Berman–Fujito
//! 2-approximation. We use the classic degree-driven greedy instead: strip
//! degree ≤ 1 vertices to the 2-core, repeatedly take the highest-degree
//! remaining vertex into `Z`, re-strip, until the graph is a forest. The
//! residual-forest invariant guarantees `Z` covers every cycle; the sizes it
//! produces on the paper's sparse workloads are within a small factor of
//! the 2-approximation while being much simpler. (Documented substitution —
//! see DESIGN.md.)
//!
//! Multigraph rules: a vertex with a self-loop is on a one-vertex cycle and
//! is always taken; a parallel bundle is a two-vertex cycle and forces one
//! endpoint in.

use ear_graph::{CsrGraph, VertexId};

/// Computes a feedback vertex set of `g` (every cycle contains a member).
///
/// The result is deterministic: ties are broken by smaller vertex id.
pub fn feedback_vertex_set(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.n();
    let mut alive = vec![true; n];
    let mut fvs: Vec<VertexId> = Vec::new();

    // Self-loop vertices are forced.
    for e in g.edges() {
        if e.is_self_loop() && alive[e.u as usize] {
            alive[e.u as usize] = false;
            fvs.push(e.u);
        }
    }

    // Live degree = incidences to other live vertices (self-loops already
    // handled; parallel edges counted individually so a bundle keeps its
    // endpoints "cyclic").
    let mut deg: Vec<u32> = (0..n as u32)
        .map(|v| {
            if !alive[v as usize] {
                return 0;
            }
            g.neighbors(v)
                .iter()
                .filter(|&&(w, _)| w != v && alive[w as usize])
                .count() as u32
        })
        .collect();

    let strip = |deg: &mut Vec<u32>, alive: &mut Vec<bool>| {
        let mut queue: Vec<VertexId> = (0..n as u32)
            .filter(|&v| alive[v as usize] && deg[v as usize] <= 1)
            .collect();
        while let Some(v) = queue.pop() {
            if !alive[v as usize] {
                continue;
            }
            alive[v as usize] = false;
            for &(w, _) in g.neighbors(v) {
                if w != v && alive[w as usize] {
                    deg[w as usize] -= 1;
                    if deg[w as usize] <= 1 {
                        queue.push(w);
                    }
                }
            }
        }
    };

    strip(&mut deg, &mut alive);
    loop {
        // Anything still alive has live-degree >= 2. A live graph where all
        // degrees are >= 2 contains a cycle, unless nothing is alive.
        let pick = (0..n as u32)
            .filter(|&v| alive[v as usize])
            .max_by_key(|&v| (deg[v as usize], std::cmp::Reverse(v)));
        let Some(v) = pick else { break };
        alive[v as usize] = false;
        fvs.push(v);
        for &(w, _) in g.neighbors(v) {
            if w != v && alive[w as usize] {
                deg[w as usize] -= 1;
            }
        }
        strip(&mut deg, &mut alive);
    }
    fvs.sort_unstable();
    fvs.dedup();
    fvs
}

/// Checks the FVS property: deleting `z` from `g` leaves an acyclic graph.
/// Used by tests and debug assertions; linear in `n + m`.
pub fn is_feedback_vertex_set(g: &CsrGraph, z: &[VertexId]) -> bool {
    let n = g.n();
    let mut removed = vec![false; n];
    for &v in z {
        removed[v as usize] = true;
    }
    // Remaining graph must be a forest: check with a union-find over the
    // surviving edges (a repeated root means a cycle; self-loops and
    // parallel edges register naturally).
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for e in g.edges() {
        if removed[e.u as usize] || removed[e.v as usize] {
            continue;
        }
        let (ru, rv) = (find(&mut parent, e.u), find(&mut parent, e.v));
        if ru == rv {
            return false;
        }
        parent[ru as usize] = rv;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_needs_empty_fvs() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (1, 3, 1)]);
        let z = feedback_vertex_set(&g);
        assert!(z.is_empty());
        assert!(is_feedback_vertex_set(&g, &z));
    }

    #[test]
    fn cycle_needs_one_vertex() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let z = feedback_vertex_set(&g);
        assert_eq!(z.len(), 1);
        assert!(is_feedback_vertex_set(&g, &z));
    }

    #[test]
    fn self_loop_vertex_is_forced() {
        let g = CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 1)]);
        let z = feedback_vertex_set(&g);
        assert_eq!(z, vec![0]);
        assert!(is_feedback_vertex_set(&g, &z));
    }

    #[test]
    fn parallel_bundle_counts_as_cycle() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1), (0, 1, 2)]);
        let z = feedback_vertex_set(&g);
        assert_eq!(z.len(), 1);
        assert!(is_feedback_vertex_set(&g, &z));
    }

    #[test]
    fn two_disjoint_cycles_need_two() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
        );
        let z = feedback_vertex_set(&g);
        assert_eq!(z.len(), 2);
        assert!(is_feedback_vertex_set(&g, &z));
    }

    #[test]
    fn hub_covers_wheel() {
        // Wheel: hub 0 connected to a 5-cycle. FVS of size 2 suffices (hub +
        // one rim vertex); greedy must stay small and valid.
        let mut edges = vec![];
        for i in 1..=5u32 {
            edges.push((0, i, 1));
            edges.push((i, if i == 5 { 1 } else { i + 1 }, 1));
        }
        let g = CsrGraph::from_edges(6, &edges);
        let z = feedback_vertex_set(&g);
        assert!(is_feedback_vertex_set(&g, &z));
        assert!(z.len() <= 2, "greedy produced {z:?}");
    }

    #[test]
    fn verifier_rejects_non_cover() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        assert!(!is_feedback_vertex_set(&g, &[]));
        assert!(is_feedback_vertex_set(&g, &[1]));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(feedback_vertex_set(&g).is_empty());
    }
}
