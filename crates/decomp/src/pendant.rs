//! Iterative pendant (degree-1) removal — the Banerjee et al. optimisation
//! (paper §2.4.3: "it initially removes vertices of degree-1 from the
//! graph. It then checks if the degree of any vertices adjacent to the
//! vertices removed in the first iteration, degenerates to 1").
//!
//! Pendant vertices carry no cycles and lie on no shortest path between
//! other vertices; each hangs off the rest of the graph through a unique
//! attachment path. Removing them iteratively peels whole pendant trees,
//! leaving the 1-core. Distances involving a peeled vertex decompose as
//! `d(x, ·) = d(x, root(x)) + d(root(x), ·)` where `root(x)` is the 1-core
//! vertex its tree hangs from.

use ear_graph::{CsrGraph, VertexId, Weight};

/// Result of the peel: the 1-core and, for every peeled vertex, its
/// attachment root in the core plus the exact distance to it.
#[derive(Clone, Debug)]
pub struct PendantPeel {
    /// `true` for vertices that survive (the 1-core).
    pub in_core: Vec<bool>,
    /// For peeled vertices: the closest core vertex (`u32::MAX` when the
    /// whole component is a tree — then the "root" is the component's
    /// peel-order last vertex, which stays in core by convention).
    pub root: Vec<VertexId>,
    /// Distance from a peeled vertex to its root along its pendant tree.
    pub dist_to_root: Vec<Weight>,
    /// Tree parent of each peeled vertex (one hop toward the core;
    /// `u32::MAX` for core vertices).
    pub parent: Vec<VertexId>,
    /// Peeled vertices in removal order — children always precede their
    /// parents, which makes subtree aggregation a single forward sweep.
    pub peel_order: Vec<VertexId>,
    /// Number of vertices peeled.
    pub peeled: usize,
    /// Rounds of peeling performed (the "iterations" of Banerjee et al.).
    pub rounds: usize,
}

/// Iteratively removes degree-1 vertices.
///
/// Whole-tree components keep exactly one vertex in core (the last
/// survivor), so every peeled vertex always has a well-defined root.
pub fn peel_pendants(g: &CsrGraph) -> PendantPeel {
    let n = g.n();
    let mut deg: Vec<u32> = (0..n as u32)
        .map(|v| g.neighbors(v).iter().filter(|&&(w, _)| w != v).count() as u32)
        .collect();
    let mut in_core = vec![true; n];
    let mut queue: Vec<VertexId> = (0..n as u32).filter(|&v| deg[v as usize] == 1).collect();
    let mut next_round: Vec<VertexId> = Vec::new();
    // parent pointer toward the core, set at peel time.
    let mut parent = vec![u32::MAX; n];
    let mut parent_w: Vec<Weight> = vec![0; n];
    let mut peel_order: Vec<VertexId> = Vec::new();
    let mut peeled = 0usize;
    let mut rounds = 0usize;

    while !queue.is_empty() {
        rounds += 1;
        for &v in &queue {
            if !in_core[v as usize] || deg[v as usize] != 1 {
                continue;
            }
            // The unique live neighbor.
            let Some(&(u, e)) = g
                .neighbors(v)
                .iter()
                .find(|&&(u, _)| u != v && in_core[u as usize])
            else {
                continue;
            };
            in_core[v as usize] = false;
            peeled += 1;
            peel_order.push(v);
            parent[v as usize] = u;
            parent_w[v as usize] = g.weight(e);
            deg[u as usize] -= 1;
            if deg[u as usize] == 1 {
                next_round.push(u);
            }
        }
        queue = std::mem::take(&mut next_round);
    }

    // Resolve roots by path compression through the parent pointers.
    let mut root = vec![u32::MAX; n];
    let mut dist_to_root: Vec<Weight> = vec![0; n];
    fn resolve(
        v: VertexId,
        in_core: &[bool],
        parent: &[u32],
        parent_w: &[Weight],
        root: &mut [u32],
        dist: &mut [Weight],
    ) -> (VertexId, Weight) {
        if in_core[v as usize] {
            return (v, 0);
        }
        if root[v as usize] != u32::MAX {
            return (root[v as usize], dist[v as usize]);
        }
        let (r, d) = resolve(parent[v as usize], in_core, parent, parent_w, root, dist);
        root[v as usize] = r;
        dist[v as usize] = d + parent_w[v as usize];
        (r, dist[v as usize])
    }
    for v in 0..n as u32 {
        if !in_core[v as usize] {
            resolve(
                v,
                &in_core,
                &parent,
                &parent_w,
                &mut root,
                &mut dist_to_root,
            );
        }
    }

    PendantPeel {
        in_core,
        root,
        dist_to_root,
        parent,
        peel_order,
        peeled,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_graph::dijkstra;

    #[test]
    fn triangle_with_tail() {
        // triangle 0-1-2 with tail 2-3-4.
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 5), (3, 4, 7)]);
        let p = peel_pendants(&g);
        assert_eq!(p.peeled, 2);
        assert!(p.in_core[0] && p.in_core[1] && p.in_core[2]);
        assert!(!p.in_core[3] && !p.in_core[4]);
        assert_eq!(p.root[3], 2);
        assert_eq!(p.root[4], 2);
        assert_eq!(p.dist_to_root[3], 5);
        assert_eq!(p.dist_to_root[4], 12);
        assert_eq!(p.rounds, 2);
    }

    #[test]
    fn core_distances_decompose() {
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 2),
                (1, 2, 3),
                (2, 0, 4),
                (0, 3, 1),
                (3, 4, 2),
                (1, 5, 6),
                (5, 6, 1),
            ],
        );
        let p = peel_pendants(&g);
        // d(x, y) = d2r(x) + d(root(x), y) for peeled x and core y.
        for x in 0..g.n() as u32 {
            if p.in_core[x as usize] {
                continue;
            }
            let dx = dijkstra(&g, x);
            let droot = dijkstra(&g, p.root[x as usize]);
            for y in 0..g.n() as u32 {
                if p.in_core[y as usize] {
                    assert_eq!(
                        dx[y as usize],
                        p.dist_to_root[x as usize] + droot[y as usize],
                        "x={x} y={y}"
                    );
                }
            }
        }
    }

    #[test]
    fn pure_tree_keeps_one_survivor() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (2, 4, 1)]);
        let p = peel_pendants(&g);
        assert_eq!(p.peeled, 4);
        assert_eq!(p.in_core.iter().filter(|&&c| c).count(), 1);
        // Every peeled vertex resolves to the survivor at the right cost.
        let survivor = (0..5u32).find(|&v| p.in_core[v as usize]).unwrap();
        let d = dijkstra(&g, survivor);
        for v in 0..5u32 {
            if v != survivor {
                assert_eq!(p.root[v as usize], survivor);
                assert_eq!(p.dist_to_root[v as usize], d[v as usize]);
            }
        }
    }

    #[test]
    fn cycle_has_nothing_to_peel() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let p = peel_pendants(&g);
        assert_eq!(p.peeled, 0);
        assert_eq!(p.rounds, 0);
    }

    #[test]
    fn isolated_vertices_stay_in_core() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1)]);
        let p = peel_pendants(&g);
        assert!(p.in_core[2]);
        // The 0-1 edge: one endpoint peels, one survives.
        assert_eq!(p.peeled, 1);
    }
}
