//! The shared decomposition plan: every pipeline's front half, built once.
//!
//! The paper's design is "decompose once, then solve many small problems":
//! biconnected split → block-cut tree → per-block ear reduction feeds both
//! the APSP oracle (§2) and the MCB pipeline (§3). A [`DecompPlan`] owns
//! that whole front half as one reusable artifact:
//!
//! * the [`BlockCutTree`] (which also fixes articulation points and
//!   per-vertex home blocks);
//! * one [`BlockPlan`] per biconnected component, holding the extracted
//!   block subgraph, its id maps back to the parent graph, and — for
//!   simple blocks — the degree-2 chain reduction ([`ReducedGraph`] with
//!   all its `RemovedInfo` bookkeeping);
//! * the edge→block assignment and the bridge list.
//!
//! Consumers (`ear-apsp`'s `build_oracle_with_plan` and `ReducedOracle`,
//! `ear-mcb`'s `mcb_with_plan`, the CLI, `ear-workloads`' `GraphStats`)
//! take a plan instead of recomputing the split themselves; a server-style
//! caller wraps the plan in an `Arc` and amortises the decomposition across
//! APSP, MCB and statistics workloads over the same graph.
//!
//! # Topology / customization layering
//!
//! Internally the plan is an explicit two-layer artifact, the CCH-style
//! split the paper's "disassemble once, reassemble per metric" pipeline
//! implies:
//!
//! * [`PlanTopology`] — everything that depends only on the graph's
//!   *structure*: the block-cut tree, the edge→block table, bridges, the
//!   per-vertex home-block numbering, arena spans and the locality
//!   [`NodeOrder`]. Shared via [`Arc`] by every customization of the same
//!   graph shape.
//! * [`CustomizedPlan`] — everything that depends on the current edge
//!   *weights*: the per-block subgraph weight arrays, the chain-contracted
//!   reductions, the shared arena's weight layer, and the weight vector
//!   itself.
//!
//! [`DecompPlan::recustomize`] recomputes only the second layer for a new
//! weight vector — rayon-parallel over the **dirty blocks** (those
//! containing at least one changed edge, read off the edge→block table) —
//! and [`DecompPlan::recustomized`] packages it with the shared topology.
//! The result is bit-identical to a cold [`DecompPlan::build`] of the
//! reweighted graph (the differential suite holds it to that), at the cost
//! of one weight sweep instead of a re-decomposition.
//!
//! # Id-translation conventions
//!
//! Block subgraphs use compact local vertex ids `0..block.n()`. The plan
//! settles the translation in one place:
//!
//! * [`BlockPlan::parent`] / [`BlockPlan::to_parent_vertex`] map local →
//!   parent; [`BlockPlan::to_parent_edge`] maps local edge `i` of the block
//!   subgraph to its parent edge id.
//! * [`DecompPlan::local`] maps (block, parent vertex) → local id, `None`
//!   when the vertex is not in that block. Every vertex has a *home* block
//!   (the block-cut tree's `vertex_block`); vertices appearing in several
//!   blocks (articulation points, and self-loop copies of a vertex) are
//!   resolved through a small sorted per-block side table.
//!
//! Reduction is eager and runs per block in parallel through the rayon
//! shim; blocks that are not simple (parallel edges or self-loops — only
//! possible for multigraph inputs) carry `reduction: None`, and
//! [`DecompPlan::reduction`] is the single guard every pipeline routes
//! through (see [`crate::reduce::NotSimpleError`]).
//!
//! ```
//! use ear_decomp::plan::DecompPlan;
//! use ear_graph::CsrGraph;
//! // Two triangles sharing vertex 2 (an articulation point).
//! let g = CsrGraph::from_edges(5, &[
//!     (0, 1, 1), (1, 2, 2), (2, 0, 3),
//!     (2, 3, 4), (3, 4, 5), (4, 2, 6),
//! ]);
//! let plan = DecompPlan::build(&g);
//! assert_eq!(plan.n_blocks(), 2);
//! assert_eq!(plan.bct().ap_count(), 1);
//! // Vertex 2 is in both blocks; vertex 0 only in its own.
//! assert!(plan.local(0, 2).is_some() && plan.local(1, 2).is_some());
//! assert_eq!((0..2).filter(|&b| plan.local(b, 0).is_some()).count(), 1);
//! // Reweight edge 0: only the first triangle is recustomized.
//! let mut w: Vec<u64> = g.edges().iter().map(|e| e.w).collect();
//! w[0] = 100;
//! let fresh = plan.recustomized(&w);
//! assert_eq!(fresh.dirty_blocks().len(), 1);
//! ```

use std::sync::Arc;

use crate::bcc::{biconnected_components, Bcc};
use crate::block_cut::BlockCutTree;
use crate::reduce::{reduce_graph, ReducedGraph};
use ear_graph::{
    edge_subgraph_into_arena, edge_subgraph_reusing, CsrArena, CsrGraph, CsrSpan, CsrView, EdgeId,
    LayoutMode, NodeOrder, SubgraphScratch, VertexId, Weight,
};

/// One biconnected component of the plan: the extracted subgraph, its id
/// maps, and (for simple blocks) its degree-2 chain reduction.
///
/// The id maps and the side table are weight-independent and sit behind
/// [`Arc`], so a recustomization's untouched (and even touched) blocks
/// share them with the original plan; only `sub` and `reduction` carry
/// weight-dependent state.
#[derive(Clone, Debug)]
pub struct BlockPlan {
    /// The block subgraph as an **owned** graph — `Some` exactly under
    /// [`LayoutMode::Copied`]. Viewed plans keep every block inside the
    /// plan's shared [`CsrArena`] instead; use [`DecompPlan::block_graph`]
    /// for layout-independent access.
    pub sub: Option<CsrGraph>,
    /// Vertex count of the block (valid in both layouts).
    n: usize,
    /// Edge count of the block (valid in both layouts).
    m: usize,
    /// `local → parent` vertex ids (topology, shared across
    /// customizations).
    pub to_parent_vertex: Arc<Vec<VertexId>>,
    /// `local edge → parent edge` ids (topology, shared across
    /// customizations).
    pub to_parent_edge: Arc<Vec<EdgeId>>,
    /// Whether `sub` is simple — the one flag all reduction guards use.
    pub simple: bool,
    /// The chain contraction of `sub`, present exactly when `simple`.
    pub reduction: Option<ReducedGraph>,
    /// Members of this block whose home block is a different one
    /// (articulation points, plus self-loop copies of a vertex), as sorted
    /// `(parent id, local id)` pairs — the side table behind
    /// [`DecompPlan::local`].
    shared: Arc<Vec<(VertexId, VertexId)>>,
}

impl BlockPlan {
    /// Vertices in the block.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edges in the block.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Parent id of a local vertex.
    #[inline]
    pub fn parent(&self, local: VertexId) -> VertexId {
        self.to_parent_vertex[local as usize]
    }
}

/// The weight-independent layer of a [`DecompPlan`]: BCC partition,
/// block-cut tree, edge→block table, bridges, home-block numbering, arena
/// spans and the locality order. Never recomputed by
/// [`DecompPlan::recustomize`]; shared via [`Arc`] by every customization
/// of the same graph structure.
#[derive(Clone, Debug)]
pub struct PlanTopology {
    n: usize,
    m: usize,
    bct: BlockCutTree,
    /// Block id of every edge — also the dirty-block map of a
    /// recustomization.
    edge_comp: Vec<u32>,
    /// Bridge edges (single-edge non-loop blocks).
    bridges: Vec<EdgeId>,
    /// `vertex → local id within its home block` (`u32::MAX` for isolated
    /// vertices); the home block is `bct.vertex_block`.
    home_local: Vec<u32>,
    /// Which block-storage layout this plan was built with.
    layout: LayoutMode,
    /// One arena window per block under [`LayoutMode::Viewed`].
    spans: Vec<CsrSpan>,
    /// BCC-clustered locality order over the parent graph's vertices:
    /// blocks in id order, home vertices of each block in local-id order
    /// (DFS discovery order along the component edge list), isolated
    /// vertices last.
    node_order: NodeOrder,
}

/// The weight-dependent layer of a [`DecompPlan`]: per-block subgraphs and
/// reductions under one specific weight vector, plus the shared arena's
/// weight layer. Produced by [`DecompPlan::build`] (cold) or
/// [`DecompPlan::recustomize`] (warm, dirty blocks only).
#[derive(Clone, Debug)]
pub struct CustomizedPlan {
    blocks: Vec<BlockPlan>,
    /// Shared CSR storage for every block under [`LayoutMode::Viewed`]
    /// (empty under `Copied`). Topology arrays are shared across
    /// customizations; the weight layer belongs to this customization.
    arena: CsrArena,
    /// The full-graph weight vector this customization was built for —
    /// the baseline [`DecompPlan::recustomize`] diffs against.
    edge_weights: Vec<Weight>,
    /// Blocks whose weight layer was (re)computed by this customization:
    /// every block for a cold build, exactly the blocks containing a
    /// changed edge for a recustomization. Sorted ascending.
    dirty: Vec<u32>,
    /// 0 for a cold build, parent + 1 for each recustomization.
    generation: u64,
}

impl CustomizedPlan {
    /// Blocks whose weight layer this customization (re)computed, sorted:
    /// all blocks for a cold build, the blocks containing a changed edge
    /// for a recustomization. Incremental oracle refreshes rebuild exactly
    /// these.
    pub fn dirty_blocks(&self) -> &[u32] {
        &self.dirty
    }

    /// 0 for a cold build, parent's generation + 1 after `recustomize`.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The full-graph weight vector this customization embodies.
    pub fn edge_weights(&self) -> &[Weight] {
        &self.edge_weights
    }
}

/// The full decomposition front half of both pipelines, built once from a
/// graph (see the [module docs](self) for what it owns, the id-map
/// conventions, and the topology/customization layering).
#[derive(Clone, Debug)]
pub struct DecompPlan {
    topo: Arc<PlanTopology>,
    custom: CustomizedPlan,
}

impl DecompPlan {
    /// Builds the plan with the process-default layout
    /// ([`LayoutMode::from_env`], i.e. `EAR_CSR_VIEWS`).
    pub fn build(g: &CsrGraph) -> DecompPlan {
        Self::build_with_layout(g, LayoutMode::from_env())
    }

    /// Builds the plan: biconnected components, block-cut tree, per-block
    /// subgraph extraction (scratch-reusing, O(n + m) total), and parallel
    /// per-block chain reduction of every simple block.
    ///
    /// Under [`LayoutMode::Copied`] every block is extracted into its own
    /// [`CsrGraph`]; under [`LayoutMode::Viewed`] all blocks land in one
    /// shared [`CsrArena`] and are served as zero-copy [`CsrView`] windows
    /// — bit-identical local ids, edge order and adjacency order either
    /// way (the arena push mirrors standalone CSR construction exactly).
    pub fn build_with_layout(g: &CsrGraph, layout: LayoutMode) -> DecompPlan {
        let _span = ear_obs::span_with("decomp.plan", g.n() as u64);
        let bcc = {
            let _s = ear_obs::span("decomp.bcc");
            biconnected_components(g)
        };
        let bct = {
            let _s = ear_obs::span("decomp.bct");
            BlockCutTree::new(g, &bcc)
        };
        let Bcc {
            comps,
            edge_comp,
            bridges,
            ..
        } = bcc;

        // Extract every block with one shared scratch; the component edge
        // lists move into the blocks without copying. Copied layout builds
        // one owned CsrGraph per block; Viewed layout appends each block's
        // CSR windows to the shared arena instead (zero per-block
        // adjacency allocations).
        let extract_span = ear_obs::span_with("decomp.extract", comps.len() as u64);
        let mut scratch = SubgraphScratch::new();
        let mut arena = CsrArena::new();
        let mut spans: Vec<CsrSpan> = Vec::new();
        // (copied graph, n, m, parent vertex map, parent edge map, simple)
        // per block — the copied graph is None under the arena layout.
        type Extracted = (
            Option<CsrGraph>,
            usize,
            usize,
            Vec<VertexId>,
            Vec<EdgeId>,
            bool,
        );
        let mut extracted: Vec<Extracted> = Vec::with_capacity(comps.len());
        for comp in comps {
            match layout {
                LayoutMode::Copied => {
                    let (sub, map) = edge_subgraph_reusing(g, comp, &mut scratch);
                    let simple = sub.is_simple();
                    let (n, m) = (sub.n(), sub.m());
                    extracted.push((
                        Some(sub),
                        n,
                        m,
                        map.to_parent_vertex,
                        map.to_parent_edge,
                        simple,
                    ));
                }
                LayoutMode::Viewed => {
                    let (span, map) = edge_subgraph_into_arena(g, comp, &mut scratch, &mut arena);
                    let simple = arena.view(&span).is_simple();
                    extracted.push((
                        None,
                        span.n as usize,
                        span.m as usize,
                        map.to_parent_vertex,
                        map.to_parent_edge,
                        simple,
                    ));
                    spans.push(span);
                }
            }
        }
        drop(extract_span);

        // Chain-contract all simple blocks, in parallel across blocks. The
        // per-block sequential `reduce_graph` keeps the output bit-identical
        // to what each pipeline used to compute on its own; it consumes a
        // view, so both layouts share the exact same code path.
        let reductions: Vec<Option<ReducedGraph>> = {
            use rayon::prelude::*;
            let _s = ear_obs::span("decomp.reduce");
            extracted
                .par_iter()
                .zip(0usize..)
                .map(|((sub, n, _, _, _, simple), b)| {
                    let _b = ear_obs::span_with("decomp.reduce.block", *n as u64);
                    simple.then(|| {
                        let view = match sub {
                            Some(sub) => sub.view(),
                            None => arena.view(&spans[b]),
                        };
                        reduce_graph(view).expect("simplicity was just checked")
                    })
                })
                .collect()
        };

        let mut home_local = vec![u32::MAX; g.n()];
        let blocks: Vec<BlockPlan> = extracted
            .into_iter()
            .zip(reductions)
            .enumerate()
            .map(
                |(b, ((sub, n, m, to_parent_vertex, to_parent_edge, simple), reduction))| {
                    let mut shared = Vec::new();
                    for (l, &p) in to_parent_vertex.iter().enumerate() {
                        if bct.vertex_block[p as usize] == b as u32 {
                            home_local[p as usize] = l as u32;
                        } else {
                            shared.push((p, l as u32));
                        }
                    }
                    shared.sort_unstable();
                    BlockPlan {
                        sub,
                        n,
                        m,
                        to_parent_vertex: Arc::new(to_parent_vertex),
                        to_parent_edge: Arc::new(to_parent_edge),
                        simple,
                        reduction,
                        shared: Arc::new(shared),
                    }
                },
            )
            .collect();

        // BCC-clustered locality order: blocks in id order, each block's
        // home vertices in local-id order (first appearance along the
        // DFS-generated component edge list), isolated vertices last.
        // Permuting the parent graph by this order lays each block's
        // vertices contiguously, which is what the cache-aware layout
        // benchmarks exploit.
        let node_order = {
            let mut rank = vec![u32::MAX; g.n()];
            let mut next = 0u32;
            for (b, bp) in blocks.iter().enumerate() {
                for &p in bp.to_parent_vertex.iter() {
                    if bct.vertex_block[p as usize] == b as u32 && rank[p as usize] == u32::MAX {
                        rank[p as usize] = next;
                        next += 1;
                    }
                }
            }
            for r in rank.iter_mut() {
                if *r == u32::MAX {
                    *r = next;
                    next += 1;
                }
            }
            NodeOrder::from_rank(rank)
        };

        if ear_obs::is_enabled() {
            ear_obs::counter_add("decomp.plans", 1);
            ear_obs::counter_add("decomp.blocks", blocks.len() as u64);
            ear_obs::counter_add("decomp.bridges", bridges.len() as u64);
            let removed: u64 = blocks
                .iter()
                .filter_map(|b| b.reduction.as_ref())
                .map(|r| r.removed_count() as u64)
                .sum();
            ear_obs::counter_add("decomp.removed_vertices", removed);
            // Bytes the viewed layout serves from shared storage instead of
            // per-block copies (zero when the plan was built Copied).
            ear_obs::counter_add("decomp.plan.view_bytes_saved", arena.used_bytes() as u64);
        }

        let dirty: Vec<u32> = (0..blocks.len() as u32).collect();
        DecompPlan {
            topo: Arc::new(PlanTopology {
                n: g.n(),
                m: g.m(),
                bct,
                edge_comp,
                bridges,
                home_local,
                layout,
                spans,
                node_order,
            }),
            custom: CustomizedPlan {
                blocks,
                arena,
                edge_weights: g.edges().iter().map(|e| e.w).collect(),
                dirty,
                generation: 0,
            },
        }
    }

    /// Recomputes only the **weight layer** for `new_weights` (indexed by
    /// parent edge id): the shared arena's weight arrays, and — for each
    /// *dirty* block, rayon-parallel — the block subgraph's weights and its
    /// chain reduction's weight layer, reusing the recorded chains instead
    /// of re-walking degree-2 paths. No BCC split, block-cut tree, chain
    /// walk or extraction is repeated, and clean blocks' state is shared
    /// with `self` (the id maps and every topology array already sit
    /// behind `Arc`s).
    ///
    /// The dirty-block set is read off the edge→block table: exactly the
    /// blocks containing an edge whose weight differs from this plan's
    /// current weights.
    ///
    /// The returned customization is bit-identical to the one a cold
    /// [`DecompPlan::build_with_layout`] of the reweighted graph produces.
    /// Pair it with the shared topology via [`DecompPlan::recustomized`].
    ///
    /// # Panics
    /// Panics if `new_weights.len() != self.m()`.
    pub fn recustomize(&self, new_weights: &[Weight]) -> CustomizedPlan {
        assert_eq!(
            new_weights.len(),
            self.m(),
            "one weight per parent edge is required"
        );
        let _span = ear_obs::span_with("decomp.recustomize", self.m() as u64);

        // Dirty-block set: one pass over the weight diff through the
        // edge→block table.
        let (dirty_flag, dirty, changed_edges) = {
            let _s = ear_obs::span("decomp.recustomize.dirty");
            let mut flag = vec![false; self.n_blocks()];
            let mut changed = 0u64;
            for (e, (&old, &new)) in self.custom.edge_weights.iter().zip(new_weights).enumerate() {
                if old != new {
                    changed += 1;
                    flag[self.topo.edge_comp[e] as usize] = true;
                }
            }
            let dirty: Vec<u32> = flag
                .iter()
                .enumerate()
                .filter_map(|(b, &d)| d.then_some(b as u32))
                .collect();
            (flag, dirty, changed)
        };

        // Viewed layout: swap the shared arena's weight layer first (the
        // block views below window it). The arena weight stream is indexed
        // by arena edge record; each span's records map to parent edges
        // through the block's edge map.
        let arena = match self.topo.layout {
            LayoutMode::Viewed => {
                let _s = ear_obs::span("decomp.recustomize.arena");
                let mut arena_w = vec![0 as Weight; self.custom.arena.edges_len()];
                for (s, bp) in self.topo.spans.iter().zip(&self.custom.blocks) {
                    for (i, &pe) in bp.to_parent_edge.iter().enumerate() {
                        arena_w[s.edge as usize + i] = new_weights[pe as usize];
                    }
                }
                self.custom.arena.reweighted(&self.topo.spans, &arena_w)
            }
            LayoutMode::Copied => CsrArena::new(),
        };

        // Per-block weight layer: dirty blocks are reweighted (subgraph
        // weights + chain-reduction resummation), clean blocks are shared.
        let blocks: Vec<BlockPlan> = {
            use rayon::prelude::*;
            let _s = ear_obs::span("decomp.recustomize.blocks");
            self.custom
                .blocks
                .par_iter()
                .zip(0usize..)
                .map(|(bp, b)| {
                    if !dirty_flag[b] {
                        return bp.clone();
                    }
                    let _b = ear_obs::span_with("decomp.recustomize.block", bp.n as u64);
                    let sub = bp.sub.as_ref().map(|s| {
                        let local_w: Vec<Weight> = bp
                            .to_parent_edge
                            .iter()
                            .map(|&pe| new_weights[pe as usize])
                            .collect();
                        s.reweighted(&local_w)
                    });
                    let view = match &sub {
                        Some(s) => s.view(),
                        None => arena.view(&self.topo.spans[b]),
                    };
                    let reduction = bp.reduction.as_ref().map(|r| r.reweighted(view));
                    BlockPlan {
                        sub,
                        n: bp.n,
                        m: bp.m,
                        to_parent_vertex: Arc::clone(&bp.to_parent_vertex),
                        to_parent_edge: Arc::clone(&bp.to_parent_edge),
                        simple: bp.simple,
                        reduction,
                        shared: Arc::clone(&bp.shared),
                    }
                })
                .collect()
        };

        if ear_obs::is_enabled() {
            ear_obs::counter_add("decomp.recustomizes", 1);
            ear_obs::counter_add("decomp.recustomize.changed_edges", changed_edges);
            ear_obs::counter_add("decomp.recustomize.dirty_blocks", dirty.len() as u64);
        }

        CustomizedPlan {
            blocks,
            arena,
            edge_weights: new_weights.to_vec(),
            dirty,
            generation: self.custom.generation + 1,
        }
    }

    /// [`DecompPlan::recustomize`] packaged with the shared topology: a
    /// full plan for the new weights whose topology layer is the same
    /// [`Arc`] as `self`'s ([`DecompPlan::shares_topology`] holds).
    pub fn recustomized(&self, new_weights: &[Weight]) -> DecompPlan {
        DecompPlan {
            topo: Arc::clone(&self.topo),
            custom: self.recustomize(new_weights),
        }
    }

    /// The shared weight-independent layer.
    pub fn topology(&self) -> &Arc<PlanTopology> {
        &self.topo
    }

    /// The weight-dependent layer (current customization).
    pub fn custom(&self) -> &CustomizedPlan {
        &self.custom
    }

    /// True when `other` shares this plan's topology layer (one is a
    /// `recustomized` descendant of the other). O(1).
    pub fn shares_topology(&self, other: &DecompPlan) -> bool {
        Arc::ptr_eq(&self.topo, &other.topo)
    }

    /// Blocks whose weight layer the current customization (re)computed:
    /// all blocks for a cold build, exactly the blocks containing a changed
    /// edge after [`DecompPlan::recustomized`]. Sorted ascending.
    pub fn dirty_blocks(&self) -> &[u32] {
        self.custom.dirty_blocks()
    }

    /// Customization generation: 0 for a cold build, +1 per recustomize.
    pub fn generation(&self) -> u64 {
        self.custom.generation()
    }

    /// The full-graph weight vector the current customization was built
    /// for, indexed by parent edge id.
    pub fn edge_weights(&self) -> &[Weight] {
        self.custom.edge_weights()
    }

    /// The block-storage layout this plan was built with.
    pub fn layout(&self) -> LayoutMode {
        self.topo.layout
    }

    /// Block `b`'s subgraph as a zero-copy [`CsrView`] — the
    /// layout-independent access path every solver should use. Copied
    /// plans view the block's owned graph; viewed plans window the shared
    /// arena. Both are bit-identical (same local ids, edge order and
    /// adjacency order).
    pub fn block_graph(&self, b: u32) -> CsrView<'_> {
        match &self.custom.blocks[b as usize].sub {
            Some(sub) => sub.view(),
            None => self.custom.arena.view(&self.topo.spans[b as usize]),
        }
    }

    /// The BCC-clustered locality order computed by the build (blocks in id
    /// order, home vertices in local discovery order, isolated vertices
    /// last). `CsrGraph::permute` with this order lays each block's
    /// vertices contiguously in memory.
    pub fn node_order(&self) -> &NodeOrder {
        &self.topo.node_order
    }

    /// Bytes of shared arena storage backing a viewed plan's blocks (zero
    /// for copied plans) — the allocation the viewed layout avoids.
    pub fn arena_bytes(&self) -> usize {
        self.custom.arena.used_bytes()
    }

    /// The arena spans backing a viewed plan's blocks, one per block in
    /// block-id order (empty for copied plans). Exposed so invariant
    /// checkers can verify the spans tile the arena exactly.
    pub fn spans(&self) -> &[CsrSpan] {
        &self.topo.spans
    }

    /// The shared storage arena behind a viewed plan (empty for copied
    /// plans).
    pub fn arena(&self) -> &CsrArena {
        &self.custom.arena
    }

    /// Vertices of the decomposed graph.
    pub fn n(&self) -> usize {
        self.topo.n
    }

    /// Edges of the decomposed graph.
    pub fn m(&self) -> usize {
        self.topo.m
    }

    /// Number of biconnected components.
    pub fn n_blocks(&self) -> usize {
        self.custom.blocks.len()
    }

    /// All blocks, indexed by block id.
    pub fn blocks(&self) -> &[BlockPlan] {
        &self.custom.blocks
    }

    /// One block.
    pub fn block(&self, b: u32) -> &BlockPlan {
        &self.custom.blocks[b as usize]
    }

    /// The block-cut tree (articulation points, routing, home blocks).
    pub fn bct(&self) -> &BlockCutTree {
        &self.topo.bct
    }

    /// Block id of every edge.
    pub fn edge_comp(&self) -> &[u32] {
        &self.topo.edge_comp
    }

    /// Bridge edges.
    pub fn bridges(&self) -> &[EdgeId] {
        &self.topo.bridges
    }

    /// Whether block `b`'s subgraph is simple — the single guard behind
    /// every "can this block be ear-reduced?" decision.
    pub fn is_simple(&self, b: u32) -> bool {
        self.custom.blocks[b as usize].simple
    }

    /// Block `b`'s chain reduction, `Some` exactly when the block is simple.
    pub fn reduction(&self, b: u32) -> Option<&ReducedGraph> {
        self.custom.blocks[b as usize].reduction.as_ref()
    }

    /// Local id of parent vertex `v` inside block `b`, `None` when `v` is
    /// not a member of that block.
    pub fn local(&self, b: u32, v: VertexId) -> Option<VertexId> {
        if self.topo.bct.vertex_block[v as usize] == b {
            return Some(self.topo.home_local[v as usize]);
        }
        let shared = &self.custom.blocks[b as usize].shared;
        shared
            .binary_search_by_key(&v, |&(p, _)| p)
            .ok()
            .map(|i| shared[i].1)
    }

    /// Total vertices removed by chain reduction across all (simple) blocks.
    pub fn removed_vertices(&self) -> usize {
        self.custom
            .blocks
            .iter()
            .filter_map(|bp| bp.reduction.as_ref())
            .map(|r| r.removed_count())
            .sum()
    }

    /// Edge count of the largest block.
    pub fn largest_block_edges(&self) -> usize {
        self.custom
            .blocks
            .iter()
            .map(|bp| bp.m())
            .max()
            .unwrap_or(0)
    }

    /// Block ids ordered biggest-first by edge count (ties by ascending
    /// block id) — the paper's workunit order, shared by the MCB pipeline
    /// and the CLI.
    pub fn blocks_by_size_desc(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.custom.blocks.len()).collect();
        order.sort_by_key(|&b| std::cmp::Reverse(self.custom.blocks[b].m()));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// triangle(0,1,2) — AP 2 — square(2,3,4,5 with chord-free chain) —
    /// bridge 5-6.
    fn mixed() -> CsrGraph {
        CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 0, 3),
                (2, 3, 4),
                (3, 4, 1),
                (4, 5, 2),
                (5, 2, 3),
                (5, 6, 9),
            ],
        )
    }

    #[test]
    fn blocks_partition_edges() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        let mut seen = vec![0u32; g.m()];
        for (b, bp) in plan.blocks().iter().enumerate() {
            for &e in bp.to_parent_edge.iter() {
                seen[e as usize] += 1;
                assert_eq!(plan.edge_comp()[e as usize], b as u32);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn local_parent_roundtrip_covers_every_member() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        for (b, bp) in plan.blocks().iter().enumerate() {
            for l in 0..bp.n() as u32 {
                let p = bp.parent(l);
                assert_eq!(plan.local(b as u32, p), Some(l), "block {b} vertex {p}");
            }
        }
    }

    #[test]
    fn non_members_resolve_to_none() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        for b in 0..plan.n_blocks() as u32 {
            let bp = plan.block(b);
            for v in 0..g.n() as u32 {
                let member = bp.to_parent_vertex.contains(&v);
                assert_eq!(plan.local(b, v).is_some(), member, "block {b} vertex {v}");
            }
        }
    }

    #[test]
    fn reductions_present_exactly_for_simple_blocks() {
        // Multigraph: parallel pair plus a triangle.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (0, 1, 2), (1, 2, 1), (2, 3, 1), (3, 1, 1)]);
        let plan = DecompPlan::build(&g);
        for b in 0..plan.n_blocks() as u32 {
            assert_eq!(plan.is_simple(b), plan.block_graph(b).is_simple());
            assert_eq!(plan.reduction(b).is_some(), plan.is_simple(b));
        }
        assert!((0..plan.n_blocks() as u32).any(|b| !plan.is_simple(b)));
    }

    #[test]
    fn reduction_matches_direct_reduce_graph() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        for b in 0..plan.n_blocks() as u32 {
            let direct = reduce_graph(plan.block_graph(b)).unwrap();
            let r = plan.block(b).reduction.as_ref().unwrap();
            assert_eq!(r.retained, direct.retained);
            assert_eq!(r.reduced.edges(), direct.reduced.edges());
            assert_eq!(r.chains.len(), direct.chains.len());
        }
    }

    #[test]
    fn viewed_plan_matches_copied_plan() {
        for g in [
            mixed(),
            CsrGraph::from_edges(4, &[(0, 1, 1), (0, 1, 2), (1, 2, 1), (2, 3, 1), (3, 1, 1)]),
            CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 1)]),
            CsrGraph::from_edges(0, &[]),
        ] {
            let c = DecompPlan::build_with_layout(&g, LayoutMode::Copied);
            let v = DecompPlan::build_with_layout(&g, LayoutMode::Viewed);
            assert_eq!(c.n_blocks(), v.n_blocks());
            assert_eq!(c.node_order().ranks(), v.node_order().ranks());
            assert_eq!(c.arena_bytes(), 0);
            for b in 0..c.n_blocks() as u32 {
                let (cb, vb) = (c.block(b), v.block(b));
                assert!(cb.sub.is_some() && vb.sub.is_none());
                assert_eq!((cb.n(), cb.m()), (vb.n(), vb.m()));
                assert_eq!(cb.to_parent_vertex, vb.to_parent_vertex);
                assert_eq!(cb.to_parent_edge, vb.to_parent_edge);
                assert_eq!(cb.simple, vb.simple);
                let (cg, vg) = (c.block_graph(b), v.block_graph(b));
                assert_eq!(cg.edges(), vg.edges());
                for u in 0..cg.n() as u32 {
                    assert_eq!(cg.neighbors(u), vg.neighbors(u));
                    assert_eq!(cg.incidences(u).1, vg.incidences(u).1);
                }
                match (&cb.reduction, &vb.reduction) {
                    (None, None) => {}
                    (Some(rc), Some(rv)) => {
                        assert_eq!(rc.retained, rv.retained);
                        assert_eq!(rc.reduced.edges(), rv.reduced.edges());
                    }
                    _ => panic!("reduction presence differs on block {b}"),
                }
            }
        }
    }

    #[test]
    fn node_order_clusters_blocks_contiguously() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        let order = plan.node_order();
        // Bijection is enforced by NodeOrder's constructor; check that the
        // home vertices of each block occupy a contiguous rank range, in
        // block order.
        let mut next = 0u32;
        for (b, bp) in plan.blocks().iter().enumerate() {
            let mut home: Vec<u32> = bp
                .to_parent_vertex
                .iter()
                .filter(|&&p| plan.bct().vertex_block[p as usize] == b as u32)
                .map(|&p| order.rank(p))
                .collect();
            home.sort_unstable();
            let want: Vec<u32> = (next..next + home.len() as u32).collect();
            assert_eq!(home, want, "block {b} ranks not contiguous");
            next += home.len() as u32;
        }
        assert_eq!(next as usize, g.n(), "mixed() has no isolated vertices");
    }

    #[test]
    fn size_order_is_stable_biggest_first() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        let order = plan.blocks_by_size_desc();
        for w in order.windows(2) {
            let (a, b) = (plan.block(w[0] as u32).m(), plan.block(w[1] as u32).m());
            assert!(a > b || (a == b && w[0] < w[1]));
        }
    }

    #[test]
    fn self_loop_copy_is_reachable_in_both_blocks() {
        // Vertex 0 carries a self-loop and a bridge: two blocks, no APs.
        let g = CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 1)]);
        let plan = DecompPlan::build(&g);
        assert_eq!(plan.n_blocks(), 2);
        assert_eq!(plan.bct().ap_count(), 0);
        for b in 0..2u32 {
            assert!(
                plan.local(b, 0).is_some(),
                "vertex 0 missing from block {b}"
            );
        }
    }

    #[test]
    fn empty_graph_builds() {
        let plan = DecompPlan::build(&CsrGraph::from_edges(0, &[]));
        assert_eq!(plan.n_blocks(), 0);
        assert_eq!(plan.removed_vertices(), 0);
        assert_eq!(plan.largest_block_edges(), 0);
    }

    fn assert_same_customization(a: &DecompPlan, b: &DecompPlan) {
        assert_eq!(a.n_blocks(), b.n_blocks());
        assert_eq!(a.edge_weights(), b.edge_weights());
        for blk in 0..a.n_blocks() as u32 {
            let (ga, gb) = (a.block_graph(blk), b.block_graph(blk));
            assert_eq!(ga.edges(), gb.edges(), "block {blk} edges");
            for u in 0..ga.n() as u32 {
                assert_eq!(ga.incidences(u), gb.incidences(u), "block {blk} vertex {u}");
            }
            match (a.reduction(blk), b.reduction(blk)) {
                (None, None) => {}
                (Some(ra), Some(rb)) => {
                    assert_eq!(ra.reduced.edges(), rb.reduced.edges(), "block {blk}");
                    for x in 0..ga.n() as u32 {
                        let (ia, ib) = (ra.removed_info(x), rb.removed_info(x));
                        assert_eq!(ia.is_some(), ib.is_some());
                        if let (Some(ia), Some(ib)) = (ia, ib) {
                            assert_eq!((ia.w_left, ia.w_right), (ib.w_left, ib.w_right));
                        }
                    }
                }
                _ => panic!("reduction presence differs on block {blk}"),
            }
        }
    }

    #[test]
    fn recustomized_matches_cold_build_in_both_layouts() {
        let g = mixed();
        let mut w: Vec<Weight> = g.edges().iter().map(|e| e.w).collect();
        w[1] = 20; // triangle block
        w[7] = 90; // bridge block
        for layout in [LayoutMode::Copied, LayoutMode::Viewed] {
            let plan = DecompPlan::build_with_layout(&g, layout);
            let warm = plan.recustomized(&w);
            let cold = DecompPlan::build_with_layout(&g.reweighted(&w), layout);
            assert_same_customization(&warm, &cold);
            assert!(plan.shares_topology(&warm));
            assert!(!plan.shares_topology(&cold));
            assert_eq!(warm.generation(), 1);
            // Dirty set: exactly the blocks holding edges 1 and 7.
            let want: Vec<u32> = {
                let mut v = vec![plan.edge_comp()[1], plan.edge_comp()[7]];
                v.sort_unstable();
                v.dedup();
                v
            };
            assert_eq!(warm.dirty_blocks(), &want[..]);
        }
    }

    #[test]
    fn recustomize_noop_marks_nothing_dirty() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        let w: Vec<Weight> = g.edges().iter().map(|e| e.w).collect();
        let warm = plan.recustomized(&w);
        assert!(warm.dirty_blocks().is_empty());
        assert_same_customization(&warm, &plan);
    }

    #[test]
    fn cold_build_marks_every_block_dirty() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        let all: Vec<u32> = (0..plan.n_blocks() as u32).collect();
        assert_eq!(plan.dirty_blocks(), &all[..]);
        assert_eq!(plan.generation(), 0);
    }

    #[test]
    fn recustomize_shares_block_topology_arcs() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        let mut w: Vec<Weight> = g.edges().iter().map(|e| e.w).collect();
        for x in w.iter_mut() {
            *x += 1;
        }
        let warm = plan.recustomized(&w);
        for (a, b) in plan.blocks().iter().zip(warm.blocks()) {
            assert!(Arc::ptr_eq(&a.to_parent_vertex, &b.to_parent_vertex));
            assert!(Arc::ptr_eq(&a.to_parent_edge, &b.to_parent_edge));
            match (&a.reduction, &b.reduction) {
                (Some(ra), Some(rb)) => assert!(ra.shares_topology(rb)),
                (None, None) => {}
                _ => panic!("reduction presence changed"),
            }
            if let (Some(sa), Some(sb)) = (&a.sub, &b.sub) {
                assert!(sa.shares_topology(sb));
            }
        }
    }
}
