//! The shared decomposition plan: every pipeline's front half, built once.
//!
//! The paper's design is "decompose once, then solve many small problems":
//! biconnected split → block-cut tree → per-block ear reduction feeds both
//! the APSP oracle (§2) and the MCB pipeline (§3). A [`DecompPlan`] owns
//! that whole front half as one reusable artifact:
//!
//! * the [`BlockCutTree`] (which also fixes articulation points and
//!   per-vertex home blocks);
//! * one [`BlockPlan`] per biconnected component, holding the extracted
//!   block subgraph, its id maps back to the parent graph, and — for
//!   simple blocks — the degree-2 chain reduction ([`ReducedGraph`] with
//!   all its `RemovedInfo` bookkeeping);
//! * the edge→block assignment and the bridge list.
//!
//! Consumers (`ear-apsp`'s `build_oracle_with_plan` and `ReducedOracle`,
//! `ear-mcb`'s `mcb_with_plan`, the CLI, `ear-workloads`' `GraphStats`)
//! take a plan instead of recomputing the split themselves; a server-style
//! caller wraps the plan in an `Arc` and amortises the decomposition across
//! APSP, MCB and statistics workloads over the same graph.
//!
//! # Id-translation conventions
//!
//! Block subgraphs use compact local vertex ids `0..block.n()`. The plan
//! settles the translation in one place:
//!
//! * [`BlockPlan::parent`] / [`BlockPlan::to_parent_vertex`] map local →
//!   parent; [`BlockPlan::to_parent_edge`] maps local edge `i` of the block
//!   subgraph to its parent edge id.
//! * [`DecompPlan::local`] maps (block, parent vertex) → local id, `None`
//!   when the vertex is not in that block. Every vertex has a *home* block
//!   (the block-cut tree's `vertex_block`); vertices appearing in several
//!   blocks (articulation points, and self-loop copies of a vertex) are
//!   resolved through a small sorted per-block side table.
//!
//! Reduction is eager and runs per block in parallel through the rayon
//! shim; blocks that are not simple (parallel edges or self-loops — only
//! possible for multigraph inputs) carry `reduction: None`, and
//! [`DecompPlan::reduction`] is the single guard every pipeline routes
//! through (see [`crate::reduce::NotSimpleError`]).
//!
//! ```
//! use ear_decomp::plan::DecompPlan;
//! use ear_graph::CsrGraph;
//! // Two triangles sharing vertex 2 (an articulation point).
//! let g = CsrGraph::from_edges(5, &[
//!     (0, 1, 1), (1, 2, 2), (2, 0, 3),
//!     (2, 3, 4), (3, 4, 5), (4, 2, 6),
//! ]);
//! let plan = DecompPlan::build(&g);
//! assert_eq!(plan.n_blocks(), 2);
//! assert_eq!(plan.bct().ap_count(), 1);
//! // Vertex 2 is in both blocks; vertex 0 only in its own.
//! assert!(plan.local(0, 2).is_some() && plan.local(1, 2).is_some());
//! assert_eq!((0..2).filter(|&b| plan.local(b, 0).is_some()).count(), 1);
//! ```

use crate::bcc::{biconnected_components, Bcc};
use crate::block_cut::BlockCutTree;
use crate::reduce::{reduce_graph, ReducedGraph};
use ear_graph::{
    edge_subgraph_into_arena, edge_subgraph_reusing, CsrArena, CsrGraph, CsrSpan, CsrView, EdgeId,
    LayoutMode, NodeOrder, SubgraphScratch, VertexId,
};

/// One biconnected component of the plan: the extracted subgraph, its id
/// maps, and (for simple blocks) its degree-2 chain reduction.
#[derive(Clone, Debug)]
pub struct BlockPlan {
    /// The block subgraph as an **owned** graph — `Some` exactly under
    /// [`LayoutMode::Copied`]. Viewed plans keep every block inside the
    /// plan's shared [`CsrArena`] instead; use [`DecompPlan::block_graph`]
    /// for layout-independent access.
    pub sub: Option<CsrGraph>,
    /// Vertex count of the block (valid in both layouts).
    n: usize,
    /// Edge count of the block (valid in both layouts).
    m: usize,
    /// `local → parent` vertex ids.
    pub to_parent_vertex: Vec<VertexId>,
    /// `local edge → parent edge` ids (the component's edge list, owned).
    pub to_parent_edge: Vec<EdgeId>,
    /// Whether `sub` is simple — the one flag all reduction guards use.
    pub simple: bool,
    /// The chain contraction of `sub`, present exactly when `simple`.
    pub reduction: Option<ReducedGraph>,
    /// Members of this block whose home block is a different one
    /// (articulation points, plus self-loop copies of a vertex), as sorted
    /// `(parent id, local id)` pairs — the side table behind
    /// [`DecompPlan::local`].
    shared: Vec<(VertexId, VertexId)>,
}

impl BlockPlan {
    /// Vertices in the block.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edges in the block.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Parent id of a local vertex.
    #[inline]
    pub fn parent(&self, local: VertexId) -> VertexId {
        self.to_parent_vertex[local as usize]
    }
}

/// The full decomposition front half of both pipelines, built once from a
/// graph (see the [module docs](self) for what it owns and the id-map
/// conventions).
#[derive(Clone, Debug)]
pub struct DecompPlan {
    n: usize,
    m: usize,
    bct: BlockCutTree,
    /// Block id of every edge.
    edge_comp: Vec<u32>,
    /// Bridge edges (single-edge non-loop blocks).
    bridges: Vec<EdgeId>,
    blocks: Vec<BlockPlan>,
    /// `vertex → local id within its home block` (`u32::MAX` for isolated
    /// vertices); the home block is `bct.vertex_block`.
    home_local: Vec<u32>,
    /// Which block-storage layout this plan was built with.
    layout: LayoutMode,
    /// Shared CSR storage for every block under [`LayoutMode::Viewed`]
    /// (empty under `Copied`).
    arena: CsrArena,
    /// One arena window per block under [`LayoutMode::Viewed`].
    spans: Vec<CsrSpan>,
    /// BCC-clustered locality order over the parent graph's vertices:
    /// blocks in id order, home vertices of each block in local-id order
    /// (DFS discovery order along the component edge list), isolated
    /// vertices last.
    node_order: NodeOrder,
}

impl DecompPlan {
    /// Builds the plan with the process-default layout
    /// ([`LayoutMode::from_env`], i.e. `EAR_CSR_VIEWS`).
    pub fn build(g: &CsrGraph) -> DecompPlan {
        Self::build_with_layout(g, LayoutMode::from_env())
    }

    /// Builds the plan: biconnected components, block-cut tree, per-block
    /// subgraph extraction (scratch-reusing, O(n + m) total), and parallel
    /// per-block chain reduction of every simple block.
    ///
    /// Under [`LayoutMode::Copied`] every block is extracted into its own
    /// [`CsrGraph`]; under [`LayoutMode::Viewed`] all blocks land in one
    /// shared [`CsrArena`] and are served as zero-copy [`CsrView`] windows
    /// — bit-identical local ids, edge order and adjacency order either
    /// way (the arena push mirrors standalone CSR construction exactly).
    pub fn build_with_layout(g: &CsrGraph, layout: LayoutMode) -> DecompPlan {
        let _span = ear_obs::span_with("decomp.plan", g.n() as u64);
        let bcc = {
            let _s = ear_obs::span("decomp.bcc");
            biconnected_components(g)
        };
        let bct = {
            let _s = ear_obs::span("decomp.bct");
            BlockCutTree::new(g, &bcc)
        };
        let Bcc {
            comps,
            edge_comp,
            bridges,
            ..
        } = bcc;

        // Extract every block with one shared scratch; the component edge
        // lists move into the blocks without copying. Copied layout builds
        // one owned CsrGraph per block; Viewed layout appends each block's
        // CSR windows to the shared arena instead (zero per-block
        // adjacency allocations).
        let extract_span = ear_obs::span_with("decomp.extract", comps.len() as u64);
        let mut scratch = SubgraphScratch::new();
        let mut arena = CsrArena::new();
        let mut spans: Vec<CsrSpan> = Vec::new();
        // (copied graph, n, m, parent vertex map, parent edge map, simple)
        // per block — the copied graph is None under the arena layout.
        type Extracted = (
            Option<CsrGraph>,
            usize,
            usize,
            Vec<VertexId>,
            Vec<EdgeId>,
            bool,
        );
        let mut extracted: Vec<Extracted> = Vec::with_capacity(comps.len());
        for comp in comps {
            match layout {
                LayoutMode::Copied => {
                    let (sub, map) = edge_subgraph_reusing(g, comp, &mut scratch);
                    let simple = sub.is_simple();
                    let (n, m) = (sub.n(), sub.m());
                    extracted.push((
                        Some(sub),
                        n,
                        m,
                        map.to_parent_vertex,
                        map.to_parent_edge,
                        simple,
                    ));
                }
                LayoutMode::Viewed => {
                    let (span, map) = edge_subgraph_into_arena(g, comp, &mut scratch, &mut arena);
                    let simple = arena.view(&span).is_simple();
                    extracted.push((
                        None,
                        span.n as usize,
                        span.m as usize,
                        map.to_parent_vertex,
                        map.to_parent_edge,
                        simple,
                    ));
                    spans.push(span);
                }
            }
        }
        drop(extract_span);

        // Chain-contract all simple blocks, in parallel across blocks. The
        // per-block sequential `reduce_graph` keeps the output bit-identical
        // to what each pipeline used to compute on its own; it consumes a
        // view, so both layouts share the exact same code path.
        let reductions: Vec<Option<ReducedGraph>> = {
            use rayon::prelude::*;
            let _s = ear_obs::span("decomp.reduce");
            extracted
                .par_iter()
                .zip(0usize..)
                .map(|((sub, n, _, _, _, simple), b)| {
                    let _b = ear_obs::span_with("decomp.reduce.block", *n as u64);
                    simple.then(|| {
                        let view = match sub {
                            Some(sub) => sub.view(),
                            None => arena.view(&spans[b]),
                        };
                        reduce_graph(view).expect("simplicity was just checked")
                    })
                })
                .collect()
        };

        let mut home_local = vec![u32::MAX; g.n()];
        let blocks: Vec<BlockPlan> = extracted
            .into_iter()
            .zip(reductions)
            .enumerate()
            .map(
                |(b, ((sub, n, m, to_parent_vertex, to_parent_edge, simple), reduction))| {
                    let mut shared = Vec::new();
                    for (l, &p) in to_parent_vertex.iter().enumerate() {
                        if bct.vertex_block[p as usize] == b as u32 {
                            home_local[p as usize] = l as u32;
                        } else {
                            shared.push((p, l as u32));
                        }
                    }
                    shared.sort_unstable();
                    BlockPlan {
                        sub,
                        n,
                        m,
                        to_parent_vertex,
                        to_parent_edge,
                        simple,
                        reduction,
                        shared,
                    }
                },
            )
            .collect();

        // BCC-clustered locality order: blocks in id order, each block's
        // home vertices in local-id order (first appearance along the
        // DFS-generated component edge list), isolated vertices last.
        // Permuting the parent graph by this order lays each block's
        // vertices contiguously, which is what the cache-aware layout
        // benchmarks exploit.
        let node_order = {
            let mut rank = vec![u32::MAX; g.n()];
            let mut next = 0u32;
            for (b, bp) in blocks.iter().enumerate() {
                for &p in &bp.to_parent_vertex {
                    if bct.vertex_block[p as usize] == b as u32 && rank[p as usize] == u32::MAX {
                        rank[p as usize] = next;
                        next += 1;
                    }
                }
            }
            for r in rank.iter_mut() {
                if *r == u32::MAX {
                    *r = next;
                    next += 1;
                }
            }
            NodeOrder::from_rank(rank)
        };

        if ear_obs::is_enabled() {
            ear_obs::counter_add("decomp.plans", 1);
            ear_obs::counter_add("decomp.blocks", blocks.len() as u64);
            ear_obs::counter_add("decomp.bridges", bridges.len() as u64);
            let removed: u64 = blocks
                .iter()
                .filter_map(|b| b.reduction.as_ref())
                .map(|r| r.removed_count() as u64)
                .sum();
            ear_obs::counter_add("decomp.removed_vertices", removed);
            // Bytes the viewed layout serves from shared storage instead of
            // per-block copies (zero when the plan was built Copied).
            ear_obs::counter_add("decomp.plan.view_bytes_saved", arena.used_bytes() as u64);
        }

        DecompPlan {
            n: g.n(),
            m: g.m(),
            bct,
            edge_comp,
            bridges,
            blocks,
            home_local,
            layout,
            arena,
            spans,
            node_order,
        }
    }

    /// The block-storage layout this plan was built with.
    pub fn layout(&self) -> LayoutMode {
        self.layout
    }

    /// Block `b`'s subgraph as a zero-copy [`CsrView`] — the
    /// layout-independent access path every solver should use. Copied
    /// plans view the block's owned graph; viewed plans window the shared
    /// arena. Both are bit-identical (same local ids, edge order and
    /// adjacency order).
    pub fn block_graph(&self, b: u32) -> CsrView<'_> {
        match &self.blocks[b as usize].sub {
            Some(sub) => sub.view(),
            None => self.arena.view(&self.spans[b as usize]),
        }
    }

    /// The BCC-clustered locality order computed by the build (blocks in id
    /// order, home vertices in local discovery order, isolated vertices
    /// last). `CsrGraph::permute` with this order lays each block's
    /// vertices contiguously in memory.
    pub fn node_order(&self) -> &NodeOrder {
        &self.node_order
    }

    /// Bytes of shared arena storage backing a viewed plan's blocks (zero
    /// for copied plans) — the allocation the viewed layout avoids.
    pub fn arena_bytes(&self) -> usize {
        self.arena.used_bytes()
    }

    /// The arena spans backing a viewed plan's blocks, one per block in
    /// block-id order (empty for copied plans). Exposed so invariant
    /// checkers can verify the spans tile the arena exactly.
    pub fn spans(&self) -> &[CsrSpan] {
        &self.spans
    }

    /// The shared storage arena behind a viewed plan (empty for copied
    /// plans).
    pub fn arena(&self) -> &CsrArena {
        &self.arena
    }

    /// Vertices of the decomposed graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edges of the decomposed graph.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of biconnected components.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// All blocks, indexed by block id.
    pub fn blocks(&self) -> &[BlockPlan] {
        &self.blocks
    }

    /// One block.
    pub fn block(&self, b: u32) -> &BlockPlan {
        &self.blocks[b as usize]
    }

    /// The block-cut tree (articulation points, routing, home blocks).
    pub fn bct(&self) -> &BlockCutTree {
        &self.bct
    }

    /// Block id of every edge.
    pub fn edge_comp(&self) -> &[u32] {
        &self.edge_comp
    }

    /// Bridge edges.
    pub fn bridges(&self) -> &[EdgeId] {
        &self.bridges
    }

    /// Whether block `b`'s subgraph is simple — the single guard behind
    /// every "can this block be ear-reduced?" decision.
    pub fn is_simple(&self, b: u32) -> bool {
        self.blocks[b as usize].simple
    }

    /// Block `b`'s chain reduction, `Some` exactly when the block is simple.
    pub fn reduction(&self, b: u32) -> Option<&ReducedGraph> {
        self.blocks[b as usize].reduction.as_ref()
    }

    /// Local id of parent vertex `v` inside block `b`, `None` when `v` is
    /// not a member of that block.
    pub fn local(&self, b: u32, v: VertexId) -> Option<VertexId> {
        if self.bct.vertex_block[v as usize] == b {
            return Some(self.home_local[v as usize]);
        }
        let shared = &self.blocks[b as usize].shared;
        shared
            .binary_search_by_key(&v, |&(p, _)| p)
            .ok()
            .map(|i| shared[i].1)
    }

    /// Total vertices removed by chain reduction across all (simple) blocks.
    pub fn removed_vertices(&self) -> usize {
        self.blocks
            .iter()
            .filter_map(|bp| bp.reduction.as_ref())
            .map(|r| r.removed_count())
            .sum()
    }

    /// Edge count of the largest block.
    pub fn largest_block_edges(&self) -> usize {
        self.blocks.iter().map(|bp| bp.m()).max().unwrap_or(0)
    }

    /// Block ids ordered biggest-first by edge count (ties by ascending
    /// block id) — the paper's workunit order, shared by the MCB pipeline
    /// and the CLI.
    pub fn blocks_by_size_desc(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.blocks.len()).collect();
        order.sort_by_key(|&b| std::cmp::Reverse(self.blocks[b].m()));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// triangle(0,1,2) — AP 2 — square(2,3,4,5 with chord-free chain) —
    /// bridge 5-6.
    fn mixed() -> CsrGraph {
        CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 0, 3),
                (2, 3, 4),
                (3, 4, 1),
                (4, 5, 2),
                (5, 2, 3),
                (5, 6, 9),
            ],
        )
    }

    #[test]
    fn blocks_partition_edges() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        let mut seen = vec![0u32; g.m()];
        for (b, bp) in plan.blocks().iter().enumerate() {
            for &e in &bp.to_parent_edge {
                seen[e as usize] += 1;
                assert_eq!(plan.edge_comp()[e as usize], b as u32);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn local_parent_roundtrip_covers_every_member() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        for (b, bp) in plan.blocks().iter().enumerate() {
            for l in 0..bp.n() as u32 {
                let p = bp.parent(l);
                assert_eq!(plan.local(b as u32, p), Some(l), "block {b} vertex {p}");
            }
        }
    }

    #[test]
    fn non_members_resolve_to_none() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        for b in 0..plan.n_blocks() as u32 {
            let bp = plan.block(b);
            for v in 0..g.n() as u32 {
                let member = bp.to_parent_vertex.contains(&v);
                assert_eq!(plan.local(b, v).is_some(), member, "block {b} vertex {v}");
            }
        }
    }

    #[test]
    fn reductions_present_exactly_for_simple_blocks() {
        // Multigraph: parallel pair plus a triangle.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (0, 1, 2), (1, 2, 1), (2, 3, 1), (3, 1, 1)]);
        let plan = DecompPlan::build(&g);
        for b in 0..plan.n_blocks() as u32 {
            assert_eq!(plan.is_simple(b), plan.block_graph(b).is_simple());
            assert_eq!(plan.reduction(b).is_some(), plan.is_simple(b));
        }
        assert!((0..plan.n_blocks() as u32).any(|b| !plan.is_simple(b)));
    }

    #[test]
    fn reduction_matches_direct_reduce_graph() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        for b in 0..plan.n_blocks() as u32 {
            let direct = reduce_graph(plan.block_graph(b)).unwrap();
            let r = plan.block(b).reduction.as_ref().unwrap();
            assert_eq!(r.retained, direct.retained);
            assert_eq!(r.reduced.edges(), direct.reduced.edges());
            assert_eq!(r.chains.len(), direct.chains.len());
        }
    }

    #[test]
    fn viewed_plan_matches_copied_plan() {
        for g in [
            mixed(),
            CsrGraph::from_edges(4, &[(0, 1, 1), (0, 1, 2), (1, 2, 1), (2, 3, 1), (3, 1, 1)]),
            CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 1)]),
            CsrGraph::from_edges(0, &[]),
        ] {
            let c = DecompPlan::build_with_layout(&g, LayoutMode::Copied);
            let v = DecompPlan::build_with_layout(&g, LayoutMode::Viewed);
            assert_eq!(c.n_blocks(), v.n_blocks());
            assert_eq!(c.node_order().ranks(), v.node_order().ranks());
            assert_eq!(c.arena_bytes(), 0);
            for b in 0..c.n_blocks() as u32 {
                let (cb, vb) = (c.block(b), v.block(b));
                assert!(cb.sub.is_some() && vb.sub.is_none());
                assert_eq!((cb.n(), cb.m()), (vb.n(), vb.m()));
                assert_eq!(cb.to_parent_vertex, vb.to_parent_vertex);
                assert_eq!(cb.to_parent_edge, vb.to_parent_edge);
                assert_eq!(cb.simple, vb.simple);
                let (cg, vg) = (c.block_graph(b), v.block_graph(b));
                assert_eq!(cg.edges(), vg.edges());
                for u in 0..cg.n() as u32 {
                    assert_eq!(cg.neighbors(u), vg.neighbors(u));
                    assert_eq!(cg.incidences(u).1, vg.incidences(u).1);
                }
                match (&cb.reduction, &vb.reduction) {
                    (None, None) => {}
                    (Some(rc), Some(rv)) => {
                        assert_eq!(rc.retained, rv.retained);
                        assert_eq!(rc.reduced.edges(), rv.reduced.edges());
                    }
                    _ => panic!("reduction presence differs on block {b}"),
                }
            }
        }
    }

    #[test]
    fn node_order_clusters_blocks_contiguously() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        let order = plan.node_order();
        // Bijection is enforced by NodeOrder's constructor; check that the
        // home vertices of each block occupy a contiguous rank range, in
        // block order.
        let mut next = 0u32;
        for (b, bp) in plan.blocks().iter().enumerate() {
            let mut home: Vec<u32> = bp
                .to_parent_vertex
                .iter()
                .filter(|&&p| plan.bct().vertex_block[p as usize] == b as u32)
                .map(|&p| order.rank(p))
                .collect();
            home.sort_unstable();
            let want: Vec<u32> = (next..next + home.len() as u32).collect();
            assert_eq!(home, want, "block {b} ranks not contiguous");
            next += home.len() as u32;
        }
        assert_eq!(next as usize, g.n(), "mixed() has no isolated vertices");
    }

    #[test]
    fn size_order_is_stable_biggest_first() {
        let g = mixed();
        let plan = DecompPlan::build(&g);
        let order = plan.blocks_by_size_desc();
        for w in order.windows(2) {
            let (a, b) = (plan.block(w[0] as u32).m(), plan.block(w[1] as u32).m());
            assert!(a > b || (a == b && w[0] < w[1]));
        }
    }

    #[test]
    fn self_loop_copy_is_reachable_in_both_blocks() {
        // Vertex 0 carries a self-loop and a bridge: two blocks, no APs.
        let g = CsrGraph::from_edges(2, &[(0, 0, 1), (0, 1, 1)]);
        let plan = DecompPlan::build(&g);
        assert_eq!(plan.n_blocks(), 2);
        assert_eq!(plan.bct().ap_count(), 0);
        for b in 0..2u32 {
            assert!(
                plan.local(b, 0).is_some(),
                "vertex 0 missing from block {b}"
            );
        }
    }

    #[test]
    fn empty_graph_builds() {
        let plan = DecompPlan::build(&CsrGraph::from_edges(0, &[]));
        assert_eq!(plan.n_blocks(), 0);
        assert_eq!(plan.removed_vertices(), 0);
        assert_eq!(plan.largest_block_edges(), 0);
    }
}
