//! # ear-testkit
//!
//! The workspace's differential-testing and invariant-checking subsystem.
//!
//! The paper's central claims are exactness claims — ear reduction
//! preserves APSP distances (§2/§3 extrapolation formulas) and preserves
//! the MCB weight and dimension (Lemma 3.1) — so the repo's value hinges
//! on machine-checked equivalence between the reduced-graph algorithms and
//! their baselines. This crate centralises everything the integration
//! tests previously hand-rolled per file:
//!
//! * [`rng`] / [`runner`] — a small deterministic property-test engine.
//!   Every generated case derives from a printable 64-bit seed; any
//!   failure panics with a one-line
//!   `EAR_TESTKIT_SEED=0x… cargo test <name>` reproduction, and setting
//!   that variable replays exactly the failing case.
//! * [`strategy`] — shared seeded graph strategies for the families that
//!   matter to the paper: arbitrary simple graphs, multigraphs,
//!   biconnected graphs, chain-heavy graphs with long degree-2 ears,
//!   cactus-like graphs, disconnected multi-BCC graphs, plus wrappers
//!   over the `ear-workloads` generators.
//! * [`invariants`] — reusable checkers returning `Result<(), String>`:
//!   metric axioms on distance matrices and oracles, ear-reduction
//!   bookkeeping, cycle-basis validity, exactly-once coverage of
//!   heterogeneous executor runs, and structural soundness of captured
//!   `ear-obs` traces (span nesting, workunit open/close pairing).
//! * [`differential`] — one registry of every APSP implementation and
//!   every MCB mode in the workspace, with a single
//!   [`differential::cross_validate`] entry point that runs all of them
//!   and reports the first divergence.

#![deny(missing_docs)]

pub mod differential;
pub mod invariants;
pub mod rng;
pub mod runner;
pub mod strategy;

pub use differential::{cross_validate, cross_validate_apsp, cross_validate_mcb, Divergence};
pub use rng::TestRng;
pub use runner::{forall, Forall};
pub use strategy::{
    biconnected_graphs, cactus_graphs, chain_heavy_graphs, dense_residual_graphs, from_fn,
    multi_bcc_graphs, multigraphs, simple_graphs, usizes, workload_graphs, zip, GraphStrategy,
    Strategy,
};
