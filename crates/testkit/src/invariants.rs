//! Reusable invariant checkers.
//!
//! Every checker returns `Result<(), String>` so it plugs directly into
//! [`crate::runner::Forall::run`] and composes with `?`. The checks encode
//! the paper's exactness claims as machine-checkable statements:
//!
//! * [`metric_axioms`] — an APSP output is an honest metric on each
//!   connected component;
//! * [`oracle_consistency`] / [`oracle_paths_realize_distances`] — the
//!   block-cut-tree distance oracle agrees with a reference matrix and its
//!   reconstructed paths actually exist with the claimed lengths;
//! * [`reduction_invariants`] — ear/chain contraction bookkeeping: edge
//!   partition, `wt(x, left) + wt(x, right)` accounting, no leftover
//!   degree-2 interior vertices, cycle-space dimension preservation
//!   (Lemma 3.1's `dim MCB(G) = dim MCB(G^r)`), and distance preservation
//!   between retained vertices;
//! * [`plan_invariants`] — a [`DecompPlan`] partitions the edge set into
//!   blocks, its id maps agree with the block-cut tree, and its stored
//!   per-block reductions are identical to fresh [`reduce_graph`] runs;
//! * [`customization_invariants`] — [`DecompPlan::recustomized`] shares
//!   the topology layer, marks dirty exactly the blocks containing a
//!   changed edge, and is bit-identical to a cold build on the reweighted
//!   graph;
//! * [`basis_valid`] — a claimed cycle basis is independent, spanning and
//!   made of genuine cycle vectors;
//! * [`exactly_once`] — a heterogeneous execution processed every
//!   workunit exactly once across all devices;
//! * [`multi_source_invariants`] — a lane-batched multi-source SSSP run
//!   is an honest bundle of independent Dijkstras: per-lane distance
//!   axioms, bit-identity of every lane against the scalar engine, and
//!   exactly-once settled-mask accounting;
//! * [`trace_invariants`] — a captured `ear-obs` trace is well-formed:
//!   spans nest properly per thread with non-regressing timestamps, every
//!   `hetero.unit` span opened is closed exactly once (the tracing-level
//!   counterpart of [`exactly_once`]), and modelled device slices have
//!   non-negative extent.

use ear_apsp::matrix::DistMatrix;
use ear_apsp::oracle::DistanceOracle;
use ear_decomp::plan::DecompPlan;
use ear_decomp::reduce::{reduce_graph, ReducedGraph};
use ear_graph::{
    connected_components, dijkstra, edge_subgraph, CsrGraph, LayoutMode, VertexId, Weight, INF,
};
use ear_hetero::executor::ExecutionReport;
use ear_mcb::cycle_space::{Cycle, CycleSpace};

/// Checks that `d` is a metric consistent with `g`: square, zero on the
/// diagonal, symmetric, finite exactly on intra-component pairs, never
/// longer than any single edge, and satisfying the triangle inequality.
pub fn metric_axioms(g: &CsrGraph, d: &DistMatrix) -> Result<(), String> {
    let n = g.n();
    if d.n() != n {
        return Err(format!(
            "matrix is {}×{}, graph has {n} vertices",
            d.n(),
            d.n()
        ));
    }
    let comps = connected_components(g);
    for i in 0..n as u32 {
        if d.get(i, i) != 0 {
            return Err(format!("d({i},{i}) = {} ≠ 0", d.get(i, i)));
        }
        for j in 0..n as u32 {
            let dij = d.get(i, j);
            if dij != d.get(j, i) {
                return Err(format!(
                    "asymmetry: d({i},{j})={dij}, d({j},{i})={}",
                    d.get(j, i)
                ));
            }
            let same_comp = comps.comp[i as usize] == comps.comp[j as usize];
            if same_comp && dij >= INF {
                return Err(format!("d({i},{j}) infinite within one component"));
            }
            if !same_comp && dij < INF {
                return Err(format!("d({i},{j})={dij} finite across components"));
            }
        }
    }
    for e in g.edges() {
        if !e.is_self_loop() && d.get(e.u, e.v) > e.w {
            return Err(format!(
                "d({},{}) = {} exceeds direct edge of weight {}",
                e.u,
                e.v,
                d.get(e.u, e.v),
                e.w
            ));
        }
    }
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            let dij = d.get(i, j);
            if dij >= INF {
                continue;
            }
            for k in 0..n as u32 {
                let dik = d.get(i, k);
                let kj = d.get(k, j);
                if dik < INF && kj < INF && dik.saturating_add(kj) < dij {
                    return Err(format!(
                        "triangle violation: d({i},{j})={dij} > d({i},{k})+d({k},{j})={}",
                        dik + kj
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Checks the oracle's point queries against a reference matrix on every
/// pair.
pub fn oracle_consistency(oracle: &DistanceOracle, reference: &DistMatrix) -> Result<(), String> {
    let n = reference.n();
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            let got = oracle.dist(u, v);
            let want = reference.get(u, v);
            if got != want {
                return Err(format!(
                    "oracle.dist({u},{v}) = {got}, reference says {want}"
                ));
            }
        }
    }
    Ok(())
}

/// Minimum edge weight between two adjacent vertices (multigraph-aware).
fn min_edge_weight(g: &CsrGraph, u: VertexId, v: VertexId) -> Option<Weight> {
    g.neighbors(u)
        .iter()
        .filter(|&&(w, _)| w == v)
        .map(|&(_, e)| g.weight(e))
        .min()
}

/// Checks that every path the oracle reconstructs is a real walk in `g`
/// whose (minimum-parallel-edge) length equals the claimed distance, and
/// that unreachable pairs return no path.
pub fn oracle_paths_realize_distances(
    g: &CsrGraph,
    oracle: &DistanceOracle,
    reference: &DistMatrix,
) -> Result<(), String> {
    for u in 0..g.n() as u32 {
        for v in 0..g.n() as u32 {
            let d = reference.get(u, v);
            let path = oracle.path(g, u, v);
            if d >= INF {
                if path.is_some() {
                    return Err(format!("path({u},{v}) exists but pair is unreachable"));
                }
                continue;
            }
            let path = path.ok_or_else(|| format!("no path({u},{v}) though d = {d}"))?;
            if path.first() != Some(&u) || path.last() != Some(&v) {
                return Err(format!(
                    "path({u},{v}) has endpoints {:?}..{:?}",
                    path.first(),
                    path.last()
                ));
            }
            let mut total: Weight = 0;
            for pair in path.windows(2) {
                let w = min_edge_weight(g, pair[0], pair[1]).ok_or_else(|| {
                    format!("path({u},{v}) uses non-edge {}–{}", pair[0], pair[1])
                })?;
                total += w;
            }
            // Any real walk is ≥ d; equality certifies shortestness.
            if total != d {
                return Err(format!("path({u},{v}) has length {total}, distance is {d}"));
            }
        }
    }
    Ok(())
}

/// Checks the ear/chain-contraction bookkeeping of [`reduce_graph`] on a
/// simple graph `g` (§2 of the paper, plus Lemma 3.1's dimension claim).
pub fn reduction_invariants(g: &CsrGraph) -> Result<(), String> {
    if !g.is_simple() {
        return Err("reduction_invariants needs a simple graph".into());
    }
    let r: ReducedGraph =
        reduce_graph(g.view()).map_err(|e| format!("reduce_graph rejected a simple graph: {e}"))?;

    // 1. Edge partition: every original edge is owned by exactly one
    //    reduced edge's expansion.
    let mut owner = vec![0usize; g.m()];
    for re in 0..r.reduced.m() as u32 {
        for e in r.expand_edge(re) {
            owner[e as usize] += 1;
        }
    }
    if let Some(e) = owner.iter().position(|&c| c != 1) {
        return Err(format!(
            "original edge {e} covered {} times by reduced edges",
            owner[e]
        ));
    }

    // 2. Weight bookkeeping: each reduced edge weighs as much as the
    //    original edges it stands for, so totals match.
    if r.reduced.total_weight() != g.total_weight() {
        return Err(format!(
            "total weight changed: {} → {}",
            g.total_weight(),
            r.reduced.total_weight()
        ));
    }
    for (ci, chain) in r.chains.iter().enumerate() {
        let sum: Weight = chain.edges.iter().map(|&e| g.weight(e)).sum();
        if sum != r.chain_weight(ci as u32) {
            return Err(format!(
                "chain {ci}: edges sum to {sum}, recorded {}",
                r.chain_weight(ci as u32)
            ));
        }
    }

    // 3. Removed-vertex prefix weights: wt(x,left) + wt(x,right) equals
    //    the chain weight, both strictly positive (§2's d(x,v) formula
    //    depends on this).
    for x in 0..g.n() as u32 {
        let Some(info) = r.removed_info(x) else {
            continue;
        };
        if info.w_left == 0 || info.w_right == 0 {
            return Err(format!("removed vertex {x}: zero-length half-chain"));
        }
        if info.w_left + info.w_right != r.chain_weight(info.chain) {
            return Err(format!(
                "removed vertex {x}: {} + {} ≠ chain weight {}",
                info.w_left,
                info.w_right,
                r.chain_weight(info.chain)
            ));
        }
    }

    // 4. Exactly the degree-2 interior vertices are gone: no retained
    //    vertex keeps plain degree 2 unless it anchors a pure cycle
    //    (self-loop in the reduced graph).
    for (local, &orig) in r.retained.iter().enumerate() {
        let local = local as u32;
        if g.degree(orig) == 2 {
            let has_loop = r
                .reduced
                .neighbors(local)
                .iter()
                .any(|&(nb, _)| nb == local);
            if !has_loop {
                return Err(format!(
                    "degree-2 vertex {orig} survived without anchoring a cycle"
                ));
            }
        }
    }

    // 5. Lemma 3.1: dim MCB(G) = dim MCB(G^r). Contraction removes equal
    //    numbers of vertices and edges per chain and keeps components, so
    //    m − n + k is invariant.
    let dim_g = CycleSpace::new(g).dim();
    let dim_r = CycleSpace::new(&r.reduced).dim();
    if dim_g != dim_r {
        return Err(format!("cycle-space dimension changed: {dim_g} → {dim_r}"));
    }

    // 6. Distances between retained vertices are preserved (the §3
    //    extrapolation formulas assume d_G = d_{G^r} on anchors).
    for (local, &orig) in r.retained.iter().enumerate().take(4) {
        let dg = dijkstra(g, orig);
        let dr = dijkstra(&r.reduced, local as u32);
        for (l2, &o2) in r.retained.iter().enumerate() {
            if dg[o2 as usize] != dr[l2] {
                return Err(format!(
                    "d({orig},{o2}) = {} in G but {} in G^r",
                    dg[o2 as usize], dr[l2]
                ));
            }
        }
    }
    Ok(())
}

/// Checks a [`DecompPlan`] built from `g` against the structures it claims
/// to own: the blocks partition the edge set, every block member (including
/// articulation-point copies and self-loop singletons) round-trips through
/// the local/parent id maps consistently with the block-cut tree, the
/// simplicity flags are honest, and each stored reduction is identical to a
/// fresh [`reduce_graph`] run on an independently extracted subgraph.
pub fn plan_invariants(g: &CsrGraph, plan: &DecompPlan) -> Result<(), String> {
    if plan.n() != g.n() || plan.m() != g.m() {
        return Err(format!(
            "plan says n={} m={}, graph has n={} m={}",
            plan.n(),
            plan.m(),
            g.n(),
            g.m()
        ));
    }

    // 1. Edge partition: every original edge appears in exactly one block,
    //    and in the block `edge_comp` assigns it to.
    let mut owner = vec![0usize; g.m()];
    for (b, bp) in plan.blocks().iter().enumerate() {
        for &pe in bp.to_parent_edge.iter() {
            owner[pe as usize] += 1;
            if plan.edge_comp()[pe as usize] != b as u32 {
                return Err(format!(
                    "edge {pe} sits in block {b} but edge_comp says {}",
                    plan.edge_comp()[pe as usize]
                ));
            }
        }
    }
    if let Some(e) = owner.iter().position(|&c| c != 1) {
        return Err(format!("edge {e} appears in {} blocks, not 1", owner[e]));
    }

    // 2. Id maps vs the block-cut tree: every member round-trips, every
    //    articulation point of a block resolves in it, and non-members
    //    resolve to None.
    let bct = plan.bct();
    for (b, bp) in plan.blocks().iter().enumerate() {
        let b = b as u32;
        let mut member = vec![false; g.n()];
        for local in 0..bp.n() as u32 {
            let p = bp.parent(local);
            member[p as usize] = true;
            match plan.local(b, p) {
                Some(l) if l == local => {}
                got => {
                    return Err(format!(
                        "block {b}: parent({local}) = {p} but local({p}) = {got:?}"
                    ));
                }
            }
        }
        for &ap in &bct.block_aps[b as usize] {
            if plan.local(b, ap).is_none() {
                return Err(format!(
                    "articulation point {ap} listed for block {b} but has no local copy"
                ));
            }
        }
        for v in 0..g.n() as u32 {
            if !member[v as usize] && plan.local(b, v).is_some() {
                return Err(format!("non-member {v} resolves in block {b}"));
            }
        }
    }

    // 3. Simplicity flags and reduction presence are honest (checked
    //    through the layout-independent view accessor, so viewed plans are
    //    held to the same standard as copied ones).
    for (b, bp) in plan.blocks().iter().enumerate() {
        let bg = plan.block_graph(b as u32);
        if bp.simple != bg.is_simple() {
            return Err(format!(
                "block {b}: simple flag {} but is_simple() = {}",
                bp.simple,
                bg.is_simple()
            ));
        }
        if bp.simple != bp.reduction.is_some() {
            return Err(format!(
                "block {b}: simple = {} but reduction present = {}",
                bp.simple,
                bp.reduction.is_some()
            ));
        }
    }

    // 4. Stored reductions match a fresh extraction + reduction, edge for
    //    edge (the differential guarantee the shared-plan pipelines rely
    //    on).
    for (b, bp) in plan.blocks().iter().enumerate() {
        let (sub, _) = edge_subgraph(g, &bp.to_parent_edge);
        let sub_edges: Vec<_> = sub.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
        let bg = plan.block_graph(b as u32);
        let bp_edges: Vec<_> = bg.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
        if sub_edges != bp_edges {
            return Err(format!(
                "block {b}: stored subgraph differs from extraction"
            ));
        }
        let Some(r) = &bp.reduction else { continue };
        let fresh = reduce_graph(sub.view())
            .map_err(|e| format!("block {b}: fresh reduce_graph failed: {e}"))?;
        if r.retained != fresh.retained
            || r.to_reduced != fresh.to_reduced
            || r.chains.len() != fresh.chains.len()
            || r.reduced.n() != fresh.reduced.n()
            || r.reduced.m() != fresh.reduced.m()
        {
            return Err(format!(
                "block {b}: stored reduction differs from fresh run"
            ));
        }
        let re: Vec<_> = r.reduced.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
        let fe: Vec<_> = fresh
            .reduced
            .edges()
            .iter()
            .map(|e| (e.u, e.v, e.w))
            .collect();
        if re != fe {
            return Err(format!(
                "block {b}: stored reduced graph differs from fresh run"
            ));
        }
    }
    Ok(())
}

/// Checks the cache-aware layout artifacts of a [`DecompPlan`] built from
/// `g`: the locality [`NodeOrder`](ear_graph::NodeOrder) is a bijection
/// that clusters each block's home vertices into a contiguous rank range
/// (blocks in id order, isolated vertices last), and the block storage is
/// honest for the plan's [`LayoutMode`] — copied plans own one standalone
/// graph per block and no arena, viewed plans own no per-block graphs and
/// their spans tile the shared arena exactly once with no gaps or
/// overlaps.
pub fn layout_invariants(g: &CsrGraph, plan: &DecompPlan) -> Result<(), String> {
    // 1. The order is a bijection on the vertex set: rank and node arrays
    //    are mutually inverse over 0..n.
    let order = plan.node_order();
    if order.n() != g.n() {
        return Err(format!(
            "node order covers {} vertices, graph has {}",
            order.n(),
            g.n()
        ));
    }
    for v in 0..g.n() as u32 {
        let r = order.rank(v);
        if r as usize >= g.n() || order.node(r) != v {
            return Err(format!(
                "order not a bijection: rank({v}) = {r}, node({r}) = {}",
                order.node(r)
            ));
        }
    }

    // 2. BCC clustering: block b's home vertices (first block claiming
    //    them, in local-id order) occupy the next contiguous rank range;
    //    isolated vertices close out the order.
    let bct = plan.bct();
    let mut next = 0u32;
    let mut seen = vec![false; g.n()];
    for (b, bp) in plan.blocks().iter().enumerate() {
        for &p in bp.to_parent_vertex.iter() {
            if bct.vertex_block[p as usize] == b as u32 && !seen[p as usize] {
                seen[p as usize] = true;
                if order.rank(p) != next {
                    return Err(format!(
                        "block {b}: home vertex {p} has rank {} but the clustered order wants {next}",
                        order.rank(p)
                    ));
                }
                next += 1;
            }
        }
    }
    for v in 0..g.n() as u32 {
        if !seen[v as usize] && order.rank(v) < next {
            return Err(format!(
                "isolated vertex {v} ranked {} inside the block ranges (< {next})",
                order.rank(v)
            ));
        }
    }

    // 3. Storage honesty per layout mode.
    match plan.layout() {
        LayoutMode::Copied => {
            for (b, bp) in plan.blocks().iter().enumerate() {
                if bp.sub.is_none() {
                    return Err(format!("copied plan: block {b} has no owned subgraph"));
                }
            }
            if plan.arena_bytes() != 0 || !plan.spans().is_empty() {
                return Err(format!(
                    "copied plan carries arena storage: {} bytes, {} spans",
                    plan.arena_bytes(),
                    plan.spans().len()
                ));
            }
        }
        LayoutMode::Viewed => {
            for (b, bp) in plan.blocks().iter().enumerate() {
                if bp.sub.is_some() {
                    return Err(format!("viewed plan: block {b} owns a per-block copy"));
                }
            }
            if plan.spans().len() != plan.n_blocks() {
                return Err(format!(
                    "viewed plan has {} spans for {} blocks",
                    plan.spans().len(),
                    plan.n_blocks()
                ));
            }
            // The spans tile the arena arrays exactly once, in block order:
            // each window starts where the previous one ended, and the last
            // ends at the arena's high-water mark.
            let arena = plan.arena();
            let (mut off, mut adj, mut edge) = (0u32, 0u32, 0u32);
            for (b, s) in plan.spans().iter().enumerate() {
                let bp = plan.block(b as u32);
                if s.n as usize != bp.n() || s.m as usize != bp.m() {
                    return Err(format!(
                        "span {b} is {}x{} but the block plan says {}x{}",
                        s.n,
                        s.m,
                        bp.n(),
                        bp.m()
                    ));
                }
                if s.off != off || s.adj != adj || s.edge != edge {
                    return Err(format!(
                        "span {b} windows ({}, {}, {}) leave a gap or overlap after ({off}, {adj}, {edge})",
                        s.off, s.adj, s.edge
                    ));
                }
                off += s.n + 1;
                adj += s.adj_len;
                edge += s.m;
            }
            if off as usize != arena.offsets_len()
                || adj as usize != arena.adj_len()
                || edge as usize != arena.edges_len()
            {
                return Err(format!(
                    "spans cover ({off}, {adj}, {edge}) of the arena's ({}, {}, {})",
                    arena.offsets_len(),
                    arena.adj_len(),
                    arena.edges_len()
                ));
            }
            if plan.n_blocks() > 0 && plan.arena_bytes() == 0 {
                return Err("viewed plan with blocks reports zero arena bytes".into());
            }
        }
    }

    // 4. The layout-independent accessor serves windows whose dimensions
    //    match the block plans in both modes.
    for b in 0..plan.n_blocks() as u32 {
        let bg = plan.block_graph(b);
        let bp = plan.block(b);
        if bg.n() != bp.n() || bg.m() != bp.m() {
            return Err(format!(
                "block_graph({b}) is {}x{} but the block plan says {}x{}",
                bg.n(),
                bg.m(),
                bp.n(),
                bp.m()
            ));
        }
    }
    Ok(())
}

/// Checks the topology/customization split of [`DecompPlan::recustomized`]
/// for the weight vector `new_weights` against `plan` (built on `g`).
///
/// Verifies, in order:
///
/// * **topology sharing** — the recustomized plan shares `plan`'s
///   topology layer (`shares_topology`), every block's id maps are the
///   same allocations, and every reduction shares its recorded chains;
/// * **dirty-block exactness** — the dirty set is *exactly* the sorted
///   set of blocks containing an edge whose weight changed, and the
///   generation counter advanced by one;
/// * **cold-build bit-identity** — every block graph (edges and
///   incidence streams), every reduction (reduced edges and per-removed-
///   vertex `w_left`/`w_right`), and the stored weight vector equal those
///   of a cold `DecompPlan::build_with_layout` on the reweighted graph.
pub fn customization_invariants(
    g: &CsrGraph,
    plan: &DecompPlan,
    new_weights: &[Weight],
) -> Result<(), String> {
    use std::sync::Arc;

    if new_weights.len() != g.m() {
        return Err(format!(
            "weight vector holds {} entries for {} edges",
            new_weights.len(),
            g.m()
        ));
    }
    let warm = plan.recustomized(new_weights);

    // 1. Topology sharing.
    if !plan.shares_topology(&warm) {
        return Err("recustomized plan does not share the topology layer".into());
    }
    for (b, (old, new)) in plan.blocks().iter().zip(warm.blocks()).enumerate() {
        if !Arc::ptr_eq(&old.to_parent_vertex, &new.to_parent_vertex)
            || !Arc::ptr_eq(&old.to_parent_edge, &new.to_parent_edge)
        {
            return Err(format!("block {b}: id maps were copied, not shared"));
        }
        match (&old.reduction, &new.reduction) {
            (None, None) => {}
            (Some(ro), Some(rn)) => {
                if !ro.shares_topology(rn) {
                    return Err(format!("block {b}: reduction topology was rebuilt"));
                }
            }
            _ => return Err(format!("block {b}: reduction presence changed")),
        }
    }

    // 2. Dirty-block exactness and generation accounting.
    let mut expected: Vec<u32> = plan
        .edge_weights()
        .iter()
        .zip(new_weights)
        .enumerate()
        .filter(|(_, (o, n))| o != n)
        .map(|(e, _)| plan.edge_comp()[e])
        .collect();
    expected.sort_unstable();
    expected.dedup();
    if warm.dirty_blocks() != expected {
        return Err(format!(
            "dirty blocks {:?}, expected exactly the changed-edge blocks {:?}",
            warm.dirty_blocks(),
            expected
        ));
    }
    if warm.generation() != plan.generation() + 1 {
        return Err(format!(
            "generation went {} → {}",
            plan.generation(),
            warm.generation()
        ));
    }

    // 3. Bit-identity against a cold build of the reweighted graph.
    let cold = DecompPlan::build_with_layout(&g.reweighted(new_weights), plan.layout());
    if warm.edge_weights() != cold.edge_weights() {
        return Err("stored weight vectors differ from the cold build".into());
    }
    for b in 0..plan.n_blocks() as u32 {
        let (wg, cg) = (warm.block_graph(b), cold.block_graph(b));
        if wg.edges() != cg.edges() {
            return Err(format!(
                "block {b}: edge records differ from the cold build"
            ));
        }
        for u in 0..wg.n() as u32 {
            if wg.incidences(u) != cg.incidences(u) {
                return Err(format!(
                    "block {b} vertex {u}: incidence stream differs from the cold build"
                ));
            }
        }
        match (warm.reduction(b), cold.reduction(b)) {
            (None, None) => {}
            (Some(rw), Some(rc)) => {
                if rw.reduced.edges() != rc.reduced.edges() {
                    return Err(format!(
                        "block {b}: reduced edges differ from the cold build"
                    ));
                }
                for x in 0..wg.n() as u32 {
                    let (iw, ic) = (rw.removed_info(x), rc.removed_info(x));
                    let same = match (iw, ic) {
                        (None, None) => true,
                        (Some(a), Some(b)) => {
                            (a.chain, a.pos, a.left, a.right, a.w_left, a.w_right)
                                == (b.chain, b.pos, b.left, b.right, b.w_left, b.w_right)
                        }
                        _ => false,
                    };
                    if !same {
                        return Err(format!(
                            "block {b} vertex {x}: removed-vertex info differs from the cold build"
                        ));
                    }
                }
            }
            _ => {
                return Err(format!(
                    "block {b}: reduction presence differs from the cold build"
                ))
            }
        }
    }
    Ok(())
}

/// Checks that a lane-batched multi-source SSSP run over `sources` is an
/// honest bundle of independent single-source Dijkstras.
///
/// Runs a fresh [`MultiSsspEngine`](ear_graph::MultiSsspEngine) tree
/// batch and verifies, per lane:
///
/// * **distance axioms** — the source sits at distance 0, every edge
///   `u–v` of weight `w` satisfies the relaxation inequality
///   `d(v) ≤ d(u) + w` on finite `d(u)`, and unreachable vertices answer
///   `INF`;
/// * **lane/scalar equality** — distances, statistics and the full
///   shortest-path tree are bit-identical to a scalar
///   [`SsspEngine`](ear_graph::SsspEngine) run from the same source;
/// * **settled exactly once** — the lane's settle order names each vertex
///   at most once, its length equals `stats.settled`, and the per-vertex
///   settled bitmask holds the lane's bit exactly for the vertices that
///   order names (and for no lane index ≥ the batch width).
pub fn multi_source_invariants(g: &CsrGraph, sources: &[VertexId]) -> Result<(), String> {
    use ear_graph::MultiSsspEngine;

    if sources.is_empty() || sources.len() > ear_graph::LANES {
        return Err(format!(
            "batch must hold 1..={} sources, got {}",
            ear_graph::LANES,
            sources.len()
        ));
    }
    let mut me = MultiSsspEngine::new();
    me.run_batch_trees(g, sources);
    let mut scalar = ear_graph::SsspEngine::new();
    let n = g.n();

    let mut settled_seen = vec![0u8; n];
    for (lane, &s) in sources.iter().enumerate() {
        let dv = me.dist_vec(lane);

        // Distance axioms.
        if dv[s as usize] != 0 {
            return Err(format!("lane {lane}: d(source {s}) = {}", dv[s as usize]));
        }
        for e in g.edges() {
            if e.is_self_loop() {
                continue;
            }
            for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                let da = dv[a as usize];
                if da < INF && dv[b as usize] > da + e.w {
                    return Err(format!(
                        "lane {lane}: edge {a}–{b} (w {}) under-relaxed: d({b}) = {} > {}",
                        e.w,
                        dv[b as usize],
                        da + e.w
                    ));
                }
            }
        }

        // Bit-identity against the scalar engine.
        let sstats = scalar.run_tree(g, s);
        if me.stats(lane) != sstats {
            return Err(format!(
                "lane {lane}: stats {:?} != scalar {sstats:?}",
                me.stats(lane)
            ));
        }
        if dv != scalar.dist_vec() {
            return Err(format!("lane {lane}: dist_vec diverges from scalar"));
        }
        let st = scalar.tree();
        let mt = me.tree(lane);
        if mt != st {
            return Err(format!("lane {lane}: tree diverges from scalar"));
        }

        // Settled exactly once, and exactly the finite-distance vertices.
        let order = me.settle_order(lane);
        if order.len() as u64 != me.stats(lane).settled {
            return Err(format!(
                "lane {lane}: settle order names {} vertices, stats say {}",
                order.len(),
                me.stats(lane).settled
            ));
        }
        let bit = 1u8 << lane;
        for &v in order {
            if settled_seen[v as usize] & bit != 0 {
                return Err(format!("lane {lane}: vertex {v} settled twice"));
            }
            settled_seen[v as usize] |= bit;
        }
        for v in 0..n as u32 {
            let settled = settled_seen[v as usize] & bit != 0;
            if settled != (dv[v as usize] < INF) {
                return Err(format!(
                    "lane {lane}: vertex {v} settled={settled} but d = {}",
                    dv[v as usize]
                ));
            }
        }
    }
    for v in 0..n as u32 {
        let mask = me.settled_lanes(v);
        if mask != settled_seen[v as usize] {
            return Err(format!(
                "vertex {v}: settled mask {mask:#b} but settle orders say {:#b}",
                settled_seen[v as usize]
            ));
        }
        if (mask as u32) >> sources.len() != 0 {
            return Err(format!(
                "vertex {v}: settled mask {mask:#b} has bits beyond the {} batch lanes",
                sources.len()
            ));
        }
    }
    Ok(())
}

/// Checks that `cycles` is a valid minimum-structure cycle basis of `g`
/// (independence, correct dimension, genuine cycle vectors) via the `mcb`
/// crate's verifier.
pub fn basis_valid(g: &CsrGraph, cycles: &[Cycle]) -> Result<(), String> {
    ear_mcb::verify::verify_basis(g, cycles)
}

/// Checks that a heterogeneous run processed exactly `expected` workunits
/// in total, with per-device unit/batch counts that are mutually
/// consistent (no device reports units without batches or vice versa).
pub fn exactly_once(report: &ExecutionReport, expected: usize) -> Result<(), String> {
    let total = report.total_units();
    if total != expected {
        return Err(format!("processed {total} units, expected {expected}"));
    }
    for d in &report.devices {
        if d.units > 0 && d.batches == 0 {
            return Err(format!(
                "device '{}' claims {} units in 0 batches",
                d.name, d.units
            ));
        }
        if d.units == 0 && d.batches > 0 {
            return Err(format!(
                "device '{}' popped {} batches but no units",
                d.name, d.batches
            ));
        }
    }
    Ok(())
}

/// Checks that an `ear-obs` trace snapshot is structurally sound.
///
/// Per thread: events are in chronological order, every `End` matches the
/// innermost open `Begin` by name with `end ≥ start`, and nothing is left
/// open. Globally: `hetero.unit` spans open and close exactly once each —
/// and, when `expected_units` is given, their count equals the number of
/// workunits the executor was handed (the trace-level mirror of
/// [`exactly_once`]). Modelled device slices must have `end ≥ start`.
///
/// Threads whose ring buffer overflowed (`dropped > 0`) lost their oldest
/// events, so their nesting cannot be reconstructed; they are checked
/// only for timestamp order, and the exactly-once count is skipped for
/// the whole trace (it would undercount).
pub fn trace_invariants(
    trace: &ear_obs::Trace,
    expected_units: Option<usize>,
) -> Result<(), String> {
    use ear_obs::EventKind;

    let mut unit_opens = 0usize;
    let mut unit_closes = 0usize;
    for tl in &trace.threads {
        let lossy = tl.dropped > 0;
        let mut stack: Vec<(&str, u64)> = Vec::new();
        let mut last_ts = 0u64;
        for ev in &tl.events {
            if ev.ts_ns < last_ts {
                return Err(format!(
                    "thread {} ('{}'): timestamp regresses ({} ns after {} ns)",
                    tl.tid, tl.name, ev.ts_ns, last_ts
                ));
            }
            last_ts = ev.ts_ns;
            if lossy {
                continue;
            }
            match ev.kind {
                EventKind::Begin => {
                    stack.push((ev.name, ev.ts_ns));
                    if ev.name == "hetero.unit" {
                        unit_opens += 1;
                    }
                }
                EventKind::End => {
                    if ev.name == "hetero.unit" {
                        unit_closes += 1;
                    }
                    let Some((open_name, open_ts)) = stack.pop() else {
                        return Err(format!(
                            "thread {} ('{}'): end '{}' with no open span",
                            tl.tid, tl.name, ev.name
                        ));
                    };
                    if open_name != ev.name {
                        return Err(format!(
                            "thread {} ('{}'): end '{}' closes open span '{open_name}'",
                            tl.tid, tl.name, ev.name
                        ));
                    }
                    if ev.ts_ns < open_ts {
                        return Err(format!(
                            "thread {} ('{}'): span '{}' ends at {} ns before starting at {} ns",
                            tl.tid, tl.name, ev.name, ev.ts_ns, open_ts
                        ));
                    }
                }
                EventKind::Counter => {}
            }
        }
        if !stack.is_empty() {
            return Err(format!(
                "thread {} ('{}'): {} spans left open (innermost '{}')",
                tl.tid,
                tl.name,
                stack.len(),
                stack.last().expect("non-empty").0
            ));
        }
    }

    let lossy_trace = trace.threads.iter().any(|t| t.dropped > 0);
    if !lossy_trace {
        if unit_opens != unit_closes {
            return Err(format!(
                "hetero.unit spans: {unit_opens} opened, {unit_closes} closed"
            ));
        }
        if let Some(expected) = expected_units {
            if unit_opens != expected {
                return Err(format!(
                    "trace records {unit_opens} hetero.unit spans, executor was handed {expected}"
                ));
            }
        }
    }

    for s in &trace.modelled {
        if s.end_s < s.start_s {
            return Err(format!(
                "modelled slice '{}' on lane '{}' ends at {} s before starting at {} s",
                s.name, s.lane, s.end_s, s.start_s
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_apsp::baselines::floyd_warshall;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 1), (3, 0, 5), (0, 2, 7)])
    }

    #[test]
    fn floyd_warshall_satisfies_metric_axioms() {
        let g = diamond();
        metric_axioms(&g, &floyd_warshall(&g)).unwrap();
    }

    #[test]
    fn metric_axioms_reject_broken_matrices() {
        let g = diamond();
        let mut d = floyd_warshall(&g);
        d.set(0, 2, 1000); // breaks symmetry and the edge bound
        assert!(metric_axioms(&g, &d).is_err());
    }

    #[test]
    fn reduction_invariants_hold_on_a_chain_graph() {
        // Square with one side subdivided into a 3-edge chain.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 2),
                (1, 2, 3),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 0, 1),
            ],
        );
        reduction_invariants(&g).unwrap();
    }

    #[test]
    fn plan_invariants_hold_with_self_loops_and_multi_edges() {
        // Two blocks sharing AP 2, a self-loop singleton on 0, and a
        // parallel pair 4–5 making one block a multigraph.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 0, 9),
                (0, 1, 1),
                (1, 2, 2),
                (2, 0, 3),
                (2, 3, 1),
                (3, 4, 1),
                (4, 2, 2),
                (4, 5, 1),
                (4, 5, 2),
            ],
        );
        let plan = DecompPlan::build(&g);
        plan_invariants(&g, &plan).unwrap();
    }

    #[test]
    fn trace_invariants_accept_nested_and_reject_crossed_spans() {
        use ear_obs::{Event, EventKind, ModelledSlice, ThreadLog, Trace};
        let ev = |name, kind, ts| Event {
            name,
            kind,
            ts_ns: ts,
            arg: 0,
        };
        let good = Trace {
            threads: vec![ThreadLog {
                tid: 1,
                name: "main".into(),
                events: vec![
                    ev("hetero.run", EventKind::Begin, 0),
                    ev("hetero.unit", EventKind::Begin, 1),
                    ev("hetero.unit", EventKind::End, 2),
                    ev("hetero.run", EventKind::End, 3),
                ],
                dropped: 0,
            }],
            modelled: vec![ModelledSlice {
                lane: "gpu".into(),
                name: "batch".into(),
                start_s: 0.0,
                end_s: 0.5,
                units: 1,
            }],
        };
        trace_invariants(&good, Some(1)).unwrap();
        assert!(trace_invariants(&good, Some(2)).is_err());

        let mut crossed = good.clone();
        crossed.threads[0].events.swap(2, 3); // run ends inside unit
        crossed.threads[0].events[2].ts_ns = 2;
        crossed.threads[0].events[3].ts_ns = 3;
        assert!(trace_invariants(&crossed, None).is_err());

        let mut regressing = good.clone();
        regressing.threads[0].events[3].ts_ns = 1;
        assert!(trace_invariants(&regressing, None).is_err());
    }

    #[test]
    fn multi_source_invariants_hold_on_mixed_batches() {
        // Two components: lanes sourced in one must leave the other
        // unsettled; duplicate sources exercise the fallback path.
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 0, 4),
                (3, 4, 1),
                (4, 5, 2),
                (5, 6, 1),
                (6, 3, 3),
            ],
        );
        multi_source_invariants(&g, &[0, 3, 2, 5]).unwrap();
        multi_source_invariants(&g, &[1]).unwrap();
        multi_source_invariants(&g, &[4, 4, 0]).unwrap();
        assert!(multi_source_invariants(&g, &[]).is_err());
    }

    #[test]
    fn exactly_once_flags_lost_units() {
        use ear_hetero::executor::HeteroExecutor;
        use ear_hetero::WorkCounters;
        let exec = HeteroExecutor::sequential();
        let out = exec.run(
            (0..10u32).collect::<Vec<_>>(),
            |_| 1,
            |&x| (x as u64, WorkCounters::default()),
        );
        exactly_once(&out.report, 10).unwrap();
        assert!(exactly_once(&out.report, 11).is_err());
    }
}
