//! Shared seeded strategies for the graph families the paper cares about.
//!
//! Each strategy is a pure function of a [`TestRng`] stream, so a single
//! `u64` seed replays any generated case exactly. The families mirror the
//! shapes that exercise different code paths across the workspace:
//!
//! * [`simple_graphs`] — arbitrary simple graphs (possibly disconnected,
//!   with isolated vertices): the workhorse for cross-validation;
//! * [`multigraphs`] — parallel edges and self-loops included, for the
//!   algorithms that must accept raw multigraphs;
//! * [`biconnected_graphs`] — one biconnected block (Hamiltonian cycle
//!   plus chords): the precondition for ear decomposition;
//! * [`chain_heavy_graphs`] — long degree-2 ears planted by edge
//!   subdivision: the paper's favourable case, exercising chain
//!   contraction and the `min{…}` extrapolation formulas;
//! * [`cactus_graphs`] — trees of edge-disjoint cycles: every edge lies in
//!   at most one cycle, so BCC splitting and per-block work dominate;
//! * [`multi_bcc_graphs`] — disconnected unions of blocks, bridges,
//!   pendants and isolated vertices: the block-cut-tree routing worst
//!   case;
//! * [`dense_residual_graphs`] — few vertices, dense chords: cycle rank
//!   `f = Θ(n²) ≥ n`, stressing the MCB back half (witness matrix and
//!   phase loop) rather than decomposition;
//! * [`workload_graphs`] — the `ear-workloads` generators wrapped as a
//!   strategy, so integration tests draw from the same family the
//!   benchmarks use.

use ear_graph::{CsrGraph, Weight};
use ear_workloads::combinators::subdivide_edges;
use ear_workloads::generators::{random_min_deg3, triangulated_grid};

use crate::rng::TestRng;

/// A generator of test values with optional shrinking.
///
/// `generate` must be a pure function of the RNG stream — that is what
/// makes seed replay exact. `shrink` proposes strictly simpler candidate
/// values; strategies whose family membership an edge removal could break
/// (e.g. biconnected graphs) return no candidates rather than risk
/// shrinking out of the family.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates derived from `value` (may be empty).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// The graph families [`GraphStrategy`] can draw from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Family {
    Simple,
    Multi,
    Biconnected,
    ChainHeavy,
    Cactus,
    MultiBcc,
    DenseResidual,
    Workload,
}

/// A seeded strategy over one of the workspace's graph families.
#[derive(Clone, Debug)]
pub struct GraphStrategy {
    family: Family,
    max_n: usize,
    max_w: Weight,
}

/// Arbitrary simple graphs with up to `max_n` vertices (≥ 2) and up to
/// `3·n` edges. Shrinks by removing edges and trimming isolated tail
/// vertices.
pub fn simple_graphs(max_n: usize) -> GraphStrategy {
    GraphStrategy {
        family: Family::Simple,
        max_n: max_n.max(3),
        max_w: 100,
    }
}

/// Arbitrary multigraphs (parallel edges and self-loops allowed) with up
/// to `max_n` vertices (≥ 1) and up to `4·n` edges.
pub fn multigraphs(max_n: usize) -> GraphStrategy {
    GraphStrategy {
        family: Family::Multi,
        max_n: max_n.max(2),
        max_w: 100,
    }
}

/// Biconnected graphs: a Hamiltonian cycle on `3..max_n` vertices plus
/// random chords. No shrinking (edge removal can break biconnectivity).
pub fn biconnected_graphs(max_n: usize) -> GraphStrategy {
    GraphStrategy {
        family: Family::Biconnected,
        max_n: max_n.max(4),
        max_w: 100,
    }
}

/// Chain-heavy graphs: a min-degree-3 core with many edges subdivided
/// into long degree-2 ears — the paper's favourable workload shape.
pub fn chain_heavy_graphs(max_n: usize) -> GraphStrategy {
    GraphStrategy {
        family: Family::ChainHeavy,
        max_n: max_n.max(8),
        max_w: 100,
    }
}

/// Cactus-like graphs: a tree of edge-disjoint cycles with occasional
/// pendant edges.
pub fn cactus_graphs(max_n: usize) -> GraphStrategy {
    GraphStrategy {
        family: Family::Cactus,
        max_n: max_n.max(4),
        max_w: 100,
    }
}

/// Disconnected multi-BCC graphs: several independent components, each a
/// small block structure with bridges and pendants, plus isolated
/// vertices.
pub fn multi_bcc_graphs(max_n: usize) -> GraphStrategy {
    GraphStrategy {
        family: Family::MultiBcc,
        max_n: max_n.max(8),
        max_w: 100,
    }
}

/// High-cycle-rank "dense residual" graphs: a Hamiltonian cycle on few
/// vertices plus a dense chord set, guaranteeing cycle rank `f ≥ n` — the
/// witness matrix is wide relative to the graph, so the de Pina phase loop
/// dominates. Simple and connected; no shrinking (dropping edges lowers
/// the rank out of the family).
pub fn dense_residual_graphs(max_n: usize) -> GraphStrategy {
    GraphStrategy {
        family: Family::DenseResidual,
        max_n: max_n.max(7),
        max_w: 30,
    }
}

/// The `ear-workloads` generators (triangulated grids, min-degree-3 cores,
/// subdivided variants) wrapped as a strategy, downscaled to `max_n`.
pub fn workload_graphs(max_n: usize) -> GraphStrategy {
    GraphStrategy {
        family: Family::Workload,
        max_n: max_n.max(16),
        max_w: 100,
    }
}

impl GraphStrategy {
    fn gen_simple(&self, rng: &mut TestRng) -> CsrGraph {
        let n = rng.usize_in(2, self.max_n);
        let budget = rng.usize_in(0, 3 * n + 1);
        let mut seen = std::collections::HashSet::new();
        let mut edges: Vec<(u32, u32, Weight)> = Vec::with_capacity(budget);
        for _ in 0..budget {
            let u = rng.u32_in(0, n as u32);
            let v = rng.u32_in(0, n as u32);
            if u != v && seen.insert((u.min(v), u.max(v))) {
                edges.push((u, v, rng.u64_in(1, self.max_w + 1)));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    fn gen_multi(&self, rng: &mut TestRng) -> CsrGraph {
        let n = rng.usize_in(1, self.max_n);
        let budget = rng.usize_in(0, 4 * n + 1);
        let edges: Vec<(u32, u32, Weight)> = (0..budget)
            .map(|_| {
                (
                    rng.u32_in(0, n as u32),
                    rng.u32_in(0, n as u32),
                    rng.u64_in(1, self.max_w + 1),
                )
            })
            .collect();
        CsrGraph::from_edges(n, &edges)
    }

    fn gen_biconnected(&self, rng: &mut TestRng) -> CsrGraph {
        let n = rng.usize_in(3, self.max_n);
        let mut seen = std::collections::HashSet::new();
        let mut edges: Vec<(u32, u32, Weight)> = Vec::with_capacity(2 * n);
        for v in 0..n as u32 {
            let u = (v + 1) % n as u32;
            seen.insert((u.min(v), u.max(v)));
            edges.push((v, u, rng.u64_in(1, self.max_w + 1)));
        }
        for _ in 0..rng.usize_in(0, n + 1) {
            let u = rng.u32_in(0, n as u32);
            let v = rng.u32_in(0, n as u32);
            if u != v && seen.insert((u.min(v), u.max(v))) {
                edges.push((u, v, rng.u64_in(1, self.max_w + 1)));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    fn gen_chain_heavy(&self, rng: &mut TestRng) -> CsrGraph {
        // A min-degree-3 core, then subdivide a majority of edges into
        // degree-2 chains (weights in the core are ≥ chain_len+1 eligible
        // by construction of MAX_WEIGHT=100).
        let core_n = rng.usize_in(4, (self.max_n / 3).max(5));
        let core = random_min_deg3(core_n, 2 * core_n + rng.usize_in(0, core_n + 1), rng.fork());
        let chain_len = rng.usize_in(1, 4);
        let count = rng.usize_in(1, core.m() + 1);
        subdivide_edges(&core, count, chain_len, rng.fork())
    }

    fn gen_cactus(&self, rng: &mut TestRng) -> CsrGraph {
        let target = rng.usize_in(3, self.max_n);
        let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
        let mut next: u32 = 1;
        while (next as usize) < target {
            let host = rng.u32_in(0, next);
            if rng.percent(25) {
                // Pendant edge.
                edges.push((host, next, rng.u64_in(1, self.max_w + 1)));
                next += 1;
            } else {
                // A cycle of 3..=6 vertices sharing only `host`.
                let len = rng.usize_in(3, 7).min(target - next as usize + 1).max(3);
                let ring: Vec<u32> = std::iter::once(host)
                    .chain((0..len as u32 - 1).map(|i| next + i))
                    .collect();
                next += len as u32 - 1;
                for i in 0..ring.len() {
                    let a = ring[i];
                    let b = ring[(i + 1) % ring.len()];
                    edges.push((a, b, rng.u64_in(1, self.max_w + 1)));
                }
            }
        }
        CsrGraph::from_edges(next as usize, &edges)
    }

    fn gen_multi_bcc(&self, rng: &mut TestRng) -> CsrGraph {
        let comps = rng.usize_in(2, 5);
        let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
        let mut base: u32 = 0;
        for _ in 0..comps {
            let n = rng.usize_in(2, (self.max_n / comps).max(3)) as u32;
            // A path spine (bridges), with a chance of closing cycles.
            for v in 1..n {
                edges.push((base + v - 1, base + v, rng.u64_in(1, self.max_w + 1)));
            }
            for _ in 0..rng.usize_in(0, n as usize + 1) {
                let u = rng.u32_in(0, n);
                let v = rng.u32_in(0, n);
                if u != v {
                    edges.push((base + u, base + v, rng.u64_in(1, self.max_w + 1)));
                }
            }
            base += n;
        }
        // Isolated vertices on top.
        let isolated = rng.usize_in(0, 3) as u32;
        let mut seen = std::collections::HashSet::new();
        let edges: Vec<(u32, u32, Weight)> = edges
            .into_iter()
            .filter(|&(u, v, _)| seen.insert((u.min(v), u.max(v))))
            .collect();
        CsrGraph::from_edges((base + isolated) as usize, &edges)
    }

    fn gen_dense_residual(&self, rng: &mut TestRng) -> CsrGraph {
        let n = rng.usize_in(6, self.max_n);
        let nu = n as u32;
        let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
        // Hamiltonian cycle: connected by construction, so f = m - n + 1.
        for v in 0..nu {
            edges.push((v, (v + 1) % nu, rng.u64_in(1, self.max_w + 1)));
        }
        // Dense chords: keep each non-cycle pair with high probability.
        let mut skipped: Vec<(u32, u32)> = Vec::new();
        for u in 0..nu {
            for v in u + 2..nu {
                if u == 0 && v == nu - 1 {
                    continue; // the closing edge of the Hamiltonian cycle
                }
                if rng.percent(75) {
                    edges.push((u, v, rng.u64_in(1, self.max_w + 1)));
                } else {
                    skipped.push((u, v));
                }
            }
        }
        // Guarantee rank f = chords + 1 ≥ n + 1 even when the coin runs
        // cold: top up from the skipped pairs (n·(n-3)/2 ≥ n for n ≥ 6,
        // so enough pairs always exist).
        let missing = n.saturating_sub(edges.len() - n);
        for (u, v) in skipped.into_iter().take(missing) {
            edges.push((u, v, rng.u64_in(1, self.max_w + 1)));
        }
        CsrGraph::from_edges(n, &edges)
    }

    fn gen_workload(&self, rng: &mut TestRng) -> CsrGraph {
        match rng.usize_in(0, 3) {
            0 => {
                let side = rng.usize_in(2, ((self.max_n as f64).sqrt() as usize).max(3));
                triangulated_grid(side, side, rng.fork())
            }
            1 => {
                let n = rng.usize_in(4, self.max_n.max(5));
                random_min_deg3(n, 2 * n + rng.usize_in(0, n + 1), rng.fork())
            }
            _ => {
                let n = rng.usize_in(4, (self.max_n / 2).max(5));
                let core = random_min_deg3(n, 2 * n, rng.fork());
                subdivide_edges(&core, core.m() / 2, rng.usize_in(1, 3), rng.fork())
            }
        }
    }
}

impl Strategy for GraphStrategy {
    type Value = CsrGraph;

    fn generate(&self, rng: &mut TestRng) -> CsrGraph {
        match self.family {
            Family::Simple => self.gen_simple(rng),
            Family::Multi => self.gen_multi(rng),
            Family::Biconnected => self.gen_biconnected(rng),
            Family::ChainHeavy => self.gen_chain_heavy(rng),
            Family::Cactus => self.gen_cactus(rng),
            Family::MultiBcc => self.gen_multi_bcc(rng),
            Family::DenseResidual => self.gen_dense_residual(rng),
            Family::Workload => self.gen_workload(rng),
        }
    }

    fn shrink(&self, g: &CsrGraph) -> Vec<CsrGraph> {
        // Only the unconstrained families shrink: removing an edge keeps a
        // simple graph simple and a multigraph a multigraph, but can break
        // biconnectivity, chain structure, etc.
        if !matches!(self.family, Family::Simple | Family::Multi) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let all: Vec<(u32, u32, Weight)> = g.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
        // Drop an isolated trailing vertex first — smallest step.
        if g.n() > 1 && g.degree(g.n() as u32 - 1) == 0 {
            out.push(CsrGraph::from_edges(g.n() - 1, &all));
        }
        for skip in 0..all.len() {
            let edges: Vec<(u32, u32, Weight)> = all
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &e)| e)
                .collect();
            out.push(CsrGraph::from_edges(g.n(), &edges));
        }
        // Weight simplification: all weights to 1 (often keeps the failure
        // while making the counterexample readable).
        if all.iter().any(|&(_, _, w)| w != 1) {
            let unit: Vec<(u32, u32, Weight)> = all.iter().map(|&(u, v, _)| (u, v, 1)).collect();
            out.push(CsrGraph::from_edges(g.n(), &unit));
        }
        out
    }
}

/// A strategy from a plain closure (no shrinking). The bridge for wrapping
/// any `ear-workloads` generator call as a strategy.
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
    f: F,
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Wraps `f` as a [`Strategy`].
pub fn from_fn<T: std::fmt::Debug, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<T, F> {
    FnStrategy {
        f,
        _marker: std::marker::PhantomData,
    }
}

impl<T: std::fmt::Debug, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Uniform `usize` from a half-open range, shrinking toward the lower
/// bound.
#[derive(Clone, Debug)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

/// Strategy over `lo..hi`.
pub fn usizes(range: std::ops::Range<usize>) -> UsizeRange {
    assert!(range.start < range.end, "empty range");
    UsizeRange {
        lo: range.start,
        hi: range.end,
    }
}

impl Strategy for UsizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.lo, self.hi)
    }

    fn shrink(&self, value: &usize) -> Vec<usize> {
        // A geometric ladder of candidates from `lo` up to `value - 1`, so
        // greedy adoption bisects toward the failure boundary in
        // O(log² span) checks instead of decrementing one by one.
        let v = *value;
        let mut out = Vec::new();
        if v == self.lo {
            return out;
        }
        out.push(self.lo);
        let mut gap = (v - self.lo) / 2;
        while gap > 0 {
            let cand = v - gap;
            if cand > self.lo && out.last() != Some(&cand) {
                out.push(cand);
            }
            gap /= 2;
        }
        out
    }
}

/// Pairs two strategies; shrinks each side independently.
#[derive(Clone, Debug)]
pub struct Zip<A, B> {
    a: A,
    b: B,
}

/// Strategy over `(A::Value, B::Value)`.
pub fn zip<A: Strategy, B: Strategy>(a: A, b: B) -> Zip<A, B> {
    Zip { a, b }
}

impl<A: Strategy, B: Strategy> Strategy for Zip<A, B>
where
    A::Value: Clone,
    B::Value: Clone,
{
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.a.generate(rng), self.b.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .a
            .shrink(&value.0)
            .into_iter()
            .map(|a| (a, value.1.clone()))
            .collect();
        out.extend(
            self.b
                .shrink(&value.1)
                .into_iter()
                .map(|b| (value.0.clone(), b)),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_graph::connected_components;

    fn rng(seed: u64) -> TestRng {
        TestRng::new(seed)
    }

    #[test]
    fn simple_graphs_are_simple() {
        let s = simple_graphs(30);
        for seed in 0..50 {
            let g = s.generate(&mut rng(seed));
            assert!(g.is_simple());
            assert!(g.n() >= 2 && g.n() < 30);
        }
    }

    #[test]
    fn biconnected_graphs_are_biconnected() {
        let s = biconnected_graphs(20);
        for seed in 0..50 {
            let g = s.generate(&mut rng(seed));
            let b = ear_decomp::bcc::biconnected_components(&g);
            assert_eq!(b.count(), 1, "seed {seed}");
            assert!(b.articulation_points().is_empty(), "seed {seed}");
            assert!(connected_components(&g).is_connected());
        }
    }

    #[test]
    fn chain_heavy_graphs_have_degree_two_vertices() {
        let s = chain_heavy_graphs(40);
        for seed in 0..20 {
            let g = s.generate(&mut rng(seed));
            let deg2 = (0..g.n() as u32).filter(|&v| g.degree(v) == 2).count();
            assert!(deg2 >= 1, "seed {seed}: no chains planted");
            assert!(connected_components(&g).is_connected());
        }
    }

    #[test]
    fn cactus_graphs_have_edge_disjoint_cycles() {
        let s = cactus_graphs(25);
        for seed in 0..30 {
            let g = s.generate(&mut rng(seed));
            // Cactus property: every BCC is a single edge or a simple cycle
            // (edge count == vertex count within the component).
            let b = ear_decomp::bcc::biconnected_components(&g);
            for c in 0..b.count() {
                let verts = b.comp_vertices(&g, c);
                let edges = &b.comps[c];
                assert!(
                    edges.len() == 1 || edges.len() == verts.len(),
                    "seed {seed}: component with {} edges, {} vertices",
                    edges.len(),
                    verts.len()
                );
            }
        }
    }

    #[test]
    fn multi_bcc_graphs_are_disconnected() {
        let s = multi_bcc_graphs(30);
        for seed in 0..30 {
            let g = s.generate(&mut rng(seed));
            assert!(connected_components(&g).count >= 2, "seed {seed}");
        }
    }

    #[test]
    fn dense_residual_graphs_have_high_cycle_rank() {
        let s = dense_residual_graphs(14);
        for seed in 0..30 {
            let g = s.generate(&mut rng(seed));
            assert!(g.is_simple(), "seed {seed}");
            assert!(connected_components(&g).is_connected(), "seed {seed}");
            // Connected, so the cycle rank is m - n + 1; the family
            // guarantees it exceeds the vertex count.
            assert!(
                g.m() + 1 >= 2 * g.n(),
                "seed {seed}: rank {} below n {}",
                g.m() - g.n() + 1,
                g.n()
            );
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let s = simple_graphs(30);
        let a = s.generate(&mut rng(9));
        let b = s.generate(&mut rng(9));
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn shrink_reduces_edges() {
        let s = simple_graphs(20);
        let g = s.generate(&mut rng(3));
        for cand in s.shrink(&g) {
            assert!(cand.m() < g.m() || cand.n() < g.n() || cand.total_weight() < g.total_weight());
        }
    }

    #[test]
    fn zip_shrinks_componentwise() {
        let s = zip(usizes(1..10), usizes(5..20));
        let v = (9, 19);
        for (a, b) in s.shrink(&v) {
            assert!((a, b) != v);
            assert!((1..10).contains(&a) && (5..20).contains(&b));
        }
    }
}
