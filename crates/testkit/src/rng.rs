//! Deterministic seeded randomness for the property-test engine.
//!
//! A SplitMix64 stream: every generated test case is a pure function of a
//! single `u64` seed, which is what makes the one-line
//! `EAR_TESTKIT_SEED=…` replay exact. Kept dependency-free (the `rand`
//! shim is for the workload generators; the testkit owns its stream so
//! seed replay can never be perturbed by generator changes elsewhere).

/// Deterministic test-case RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

/// Derives an independent stream seed from `(seed, index)` — used to give
/// every case of a property its own replayable seed.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut s = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    s ^ (s >> 31)
}

impl TestRng {
    /// A generator whose entire stream is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u128;
        lo + (((self.next_u64() as u128) * span) >> 64) as usize
    }

    /// Uniform `u32` from `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.usize_in(lo as usize, hi as usize) as u32
    }

    /// Uniform `u64` from `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u128;
        lo + (((self.next_u64() as u128) * span) >> 64) as u64
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `pct`/100.
    pub fn percent(&mut self, pct: u32) -> bool {
        self.u32_in(0, 100) < pct
    }

    /// Splits off an independent child stream (e.g. to hand a sub-seed to
    /// an `ear-workloads` generator).
    pub fn fork(&mut self) -> u64 {
        derive_seed(self.next_u64(), 0xF0F0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected_and_covered() {
        let mut rng = TestRng::new(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = rng.usize_in(2, 7);
            assert!((2..7).contains(&x));
            seen[x - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn derive_seed_separates_indices() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
