//! The property runner: seeded case generation, one-line replay, and
//! greedy shrinking.
//!
//! Usage:
//!
//! ```
//! use ear_testkit::{forall, simple_graphs};
//!
//! forall("doc_example_vertex_count")
//!     .cases(16)
//!     .run(&simple_graphs(12), |g| {
//!         if g.n() >= 2 { Ok(()) } else { Err(format!("n = {}", g.n())) }
//!     });
//! ```
//!
//! On failure the runner shrinks the counterexample (for strategies that
//! support it) and panics with a message containing
//! `EAR_TESTKIT_SEED=0x… cargo test <name>`; exporting that variable makes
//! the same property run exactly the one failing case.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{derive_seed, TestRng};
use crate::strategy::Strategy;

/// Environment variable that replays a single case of a property.
pub const SEED_ENV: &str = "EAR_TESTKIT_SEED";

/// Builder for a named property over a strategy. Construct with
/// [`forall`].
pub struct Forall {
    name: &'static str,
    cases: usize,
}

/// Starts a property named `name` (use the enclosing test function's name
/// so the printed replay line is runnable as-is).
pub fn forall(name: &'static str) -> Forall {
    Forall { name, cases: 64 }
}

/// FNV-1a, so each property gets a distinct but stable base seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

thread_local! {
    /// True while the runner probes shrink candidates — the panic hook
    /// stays quiet for those expected failures.
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                default(info);
            }
        }));
    });
}

/// Outcome of running a property on one value: `Ok` or a failure message
/// (an `Err` return or a caught panic payload).
fn check<V, P>(prop: &P, value: &V) -> Result<(), String>
where
    V: std::fmt::Debug,
    P: Fn(&V) -> Result<(), String>,
{
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(value)));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

impl Forall {
    /// Number of random cases to draw (default 64).
    pub fn cases(mut self, n: usize) -> Self {
        self.cases = n.max(1);
        self
    }

    /// Runs `prop` over generated values; panics with a replayable seed on
    /// the first failure. Honors `EAR_TESTKIT_SEED` to replay one case.
    pub fn run<S, P>(self, strategy: &S, prop: P)
    where
        S: Strategy,
        P: Fn(&S::Value) -> Result<(), String>,
    {
        install_quiet_hook();
        if let Some(seed) = std::env::var(SEED_ENV).ok().and_then(|s| parse_seed(&s)) {
            // Replay mode: exactly the one requested case, loud and
            // unshrunk so the user sees the original failure verbatim.
            let value = strategy.generate(&mut TestRng::new(seed));
            if let Err(msg) = prop(&value) {
                panic!(
                    "property '{}' failed on replayed seed {seed:#x}\n  failure: {msg}\n  value: {value:?}",
                    self.name
                );
            }
            return;
        }
        let base = fnv1a(self.name);
        for i in 0..self.cases {
            let seed = derive_seed(base, i as u64);
            let value = strategy.generate(&mut TestRng::new(seed));
            if let Err(msg) = check(&prop, &value) {
                let (value, msg) = self.shrink(strategy, &prop, value, msg);
                panic!(
                    "property '{}' failed (case {i}/{})\n  failure: {msg}\n  counterexample: {value:?}\n  replay: {SEED_ENV}={seed:#x} cargo test {}",
                    self.name, self.cases, self.name
                );
            }
        }
    }

    /// Greedy shrink: repeatedly adopt the first still-failing candidate,
    /// bounded to keep worst-case runtime sane.
    fn shrink<S, P>(
        &self,
        strategy: &S,
        prop: &P,
        mut value: S::Value,
        mut msg: String,
    ) -> (S::Value, String)
    where
        S: Strategy,
        P: Fn(&S::Value) -> Result<(), String>,
    {
        let mut steps = 0usize;
        'outer: while steps < 200 {
            for cand in strategy.shrink(&value) {
                steps += 1;
                if let Err(m) = check(prop, &cand) {
                    value = cand;
                    msg = m;
                    continue 'outer;
                }
                if steps >= 200 {
                    break;
                }
            }
            break;
        }
        (value, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{simple_graphs, usizes};

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::cell::Cell::new(0usize);
        forall("runner_passing")
            .cases(10)
            .run(&usizes(0..100), |_| {
                counted.set(counted.get() + 1);
                Ok(())
            });
        assert_eq!(counted.get(), 10);
    }

    #[test]
    fn failing_property_reports_replay_seed_and_shrinks() {
        let result = catch_unwind(|| {
            forall("runner_failing")
                .cases(50)
                .run(&usizes(0..1000), |&x| {
                    if x < 500 {
                        Ok(())
                    } else {
                        Err(format!("{x} too big"))
                    }
                });
        });
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains(SEED_ENV), "no replay line in: {msg}");
        assert!(
            msg.contains("cargo test runner_failing"),
            "bad replay line: {msg}"
        );
        // Greedy shrink on the usize strategy converges to the boundary.
        assert!(msg.contains("counterexample: 500"), "not shrunk: {msg}");
    }

    #[test]
    fn replayed_seed_regenerates_identical_case() {
        // The seed printed for case i must regenerate that exact value.
        let base = fnv1a("some_property");
        let seed = derive_seed(base, 3);
        let s = simple_graphs(20);
        let a = s.generate(&mut TestRng::new(seed));
        let b = s.generate(&mut TestRng::new(seed));
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn panics_inside_properties_are_caught_and_replayable() {
        let result = catch_unwind(|| {
            forall("runner_panics").cases(5).run(&usizes(0..10), |&x| {
                assert!(x > 100, "x was {x}");
                Ok(())
            });
        });
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("panicked"), "panic not captured: {msg}");
        assert!(msg.contains(SEED_ENV), "no replay line: {msg}");
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("0X10"), Some(16));
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed(" 7 "), Some(7));
        assert_eq!(parse_seed("zebra"), None);
    }
}
