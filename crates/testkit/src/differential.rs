//! The differential harness: one registry of every APSP implementation
//! and every MCB configuration in the workspace, cross-validated on a
//! single input graph.
//!
//! The paper's reduced-graph algorithms are only worth benchmarking if
//! they are *exact*, so the harness treats the simplest implementation as
//! ground truth (Floyd–Warshall for APSP, Horton/signed for MCB) and
//! demands bit-exact agreement from everything else — every execution
//! mode, every reduction toggle, every oracle layout. A disagreement is
//! returned as a [`Divergence`] naming both sides, so the property runner
//! can attach the replayable seed.

use ear_apsp::baselines::{floyd_warshall, plain_apsp};
use ear_apsp::djidjev::djidjev_apsp;
use ear_apsp::ear::ear_apsp;
use ear_apsp::oracle::{build_oracle, ApspMethod};
use ear_apsp::reduced_oracle::ReducedOracle;
use ear_apsp::DistMatrix;
use ear_graph::CsrGraph;
use ear_hetero::HeteroExecutor;
use ear_mcb::ear_mcb::{mcb, ExecMode, McbConfig};
use ear_mcb::{depina_mcb, horton_mcb, signed_mcb, verify_basis, Cycle, DepinaOptions};

/// A disagreement between two implementations on one input.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Name of the reference implementation.
    pub reference: String,
    /// Name of the implementation that disagreed.
    pub candidate: String,
    /// Human-readable description of the first difference found.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "'{}' diverges from '{}': {}",
            self.candidate, self.reference, self.detail
        )
    }
}

/// Boxed runner computing a full distance matrix for one graph.
pub type ApspRunner = Box<dyn Fn(&CsrGraph) -> DistMatrix>;

/// Boxed runner computing a cycle basis for one graph.
pub type McbRunner = Box<dyn Fn(&CsrGraph) -> Vec<Cycle>>;

/// One APSP implementation: a display name, whether it requires a simple
/// input graph, and the full-matrix runner.
pub struct ApspImpl {
    /// Registry name (shown in divergence reports).
    pub name: &'static str,
    /// True for implementations built on ear reduction / BCC splitting,
    /// which assert simplicity.
    pub simple_only: bool,
    /// Computes the full distance matrix.
    pub run: ApspRunner,
}

/// Every APSP implementation in the workspace, reference first:
/// Floyd–Warshall, plain all-sources Dijkstra (sequential and CPU+GPU),
/// ear-reduced APSP (sequential and CPU+GPU), Djidjev partition APSP
/// (k = 2 and 4), the block-cut-tree oracle under both build methods,
/// and the reduced-table oracle.
pub fn apsp_implementations() -> Vec<ApspImpl> {
    vec![
        ApspImpl {
            name: "floyd_warshall",
            simple_only: false,
            run: Box::new(floyd_warshall),
        },
        ApspImpl {
            name: "plain_apsp/sequential",
            simple_only: false,
            run: Box::new(|g| plain_apsp(g, &HeteroExecutor::sequential()).0),
        },
        ApspImpl {
            name: "plain_apsp/cpu_gpu",
            simple_only: false,
            run: Box::new(|g| plain_apsp(g, &HeteroExecutor::cpu_gpu()).0),
        },
        ApspImpl {
            name: "ear_apsp/sequential",
            simple_only: true,
            run: Box::new(|g| ear_apsp(g, &HeteroExecutor::sequential()).dist),
        },
        ApspImpl {
            name: "ear_apsp/cpu_gpu",
            simple_only: true,
            run: Box::new(|g| ear_apsp(g, &HeteroExecutor::cpu_gpu()).dist),
        },
        ApspImpl {
            name: "djidjev_apsp/k2",
            simple_only: true,
            run: Box::new(|g| djidjev_apsp(g, 2, &HeteroExecutor::sequential()).dist),
        },
        ApspImpl {
            name: "djidjev_apsp/k4",
            simple_only: true,
            run: Box::new(|g| djidjev_apsp(g, 4, &HeteroExecutor::cpu_gpu()).dist),
        },
        ApspImpl {
            name: "oracle/ear",
            simple_only: true,
            run: Box::new(|g| {
                build_oracle(g, &HeteroExecutor::sequential(), ApspMethod::Ear).materialize()
            }),
        },
        ApspImpl {
            name: "oracle/plain",
            simple_only: true,
            run: Box::new(|g| {
                build_oracle(g, &HeteroExecutor::sequential(), ApspMethod::Plain).materialize()
            }),
        },
        ApspImpl {
            name: "reduced_oracle",
            simple_only: true,
            run: Box::new(|g| {
                let o = ReducedOracle::build(g, &HeteroExecutor::sequential());
                let n = g.n();
                let mut m = DistMatrix::new(n);
                for u in 0..n as u32 {
                    for v in 0..n as u32 {
                        m.set(u, v, o.dist(u, v));
                    }
                }
                m
            }),
        },
    ]
}

fn first_matrix_diff(a: &DistMatrix, b: &DistMatrix) -> Option<String> {
    if a.n() != b.n() {
        return Some(format!("matrix sizes differ: {} vs {}", a.n(), b.n()));
    }
    for i in 0..a.n() as u32 {
        for j in 0..a.n() as u32 {
            if a.get(i, j) != b.get(i, j) {
                return Some(format!("d({i},{j}): {} vs {}", a.get(i, j), b.get(i, j)));
            }
        }
    }
    None
}

/// Runs every applicable APSP implementation on `g` and compares each
/// against Floyd–Warshall, entry by entry. Implementations that require a
/// simple graph are skipped on multigraphs.
pub fn cross_validate_apsp(g: &CsrGraph) -> Result<(), Divergence> {
    let impls = apsp_implementations();
    let simple = g.is_simple();
    let reference = (impls[0].run)(g);
    for imp in &impls[1..] {
        if imp.simple_only && !simple {
            continue;
        }
        let got = (imp.run)(g);
        if let Some(detail) = first_matrix_diff(&reference, &got) {
            return Err(Divergence {
                reference: impls[0].name.to_string(),
                candidate: imp.name.to_string(),
                detail,
            });
        }
    }
    Ok(())
}

/// One MCB configuration: name, simplicity requirement, and a runner
/// returning the basis cycles (edge ids of the input graph).
pub struct McbImpl {
    /// Registry name (shown in divergence reports).
    pub name: &'static str,
    /// True for configurations that route through per-block ear
    /// reduction, which asserts simplicity.
    pub simple_only: bool,
    /// Computes a minimum cycle basis.
    pub run: McbRunner,
}

/// Every MCB implementation/configuration in the workspace, reference
/// first: Horton's algorithm, the signed-graph algorithm, de Pina under a
/// sequential executor, and the full pipeline under all four execution
/// modes with the ear reduction both off and on.
pub fn mcb_implementations() -> Vec<McbImpl> {
    let mut impls: Vec<McbImpl> = vec![
        McbImpl {
            name: "signed",
            simple_only: false,
            run: Box::new(signed_mcb),
        },
        McbImpl {
            name: "horton",
            simple_only: true,
            run: Box::new(horton_mcb),
        },
        McbImpl {
            name: "depina/sequential",
            simple_only: false,
            run: Box::new(|g| {
                depina_mcb(g, &HeteroExecutor::sequential(), &DepinaOptions::default()).0
            }),
        },
    ];
    for mode in ExecMode::all() {
        for use_ear in [false, true] {
            let name: &'static str = match (mode, use_ear) {
                (ExecMode::Sequential, false) => "mcb/Sequential/plain",
                (ExecMode::Sequential, true) => "mcb/Sequential/ear",
                (ExecMode::MultiCore, false) => "mcb/Multi-Core/plain",
                (ExecMode::MultiCore, true) => "mcb/Multi-Core/ear",
                (ExecMode::Gpu, false) => "mcb/GPU/plain",
                (ExecMode::Gpu, true) => "mcb/GPU/ear",
                (ExecMode::Hetero, false) => "mcb/CPU+GPU/plain",
                (ExecMode::Hetero, true) => "mcb/CPU+GPU/ear",
            };
            impls.push(McbImpl {
                name,
                simple_only: true,
                run: Box::new(move |g| mcb(g, &McbConfig { mode, use_ear }).cycles),
            });
        }
    }
    impls
}

/// Runs every applicable MCB configuration on `g`, checks each result is
/// a valid basis, and compares total weight and dimension against the
/// reference (the signed-graph algorithm, which accepts multigraphs).
/// Cycle *sets* may legitimately differ — the minimum basis need not be
/// unique — so only the invariant quantities are compared.
pub fn cross_validate_mcb(g: &CsrGraph) -> Result<(), Divergence> {
    let impls = mcb_implementations();
    let simple = g.is_simple();
    let ref_cycles = (impls[0].run)(g);
    let ref_name = impls[0].name;
    if let Err(detail) = verify_basis(g, &ref_cycles) {
        return Err(Divergence {
            reference: "verify_basis".to_string(),
            candidate: ref_name.to_string(),
            detail,
        });
    }
    let ref_weight: u64 = ref_cycles.iter().map(|c| c.weight).sum();
    for imp in &impls[1..] {
        if imp.simple_only && !simple {
            continue;
        }
        let cycles = (imp.run)(g);
        if let Err(detail) = verify_basis(g, &cycles) {
            return Err(Divergence {
                reference: "verify_basis".to_string(),
                candidate: imp.name.to_string(),
                detail,
            });
        }
        let weight: u64 = cycles.iter().map(|c| c.weight).sum();
        if weight != ref_weight {
            return Err(Divergence {
                reference: ref_name.to_string(),
                candidate: imp.name.to_string(),
                detail: format!("basis weight {weight} vs {ref_weight}"),
            });
        }
        if cycles.len() != ref_cycles.len() {
            return Err(Divergence {
                reference: ref_name.to_string(),
                candidate: imp.name.to_string(),
                detail: format!("basis dimension {} vs {}", cycles.len(), ref_cycles.len()),
            });
        }
    }
    Ok(())
}

/// Cross-validates everything at once: all APSP implementations, then all
/// MCB configurations. Returns the first divergence found.
pub fn cross_validate(g: &CsrGraph) -> Result<(), Divergence> {
    cross_validate_apsp(g)?;
    cross_validate_mcb(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_cover_every_implementation() {
        // The tentpole's acceptance criterion: every APSP implementation
        // and every MCB mode is registered. 10 APSP entries; 3 standalone
        // MCB algorithms + 4 modes × 2 ear settings.
        assert_eq!(apsp_implementations().len(), 10);
        assert_eq!(mcb_implementations().len(), 11);
    }

    #[test]
    fn kitchen_sink_graph_cross_validates() {
        // Bridges + a dense block + a chain + a pendant: touches every
        // structural case at once.
        let g = CsrGraph::from_edges(
            10,
            &[
                (0, 1, 3),
                (1, 2, 1),
                (2, 0, 2),
                (2, 3, 4),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 2),
                (5, 6, 1),
                (6, 7, 2),
                (7, 5, 2),
                (7, 8, 9),
                (0, 9, 1),
            ],
        );
        cross_validate(&g).unwrap();
    }

    #[test]
    fn multigraphs_use_the_reduced_registry() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (0, 1, 2), (1, 2, 1), (2, 2, 5)]);
        assert!(!g.is_simple());
        cross_validate(&g).unwrap();
    }
}
