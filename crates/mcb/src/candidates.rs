//! Candidate cycle generation and storage.
//!
//! Following Mehlhorn–Michail (paper §3.3.2): compute one shortest-path
//! tree `T_z` per feedback-vertex-set member `z`; for every non-tree edge
//! `e = uv` of `T_z` whose `T_z`-LCA is `z` itself, the cycle
//! `C_ze = path(z→u) + e + path(v→z)` with weight `d_z(u) + w(e) + d_z(v)`
//! is a candidate. The collection over all `z` is a superset of some MCB
//! (under shortest-path tie-breaking assumptions; the caller keeps the
//! signed-graph search as a backstop — see `crate::depina`).
//!
//! Cycles are kept **implicit** as `(z, e)` pairs — materialising all
//! `O(n·m)` of them would dwarf the graph. The weight-sorted set lives in
//! the paper's hybrid structure ([`CycleStore`]): a linked list of fixed
//! -size array nodes, deletions marked by setting the weight's MSB
//! (the paper's "setting off the MSB"), nodes compacted once half-dead.

use ear_decomp::fvs::feedback_vertex_set;
use ear_graph::{with_multi_engine, CsrGraph, EdgeId, SsspMode, SsspTree, VertexId, Weight, LANES};
use ear_hetero::WorkCounters;
use rayon::prelude::*;

pub use ear_hetero::counters::group_units;

/// One implicit candidate cycle `C_ze`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandRef {
    /// Cycle weight, with the MSB reserved as the deletion mark.
    pub weight: Weight,
    /// Index of `z` in the FVS list.
    pub z_idx: u32,
    /// The closing non-tree edge `e` of `T_z`.
    pub edge: EdgeId,
}

const DEAD: Weight = 1 << 63;

impl CandRef {
    /// True once removed from the store.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.weight & DEAD != 0
    }

    /// Weight without the deletion mark.
    #[inline]
    pub fn live_weight(&self) -> Weight {
        self.weight & !DEAD
    }
}

/// Fixed node capacity of the hybrid store (the paper's "constant sized
/// array as its base element").
const NODE_CAP: usize = 64;

/// The hybrid linked-list-of-arrays cycle store.
#[derive(Clone, Debug)]
pub struct CycleStore {
    nodes: Vec<Vec<CandRef>>,
    next: Vec<u32>,
    head: u32,
    live: usize,
}

impl CycleStore {
    /// Builds the store from candidates already sorted by weight.
    pub fn from_sorted(cands: Vec<CandRef>) -> Self {
        let mut nodes = Vec::new();
        for chunk in cands.chunks(NODE_CAP) {
            nodes.push(chunk.to_vec());
        }
        let live = nodes.iter().map(|n| n.len()).sum();
        let n = nodes.len();
        let mut next: Vec<u32> = (1..n as u32).collect();
        if n > 0 {
            next.push(u32::MAX);
        }
        CycleStore {
            nodes,
            next,
            head: if n == 0 { u32::MAX } else { 0 },
            live,
        }
    }

    /// Live candidates remaining.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Scans in weight order for the first live candidate accepted by
    /// `pred`, removing and returning it. `pred` also receives the running
    /// count of inspected candidates through its return; the store reports
    /// how many were inspected via the out-parameter.
    pub fn take_first<F: FnMut(&CandRef) -> bool>(
        &mut self,
        mut pred: F,
        inspected: &mut u64,
    ) -> Option<CandRef> {
        let mut prev = u32::MAX;
        let mut at = self.head;
        while at != u32::MAX {
            let node = &mut self.nodes[at as usize];
            let mut found: Option<usize> = None;
            for (i, c) in node.iter().enumerate() {
                if c.is_dead() {
                    continue;
                }
                *inspected += 1;
                if pred(c) {
                    found = Some(i);
                    break;
                }
            }
            if let Some(i) = found {
                let mut out = node[i];
                node[i].weight |= DEAD;
                out.weight &= !DEAD;
                self.live -= 1;
                self.compact_or_unlink(prev, at);
                return Some(out);
            }
            prev = at;
            at = self.next[at as usize];
        }
        None
    }

    /// Compacts a node once at least half its slots are dead; unlinks it
    /// entirely when empty (the paper's reorder-on-half-dead policy).
    fn compact_or_unlink(&mut self, prev: u32, at: u32) {
        let node = &mut self.nodes[at as usize];
        let dead = node.iter().filter(|c| c.is_dead()).count();
        if dead * 2 < node.len() {
            return;
        }
        node.retain(|c| !c.is_dead());
        if node.is_empty() {
            let after = self.next[at as usize];
            if prev == u32::MAX {
                self.head = after;
            } else {
                self.next[prev as usize] = after;
            }
        }
    }

    /// Iterates live candidates in weight order (tests / diagnostics).
    pub fn iter_live(&self) -> impl Iterator<Item = &CandRef> + '_ {
        LiveIter {
            store: self,
            at: self.head,
            idx: 0,
        }
    }
}

struct LiveIter<'a> {
    store: &'a CycleStore,
    at: u32,
    idx: usize,
}

impl<'a> Iterator for LiveIter<'a> {
    type Item = &'a CandRef;
    fn next(&mut self) -> Option<&'a CandRef> {
        while self.at != u32::MAX {
            let node = &self.store.nodes[self.at as usize];
            while self.idx < node.len() {
                let c = &node[self.idx];
                self.idx += 1;
                if !c.is_dead() {
                    return Some(c);
                }
            }
            self.at = self.store.next[self.at as usize];
            self.idx = 0;
        }
        None
    }
}

/// The generated candidate set: FVS, per-`z` SSSP trees (with per-tree
/// top-child arrays for the O(1) LCA-is-root test), and the sorted store.
///
/// `Clone` exists so benchmarks can snapshot a generated set and replay
/// the (store-consuming) phase loop from the same starting state.
#[derive(Clone)]
pub struct Candidates {
    /// Feedback vertex set members.
    pub z: Vec<VertexId>,
    /// `trees[i]` is the shortest-path tree rooted at `z[i]`.
    pub trees: Vec<SsspTree>,
    /// `top_child[i][u]`: the depth-1 ancestor of `u` in `trees[i]`
    /// (`u32::MAX` at the root / unreachable).
    pub top_child: Vec<Vec<VertexId>>,
    /// Per-tree top-down vertex order (parents before children), computed
    /// once so the per-phase label passes need no re-sorting.
    pub order: Vec<Vec<VertexId>>,
    /// Weight-sorted candidate store.
    pub store: CycleStore,
    /// Cost groups of the tree-construction phase: `(size hint, counters,
    /// unit count)` — the recording the device-model replay consumes.
    pub tree_units: Vec<(u64, WorkCounters, u64)>,
}

impl Candidates {
    /// Materialises the explicit cycle of a candidate: tree paths from both
    /// endpoints of `e` to the root `z`, plus `e` itself.
    pub fn materialize(&self, g: &CsrGraph, c: &CandRef) -> Vec<EdgeId> {
        let t = &self.trees[c.z_idx as usize];
        let r = g.edge(c.edge);
        let mut edges = t.path_edges_to_root(r.u).expect("endpoint reachable");
        edges.extend(t.path_edges_to_root(r.v).expect("endpoint reachable"));
        edges.push(c.edge);
        edges
    }
}

/// Generates the candidate set for `g`, building the per-`z` trees in
/// parallel (one workunit per FVS vertex — paper §3.4 runs exactly these
/// trees "simultaneously on both the CPU and the GPU"; here the real work
/// runs on the Rayon pool and the cost groups are recorded for the device
/// replay).
pub fn generate(g: &CsrGraph) -> Candidates {
    generate_with_mode(g, SsspMode::from_env())
}

/// [`generate`] with an explicit [`SsspMode`]. In `Batched` mode the FVS
/// roots are consumed in [`LANES`]-wide chunks through the lane engine —
/// one CSR edge scan per relaxation round serves every root of the chunk —
/// while chunk order and in-chunk lane order preserve the per-root
/// sequence, so `tree_units` and every downstream candidate are
/// bit-identical to the scalar path.
pub fn generate_with_mode(g: &CsrGraph, sssp: SsspMode) -> Candidates {
    let z = feedback_vertex_set(g);
    let m_hint = g.m() as u64 + 1;
    let results: Vec<(SsspTree, WorkCounters)> = match sssp {
        SsspMode::Scalar => z
            .par_iter()
            .map(|&root| {
                // Pooled engine: scratch survives across the roots a worker
                // thread handles.
                ear_graph::with_engine(|eng| {
                    let stats = eng.run_tree(g, root);
                    let c = WorkCounters {
                        edges_relaxed: stats.edges_relaxed,
                        vertices_settled: stats.settled,
                        ..Default::default()
                    };
                    (eng.tree(), c)
                })
            })
            .collect(),
        SsspMode::Batched => {
            // FVS members are distinct, so a chunk never carries duplicate
            // sources; short tails fall back inside the engine itself.
            let chunks: Vec<&[VertexId]> = z.chunks(LANES).collect();
            let per_chunk: Vec<Vec<(SsspTree, WorkCounters)>> = chunks
                .par_iter()
                .map(|&chunk| {
                    with_multi_engine(|me| {
                        me.run_batch_trees(g, chunk);
                        (0..chunk.len())
                            .map(|lane| {
                                let stats = me.stats(lane);
                                let c = WorkCounters {
                                    edges_relaxed: stats.edges_relaxed,
                                    vertices_settled: stats.settled,
                                    ..Default::default()
                                };
                                (me.tree(lane), c)
                            })
                            .collect()
                    })
                })
                .collect();
            per_chunk.into_iter().flatten().collect()
        }
    };
    let tree_units = group_units(m_hint, results.iter().map(|(_, c)| *c));
    let trees: Vec<SsspTree> = results.into_iter().map(|(t, _)| t).collect();

    // Per tree: depth-1 ancestors (top-child array — lca(u,v) == root iff
    // u or v is the root, or their top children differ) and xor path
    // hashes (`ph(u)` = xor of edge hashes on the root path), which give an
    // exact content signature for a candidate cycle without materialising
    // it: sig = ph(u) ^ ph(v) ^ h(e).
    let mut top_child: Vec<Vec<VertexId>> = Vec::with_capacity(trees.len());
    let mut path_hash: Vec<Vec<u64>> = Vec::with_capacity(trees.len());
    let mut order: Vec<Vec<VertexId>> = Vec::with_capacity(trees.len());
    for t in &trees {
        let n = t.dist.len();
        let mut tc = vec![u32::MAX; n];
        let mut ph = vec![0u64; n];
        let ord = t.top_down_order();
        for &u in &ord {
            if u == t.source {
                continue;
            }
            let p = t.parent_vertex[u as usize];
            tc[u as usize] = if p == t.source { u } else { tc[p as usize] };
            ph[u as usize] = ph[p as usize] ^ splitmix64(t.parent_edge[u as usize] as u64);
        }
        top_child.push(tc);
        path_hash.push(ph);
        order.push(ord);
    }

    // Enumerate candidates: non-tree edges of each T_z whose LCA is z.
    // The same cycle reached from several roots is deduplicated by its
    // exact content signature (weight + xor of per-edge hashes): xor
    // hashing is order-free, so identical edge sets collide by design and
    // distinct ones by 2⁻⁶⁴ accident — recoverable through the signed
    // backstop in any case.
    let mut cands: Vec<CandRef> = Vec::new();
    let mut seen = std::collections::HashSet::<(Weight, u64)>::new();
    for (zi, t) in trees.iter().enumerate() {
        let tc = &top_child[zi];
        let ph = &path_hash[zi];
        for e in 0..g.m() as u32 {
            let r = g.edge(e);
            if r.is_self_loop() {
                // A self-loop is a one-edge cycle through its vertex; emit
                // it from that vertex's own tree only.
                if r.u == t.source && seen.insert((r.w, splitmix64(e as u64))) {
                    cands.push(CandRef {
                        weight: r.w,
                        z_idx: zi as u32,
                        edge: e,
                    });
                }
                continue;
            }
            if !t.reachable(r.u) || !t.reachable(r.v) {
                continue;
            }
            // Tree edges of T_z close no cycle.
            if t.parent_edge[r.u as usize] == e || t.parent_edge[r.v as usize] == e {
                continue;
            }
            let lca_is_root =
                r.u == t.source || r.v == t.source || tc[r.u as usize] != tc[r.v as usize];
            if !lca_is_root {
                continue;
            }
            let w = t.dist[r.u as usize] + r.w + t.dist[r.v as usize];
            let sig = ph[r.u as usize] ^ ph[r.v as usize] ^ splitmix64(e as u64);
            if seen.insert((w, sig)) {
                cands.push(CandRef {
                    weight: w,
                    z_idx: zi as u32,
                    edge: e,
                });
            }
        }
    }
    cands.sort_by_key(|c| (c.weight, c.edge, c.z_idx));
    let store = CycleStore::from_sorted(cands);
    Candidates {
        z,
        trees,
        top_child,
        order,
        store,
        tree_units,
    }
}

/// 64-bit finaliser (splitmix64): spreads edge ids into xor-combinable
/// content hashes.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    fn gen(g: &CsrGraph) -> Candidates {
        generate(g)
    }

    #[test]
    fn triangle_has_one_candidate() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        let c = gen(&g);
        assert_eq!(c.z.len(), 1);
        assert_eq!(c.store.live(), 1);
        let cand = *c.store.iter_live().next().unwrap();
        assert_eq!(cand.live_weight(), 3);
        let edges = c.materialize(&g, &cand);
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // 0-1-2-0 and 1-2-3-1: f = 2, candidates must include both light
        // triangles (weight 3 each), not only the outer square.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 1), (3, 1, 1)]);
        let c = gen(&g);
        let weights: Vec<Weight> = c.store.iter_live().map(|c| c.live_weight()).collect();
        assert!(weights.len() >= 2, "{weights:?}");
        assert_eq!(weights[0], 3);
        assert_eq!(weights[1], 3);
        // sorted order
        let mut sorted = weights.clone();
        sorted.sort_unstable();
        assert_eq!(weights, sorted);
    }

    #[test]
    fn self_loop_is_a_candidate() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1), (0, 1, 2), (0, 0, 7)]);
        let c = gen(&g);
        let weights: Vec<Weight> = c.store.iter_live().map(|c| c.live_weight()).collect();
        assert!(weights.contains(&3), "parallel pair cycle: {weights:?}");
        assert!(weights.contains(&7), "self-loop cycle: {weights:?}");
    }

    #[test]
    fn materialized_candidate_weight_matches() {
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1, 2),
                (1, 2, 3),
                (2, 3, 4),
                (3, 4, 5),
                (4, 0, 6),
                (1, 3, 7),
            ],
        );
        let c = gen(&g);
        for cand in c.store.iter_live() {
            let edges = c.materialize(&g, cand);
            // Cancel duplicates mod 2 before weighing.
            let mut count = std::collections::HashMap::new();
            for &e in &edges {
                *count.entry(e).or_insert(0u32) += 1;
            }
            let w: Weight = count
                .iter()
                .filter(|(_, &c)| c % 2 == 1)
                .map(|(&e, _)| g.weight(e))
                .sum();
            assert_eq!(w, cand.live_weight());
        }
    }

    #[test]
    fn store_take_first_respects_order_and_removes() {
        let cands: Vec<CandRef> = (0..200)
            .map(|i| CandRef {
                weight: i as Weight,
                z_idx: 0,
                edge: i,
            })
            .collect();
        let mut store = CycleStore::from_sorted(cands);
        let mut inspected = 0;
        // Take the first with even weight >= 5 → 6.
        let c = store
            .take_first(
                |c| c.live_weight() >= 5 && c.live_weight() % 2 == 0,
                &mut inspected,
            )
            .unwrap();
        assert_eq!(c.live_weight(), 6);
        assert_eq!(store.live(), 199);
        assert!(inspected >= 7);
        // 6 is gone; next even >= 5 is 8.
        let c2 = store
            .take_first(
                |c| c.live_weight() >= 5 && c.live_weight() % 2 == 0,
                &mut inspected,
            )
            .unwrap();
        assert_eq!(c2.live_weight(), 8);
    }

    #[test]
    fn store_compaction_unlinks_empty_nodes() {
        let cands: Vec<CandRef> = (0..NODE_CAP as u32 * 3)
            .map(|i| CandRef {
                weight: i as Weight,
                z_idx: 0,
                edge: i,
            })
            .collect();
        let mut store = CycleStore::from_sorted(cands);
        let mut ins = 0;
        // Drain the entire first node.
        for _ in 0..NODE_CAP {
            store.take_first(|_| true, &mut ins).unwrap();
        }
        assert_eq!(store.live(), NODE_CAP * 2);
        // First live candidate is now from the second node; the scan must
        // not crawl over the dead first node's slots.
        let before = ins;
        let c = store.take_first(|_| true, &mut ins).unwrap();
        assert_eq!(c.live_weight(), NODE_CAP as Weight);
        assert_eq!(ins - before, 1, "dead node should be unlinked");
    }

    #[test]
    fn empty_store() {
        let mut store = CycleStore::from_sorted(Vec::new());
        let mut ins = 0;
        assert!(store.take_first(|_| true, &mut ins).is_none());
        assert_eq!(store.live(), 0);
    }

    #[test]
    fn forest_has_no_candidates() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (1, 3, 1)]);
        let c = gen(&g);
        assert_eq!(c.store.live(), 0);
        assert!(c.z.is_empty());
    }
}
