//! The full MCB pipeline of paper §3.3: biconnected split, ear reduction
//! (Lemma 3.1), per-block de Pina, chain re-expansion.
//!
//! No cycle of an MCB spans two biconnected components, so each block is
//! processed independently. Inside a block, every maximal degree-2 chain
//! `P` collapses into one edge `e_P` with `W(e_P) = W(P)`; Lemma 3.1 proves
//! the reduced graph has the same cycle-space dimension and the same MCB
//! weight, and that substituting `e_P → P` in each chosen cycle of
//! `MCB(G^r)` yields an MCB of `G`. The reduced multigraph keeps parallel
//! chain edges and anchor-to-self loops — they are independent generators.

use std::time::Instant;

use ear_decomp::plan::DecompPlan;
use ear_graph::{CsrGraph, EdgeId, Weight};
use ear_hetero::HeteroExecutor;

use crate::cycle_space::{Cycle, CycleSpace};
use crate::depina::{depina_mcb_traced, replay_trace, DepinaOptions, PhaseProfile, PhaseTrace};

/// Which device set runs the algorithm — the four columns of the paper's
/// Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// One CPU core.
    Sequential,
    /// The 2×10-core E5-2650.
    MultiCore,
    /// The Tesla K40c alone.
    Gpu,
    /// CPU + GPU with dynamic work balancing.
    Hetero,
}

impl ExecMode {
    /// The matching executor.
    pub fn executor(&self) -> HeteroExecutor {
        match self {
            ExecMode::Sequential => HeteroExecutor::sequential(),
            ExecMode::MultiCore => HeteroExecutor::multicore(),
            ExecMode::Gpu => HeteroExecutor::gpu_only(),
            ExecMode::Hetero => HeteroExecutor::cpu_gpu(),
        }
    }

    /// All four modes, in the paper's Table 2 column order.
    pub fn all() -> [ExecMode; 4] {
        [
            ExecMode::Sequential,
            ExecMode::MultiCore,
            ExecMode::Gpu,
            ExecMode::Hetero,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::Sequential => "Sequential",
            ExecMode::MultiCore => "Multi-Core",
            ExecMode::Gpu => "GPU",
            ExecMode::Hetero => "CPU+GPU",
        }
    }
}

/// Pipeline configuration: execution mode × ear-reduction toggle — the full
/// grid of the paper's Table 2 ("w" and "w/o" columns).
#[derive(Clone, Copy, Debug)]
pub struct McbConfig {
    /// Device set.
    pub mode: ExecMode,
    /// Run the ear-decomposition reduction before de Pina.
    pub use_ear: bool,
}

impl Default for McbConfig {
    fn default() -> Self {
        McbConfig {
            mode: ExecMode::Hetero,
            use_ear: true,
        }
    }
}

/// Result of the MCB pipeline.
#[derive(Debug)]
pub struct McbResult {
    /// The basis cycles, with edge ids of the *original* graph.
    pub cycles: Vec<Cycle>,
    /// Sum of cycle weights — `W(MCB(G))`.
    pub total_weight: Weight,
    /// Cycle-space dimension `m − n + k`.
    pub dim: usize,
    /// Vertices removed by ear reduction across all blocks.
    pub removed_vertices: usize,
    /// Modelled per-phase times, aggregated across blocks.
    pub profile: PhaseProfile,
    /// Real wall-clock of the whole pipeline.
    pub wall_s: f64,
}

impl McbResult {
    /// Total modelled device time (the Table 2 cell).
    pub fn modelled_time_s(&self) -> f64 {
        self.profile.total_s()
    }
}

/// Runs the MCB pipeline on a simple weighted graph.
///
/// ```
/// use ear_mcb::{mcb, McbConfig};
/// use ear_graph::CsrGraph;
/// // K4 with unit weights: the MCB is three triangles.
/// let g = CsrGraph::from_edges(4, &[
///     (0, 1, 1), (0, 2, 1), (0, 3, 1), (1, 2, 1), (1, 3, 1), (2, 3, 1),
/// ]);
/// let out = mcb(&g, &McbConfig::default());
/// assert_eq!(out.dim, 3);
/// assert_eq!(out.total_weight, 9);
/// ```
pub fn mcb(g: &CsrGraph, config: &McbConfig) -> McbResult {
    mcb_with_plan(g, &DecompPlan::build(g), config)
}

/// Like [`mcb`], but reuses a prebuilt (and possibly shared)
/// [`DecompPlan`] instead of re-running the biconnected split and
/// per-block reduction. `plan` must have been built from `g` — after a
/// reweight, pair the reweighted graph with
/// [`DecompPlan::recustomized`](ear_decomp::plan::DecompPlan::recustomized),
/// not with the stale customization.
pub fn mcb_with_plan(g: &CsrGraph, plan: &DecompPlan, config: &McbConfig) -> McbResult {
    debug_assert!(
        plan.m() == g.m()
            && plan
                .edge_weights()
                .iter()
                .zip(g.edges())
                .all(|(&w, e)| w == e.w),
        "plan customization does not match g's weights — recustomize the plan first"
    );
    let (cycles, removed, trace, wall_s) = run_blocks(g, plan, config.use_ear);
    let profile = {
        let _s = ear_obs::span("mcb.replay");
        replay_trace(&trace, &config.mode.executor())
    };
    finish(cycles, removed, profile, wall_s)
}

/// Runs the real computation once and scores **all four execution modes**
/// from the recorded trace — what the Table 2 / Figure 5 / Figure 6
/// harnesses use. The returned [`McbResult`] carries the heterogeneous
/// profile; `profiles` follows [`ExecMode::all`] order.
pub fn mcb_all_modes(g: &CsrGraph, use_ear: bool) -> (McbResult, [PhaseProfile; 4]) {
    let plan = DecompPlan::build(g);
    let (cycles, removed, trace, wall_s) = run_blocks(g, &plan, use_ear);
    let profiles = ExecMode::all().map(|mode| replay_trace(&trace, &mode.executor()));
    let result = finish(cycles, removed, profiles[3].clone(), wall_s);
    (result, profiles)
}

/// Publish the final (aggregated, replayed) profile into the `ear-obs`
/// metrics registry under the `mcb.*` names the CLI `--profile` table and
/// the `--metrics-out` snapshot read. `mcb.fallbacks` and `mcb.phases`
/// are published by the phase loop itself; everything else lands here,
/// once per pipeline run.
fn publish_profile(p: &PhaseProfile) {
    if !ear_obs::is_enabled() {
        return;
    }
    ear_obs::gauge_set("mcb.trees_s", p.trees_s);
    ear_obs::gauge_set("mcb.labels_s", p.labels_s);
    ear_obs::gauge_set("mcb.search_s", p.search_s);
    ear_obs::gauge_set("mcb.update_s", p.update_s);
    ear_obs::counter_add("mcb.labels_computed", p.counters.labels_computed);
    ear_obs::counter_add("mcb.cycles_inspected", p.counters.cycles_inspected);
    ear_obs::counter_add("mcb.words_xored", p.counters.words_xored);
    ear_obs::counter_add("mcb.edges_relaxed", p.counters.edges_relaxed);
    ear_obs::counter_add("mcb.vertices_settled", p.counters.vertices_settled);
}

fn finish(cycles: Vec<Cycle>, removed: usize, profile: PhaseProfile, wall_s: f64) -> McbResult {
    let total_weight = cycles.iter().map(|c| c.weight).sum();
    let dim = cycles.len();
    publish_profile(&profile);
    if ear_obs::is_enabled() {
        ear_obs::counter_add("mcb.dim", dim as u64);
        ear_obs::counter_add("mcb.weight", total_weight);
    }
    McbResult {
        cycles,
        total_weight,
        dim,
        removed_vertices: removed,
        profile,
        wall_s,
    }
}

/// The mode-independent part: per-block de Pina on the plan's (reduced)
/// blocks, chain re-expansion, trace collection.
fn run_blocks(
    g: &CsrGraph,
    plan: &DecompPlan,
    use_ear: bool,
) -> (Vec<Cycle>, usize, PhaseTrace, f64) {
    let wall = Instant::now();
    let mut cycles: Vec<Cycle> = Vec::new();
    let mut trace = PhaseTrace::default();
    let mut removed = 0usize;
    let opts = DepinaOptions::default();

    let parent_cs = CycleSpace::new(g);
    // Blocks sorted by size: biggest first, the paper's workunit order.
    for b in plan.blocks_by_size_desc() {
        let b = b as u32;
        let bp = plan.block(b);
        if bp.m() < bp.n() {
            continue; // a bridge (tree block): no cycles
        }
        let _block_span = ear_obs::span_with("mcb.block", b as u64);
        if let Some(r) = use_ear.then(|| plan.reduction(b)).flatten() {
            removed += r.removed_count();
            let (basis_r, t) = depina_mcb_traced(&r.reduced, &opts);
            trace.merge(t);
            // Re-expand: reduced edge → original chain (paper §3.3.3: "just
            // by substituting every e_P present in the cycle with its
            // corresponding P").
            for c in basis_r {
                let sub_edges: Vec<EdgeId> =
                    c.edges.iter().flat_map(|&re| r.expand_edge(re)).collect();
                cycles.push(remap_cycle(g, &parent_cs, &bp.to_parent_edge, sub_edges));
            }
        } else {
            // De Pina needs owned storage; copied plans lend the block
            // directly, viewed plans materialize it (the escape hatch is
            // bit-identical to the copied block by construction).
            let owned;
            let sub = match &bp.sub {
                Some(sub) => sub,
                None => {
                    owned = plan.block_graph(b).materialize();
                    &owned
                }
            };
            let (basis_s, t) = depina_mcb_traced(sub, &opts);
            trace.merge(t);
            for c in basis_s {
                cycles.push(remap_cycle(g, &parent_cs, &bp.to_parent_edge, c.edges));
            }
        }
    }
    (cycles, removed, trace, wall.elapsed().as_secs_f64())
}

/// Lifts a cycle's subgraph edge ids to parent ids and recomputes its
/// metadata against the parent graph's cycle space.
fn remap_cycle(
    g: &CsrGraph,
    parent_cs: &CycleSpace,
    to_parent_edge: &[EdgeId],
    sub_edges: Vec<EdgeId>,
) -> Cycle {
    let parent_edges = sub_edges.iter().map(|&e| to_parent_edge[e as usize]);
    parent_cs.cycle_from_edges(g, parent_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::horton::horton_mcb;
    use crate::signed::signed_mcb;
    use crate::verify::verify_basis;

    fn weight(basis: &[Cycle]) -> Weight {
        basis.iter().map(|c| c.weight).sum()
    }

    /// Run the full grid and check every config agrees with the signed
    /// reference and passes structural verification.
    fn check_grid(g: &CsrGraph) -> McbResult {
        let reference = weight(&signed_mcb(g));
        let mut keep = None;
        for mode in [ExecMode::Sequential, ExecMode::Hetero] {
            for use_ear in [true, false] {
                let out = mcb(g, &McbConfig { mode, use_ear });
                assert_eq!(out.total_weight, reference, "mode {mode:?} ear {use_ear}");
                verify_basis(g, &out.cycles).unwrap();
                if use_ear && mode == ExecMode::Hetero {
                    keep = Some(out);
                }
            }
        }
        keep.unwrap()
    }

    #[test]
    fn theta_with_chains() {
        // Anchors 0,2 joined by three chains — reduction leaves a 2-vertex
        // multigraph with three parallel edges.
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (0, 3, 3),
                (3, 2, 4),
                (0, 4, 5),
                (4, 2, 6),
            ],
        );
        let out = check_grid(&g);
        assert_eq!(out.dim, 2);
        assert_eq!(out.removed_vertices, 3);
        // MCB: the two lightest ring pairs: (1+2)+(3+4)=10 and (1+2)+(5+6)=14.
        assert_eq!(out.total_weight, 24);
    }

    #[test]
    fn pure_cycle_reduces_to_self_loop() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)]);
        let out = check_grid(&g);
        assert_eq!(out.dim, 1);
        assert_eq!(out.total_weight, 10);
        assert_eq!(out.cycles[0].edges.len(), 4);
    }

    #[test]
    fn two_blocks_and_a_bridge() {
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 0, 3),
                (2, 3, 10),
                (3, 4, 1),
                (4, 5, 2),
                (5, 6, 3),
                (6, 3, 4),
            ],
        );
        let out = check_grid(&g);
        assert_eq!(out.dim, 2);
        assert_eq!(out.total_weight, 6 + 10);
    }

    #[test]
    fn grid_matches_horton() {
        let idx = |r: u32, c: u32| r * 4 + c;
        let mut edges = Vec::new();
        let mut w = 1u64;
        for r in 0..4u32 {
            for c in 0..4u32 {
                if c + 1 < 4 {
                    edges.push((idx(r, c), idx(r, c + 1), w));
                    w = w % 9 + 1;
                }
                if r + 1 < 4 {
                    edges.push((idx(r, c), idx(r + 1, c), w));
                    w = w % 6 + 1;
                }
            }
        }
        let g = CsrGraph::from_edges(16, &edges);
        let out = check_grid(&g);
        assert_eq!(out.total_weight, weight(&horton_mcb(&g)));
    }

    #[test]
    fn chain_heavy_graph_removes_most_vertices() {
        // Two hubs joined by four chains of three degree-2 vertices each.
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        let mut next = 2u32;
        for c in 0..4u64 {
            let (a, b, z) = (next, next + 1, next + 2);
            edges.push((0, a, c + 1));
            edges.push((a, b, 1));
            edges.push((b, z, 1));
            edges.push((z, 1, 1));
            next += 3;
        }
        let g = CsrGraph::from_edges(next as usize, &edges);
        let out = check_grid(&g);
        assert_eq!(out.removed_vertices, 12);
        assert_eq!(out.dim, 3);
        // Ear-reduced run must do far less label work than the direct run.
        let direct = mcb(
            &g,
            &McbConfig {
                mode: ExecMode::Sequential,
                use_ear: false,
            },
        );
        assert!(out.profile.counters.labels_computed < direct.profile.counters.labels_computed);
    }

    #[test]
    fn ear_reduction_speeds_up_the_model() {
        // A ring of 60 with 3 hub chords: heavy degree-2 population.
        let mut edges: Vec<(u32, u32, u64)> = (0..60).map(|i| (i, (i + 1) % 60, 2)).collect();
        edges.push((0, 20, 5));
        edges.push((20, 40, 5));
        edges.push((40, 0, 5));
        let g = CsrGraph::from_edges(60, &edges);
        let with = mcb(
            &g,
            &McbConfig {
                mode: ExecMode::Sequential,
                use_ear: true,
            },
        );
        let without = mcb(
            &g,
            &McbConfig {
                mode: ExecMode::Sequential,
                use_ear: false,
            },
        );
        assert_eq!(with.total_weight, without.total_weight);
        assert!(
            with.modelled_time_s() < without.modelled_time_s(),
            "with {} vs without {}",
            with.modelled_time_s(),
            without.modelled_time_s()
        );
    }

    #[test]
    fn empty_and_acyclic_graphs() {
        let out = mcb(&CsrGraph::from_edges(0, &[]), &McbConfig::default());
        assert_eq!(out.dim, 0);
        let tree = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (1, 3, 1)]);
        let out = mcb(&tree, &McbConfig::default());
        assert_eq!(out.dim, 0);
        assert_eq!(out.total_weight, 0);
    }

    #[test]
    fn dimension_matches_formula() {
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
                (6, 7, 1),
            ],
        );
        let cs = CycleSpace::new(&g);
        let out = mcb(&g, &McbConfig::default());
        assert_eq!(out.dim, cs.dim());
    }
}
