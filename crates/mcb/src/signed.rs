//! De Pina's signed auxiliary-graph search (paper §3.2.1).
//!
//! To find the minimum-weight cycle non-orthogonal to a witness `S`, build
//! a two-layer graph: each vertex `x` splits into `x⁺` and `x⁻`; an edge
//! with `S(e) = 0` connects same-signed copies, an edge with `S(e) = 1`
//! crosses layers. A shortest `x⁺ → x⁻` path then corresponds to a minimum
//! closed walk through `x` with odd witness intersection; minimising over
//! `x` in a feedback vertex set (every cycle meets it) yields the global
//! minimum, and cancelling repeated edges mod 2 turns the walk into the
//! minimum cycle vector.
//!
//! Used two ways: as the *backstop* inside the de Pina phase loop whenever
//! the restricted candidate store has no non-orthogonal cycle left, and as
//! a standalone exact MCB ([`signed_mcb`]) for cross-validation.

use ear_decomp::fvs::feedback_vertex_set;
use ear_graph::{with_engine, CsrGraph, VertexId, Weight, INF};
use ear_hetero::WorkCounters;

use crate::cycle_space::{Cycle, CycleSpace, DenseBits};

/// Finds the minimum-weight cycle `C` with `⟨C, S⟩ = 1`, or `None` if no
/// cycle intersects the witness (impossible for de Pina witnesses, which
/// always admit the fundamental cycle of their lowest set bit).
pub fn min_cycle_nonorthogonal(
    g: &CsrGraph,
    cs: &CycleSpace,
    s: &DenseBits,
    roots: Option<&[VertexId]>,
    counters: &mut WorkCounters,
) -> Option<Cycle> {
    let n = g.n();
    // Build the signed graph: vertex x⁺ = x, x⁻ = x + n.
    let mut aux_edges: Vec<(u32, u32, Weight)> = Vec::with_capacity(2 * g.m());
    // aux edge index -> original edge id (two aux edges per original).
    let mut origin: Vec<u32> = Vec::with_capacity(2 * g.m());
    for e in 0..g.m() as u32 {
        let r = g.edge(e);
        let idx = cs.nt_index[e as usize];
        let crossing = idx != u32::MAX && s.get(idx as usize);
        if r.is_self_loop() {
            if crossing {
                aux_edges.push((r.u, r.u + n as u32, r.w));
                origin.push(e);
            }
            // A non-crossing self-loop cannot participate in any odd walk.
            continue;
        }
        if crossing {
            aux_edges.push((r.u, r.v + n as u32, r.w));
            origin.push(e);
            aux_edges.push((r.u + n as u32, r.v, r.w));
            origin.push(e);
        } else {
            aux_edges.push((r.u, r.v, r.w));
            origin.push(e);
            aux_edges.push((r.u + n as u32, r.v + n as u32, r.w));
            origin.push(e);
        }
    }
    let aux = CsrGraph::from_edges(2 * n, &aux_edges);

    let fallback_roots;
    let roots: &[VertexId] = match roots {
        Some(r) => r,
        None => {
            fallback_roots = feedback_vertex_set(g);
            &fallback_roots
        }
    };

    // One pooled engine serves every root: a cheap distances-only run per
    // root selects the winner, and a single tree run on the winning root
    // extracts the path (legacy built a full tree per root).
    let orig_edges = with_engine(|eng| {
        let mut best: Option<(Weight, VertexId)> = None;
        for &x in roots {
            let stats = eng.run(&aux, x);
            counters.edges_relaxed += stats.edges_relaxed;
            counters.vertices_settled += stats.settled;
            let d = eng.dist(x + n as u32);
            if d >= INF {
                continue;
            }
            if best.is_none_or(|(bw, _)| d < bw) {
                best = Some((d, x));
            }
        }
        best.map(|(_, x)| {
            // Path work for the winning root was already counted above;
            // the tree re-run is bookkeeping, not modelled device work.
            eng.run_tree(&aux, x);
            let mut orig: Vec<u32> = Vec::new();
            let mut cur = x + n as u32;
            while cur != x {
                let ae = eng.parent_edge(cur);
                debug_assert_ne!(ae, u32::MAX);
                orig.push(origin[ae as usize]);
                cur = eng.parent_vertex(cur);
            }
            orig
        })
    });
    orig_edges.map(|edges| cs.cycle_from_edges(g, edges))
}

/// Exact MCB by pure de Pina with signed search in every phase — slower
/// than the candidate-restricted algorithm but with no tie-breaking
/// assumptions at all. Returns the basis cycles in selection order.
pub fn signed_mcb(g: &CsrGraph) -> Vec<Cycle> {
    let cs = CycleSpace::new(g);
    let f = cs.dim();
    let mut witnesses: Vec<DenseBits> = (0..f).map(|i| DenseBits::unit(f, i)).collect();
    let mut basis = Vec::with_capacity(f);
    let roots = feedback_vertex_set(g);
    let mut counters = WorkCounters::default();
    for i in 0..f {
        let c = min_cycle_nonorthogonal(g, &cs, &witnesses[i], Some(&roots), &mut counters)
            .expect("de Pina witness always admits a cycle");
        debug_assert!(
            witnesses[i].sparse_dot(&c.nt),
            "chosen cycle must hit witness"
        );
        for j in i + 1..f {
            if witnesses[j].sparse_dot(&c.nt) {
                let (a, b) = witnesses.split_at_mut(j);
                b[0].xor_assign(&a[i]);
            }
        }
        basis.push(c);
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_weight(basis: &[Cycle]) -> Weight {
        basis.iter().map(|c| c.weight).sum()
    }

    #[test]
    fn triangle_basis() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 3)]);
        let basis = signed_mcb(&g);
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0].weight, 6);
        assert_eq!(basis[0].edges.len(), 3);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // Outer square weight 8 must lose to the two triangles (4 + 4).
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 0, 2), (2, 3, 1), (3, 1, 2)]);
        let basis = signed_mcb(&g);
        assert_eq!(basis.len(), 2);
        assert_eq!(total_weight(&basis), 8);
    }

    #[test]
    fn k4_unit_weights() {
        let g = CsrGraph::from_edges(
            4,
            &[
                (0, 1, 1),
                (0, 2, 1),
                (0, 3, 1),
                (1, 2, 1),
                (1, 3, 1),
                (2, 3, 1),
            ],
        );
        let basis = signed_mcb(&g);
        assert_eq!(basis.len(), 3);
        assert_eq!(total_weight(&basis), 9); // three triangles
        assert!(basis.iter().all(|c| c.edges.len() == 3));
    }

    #[test]
    fn parallel_edges_and_self_loop() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 2), (0, 1, 3), (0, 0, 10)]);
        let basis = signed_mcb(&g);
        assert_eq!(basis.len(), 2);
        // Best basis: parallel pair (5) + self-loop (10).
        assert_eq!(total_weight(&basis), 15);
    }

    #[test]
    fn disconnected_components() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 2),
                (4, 5, 2),
                (5, 3, 2),
            ],
        );
        let basis = signed_mcb(&g);
        assert_eq!(basis.len(), 2);
        assert_eq!(total_weight(&basis), 9);
    }

    #[test]
    fn forest_has_empty_basis() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (1, 3, 1)]);
        assert!(signed_mcb(&g).is_empty());
    }

    #[test]
    fn heavy_chord_forces_big_cycles() {
        // A square with an expensive diagonal: basis should prefer the two
        // triangles only if the diagonal is cheap; here it is not.
        let g = CsrGraph::from_edges(
            4,
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 100)],
        );
        let basis = signed_mcb(&g);
        assert_eq!(basis.len(), 2);
        // Best: square (4) + one triangle with the diagonal (102).
        assert_eq!(total_weight(&basis), 106);
    }
}
