//! The GF(2) cycle space of a weighted multigraph.
//!
//! Fixing any spanning tree `T`, the non-tree edges `E' = {e₁, …, e_f}`
//! (`f = m − n + k`) index the cycle space: every cycle is uniquely
//! determined by its restriction to `E'` (paper §3.2), so witnesses are
//! dense `f`-bit vectors and cycles are sparse index lists.

use ear_graph::{non_tree_edges, tree_edge_flags, CsrGraph, EdgeId, Weight};

/// A dense GF(2) vector of fixed length `f`, packed into `u64` words.
///
/// This is the witness representation `S ∈ {0,1}^f`; the word-level XOR of
/// [`DenseBits::xor_assign`] is the paper's independence-test update, and
/// what the GPU mode reduces over warp-style.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseBits {
    len: usize,
    words: Vec<u64>,
}

impl DenseBits {
    /// All-zero vector of length `len`.
    pub fn zero(len: usize) -> Self {
        DenseBits {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Standard basis vector `e_i`.
    pub fn unit(len: usize, i: usize) -> Self {
        let mut b = Self::zero(len);
        b.set(i, true);
        b
    }

    /// Vector length (bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bit access.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Bit assignment.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// `self ^= other`; returns the number of words touched (the counter
    /// the independence-test cost model charges).
    pub fn xor_assign(&mut self, other: &DenseBits) -> u64 {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
        self.words.len() as u64
    }

    /// Inner product with a *sparse* vector given as sorted bit indices.
    #[inline]
    pub fn sparse_dot(&self, indices: &[u32]) -> bool {
        let mut acc = false;
        for &i in indices {
            acc ^= self.get(i as usize);
        }
        acc
    }

    /// Dense inner product `⟨self, other⟩` in GF(2).
    pub fn dense_dot(&self, other: &DenseBits) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Number of set bits.
    pub fn popcount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index of the lowest set bit.
    pub fn lowest_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Words backing the vector (read-only).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// A cycle (or general cycle-space vector): explicit edge set plus its
/// sparse restriction to `E'`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cycle {
    /// Every edge of the cycle (ids in the underlying graph).
    pub edges: Vec<EdgeId>,
    /// Total weight.
    pub weight: Weight,
    /// Sorted indices into the non-tree edge order `E'`.
    pub nt: Vec<u32>,
}

/// Spanning-tree frame over a multigraph: the ordered non-tree edges and
/// the maps between edge ids and `E'` indices.
#[derive(Clone, Debug)]
pub struct CycleSpace {
    /// `tree[e]` is true for spanning-forest edges.
    pub tree: Vec<bool>,
    /// Ascending non-tree edge ids, `E' = {e₁..e_f}`.
    pub nontree: Vec<EdgeId>,
    /// `edge id → index in E'` (`u32::MAX` for tree edges).
    pub nt_index: Vec<u32>,
}

impl CycleSpace {
    /// Builds the frame from a BFS spanning forest of `g`.
    pub fn new(g: &CsrGraph) -> Self {
        let tree = tree_edge_flags(g);
        let nontree = non_tree_edges(g);
        let mut nt_index = vec![u32::MAX; g.m()];
        for (i, &e) in nontree.iter().enumerate() {
            nt_index[e as usize] = i as u32;
        }
        CycleSpace {
            tree,
            nontree,
            nt_index,
        }
    }

    /// Cycle-space dimension `f = m − n + k`.
    pub fn dim(&self) -> usize {
        self.nontree.len()
    }

    /// Assembles a [`Cycle`] from an edge set, computing weight and the
    /// `E'` restriction. The edge list is deduplicated mod 2 (an edge
    /// appearing twice cancels), which is what re-expansion and signed
    /// search need.
    pub fn cycle_from_edges(&self, g: &CsrGraph, edges: impl IntoIterator<Item = EdgeId>) -> Cycle {
        let mut toggle = std::collections::HashMap::<EdgeId, bool>::new();
        for e in edges {
            *toggle.entry(e).or_insert(false) ^= true;
        }
        let mut kept: Vec<EdgeId> = toggle
            .into_iter()
            .filter_map(|(e, on)| on.then_some(e))
            .collect();
        kept.sort_unstable();
        let weight = kept.iter().map(|&e| g.weight(e)).sum();
        let mut nt: Vec<u32> = kept
            .iter()
            .filter_map(|&e| {
                let i = self.nt_index[e as usize];
                (i != u32::MAX).then_some(i)
            })
            .collect();
        nt.sort_unstable();
        Cycle {
            edges: kept,
            weight,
            nt,
        }
    }

    /// The witness-space representation of a cycle as a dense vector.
    pub fn to_dense(&self, c: &Cycle) -> DenseBits {
        let mut b = DenseBits::zero(self.dim());
        for &i in &c.nt {
            b.set(i as usize, true);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_bits_roundtrip() {
        let mut b = DenseBits::zero(100);
        assert!(b.is_empty());
        b.set(0, true);
        b.set(64, true);
        b.set(99, true);
        assert!(b.get(0) && b.get(64) && b.get(99));
        assert!(!b.get(1));
        assert_eq!(b.popcount(), 3);
        assert_eq!(b.lowest_set(), Some(0));
        b.set(0, false);
        assert_eq!(b.lowest_set(), Some(64));
    }

    #[test]
    fn unit_vectors_are_orthonormal() {
        for i in 0..5 {
            for j in 0..5 {
                let a = DenseBits::unit(5, i);
                let b = DenseBits::unit(5, j);
                assert_eq!(a.dense_dot(&b), i == j);
            }
        }
    }

    #[test]
    fn xor_assign_is_gf2_addition() {
        let mut a = DenseBits::unit(70, 3);
        let b = DenseBits::unit(70, 68);
        a.xor_assign(&b);
        assert!(a.get(3) && a.get(68));
        a.xor_assign(&b);
        assert!(a.get(3) && !a.get(68));
    }

    #[test]
    fn sparse_dot_matches_dense_dot() {
        let mut a = DenseBits::zero(10);
        a.set(2, true);
        a.set(7, true);
        // sparse vector {2, 5}: intersection {2} → odd → true
        assert!(a.sparse_dot(&[2, 5]));
        // sparse {2, 7}: intersection even → false
        assert!(!a.sparse_dot(&[2, 7]));
    }

    #[test]
    fn cycle_space_dimension() {
        // Triangle plus pendant: m=4, n=4, k=1 → f=1.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 1)]);
        let cs = CycleSpace::new(&g);
        assert_eq!(cs.dim(), 1);
        // Two components, each a triangle: f = 6 - 6 + 2 = 2.
        let g2 = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
        );
        assert_eq!(CycleSpace::new(&g2).dim(), 2);
    }

    #[test]
    fn self_loops_and_parallel_edges_count_in_dimension() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1), (0, 1, 2), (0, 0, 3)]);
        let cs = CycleSpace::new(&g);
        // m=3, n=2, k=1 → f = 2 (one parallel copy + the self-loop).
        assert_eq!(cs.dim(), 2);
    }

    #[test]
    fn cycle_from_edges_cancels_duplicates() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 5), (1, 2, 7), (2, 0, 9)]);
        let cs = CycleSpace::new(&g);
        let c = cs.cycle_from_edges(&g, vec![0, 1, 2, 1, 1]);
        assert_eq!(c.edges, vec![0, 1, 2]);
        assert_eq!(c.weight, 21);
        let c2 = cs.cycle_from_edges(&g, vec![0, 0]);
        assert!(c2.edges.is_empty());
        assert_eq!(c2.weight, 0);
    }

    #[test]
    fn to_dense_restricts_to_nontree() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        let cs = CycleSpace::new(&g);
        assert_eq!(cs.dim(), 1);
        let c = cs.cycle_from_edges(&g, vec![0, 1, 2]);
        assert_eq!(c.nt.len(), 1);
        let d = cs.to_dense(&c);
        assert_eq!(d.popcount(), 1);
    }
}
