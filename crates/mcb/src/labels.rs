//! Per-tree node labels (paper Algorithm 3, after Mehlhorn–Michail).
//!
//! For the current witness `S`, the label of node `u` in tree `T_z` is
//! `l_z(u) = ⟨path_z(u), S⟩`: the GF(2) parity of witness bits over the
//! non-tree edges (w.r.t. the *global* spanning tree) on the root path.
//! With labels in hand, whether candidate `C_ze` is non-orthogonal to `S`
//! is a constant-time test:
//! `⟨C_ze, S⟩ = l_z(u) ⊕ l_z(v) ⊕ (S(e) if e ∈ E')`.
//!
//! One label pass costs `O(n)` per tree and the passes are independent
//! across trees — this is the dominant phase the paper measures at 76% of
//! MCB runtime (§3.5), and the one it parallelises across CPU and GPU.

use ear_graph::SsspTree;
use ear_hetero::WorkCounters;

use crate::candidates::{CandRef, Candidates};
use crate::cycle_space::{CycleSpace, DenseBits};

/// Labels for every tree, for one witness.
pub struct Labels {
    /// `per_tree[i][u]` = `l_{z_i}(u)`.
    pub per_tree: Vec<Vec<bool>>,
}

/// Computes the labels of a single tree against witness `s` — the two
/// passes of Algorithm 3 fused into one top-down sweep (children follow
/// parents in [`SsspTree::top_down_order`], so `l(parent)` is final when
/// `l(u)` is formed).
pub fn tree_labels(
    t: &SsspTree,
    order: &[ear_graph::VertexId],
    cs: &CycleSpace,
    s: &DenseBits,
) -> (Vec<bool>, WorkCounters) {
    let n = t.dist.len();
    let mut l = vec![false; n];
    let mut count = 0u64;
    for &u in order {
        if u == t.source {
            continue;
        }
        let p = t.parent_vertex[u as usize];
        let pe = t.parent_edge[u as usize];
        // c_z(u): the witness bit of the incoming tree edge if it is
        // non-tree w.r.t. the global spanning tree, else 0.
        let idx = cs.nt_index[pe as usize];
        let c = idx != u32::MAX && s.get(idx as usize);
        l[u as usize] = l[p as usize] ^ c;
        count += 1;
    }
    (
        l,
        WorkCounters {
            labels_computed: count,
            ..Default::default()
        },
    )
}

/// The O(1) orthogonality test for a candidate, given its tree's labels.
#[inline]
pub fn candidate_dot(
    cand: &CandRef,
    labels: &Labels,
    cs: &CycleSpace,
    s: &DenseBits,
    g: &ear_graph::CsrGraph,
) -> bool {
    let l = &labels.per_tree[cand.z_idx as usize];
    let r = g.edge(cand.edge);
    let idx = cs.nt_index[cand.edge as usize];
    let se = idx != u32::MAX && s.get(idx as usize);
    l[r.u as usize] ^ l[r.v as usize] ^ se
}

/// Computes all trees' labels (the caller decides how to schedule; this is
/// the plain sequential form used by tests).
pub fn all_labels(c: &Candidates, cs: &CycleSpace, s: &DenseBits) -> (Labels, WorkCounters) {
    let mut per_tree = Vec::with_capacity(c.trees.len());
    let mut total = WorkCounters::default();
    for (t, ord) in c.trees.iter().zip(&c.order) {
        let (l, w) = tree_labels(t, ord, cs, s);
        total.merge(&w);
        per_tree.push(l);
    }
    (Labels { per_tree }, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate;
    use ear_graph::CsrGraph;

    /// Brute-force ⟨C, S⟩ by materialising the candidate.
    fn slow_dot(
        g: &CsrGraph,
        c: &Candidates,
        cs: &CycleSpace,
        cand: &CandRef,
        s: &DenseBits,
    ) -> bool {
        let cyc = cs.cycle_from_edges(g, c.materialize(g, cand));
        s.sparse_dot(&cyc.nt)
    }

    #[test]
    fn labels_agree_with_brute_force_on_k4() {
        let g = CsrGraph::from_edges(
            4,
            &[
                (0, 1, 1),
                (0, 2, 2),
                (0, 3, 3),
                (1, 2, 4),
                (1, 3, 5),
                (2, 3, 6),
            ],
        );
        let cs = CycleSpace::new(&g);
        let c = generate(&g);
        // Try every unit witness and a couple of combined ones.
        let mut witnesses: Vec<DenseBits> = (0..cs.dim())
            .map(|i| DenseBits::unit(cs.dim(), i))
            .collect();
        let mut combo = DenseBits::zero(cs.dim());
        for i in 0..cs.dim() {
            combo.set(i, true);
        }
        witnesses.push(combo);
        for s in &witnesses {
            let (labels, counters) = all_labels(&c, &cs, s);
            assert!(counters.labels_computed > 0);
            for cand in c.store.iter_live() {
                assert_eq!(
                    candidate_dot(cand, &labels, &cs, s, &g),
                    slow_dot(&g, &c, &cs, cand, s),
                    "candidate {cand:?} witness {s:?}"
                );
            }
        }
    }

    #[test]
    fn labels_agree_on_multigraph() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (0, 1, 4), (1, 2, 2), (2, 0, 3), (1, 1, 9)]);
        let cs = CycleSpace::new(&g);
        let c = generate(&g);
        for i in 0..cs.dim() {
            let s = DenseBits::unit(cs.dim(), i);
            let (labels, _) = all_labels(&c, &cs, &s);
            for cand in c.store.iter_live() {
                assert_eq!(
                    candidate_dot(cand, &labels, &cs, &s, &g),
                    slow_dot(&g, &c, &cs, cand, &s)
                );
            }
        }
    }

    #[test]
    fn zero_witness_gives_zero_labels() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        let cs = CycleSpace::new(&g);
        let c = generate(&g);
        let s = DenseBits::zero(cs.dim());
        let (labels, _) = all_labels(&c, &cs, &s);
        assert!(labels.per_tree[0].iter().all(|&b| !b));
    }
}
