//! Horton's original MCB algorithm (paper §3.2, Horton 1987).
//!
//! Generate the fundamental cycles of the shortest-path tree from *every*
//! vertex (`n·(m−n+1)` candidates), sort by weight, and greedily keep each
//! cycle that is GF(2)-independent of those already kept, until `f` are
//! found. Polynomial but heavy — the first polynomial MCB algorithm, used
//! here as the historically-faithful baseline and as another independent
//! oracle for cross-validation.

use ear_graph::{with_engine, CsrGraph, Weight};

use crate::cycle_space::{Cycle, CycleSpace, DenseBits};

/// Computes an MCB with Horton's algorithm. Returns the chosen cycles in
/// weight order.
pub fn horton_mcb(g: &CsrGraph) -> Vec<Cycle> {
    let cs = CycleSpace::new(g);
    let f = cs.dim();
    if f == 0 {
        return Vec::new();
    }

    // Candidate generation from every vertex; one pooled engine is held
    // across the whole n-source sweep.
    let mut cands: Vec<Cycle> = Vec::new();
    let mut seen = std::collections::HashSet::<(Weight, Vec<u32>)>::new();
    with_engine(|eng| {
        for z in 0..g.n() as u32 {
            eng.run_tree(g, z);
            let t = eng.tree();
            for e in 0..g.m() as u32 {
                let r = g.edge(e);
                if r.is_self_loop() {
                    if r.u == z {
                        let c = cs.cycle_from_edges(g, vec![e]);
                        if seen.insert((c.weight, c.nt.clone())) {
                            cands.push(c);
                        }
                    }
                    continue;
                }
                if !t.reachable(r.u) || !t.reachable(r.v) {
                    continue;
                }
                if t.parent_edge[r.u as usize] == e || t.parent_edge[r.v as usize] == e {
                    continue;
                }
                let mut edges = t.path_edges_to_root(r.u).unwrap();
                edges.extend(t.path_edges_to_root(r.v).unwrap());
                edges.push(e);
                let c = cs.cycle_from_edges(g, edges);
                if c.edges.is_empty() {
                    continue; // paths fully overlapped: no cycle through z
                }
                if seen.insert((c.weight, c.nt.clone())) {
                    cands.push(c);
                }
            }
        }
    });
    cands.sort_by(|a, b| (a.weight, &a.nt).cmp(&(b.weight, &b.nt)));

    // Greedy independence filter (Gaussian elimination over E').
    let mut basis: Vec<Cycle> = Vec::with_capacity(f);
    let mut pivots: Vec<DenseBits> = Vec::new();
    let mut pivot_cols: Vec<usize> = Vec::new();
    for c in cands {
        if basis.len() == f {
            break;
        }
        let mut v = cs.to_dense(&c);
        let mut independent = true;
        loop {
            let Some(low) = v.lowest_set() else {
                independent = false;
                break;
            };
            match pivot_cols.iter().position(|&p| p == low) {
                Some(i) => {
                    let piv = pivots[i].clone();
                    v.xor_assign(&piv);
                }
                None => {
                    pivot_cols.push(low);
                    pivots.push(v);
                    break;
                }
            }
        }
        if independent {
            basis.push(c);
        }
    }
    assert_eq!(basis.len(), f, "Horton set must span the cycle space");
    basis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signed::signed_mcb;
    use crate::verify::verify_basis;

    fn weight(basis: &[Cycle]) -> Weight {
        basis.iter().map(|c| c.weight).sum()
    }

    #[test]
    fn matches_signed_on_small_graphs() {
        let graphs = vec![
            CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 3)]),
            CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 0, 2), (2, 3, 1), (3, 1, 2)]),
            CsrGraph::from_edges(
                4,
                &[
                    (0, 1, 1),
                    (0, 2, 1),
                    (0, 3, 1),
                    (1, 2, 1),
                    (1, 3, 1),
                    (2, 3, 1),
                ],
            ),
            CsrGraph::from_edges(
                5,
                &[
                    (0, 1, 3),
                    (1, 2, 5),
                    (2, 3, 7),
                    (3, 4, 9),
                    (4, 0, 2),
                    (1, 3, 4),
                    (0, 2, 8),
                ],
            ),
        ];
        for g in graphs {
            let h = horton_mcb(&g);
            let s = signed_mcb(&g);
            assert_eq!(weight(&h), weight(&s), "graph m={}", g.m());
            verify_basis(&g, &h).unwrap();
        }
    }

    #[test]
    fn multigraph_with_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (0, 1, 2), (1, 2, 1), (2, 0, 1), (2, 2, 4)]);
        let h = horton_mcb(&g);
        let s = signed_mcb(&g);
        assert_eq!(weight(&h), weight(&s));
        verify_basis(&g, &h).unwrap();
    }

    #[test]
    fn empty_and_forest_graphs() {
        assert!(horton_mcb(&CsrGraph::from_edges(0, &[])).is_empty());
        assert!(horton_mcb(&CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)])).is_empty());
    }
}
