//! Packed GF(2) linear-algebra kernels for the de Pina phase loop.
//!
//! The scalar phase loop ([`crate::depina::legacy`]) keeps each witness
//! `S_j ∈ {0,1}^f` as its own [`DenseBits`] vector and, every phase, probes
//! them one at a time: `f` sparse dot products (`O(|C_i|)` bit reads each)
//! to find the non-orthogonal witnesses, then one word XOR per hit. This
//! module batches all of that into word-parallel kernels over a single
//! contiguous matrix:
//!
//! * [`BitMatrix`] — the **word-transposed** witness matrix `T`. Row `b`
//!   (one row per non-tree edge bit of `E'`) packs bit `b` of *every*
//!   witness: bit `j` of `T[b]` is `S_j(b)`. Both phase-3 kernels become
//!   row-granular XOR sweeps:
//!   - *batched dot* — the `f` sparse products `⟨C_i, S_j⟩` collapse into
//!     `acc = ⊕_{b ∈ C_i} T[b]`, whose bit `j` is exactly `⟨C_i, S_j⟩`:
//!     `|C_i| · ⌈f/64⌉` word XORs instead of `f · |C_i|` bit probes;
//!   - *batched update* — `S_j ← S_j ⊕ S_i` for every flagged `j > i` is
//!     `T[b] ← T[b] ⊕ mask` for each `b` in the support of `S_i`, where
//!     `mask` is `acc` with bits `0..=i` cleared. Row XORs are chunked,
//!     4-way unrolled, and fanned out across row blocks via rayon once the
//!     touched volume crosses [`PAR_UPDATE_WORDS`].
//! * [`PackedWitness`] — the current witness `S_i`, extracted from column
//!   `i` of the matrix into flat words with one always-zero **sentinel bit**
//!   at index `f`, so the label pass tests `S(e)` without branching on
//!   "is this a non-tree edge".
//! * [`TreePacks`] — the per-tree edge-incidence packing: for every tree,
//!   the top-down `(vertex, parent, witness bit)` triples flattened into
//!   three contiguous arrays. The per-phase label pass (paper Algorithm 3)
//!   becomes a tight sweep over these arrays — no graph, tree-struct, or
//!   `nt_index` indirection in the loop.
//! * [`EdgePack`] — per-edge `(u, v, witness bit)` arrays making the
//!   candidate orthogonality test three array reads and two XORs.
//! * [`DepinaScratch`] — all of the above plus the label bytes, pooled per
//!   thread ([`with_depina_scratch`], the TLS-slot + global-free-list
//!   pattern of `ear_graph::engine`), so the phase loop allocates nothing
//!   per phase and runs warm across blocks.
//!
//! The kernels change **how** the work is executed, never **what** work the
//! trace records: callers reconstruct the exact per-unit
//! [`ear_hetero::WorkCounters`] multisets of the scalar loop from the batch
//! results (`tests/mcb_kernels_differential.rs` enforces equality).

use std::cell::RefCell;
use std::sync::Mutex;

use ear_graph::CsrGraph;
use rayon::prelude::*;

use crate::candidates::{CandRef, Candidates};
use crate::cycle_space::{CycleSpace, DenseBits};

/// Touched-word threshold past which a batched witness update fans out
/// across row blocks on the rayon pool. Below it the sequential sweep wins
/// (worker launch costs more than the XOR volume).
pub const PAR_UPDATE_WORDS: usize = 1 << 16;

/// Packed-entry threshold past which the label pass runs trees in
/// parallel.
pub const PAR_LABEL_ENTRIES: usize = 1 << 14;

/// `dst ^= src`, chunked and 4-way unrolled (the compiler widens the
/// unrolled body to SIMD XORs; `chunks_exact` removes the bounds checks).
#[inline]
fn xor_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] ^= sc[0];
        dc[1] ^= sc[1];
        dc[2] ^= sc[2];
        dc[3] ^= sc[3];
    }
    for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x ^= *y;
    }
}

/// The word-transposed witness matrix: `rows` bit positions × `cols`
/// witnesses, row-major, each row `⌈cols/64⌉` words. Bit `j` of row `b` is
/// `S_j(b)`.
#[derive(Clone, Debug, Default)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    /// Words per row.
    wpr: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An empty matrix; [`reset_identity`](Self::reset_identity) sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reshapes to `n × n` and loads the identity (`S_j = e_j`, the de
    /// Pina starting witnesses), reusing the existing allocation.
    pub fn reset_identity(&mut self, n: usize) {
        self.rows = n;
        self.cols = n;
        self.wpr = n.div_ceil(64);
        self.words.clear();
        self.words.resize(n * self.wpr, 0);
        for b in 0..n {
            self.words[b * self.wpr + b / 64] |= 1u64 << (b % 64);
        }
    }

    /// Matrix dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `b` as packed words.
    #[inline]
    pub fn row(&self, b: usize) -> &[u64] {
        &self.words[b * self.wpr..(b + 1) * self.wpr]
    }

    /// Bit `(row, col)` — `S_col(row)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        (self.row(row)[col / 64] >> (col % 64)) & 1 == 1
    }

    /// The batched dot-product kernel: `acc = ⊕_{b ∈ rows} T[b]`, so bit
    /// `j` of `acc` is `⟨C, S_j⟩` for the sparse cycle vector `C = rows`.
    /// `acc` must be `⌈cols/64⌉` words; it is overwritten.
    pub fn xor_rows_into(&self, rows: &[u32], acc: &mut [u64]) {
        debug_assert_eq!(acc.len(), self.wpr);
        acc.fill(0);
        for &b in rows {
            xor_into(acc, self.row(b as usize));
        }
    }

    /// The batched update kernel: `T[b] ^= mask` for every row `b` in
    /// `rows` (sorted ascending). Fans out across contiguous row blocks on
    /// the rayon pool once the touched volume exceeds
    /// [`PAR_UPDATE_WORDS`].
    pub fn xor_mask_rows(&mut self, rows: &[u32], mask: &[u64]) {
        debug_assert_eq!(mask.len(), self.wpr);
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        let wpr = self.wpr;
        if rows.len() * wpr < PAR_UPDATE_WORDS {
            for &b in rows {
                xor_into(
                    &mut self.words[b as usize * wpr..(b as usize + 1) * wpr],
                    mask,
                );
            }
            return;
        }
        // Row-block parallel path: split the backing words into disjoint
        // contiguous blocks of whole rows and give each worker the slice
        // of `rows` that lands in its block (`rows` is sorted, so that
        // slice is a subrange found by binary search).
        let block_rows = self
            .rows
            .div_ceil(std::thread::available_parallelism().map_or(1, |p| p.get()) * 4);
        let block_rows = block_rows.max(1);
        let mut blocks: Vec<(usize, &mut [u64])> = self
            .words
            .chunks_mut(block_rows * wpr)
            .enumerate()
            .collect();
        blocks.par_iter_mut().for_each(|(bi, block)| {
            let lo = *bi * block_rows;
            let hi = lo + block.len() / wpr;
            let start = rows.partition_point(|&r| (r as usize) < lo);
            let end = rows.partition_point(|&r| (r as usize) < hi);
            for &b in &rows[start..end] {
                let off = (b as usize - lo) * wpr;
                xor_into(&mut block[off..off + wpr], mask);
            }
        });
    }

    /// Extracts column `col` (witness `S_col`) into `out`: bit `b` of
    /// `out` is `T[b]`'s bit `col`. `out` must hold at least
    /// `⌈rows/64⌉` words; words beyond that are untouched.
    pub fn extract_col(&self, col: usize, out: &mut [u64]) {
        out[..self.rows.div_ceil(64)].fill(0);
        let w = col / 64;
        let sh = col % 64;
        for (b, row) in self.words.chunks_exact(self.wpr.max(1)).enumerate() {
            out[b >> 6] |= ((row[w] >> sh) & 1) << (b & 63);
        }
    }
}

/// Clears bits `0..=i` of a packed word slice (keeps strictly higher
/// bits) — the "only update later witnesses" mask step.
#[inline]
pub fn clear_bits_through(words: &mut [u64], i: usize) {
    let w = i / 64;
    for x in &mut words[..w] {
        *x = 0;
    }
    // Two shifts so `i % 64 == 63` cannot overflow the shift amount.
    words[w] &= (u64::MAX << (i % 64)) << 1;
}

/// Popcount over packed words.
#[inline]
pub fn popcount(words: &[u64]) -> u64 {
    words.iter().map(|w| w.count_ones() as u64).sum()
}

/// The current phase's witness `S_i`, extracted from the matrix column
/// into flat words, with one extra always-zero **sentinel bit** at index
/// `len` so spanning-tree edges (no witness bit) read as 0 without a
/// branch.
#[derive(Clone, Debug, Default)]
pub struct PackedWitness {
    words: Vec<u64>,
    len: usize,
}

impl PackedWitness {
    /// The sentinel bit index for witnesses of length `f`.
    #[inline]
    pub fn sentinel(f: usize) -> u32 {
        f as u32
    }

    /// Resizes for length `f` (plus the sentinel bit) and zeroes
    /// everything, reusing the allocation.
    pub fn reset(&mut self, f: usize) {
        self.len = f;
        self.words.clear();
        self.words.resize((f + 1).div_ceil(64), 0);
    }

    /// Witness length (excluding the sentinel).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the witness has length zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit read; `bit` may be the sentinel index (always 0).
    #[inline]
    pub fn get(&self, bit: u32) -> bool {
        (self.words[(bit >> 6) as usize] >> (bit & 63)) & 1 == 1
    }

    /// Loads column `col` of `m` (must have `len()` rows).
    pub fn load_col(&mut self, m: &BitMatrix, col: usize) {
        debug_assert_eq!(m.dims().0, self.len);
        self.words.fill(0);
        m.extract_col(col, &mut self.words);
    }

    /// Sorted indices of the set bits (the support of `S_i` — the rows the
    /// batched update must XOR), appended to `out`.
    pub fn support_into(&self, out: &mut Vec<u32>) {
        out.clear();
        for (wi, &w) in self.words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                out.push((wi * 64) as u32 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        debug_assert!(out.last().is_none_or(|&b| (b as usize) < self.len));
    }

    /// Inner product with a sparse vector of bit indices.
    pub fn sparse_dot(&self, indices: &[u32]) -> bool {
        indices.iter().fold(false, |acc, &b| acc ^ self.get(b))
    }

    /// Copies into a [`DenseBits`] (the signed-search backstop's witness
    /// type). Allocates — only used on the rare fallback path.
    pub fn to_dense(&self) -> DenseBits {
        let mut d = DenseBits::zero(self.len);
        for b in 0..self.len {
            if self.get(b as u32) {
                d.set(b, true);
            }
        }
        d
    }
}

/// Per-tree edge-incidence packing: for every candidate tree, the
/// top-down `(vertex, parent, witness bit)` triples flattened into
/// contiguous arrays, so one phase's label pass is a sweep over flat
/// memory.
#[derive(Clone, Debug, Default)]
pub struct TreePacks {
    /// Vertices per tree (= `g.n()`; labels are indexed by vertex id).
    n: usize,
    trees: usize,
    /// Vertex receiving the label at each packed entry.
    vertex: Vec<u32>,
    /// Its parent in the tree (label already final — top-down order).
    parent: Vec<u32>,
    /// Witness bit of the connecting tree edge (sentinel if the edge is in
    /// the global spanning tree).
    bit: Vec<u32>,
    /// Entry ranges per tree (`trees + 1` fenceposts).
    offsets: Vec<u32>,
}

impl TreePacks {
    /// Rebuilds the packing for `cands`' trees against `cs`, reusing
    /// allocations.
    pub fn build(&mut self, cands: &Candidates, cs: &CycleSpace, n: usize) {
        let sentinel = PackedWitness::sentinel(cs.dim());
        self.n = n;
        self.trees = cands.trees.len();
        self.vertex.clear();
        self.parent.clear();
        self.bit.clear();
        self.offsets.clear();
        self.offsets.push(0);
        for (t, ord) in cands.trees.iter().zip(&cands.order) {
            for &u in ord {
                if u == t.source {
                    continue;
                }
                self.vertex.push(u);
                self.parent.push(t.parent_vertex[u as usize]);
                let idx = cs.nt_index[t.parent_edge[u as usize] as usize];
                self.bit.push(if idx == u32::MAX { sentinel } else { idx });
            }
            self.offsets.push(self.vertex.len() as u32);
        }
    }

    /// Number of packed trees.
    pub fn trees(&self) -> usize {
        self.trees
    }

    /// Labels-computed count of tree `t` — identical to what the scalar
    /// label pass counts, without doing the work.
    pub fn count(&self, t: usize) -> u64 {
        (self.offsets[t + 1] - self.offsets[t]) as u64
    }

    /// Total label bytes the pass writes (`trees × n`).
    pub fn label_len(&self) -> usize {
        self.trees * self.n
    }

    /// One phase's label pass for every tree against witness `s`.
    /// `labels` is the flat `trees × n` byte buffer; tree `t`'s labels
    /// live at `labels[t*n..][..n]`. Sources and unreachable vertices are
    /// never written — the caller zeroes the buffer once per run.
    /// Parallel across trees once the packed volume crosses
    /// [`PAR_LABEL_ENTRIES`].
    pub fn labels_pass(&self, s: &PackedWitness, labels: &mut [u8]) {
        debug_assert_eq!(labels.len(), self.label_len());
        if self.vertex.len() < PAR_LABEL_ENTRIES || self.trees <= 1 {
            for (t, lab) in labels.chunks_mut(self.n.max(1)).enumerate() {
                self.labels_one(t, s, lab);
            }
            return;
        }
        let mut slices: Vec<(usize, &mut [u8])> = labels.chunks_mut(self.n).enumerate().collect();
        slices.par_iter_mut().for_each(|(t, lab)| {
            self.labels_one(*t, s, lab);
        });
    }

    fn labels_one(&self, t: usize, s: &PackedWitness, lab: &mut [u8]) {
        let lo = self.offsets[t] as usize;
        let hi = self.offsets[t + 1] as usize;
        for k in lo..hi {
            let c = s.get(self.bit[k]) as u8;
            lab[self.vertex[k] as usize] = lab[self.parent[k] as usize] ^ c;
        }
    }
}

/// Per-edge packing for the O(1) candidate orthogonality test:
/// `⟨C_ze, S⟩ = l_z(u) ⊕ l_z(v) ⊕ S(e)` as three flat-array reads.
#[derive(Clone, Debug, Default)]
pub struct EdgePack {
    u: Vec<u32>,
    v: Vec<u32>,
    bit: Vec<u32>,
}

impl EdgePack {
    /// Rebuilds the per-edge arrays for `g` against `cs`, reusing
    /// allocations.
    pub fn build(&mut self, g: &CsrGraph, cs: &CycleSpace) {
        let sentinel = PackedWitness::sentinel(cs.dim());
        self.u.clear();
        self.v.clear();
        self.bit.clear();
        for e in 0..g.m() as u32 {
            let r = g.edge(e);
            self.u.push(r.u);
            self.v.push(r.v);
            let idx = cs.nt_index[e as usize];
            self.bit.push(if idx == u32::MAX { sentinel } else { idx });
        }
    }

    /// The candidate orthogonality test against tree `cand.z_idx`'s labels
    /// (a slice of the flat label buffer) and witness `s`.
    #[inline]
    pub fn candidate_dot(
        &self,
        cand: &CandRef,
        labels: &[u8],
        n: usize,
        s: &PackedWitness,
    ) -> bool {
        let base = cand.z_idx as usize * n;
        let e = cand.edge as usize;
        let l = labels[base + self.u[e] as usize] ^ labels[base + self.v[e] as usize];
        (l != 0) ^ s.get(self.bit[e])
    }
}

/// All scratch state of one batched de Pina run, pooled across runs: the
/// word-transposed witness matrix, the extracted witness, the accumulator
/// and update-mask rows, the support index list, the flat label bytes, and
/// the tree/edge packings.
#[derive(Debug, Default)]
pub struct DepinaScratch {
    /// Word-transposed witness matrix `T`.
    pub matrix: BitMatrix,
    /// Extracted current witness `S_i` (with sentinel bit).
    pub witness: PackedWitness,
    /// Batched-dot accumulator row (`⌈f/64⌉` words).
    pub acc: Vec<u64>,
    /// Support of `S_i` (row indices for the batched update).
    pub support: Vec<u32>,
    /// Flat per-tree label bytes (`trees × n`).
    pub labels: Vec<u8>,
    /// Per-tree edge-incidence packing.
    pub tree_packs: TreePacks,
    /// Per-edge `(u, v, bit)` packing.
    pub edge_pack: EdgePack,
}

impl DepinaScratch {
    /// A fresh, empty scratch (arrays grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes every buffer for a run on `g` with candidate set `cands`:
    /// identity witness matrix, zeroed labels, rebuilt packings.
    pub fn prepare(&mut self, g: &CsrGraph, cs: &CycleSpace, cands: &Candidates) {
        let f = cs.dim();
        self.matrix.reset_identity(f);
        self.witness.reset(f);
        self.acc.clear();
        self.acc.resize(f.div_ceil(64), 0);
        self.tree_packs.build(cands, cs, g.n());
        self.edge_pack.build(g, cs);
        self.labels.clear();
        self.labels.resize(self.tree_packs.label_len(), 0);
    }

    /// Loads witness `S_i` from the matrix and recomputes every tree's
    /// labels against it — the batched phase-1 kernel.
    pub fn begin_phase(&mut self, i: usize) {
        self.witness.load_col(&self.matrix, i);
        self.tree_packs.labels_pass(&self.witness, &mut self.labels);
    }

    /// The phase-2 candidate test against the current labels/witness.
    #[inline]
    pub fn candidate_dot(&self, cand: &CandRef) -> bool {
        self.edge_pack
            .candidate_dot(cand, &self.labels, self.tree_packs.n, &self.witness)
    }

    /// The batched phase-3 kernel for phase `i` and chosen cycle
    /// restriction `nt`: computes all dots at once, masks to witnesses
    /// `j > i`, applies the update, and returns how many witnesses were
    /// updated (the number of `j > i` with `⟨C_i, S_j⟩ = 1`).
    pub fn update_witnesses(&mut self, i: usize, nt: &[u32]) -> u64 {
        self.matrix.xor_rows_into(nt, &mut self.acc);
        debug_assert!(
            (self.acc[i / 64] >> (i % 64)) & 1 == 1,
            "chosen cycle must hit its own witness"
        );
        clear_bits_through(&mut self.acc, i);
        let updated = popcount(&self.acc);
        if updated > 0 {
            self.witness.support_into(&mut self.support);
            self.matrix.xor_mask_rows(&self.support, &self.acc);
        }
        updated
    }
}

// ---- per-thread scratch pool (mirrors `ear_graph::engine`) ----

/// Global free list feeding threads that have no scratch yet. Bounded so a
/// burst of short-lived worker threads cannot hoard memory forever.
static FREE_SCRATCH: Mutex<Vec<DepinaScratch>> = Mutex::new(Vec::new());
const MAX_POOLED: usize = 16;

thread_local! {
    static TLS_SCRATCH: RefCell<TlsSlot> = const { RefCell::new(TlsSlot(None)) };
}

/// Thread-local scratch slot whose `Drop` returns the scratch to the
/// global free list, so warm buffers outlive short-lived worker threads.
struct TlsSlot(Option<DepinaScratch>);

impl Drop for TlsSlot {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            recycle(s);
        }
    }
}

fn recycle(s: DepinaScratch) {
    if let Ok(mut free) = FREE_SCRATCH.lock() {
        if free.len() < MAX_POOLED {
            free.push(s);
        }
    }
}

fn checkout() -> DepinaScratch {
    TLS_SCRATCH
        .try_with(|slot| slot.borrow_mut().0.take())
        .ok()
        .flatten()
        .or_else(|| FREE_SCRATCH.lock().ok().and_then(|mut v| v.pop()))
        .unwrap_or_default()
}

fn checkin(s: DepinaScratch) {
    match TLS_SCRATCH.try_with(|slot| slot.borrow_mut().0.replace(s)) {
        // Nested calls can displace a scratch; keep both.
        Ok(Some(displaced)) => recycle(displaced),
        Ok(None) => {}
        // Thread is tearing down: the scratch is dropped with the closure.
        Err(_) => {}
    }
}

/// Runs `f` with a pooled per-thread [`DepinaScratch`] (thread-local slot
/// backed by a global free list — the `ear_graph::engine` pool pattern),
/// so repeated phase-loop runs reuse warm buffers.
pub fn with_depina_scratch<R>(f: impl FnOnce(&mut DepinaScratch) -> R) -> R {
    let mut scratch = checkout();
    let r = f(&mut scratch);
    checkin(scratch);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference witnesses as plain DenseBits for cross-checking.
    fn dense_cols(m: &BitMatrix) -> Vec<DenseBits> {
        let (rows, cols) = m.dims();
        (0..cols)
            .map(|j| {
                let mut d = DenseBits::zero(rows);
                for b in 0..rows {
                    d.set(b, m.get(b, j));
                }
                d
            })
            .collect()
    }

    #[test]
    fn identity_matches_unit_witnesses() {
        let mut m = BitMatrix::new();
        m.reset_identity(70);
        for (j, col) in dense_cols(&m).into_iter().enumerate() {
            assert_eq!(col, DenseBits::unit(70, j));
        }
    }

    #[test]
    fn batched_dot_equals_per_witness_sparse_dot() {
        let mut m = BitMatrix::new();
        m.reset_identity(130);
        // Mix some columns so the matrix is not diagonal.
        let seed_mask: Vec<u64> = vec![0xdead_beef_0123_4567, 0x89ab_cdef_fedc_ba98, 0x0f0f];
        m.xor_mask_rows(&[3, 64, 127, 129], &seed_mask);
        let nt: Vec<u32> = vec![1, 3, 64, 100, 129];
        let mut acc = vec![0u64; 130usize.div_ceil(64)];
        m.xor_rows_into(&nt, &mut acc);
        for (j, col) in dense_cols(&m).into_iter().enumerate() {
            let expect = col.sparse_dot(&nt);
            let got = (acc[j / 64] >> (j % 64)) & 1 == 1;
            assert_eq!(got, expect, "witness {j}");
        }
    }

    #[test]
    fn masked_update_equals_per_witness_xor() {
        let f = 200;
        let mut m = BitMatrix::new();
        m.reset_identity(f);
        let before = dense_cols(&m);
        // Update witnesses {5, 70, 199} by XORing in witness 2's column:
        // support of e_2 is {2}, mask has bits 5, 70, 199.
        let mut mask = vec![0u64; f.div_ceil(64)];
        for j in [5usize, 70, 199] {
            mask[j / 64] |= 1 << (j % 64);
        }
        m.xor_mask_rows(&[2], &mask);
        let after = dense_cols(&m);
        for j in 0..f {
            let mut expect = before[j].clone();
            if [5usize, 70, 199].contains(&j) {
                expect.xor_assign(&before[2]);
            }
            assert_eq!(after[j], expect, "witness {j}");
        }
    }

    #[test]
    fn extract_col_roundtrip_with_sentinel() {
        let f = 64; // boundary: sentinel bit lands in a fresh word
        let mut m = BitMatrix::new();
        m.reset_identity(f);
        let mask = vec![u64::MAX];
        m.xor_mask_rows(&[0, 63], &mask);
        let mut w = PackedWitness::default();
        w.reset(f);
        for j in 0..f {
            w.load_col(&m, j);
            assert!(!w.get(PackedWitness::sentinel(f)), "sentinel must stay 0");
            for b in 0..f {
                assert_eq!(w.get(b as u32), m.get(b, j), "col {j} bit {b}");
            }
            let mut support = Vec::new();
            w.support_into(&mut support);
            let expect: Vec<u32> = (0..f as u32).filter(|&b| m.get(b as usize, j)).collect();
            assert_eq!(support, expect);
            assert_eq!(w.to_dense(), dense_cols(&m)[j]);
        }
    }

    #[test]
    fn clear_bits_through_boundaries() {
        for i in [0usize, 1, 62, 63, 64, 65, 126, 127] {
            let mut words = vec![u64::MAX; 2];
            clear_bits_through(&mut words, i);
            for b in 0..128 {
                let set = (words[b / 64] >> (b % 64)) & 1 == 1;
                assert_eq!(set, b > i, "i={i} bit {b}");
            }
        }
    }

    #[test]
    fn pooled_scratch_is_reused_across_runs() {
        let g1 = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        let g2 = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 1)]);
        for g in [&g1, &g2, &g1] {
            let cs = CycleSpace::new(g);
            let cands = crate::candidates::generate(g);
            with_depina_scratch(|s| {
                s.prepare(g, &cs, &cands);
                assert_eq!(s.matrix.dims(), (cs.dim(), cs.dim()));
                s.begin_phase(0);
                assert_eq!(s.witness.len(), cs.dim());
            });
        }
    }
}
