//! The de Pina phase loop (paper Algorithm 2) with Mehlhorn–Michail
//! candidates, per-phase instrumentation and heterogeneous cost modelling,
//! executed on the packed GF(2) kernels of [`crate::kernels`].
//!
//! All `f` witnesses live as columns of one word-transposed
//! [`crate::kernels::BitMatrix`]; each of the `f` phases:
//! 1. **label pass** — extract witness `S_i` from matrix column `i`
//!    ([`crate::kernels::PackedWitness`]) and recompute every tree's labels
//!    against it (Algorithm 3) as one sweep over the flat per-tree
//!    edge-incidence packing ([`crate::kernels::TreePacks`]; parallel
//!    across trees past a size threshold);
//! 2. **search** — scan the weight-sorted candidate store for the first
//!    cycle non-orthogonal to `S_i` (O(1) packed test per candidate via
//!    [`crate::kernels::EdgePack`]; early exit);
//! 3. **independence test** — one batched row-XOR sweep updates every
//!    later witness at once: `acc = ⊕_{b ∈ C_i} T[b]` computes all dots
//!    `⟨C_i, S_j⟩` simultaneously, and `T[b] ^= mask(acc)` over the support
//!    of `S_i` applies `S_j ← S_j ⊕ S_i` to every flagged `j > i` (row
//!    blocks fan out on the rayon pool past a volume threshold — the GPU
//!    mode's block-per-witness mapping, word-transposed).
//!
//! The batching changes *how* the work executes, never *what* the trace
//! records: the per-unit [`WorkCounters`] multisets equal the scalar
//! path's ([`legacy`]) exactly — label groups are phase-invariant and
//! precomputed, and the update step's two-cost multiset (updated vs.
//! untouched witnesses) comes from the batch in closed form via
//! [`ear_hetero::group_units_two`]. `tests/mcb_kernels_differential.rs`
//! enforces byte-identical traces against [`legacy`].
//!
//! If the restricted candidate set has no non-orthogonal member (possible
//! when shortest-path ties defeat the Horton-set restriction), the phase
//! falls back to the exact signed-graph search — counted in
//! [`PhaseProfile::fallbacks`], zero on all of the suite's workloads but
//! load-bearing for worst-case correctness.

use ear_graph::CsrGraph;
use ear_hetero::{group_units, group_units_two, HeteroExecutor, WorkCounters};

use crate::candidates::{self, Candidates};
use crate::cycle_space::{Cycle, CycleSpace};
use crate::kernels::with_depina_scratch;
use crate::signed::min_cycle_nonorthogonal;

pub use ear_hetero::UnitGroups;

/// The recorded steps of one de Pina phase.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseSteps {
    /// Label pass (one unit per tree).
    pub labels: UnitGroups,
    /// Candidate scan (one unit per inspected candidate; the signed-search
    /// backstop's Dijkstras land here too when it fires).
    pub search: UnitGroups,
    /// Witness update (one unit per remaining witness).
    pub update: UnitGroups,
}

/// A full recording of the algorithm's work, independent of any device
/// model. The real computation runs exactly once; every execution mode is
/// scored by replaying this trace through its device profiles
/// ([`replay_trace`]) — which is sound because the algorithm is
/// deterministic and its results are mode-independent (asserted by the
/// cross-validation tests).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseTrace {
    /// Tree-construction phase (one unit per FVS vertex).
    pub tree: UnitGroups,
    /// Per-phase steps, in phase order.
    pub phases: Vec<PhaseSteps>,
    /// Phases that needed the signed-search backstop.
    pub fallbacks: usize,
}

impl PhaseTrace {
    /// Merges another trace (e.g. a different block's) into this one.
    pub fn merge(&mut self, other: PhaseTrace) {
        self.tree.extend(other.tree);
        self.phases.extend(other.phases);
        self.fallbacks += other.fallbacks;
    }
}

/// Scores a recorded trace under a device configuration.
pub fn replay_trace(trace: &PhaseTrace, exec: &HeteroExecutor) -> PhaseProfile {
    let mut profile = PhaseProfile {
        fallbacks: trace.fallbacks,
        ..Default::default()
    };
    let tree_rep = exec.simulate_grouped(&trace.tree);
    profile.trees_s = tree_rep.makespan_s;
    profile.counters.merge(&tree_rep.total_counters());
    for ph in &trace.phases {
        let r = exec.simulate_grouped(&ph.labels);
        profile.labels_s += r.makespan_s;
        profile.counters.merge(&r.total_counters());
        let r = exec.simulate_grouped(&ph.search);
        profile.search_s += r.makespan_s;
        profile.counters.merge(&r.total_counters());
        let r = exec.simulate_grouped(&ph.update);
        profile.update_s += r.makespan_s;
        profile.counters.merge(&r.total_counters());
    }
    profile
}

/// Tuning knobs for [`depina_mcb`].
#[derive(Clone, Debug, Default)]
pub struct DepinaOptions {
    /// Skip the candidate store entirely and use signed search per phase
    /// (diagnostics / worst-case comparisons).
    pub force_signed: bool,
}

/// Modelled per-phase timing — the paper's §3.5 breakdown (label
/// computation 76%, minimum-cycle search 14%, independence test 8% on
/// their workloads).
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    /// Shortest-path tree construction (part of preprocessing).
    pub trees_s: f64,
    /// Label passes (Algorithm 3).
    pub labels_s: f64,
    /// Candidate scans.
    pub search_s: f64,
    /// Witness updates.
    pub update_s: f64,
    /// Aggregated operation counters.
    pub counters: WorkCounters,
    /// Phases that needed the signed-search backstop.
    pub fallbacks: usize,
}

impl PhaseProfile {
    /// Total modelled seconds.
    pub fn total_s(&self) -> f64 {
        self.trees_s + self.labels_s + self.search_s + self.update_s
    }

    /// `(labels, search, update)` as shares of the phase-loop time
    /// (excluding tree construction), for comparison with the paper's
    /// 76% / 14% / 8% split.
    pub fn shares(&self) -> (f64, f64, f64) {
        let t = self.labels_s + self.search_s + self.update_s;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (self.labels_s / t, self.search_s / t, self.update_s / t)
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, o: &PhaseProfile) {
        self.trees_s += o.trees_s;
        self.labels_s += o.labels_s;
        self.search_s += o.search_s;
        self.update_s += o.update_s;
        self.counters.merge(&o.counters);
        self.fallbacks += o.fallbacks;
    }
}

/// Runs candidate-restricted de Pina on `g` (any weighted multigraph) and
/// returns the minimum cycle basis plus the modelled phase profile under
/// `exec`'s devices. Thin wrapper over [`depina_mcb_traced`] +
/// [`replay_trace`].
pub fn depina_mcb(
    g: &CsrGraph,
    exec: &HeteroExecutor,
    opts: &DepinaOptions,
) -> (Vec<Cycle>, PhaseProfile) {
    let (basis, trace) = depina_mcb_traced(g, opts);
    let profile = replay_trace(&trace, exec);
    (basis, profile)
}

/// The batched de Pina algorithm, recording a device-independent
/// [`PhaseTrace`]: candidate generation plus [`depina_phase_loop`].
pub fn depina_mcb_traced(g: &CsrGraph, opts: &DepinaOptions) -> (Vec<Cycle>, PhaseTrace) {
    let cs = CycleSpace::new(g);
    let mut trace = PhaseTrace::default();
    if cs.dim() == 0 {
        return (Vec::new(), trace);
    }
    let mut cands: Candidates = {
        let _s = ear_obs::span_with("mcb.candidates", cs.dim() as u64);
        candidates::generate(g)
    };
    trace.tree = cands.tree_units.clone();
    let (basis, loop_trace) = depina_phase_loop(g, &cs, &mut cands, opts);
    trace.merge(loop_trace);
    (basis, trace)
}

/// The batched phase loop alone, against a prebuilt candidate set (the
/// store is consumed). Exposed separately so benchmarks can time the loop
/// without tree construction; the returned trace's `tree` groups are empty
/// — [`depina_mcb_traced`] fills them from [`Candidates::tree_units`].
pub fn depina_phase_loop(
    g: &CsrGraph,
    cs: &CycleSpace,
    cands: &mut Candidates,
    opts: &DepinaOptions,
) -> (Vec<Cycle>, PhaseTrace) {
    let f = cs.dim();
    let mut trace = PhaseTrace::default();
    let mut basis: Vec<Cycle> = Vec::with_capacity(f);
    if f == 0 {
        return (basis, trace);
    }
    let n_hint = g.n() as u64 + 1;
    let words = (f as u64).div_ceil(64);

    with_depina_scratch(|scr| {
        scr.prepare(g, cs, cands);

        // The label-pass cost groups are phase-invariant: every phase
        // labels the same trees over the same vertex sets, only the label
        // *values* differ. One computation, cloned per phase — identical
        // to the scalar path's per-phase grouping because the realized
        // per-tree counters are the same multiset every time.
        let label_groups = group_units(
            n_hint,
            (0..scr.tree_packs.trees()).map(|t| WorkCounters {
                labels_computed: scr.tree_packs.count(t),
                ..Default::default()
            }),
        );

        for i in 0..f {
            let _phase_span = ear_obs::span_with("mcb.phase", i as u64);
            let mut steps = PhaseSteps::default();

            // Phase 1: extract S_i from matrix column i and run the packed
            // label pass over every tree (paper Algorithm 3).
            let labels_span = ear_obs::span_with("mcb.phase.labels", i as u64);
            scr.begin_phase(i);
            steps.labels = label_groups.clone();
            drop(labels_span);

            // Phase 2: scan the weight-sorted store for the first cycle
            // non-orthogonal to S_i (packed O(1) test per candidate).
            let search_span = ear_obs::span_with("mcb.phase.search", i as u64);
            let mut inspected = 0u64;
            let cand = if opts.force_signed {
                None
            } else {
                cands
                    .store
                    .take_first(|c| scr.candidate_dot(c), &mut inspected)
            };
            if inspected > 0 {
                steps.search.push((
                    1,
                    WorkCounters {
                        cycles_inspected: 1,
                        ..Default::default()
                    },
                    inspected,
                ));
            }
            let cycle = match cand {
                Some(c) => {
                    let edges = cands.materialize(g, &c);
                    let cyc = cs.cycle_from_edges(g, edges);
                    debug_assert_eq!(cyc.weight, c.live_weight());
                    cyc
                }
                None => {
                    // Backstop: exact signed search over the FVS roots. Its
                    // Dijkstra work is charged to the search step.
                    trace.fallbacks += usize::from(!opts.force_signed);
                    let mut c = WorkCounters::default();
                    let s = scr.witness.to_dense();
                    let cyc = min_cycle_nonorthogonal(g, cs, &s, Some(&cands.z), &mut c)
                        .expect("every de Pina witness admits a cycle");
                    steps.search.push((n_hint, c, 1));
                    cyc
                }
            };
            drop(search_span);
            let update_span = ear_obs::span_with("mcb.phase.update", i as u64);

            // Phase 3: one batched row-XOR sweep updates every remaining
            // witness (steps 4-6 of the paper's Algorithm 2). The trace
            // still records one unit per remaining witness, at exactly the
            // scalar path's two per-unit costs: every witness pays the
            // |C_i|-word dot, updated ones pay the ⌈f/64⌉-word XOR on top.
            let updated = scr.update_witnesses(i, &cycle.nt);
            let light = WorkCounters {
                words_xored: cycle.nt.len() as u64,
                ..Default::default()
            };
            let heavy = WorkCounters {
                words_xored: cycle.nt.len() as u64 + words,
                ..Default::default()
            };
            let n_light = (f - 1 - i) as u64 - updated;
            steps.update = group_units_two(words, heavy, updated, light, n_light);
            drop(update_span);

            trace.phases.push(steps);
            basis.push(cycle);
        }
    });

    if ear_obs::is_enabled() {
        ear_obs::counter_add("mcb.phases", f as u64);
        ear_obs::counter_add("mcb.fallbacks", trace.fallbacks as u64);
    }

    (basis, trace)
}

pub mod legacy {
    //! The scalar de Pina phase loop — one [`DenseBits`] vector per
    //! witness, per-witness sparse dots and XORs, fresh label vectors per
    //! phase. Retained verbatim as the differential-testing reference for
    //! the batched kernel path (mirroring `ear_graph::dijkstra::legacy`):
    //! `tests/mcb_kernels_differential.rs` asserts both paths produce
    //! identical bases *and* byte-identical [`PhaseTrace`]s.

    use super::*;
    use crate::cycle_space::DenseBits;
    use crate::labels::{candidate_dot, tree_labels, Labels};
    use rayon::prelude::*;

    /// Scalar [`super::depina_mcb`]: basis plus modelled profile.
    pub fn depina_mcb(
        g: &CsrGraph,
        exec: &HeteroExecutor,
        opts: &DepinaOptions,
    ) -> (Vec<Cycle>, PhaseProfile) {
        let (basis, trace) = depina_mcb_traced(g, opts);
        let profile = replay_trace(&trace, exec);
        (basis, profile)
    }

    /// Scalar [`super::depina_mcb_traced`].
    pub fn depina_mcb_traced(g: &CsrGraph, opts: &DepinaOptions) -> (Vec<Cycle>, PhaseTrace) {
        let cs = CycleSpace::new(g);
        let mut trace = PhaseTrace::default();
        if cs.dim() == 0 {
            return (Vec::new(), trace);
        }
        let mut cands: Candidates = candidates::generate(g);
        trace.tree = cands.tree_units.clone();
        let (basis, loop_trace) = depina_phase_loop(g, &cs, &mut cands, opts);
        trace.merge(loop_trace);
        (basis, trace)
    }

    /// Scalar [`super::depina_phase_loop`]: the original per-witness loop.
    pub fn depina_phase_loop(
        g: &CsrGraph,
        cs: &CycleSpace,
        cands: &mut Candidates,
        opts: &DepinaOptions,
    ) -> (Vec<Cycle>, PhaseTrace) {
        let f = cs.dim();
        let mut trace = PhaseTrace::default();
        let mut basis: Vec<Cycle> = Vec::with_capacity(f);
        if f == 0 {
            return (basis, trace);
        }
        let mut witnesses: Vec<DenseBits> = (0..f).map(|i| DenseBits::unit(f, i)).collect();
        let n_hint = g.n() as u64 + 1;

        for i in 0..f {
            let s = witnesses[i].clone();
            let mut steps = PhaseSteps::default();

            // Phase 1: labels, parallel across trees (paper Algorithm 3).
            let labelled: Vec<(Vec<bool>, WorkCounters)> = cands
                .trees
                .par_iter()
                .zip(&cands.order)
                .map(|(t, ord)| tree_labels(t, ord, cs, &s))
                .collect();
            steps.labels = group_units(n_hint, labelled.iter().map(|(_, c)| *c));
            let labels = Labels {
                per_tree: labelled.into_iter().map(|(l, _)| l).collect(),
            };

            // Phase 2: scan the weight-sorted store for the first cycle
            // non-orthogonal to S_i.
            let mut inspected = 0u64;
            let cand = if opts.force_signed {
                None
            } else {
                cands
                    .store
                    .take_first(|c| candidate_dot(c, &labels, cs, &s, g), &mut inspected)
            };
            if inspected > 0 {
                steps.search.push((
                    1,
                    WorkCounters {
                        cycles_inspected: 1,
                        ..Default::default()
                    },
                    inspected,
                ));
            }
            let cycle = match cand {
                Some(c) => {
                    let edges = cands.materialize(g, &c);
                    let cyc = cs.cycle_from_edges(g, edges);
                    debug_assert_eq!(cyc.weight, c.live_weight());
                    cyc
                }
                None => {
                    // Backstop: exact signed search over the FVS roots. Its
                    // Dijkstra work is charged to the search step.
                    trace.fallbacks += usize::from(!opts.force_signed);
                    let mut c = WorkCounters::default();
                    let cyc = min_cycle_nonorthogonal(g, cs, &s, Some(&cands.z), &mut c)
                        .expect("every de Pina witness admits a cycle");
                    steps.search.push((n_hint, c, 1));
                    cyc
                }
            };
            debug_assert!(s.sparse_dot(&cycle.nt), "chosen cycle must hit its witness");

            // Phase 3: witness update, parallel across the remaining
            // witnesses (steps 4-6 of the paper's Algorithm 2).
            let words = (f as u64).div_ceil(64);
            let update_counters: Vec<WorkCounters> = witnesses[i + 1..]
                .par_iter_mut()
                .map(|sj| {
                    let mut c = WorkCounters {
                        words_xored: cycle.nt.len() as u64,
                        ..Default::default()
                    };
                    if sj.sparse_dot(&cycle.nt) {
                        sj.xor_assign(&s);
                        c.words_xored += words;
                    }
                    c
                })
                .collect();
            steps.update = group_units(words, update_counters);

            trace.phases.push(steps);
            basis.push(cycle);
        }

        (basis, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signed::signed_mcb;
    use crate::verify::verify_basis;
    use ear_graph::Weight;

    fn weight(basis: &[Cycle]) -> Weight {
        basis.iter().map(|c| c.weight).sum()
    }

    fn check(g: &CsrGraph) -> (Vec<Cycle>, PhaseProfile) {
        let exec = HeteroExecutor::sequential();
        let (basis, profile) = depina_mcb(g, &exec, &DepinaOptions::default());
        verify_basis(g, &basis).unwrap();
        let reference = signed_mcb(g);
        assert_eq!(
            weight(&basis),
            weight(&reference),
            "weight vs signed reference"
        );
        // The batched kernels must record exactly the scalar path's trace.
        let (legacy_basis, legacy_trace) = legacy::depina_mcb_traced(g, &DepinaOptions::default());
        let (_, trace) = depina_mcb_traced(g, &DepinaOptions::default());
        assert_eq!(weight(&basis), weight(&legacy_basis));
        assert_eq!(trace, legacy_trace, "batched vs legacy trace");
        (basis, profile)
    }

    #[test]
    fn small_graphs_match_signed_reference() {
        check(&CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 3)]));
        check(&CsrGraph::from_edges(
            4,
            &[(0, 1, 1), (1, 2, 1), (2, 0, 2), (2, 3, 1), (3, 1, 2)],
        ));
        check(&CsrGraph::from_edges(
            4,
            &[
                (0, 1, 1),
                (0, 2, 1),
                (0, 3, 1),
                (1, 2, 1),
                (1, 3, 1),
                (2, 3, 1),
            ],
        ));
    }

    #[test]
    fn multigraph_with_parallel_and_loops() {
        check(&CsrGraph::from_edges(
            3,
            &[
                (0, 1, 1),
                (0, 1, 2),
                (1, 2, 1),
                (2, 0, 1),
                (2, 2, 4),
                (0, 0, 9),
            ],
        ));
    }

    #[test]
    fn wheel_graph() {
        let mut edges = vec![];
        for i in 1..=6u32 {
            edges.push((0, i, 2u64));
            edges.push((i, if i == 6 { 1 } else { i + 1 }, 3u64));
        }
        check(&CsrGraph::from_edges(7, &edges));
    }

    #[test]
    fn grid_graph() {
        let idx = |r: u32, c: u32| r * 4 + c;
        let mut edges = Vec::new();
        let mut w = 1u64;
        for r in 0..4u32 {
            for c in 0..4u32 {
                if c + 1 < 4 {
                    edges.push((idx(r, c), idx(r, c + 1), w));
                    w = w % 9 + 1;
                }
                if r + 1 < 4 {
                    edges.push((idx(r, c), idx(r + 1, c), w));
                    w = w % 7 + 1;
                }
            }
        }
        check(&CsrGraph::from_edges(16, &edges));
    }

    #[test]
    fn disconnected_graph() {
        check(&CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 2),
                (4, 5, 2),
                (5, 3, 2),
                (5, 6, 1),
            ],
        ));
    }

    #[test]
    fn profile_phases_are_populated() {
        let g = CsrGraph::from_edges(
            4,
            &[
                (0, 1, 1),
                (0, 2, 1),
                (0, 3, 1),
                (1, 2, 1),
                (1, 3, 1),
                (2, 3, 1),
            ],
        );
        let (_, p) = check(&g);
        assert!(p.trees_s > 0.0);
        assert!(p.labels_s > 0.0);
        assert!(p.search_s > 0.0);
        assert!(p.update_s > 0.0);
        assert!(p.counters.labels_computed > 0);
        let (l, s, u) = p.shares();
        assert!((l + s + u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn force_signed_agrees() {
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1, 3),
                (1, 2, 5),
                (2, 3, 7),
                (3, 4, 9),
                (4, 0, 2),
                (1, 3, 4),
                (0, 2, 8),
            ],
        );
        let exec = HeteroExecutor::sequential();
        let (a, pa) = depina_mcb(&g, &exec, &DepinaOptions { force_signed: true });
        let (b, _) = depina_mcb(&g, &exec, &DepinaOptions::default());
        assert_eq!(weight(&a), weight(&b));
        assert_eq!(pa.fallbacks, 0, "forced signed phases are not fallbacks");
        verify_basis(&g, &a).unwrap();
    }

    #[test]
    fn modes_agree_on_results() {
        let mut edges = vec![];
        for i in 0..12u32 {
            edges.push((i, (i + 1) % 12, (i as u64 % 4) + 1));
        }
        edges.push((0, 6, 2));
        edges.push((3, 9, 3));
        let g = CsrGraph::from_edges(12, &edges);
        let (b_seq, _) = depina_mcb(&g, &HeteroExecutor::sequential(), &Default::default());
        let (b_mc, _) = depina_mcb(&g, &HeteroExecutor::multicore(), &Default::default());
        assert_eq!(weight(&b_seq), weight(&b_mc));
    }

    #[test]
    fn multicore_model_wins_once_work_is_big_enough() {
        // On tiny graphs the model correctly charges parallel overheads
        // (launch latency) that sequential does not pay; on a 20×20 grid
        // the label and tree phases carry enough work for the multicore
        // device to pull ahead, as on the paper's workloads.
        let cols = 20u32;
        let idx = |r: u32, c: u32| r * cols + c;
        let mut edges = Vec::new();
        let mut w = 1u64;
        for r in 0..20u32 {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1), w));
                    w = w % 9 + 1;
                }
                if r + 1 < 20 {
                    edges.push((idx(r, c), idx(r + 1, c), w));
                    w = w % 5 + 1;
                }
            }
        }
        let g = CsrGraph::from_edges(400, &edges);
        let (b_seq, p_seq) = depina_mcb(&g, &HeteroExecutor::sequential(), &Default::default());
        let (b_mc, p_mc) = depina_mcb(&g, &HeteroExecutor::multicore(), &Default::default());
        assert_eq!(weight(&b_seq), weight(&b_mc));
        assert!(
            p_mc.total_s() < p_seq.total_s(),
            "multicore {} vs sequential {}",
            p_mc.total_s(),
            p_seq.total_s()
        );
    }
}
