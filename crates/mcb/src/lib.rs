//! # ear-mcb
//!
//! Minimum weight cycle basis (paper §3): de Pina's witness algorithm with
//! the Mehlhorn–Michail candidate restriction, run on the ear-reduced graph
//! per Lemma 3.1, in four execution modes (sequential / multicore / GPU /
//! CPU+GPU — the grid of the paper's Table 2).
//!
//! Module map:
//! * [`cycle_space`] — spanning tree, the ordered non-tree edge set
//!   `E' = {e₁..e_f}`, dense GF(2) witness vectors, sparse cycle vectors;
//! * [`candidates`] — Horton cycles restricted to a feedback vertex set
//!   (one SSSP tree per FVS vertex; cycles kept implicit as `(z, e)` pairs),
//!   stored weight-sorted in the paper's hybrid linked-list-of-arrays
//!   [`candidates::CycleStore`] with MSB tombstones;
//! * [`labels`] — Algorithm 3: per-tree node labels that make each
//!   orthogonality test O(1) (scalar form, used by the `depina::legacy`
//!   reference path);
//! * [`kernels`] — the packed GF(2) kernel layer: word-transposed witness
//!   matrix, packed per-tree edge incidence, pooled scratch — the batched
//!   engine under the phase loop;
//! * [`signed`] — de Pina's signed auxiliary-graph search (§3.2.1), used
//!   both as a standalone exact algorithm and as the correctness backstop
//!   when candidate restriction plus tie-breaking leaves a phase empty;
//! * [`horton`] — Horton's original algorithm with Gaussian elimination
//!   (small-graph cross-validation baseline);
//! * [`depina`] — the phase loop: label pass → batched candidate scan →
//!   batched witness update, instrumented per phase; the scalar original
//!   survives as [`depina::legacy`] for differential testing;
//! * [`ear_mcb`] — the full pipeline: BCC split, ear reduction, per-block
//!   MCB, chain re-expansion (Lemma 3.1);
//! * [`verify`] — independence (GF(2) rank), dimension and weight checks.
//!
//! The pipeline's decomposition front half (BCC split, block subgraphs,
//! per-block reduction) comes from `ear_decomp::plan::DecompPlan`:
//! [`mcb`] builds one internally, [`mcb_with_plan`] reuses a prebuilt
//! (possibly `Arc`-shared) plan so a combined run with the APSP oracle
//! decomposes the graph exactly once — see the "Decomposition plan"
//! sections of `README.md` / `DESIGN.md`.

pub mod candidates;
pub mod cycle_space;
pub mod depina;
pub mod ear_mcb;
pub mod horton;
pub mod kernels;
pub mod labels;
pub mod signed;
pub mod verify;

pub use cycle_space::{Cycle, CycleSpace, DenseBits};
pub use depina::{
    depina_mcb, depina_mcb_traced, depina_phase_loop, replay_trace, DepinaOptions, PhaseProfile,
    PhaseSteps, PhaseTrace,
};
pub use ear_mcb::{mcb, mcb_all_modes, mcb_with_plan, ExecMode, McbConfig, McbResult};
pub use horton::horton_mcb;
pub use kernels::{with_depina_scratch, BitMatrix, DepinaScratch, PackedWitness};
pub use signed::signed_mcb;
pub use verify::{basis_rank, is_cycle_vector, verify_basis};
