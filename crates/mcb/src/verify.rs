//! Verification helpers: independence, dimension, cycle-ness.
//!
//! Five MCB implementations live in this crate (candidate-restricted de
//! Pina in four execution modes, signed de Pina, Horton, and the
//! ear-reduced pipeline); the property-test harness pins them against each
//! other *and* against these structural checks.

use ear_graph::{CsrGraph, EdgeId};

use crate::cycle_space::{Cycle, CycleSpace, DenseBits};

/// GF(2) rank of the cycles' `E'` restrictions (Gaussian elimination over
/// dense bit vectors).
pub fn basis_rank(cs: &CycleSpace, cycles: &[Cycle]) -> usize {
    let mut pivots: Vec<DenseBits> = Vec::new();
    let mut pivot_cols: Vec<usize> = Vec::new();
    for c in cycles {
        let mut v = cs.to_dense(c);
        while let Some(low) = v.lowest_set() {
            match pivot_cols.iter().position(|&p| p == low) {
                Some(i) => {
                    let piv = pivots[i].clone();
                    v.xor_assign(&piv);
                }
                None => {
                    pivot_cols.push(low);
                    pivots.push(v);
                    break;
                }
            }
        }
    }
    pivots.len()
}

/// Checks that an edge set is a disjoint union of simple cycles — every
/// touched vertex has even degree and no edge repeats. (A cycle-space
/// member; single simple cycles additionally have all degrees exactly 2
/// and one connected component, which [`is_simple_cycle`] checks.)
pub fn is_cycle_vector(g: &CsrGraph, edges: &[EdgeId]) -> bool {
    let mut seen = std::collections::HashSet::new();
    let mut deg = std::collections::HashMap::<u32, u32>::new();
    for &e in edges {
        if !seen.insert(e) {
            return false;
        }
        let r = g.edge(e);
        if r.is_self_loop() {
            continue; // a self-loop is itself a cycle; contributes evenly
        }
        *deg.entry(r.u).or_insert(0) += 1;
        *deg.entry(r.v).or_insert(0) += 1;
    }
    deg.values().all(|&d| d % 2 == 0)
}

/// Checks that an edge set forms one simple cycle: connected, every vertex
/// degree exactly two (or a single self-loop).
pub fn is_simple_cycle(g: &CsrGraph, edges: &[EdgeId]) -> bool {
    if edges.is_empty() {
        return false;
    }
    if edges.len() == 1 {
        return g.edge(edges[0]).is_self_loop();
    }
    let mut deg = std::collections::HashMap::<u32, u32>::new();
    let mut seen = std::collections::HashSet::new();
    for &e in edges {
        if !seen.insert(e) {
            return false;
        }
        let r = g.edge(e);
        if r.is_self_loop() {
            return false;
        }
        *deg.entry(r.u).or_insert(0) += 1;
        *deg.entry(r.v).or_insert(0) += 1;
    }
    if !deg.values().all(|&d| d == 2) {
        return false;
    }
    // Connectivity: walk the cycle from one endpoint.
    let mut adj = std::collections::HashMap::<u32, Vec<EdgeId>>::new();
    for &e in edges {
        let r = g.edge(e);
        adj.entry(r.u).or_default().push(e);
        adj.entry(r.v).or_default().push(e);
    }
    let start = g.edge(edges[0]).u;
    let mut visited_edges = std::collections::HashSet::new();
    let mut stack = vec![start];
    let mut visited_v = std::collections::HashSet::new();
    while let Some(v) = stack.pop() {
        if !visited_v.insert(v) {
            continue;
        }
        for &e in &adj[&v] {
            if visited_edges.insert(e) {
                stack.push(g.edge(e).other(v));
            }
        }
    }
    visited_edges.len() == edges.len()
}

/// Full basis check: correct dimension, full rank, every member a valid
/// cycle vector. Returns a description of the first violation.
pub fn verify_basis(g: &CsrGraph, cycles: &[Cycle]) -> Result<(), String> {
    let cs = CycleSpace::new(g);
    let f = cs.dim();
    if cycles.len() != f {
        return Err(format!(
            "dimension mismatch: got {} cycles, expected {f}",
            cycles.len()
        ));
    }
    for (i, c) in cycles.iter().enumerate() {
        if !is_cycle_vector(g, &c.edges) {
            return Err(format!("member {i} is not a cycle vector"));
        }
        let w: u64 = c.edges.iter().map(|&e| g.weight(e)).sum();
        if w != c.weight {
            return Err(format!(
                "member {i} weight mismatch: stored {} real {w}",
                c.weight
            ));
        }
    }
    let rank = basis_rank(&cs, cycles);
    if rank != f {
        return Err(format!("rank {rank} < dimension {f}: not independent"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> CsrGraph {
        CsrGraph::from_edges(
            4,
            &[
                (0, 1, 1),
                (0, 2, 1),
                (0, 3, 1),
                (1, 2, 1),
                (1, 3, 1),
                (2, 3, 1),
            ],
        )
    }

    #[test]
    fn rank_of_independent_triangles() {
        let g = k4();
        let cs = CycleSpace::new(&g);
        // Triangles 0-1-2 (edges 0,3,1) and 0-1-3 (edges 0,4,2).
        let c1 = cs.cycle_from_edges(&g, vec![0, 3, 1]);
        let c2 = cs.cycle_from_edges(&g, vec![0, 4, 2]);
        assert_eq!(basis_rank(&cs, &[c1.clone(), c2.clone()]), 2);
        // A cycle plus itself stays rank 1.
        assert_eq!(basis_rank(&cs, &[c1.clone(), c1]), 1);
    }

    #[test]
    fn dependent_triple_is_rank_two() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 0, 2), (2, 3, 1), (3, 1, 2)]);
        let cs = CycleSpace::new(&g);
        let t1 = cs.cycle_from_edges(&g, vec![0, 1, 2]);
        let t2 = cs.cycle_from_edges(&g, vec![1, 3, 4]);
        // Symmetric difference (outer square).
        let sq = cs.cycle_from_edges(&g, vec![0, 2, 3, 4]);
        assert_eq!(basis_rank(&cs, &[t1, t2, sq]), 2);
    }

    #[test]
    fn cycle_vector_checks() {
        let g = k4();
        assert!(is_cycle_vector(&g, &[0, 3, 1]));
        assert!(!is_cycle_vector(&g, &[0, 3])); // open path
        assert!(!is_cycle_vector(&g, &[0, 0, 3, 1])); // repeated edge
                                                      // Union of two edge-disjoint triangles is a valid vector but not a
                                                      // simple cycle.
        let g2 = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
        );
        assert!(is_cycle_vector(&g2, &[0, 1, 2, 3, 4, 5]));
        assert!(!is_simple_cycle(&g2, &[0, 1, 2, 3, 4, 5]));
        assert!(is_simple_cycle(&g2, &[0, 1, 2]));
    }

    #[test]
    fn self_loop_is_a_simple_cycle() {
        let g = CsrGraph::from_edges(1, &[(0, 0, 5)]);
        assert!(is_simple_cycle(&g, &[0]));
        assert!(is_cycle_vector(&g, &[0]));
    }

    #[test]
    fn verify_basis_accepts_signed_mcb() {
        let g = k4();
        let basis = crate::signed::signed_mcb(&g);
        verify_basis(&g, &basis).unwrap();
    }

    #[test]
    fn verify_basis_rejects_wrong_dimension() {
        let g = k4();
        let mut basis = crate::signed::signed_mcb(&g);
        basis.pop();
        assert!(verify_basis(&g, &basis).is_err());
    }

    #[test]
    fn verify_basis_rejects_dependent_set() {
        let g = k4();
        let mut basis = crate::signed::signed_mcb(&g);
        let dup = basis[0].clone();
        basis.pop();
        basis.push(dup);
        assert!(verify_basis(&g, &basis).is_err());
    }
}
