//! The heterogeneous executor.
//!
//! [`HeteroExecutor::run`] is the centrepiece: a discrete-event scheduler
//! that mirrors the paper's dynamic CPU/GPU work balancing. Workunits are
//! sorted descending by a caller-supplied size hint into a
//! [`WorkQueue`]; whenever a device is free (its modelled clock is the
//! smallest) it pops a batch from its end — GPU from the big-unit front,
//! CPU from the small-unit back — executes the kernel *for real* on the
//! host (in parallel through Rayon), and advances its modelled clock by the
//! profile's batch time. The schedule this produces is exactly the one the
//! paper's queue produces on real hardware: devices keep pulling work until
//! the queue drains, and the modelled makespan is the slower device's final
//! clock.
//!
//! [`HeteroExecutor::run_concurrent`] is the wall-clock twin used by tests
//! and examples: one OS thread per device, genuinely concurrent, no model.
//!
//! Kernels that run SSSP should go through `ear_graph::with_engine` — or
//! `ear_graph::with_multi_engine` when a workunit is a lane batch of
//! sources — rather than allocating scratch inline: batches execute on
//! short-lived Rayon worker threads, and the engine pools' thread-local
//! slot plus global free list keeps warm, pre-sized scratch flowing
//! between batches instead of reallocating per workunit. A lane batch is
//! the preferred workunit shape for multi-source phases (the APSP oracle
//! builders use it): the kernel returns one result *per source* in the
//! batch (`Vec<R>`) with the per-source counters summed into the unit's
//! [`WorkCounters`], and the size hint scales with the batch width so the
//! queue still orders by real work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rayon::prelude::*;

use crate::counters::WorkCounters;
use crate::profile::{DeviceKind, DeviceProfile};
use crate::queue::WorkQueue;

/// Per-device execution summary.
#[derive(Clone, Debug)]
pub struct DeviceReport {
    /// Profile name.
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// Workunits this device processed.
    pub units: usize,
    /// Batches popped.
    pub batches: usize,
    /// Modelled busy time in seconds (wall busy time in
    /// [`HeteroExecutor::run_concurrent`]).
    pub busy_s: f64,
    /// Accumulated kernel counters.
    pub counters: WorkCounters,
}

/// Whole-run summary.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// One entry per device.
    pub devices: Vec<DeviceReport>,
    /// Modelled completion time: the maximum device clock.
    pub makespan_s: f64,
    /// Real wall-clock time the host spent producing the results.
    pub wall_s: f64,
}

impl ExecutionReport {
    /// Sum of all devices' counters.
    pub fn total_counters(&self) -> WorkCounters {
        self.devices.iter().map(|d| d.counters).sum()
    }

    /// Total workunits processed.
    pub fn total_units(&self) -> usize {
        self.devices.iter().map(|d| d.units).sum()
    }
}

/// Publish a *real* execution's totals into the `ear-obs` metrics
/// registry under the `hetero.*` names. Only `run` / `run_concurrent`
/// call this: modelled replays (`simulate*`) would double-count work
/// that real kernels already reported.
fn publish_report(report: &ExecutionReport) {
    if !ear_obs::is_enabled() {
        return;
    }
    ear_obs::counter_add("hetero.units", report.total_units() as u64);
    ear_obs::counter_add(
        "hetero.batches",
        report.devices.iter().map(|d| d.batches as u64).sum(),
    );
    let c = report.total_counters();
    ear_obs::counter_add("hetero.edges_relaxed", c.edges_relaxed);
    ear_obs::counter_add("hetero.vertices_settled", c.vertices_settled);
    ear_obs::counter_add("hetero.labels_computed", c.labels_computed);
    ear_obs::counter_add("hetero.cycles_inspected", c.cycles_inspected);
    ear_obs::counter_add("hetero.words_xored", c.words_xored);
    ear_obs::counter_add("hetero.distances_combined", c.distances_combined);
    ear_obs::counter_add("hetero.dense_combined", c.dense_combined);
}

/// Results plus the execution report.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Kernel outputs, in the original workunit order.
    pub results: Vec<R>,
    /// Timing/counter summary.
    pub report: ExecutionReport,
}

/// A set of devices sharing one work queue.
#[derive(Clone, Debug)]
pub struct HeteroExecutor {
    devices: Vec<DeviceProfile>,
}

impl HeteroExecutor {
    /// Builds an executor over explicit device profiles.
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    pub fn new(devices: Vec<DeviceProfile>) -> Self {
        assert!(!devices.is_empty(), "need at least one device");
        HeteroExecutor { devices }
    }

    /// The paper's full platform: E5-2650 multicore + Tesla K40c.
    pub fn cpu_gpu() -> Self {
        Self::new(vec![DeviceProfile::e5_2650(), DeviceProfile::k40c()])
    }

    /// Multicore CPU only.
    pub fn multicore() -> Self {
        Self::new(vec![DeviceProfile::e5_2650()])
    }

    /// GPU only.
    pub fn gpu_only() -> Self {
        Self::new(vec![DeviceProfile::k40c()])
    }

    /// Single-core sequential baseline.
    pub fn sequential() -> Self {
        Self::new(vec![DeviceProfile::single_core()])
    }

    /// Access to the device profiles.
    pub fn devices(&self) -> &[DeviceProfile] {
        &self.devices
    }

    /// Discrete-event heterogeneous run (see module docs).
    ///
    /// `size_hint` orders the queue (bigger first); `kernel` maps a workunit
    /// to its result plus the operation counters the device model charges.
    ///
    /// ```
    /// use ear_hetero::{HeteroExecutor, WorkCounters};
    /// let exec = HeteroExecutor::cpu_gpu();
    /// let out = exec.run(
    ///     (0u64..1000).collect(),
    ///     |&x| x,                       // size hint: big units first
    ///     |&x| (x * x, WorkCounters { edges_relaxed: x, ..Default::default() }),
    /// );
    /// assert_eq!(out.results[30], 900);
    /// assert!(out.report.makespan_s > 0.0);
    /// ```
    pub fn run<T, R, K, S>(&self, units: Vec<T>, size_hint: S, kernel: K) -> RunOutput<R>
    where
        T: Send + Sync,
        R: Send,
        K: Fn(&T) -> (R, WorkCounters) + Sync,
        S: Fn(&T) -> u64,
    {
        let _span = ear_obs::span_with("hetero.run", units.len() as u64);
        let obs_on = ear_obs::is_enabled();
        let mut slices: Vec<ear_obs::ModelledSlice> = Vec::new();
        let wall_start = Instant::now();
        let n = units.len();
        let mut indexed: Vec<(usize, &T)> = units.iter().enumerate().collect();
        indexed.sort_by_key(|(i, t)| (std::cmp::Reverse(size_hint(t)), *i));
        let queue = WorkQueue::new(indexed);

        let mut clocks = vec![0.0_f64; self.devices.len()];
        let mut reports: Vec<DeviceReport> = self
            .devices
            .iter()
            .map(|d| DeviceReport {
                name: d.name.clone(),
                kind: d.kind,
                units: 0,
                batches: 0,
                busy_s: 0.0,
                counters: WorkCounters::default(),
            })
            .collect();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();

        while !queue.is_empty() {
            // The free-est device pulls next — ties go to the earlier device
            // in the list, keeping the schedule deterministic.
            let d = (0..self.devices.len())
                .min_by(|&a, &b| clocks[a].partial_cmp(&clocks[b]).unwrap())
                .unwrap();
            let dev = &self.devices[d];
            // A lone device does not share the queue: it maps the whole
            // unit list to one kernel launch / one parallel-for region,
            // exactly as single-device implementations do. Batching only
            // exists to interleave devices.
            let take = if self.devices.len() == 1 {
                usize::MAX
            } else {
                dev.batch_units
            };
            let batch = match dev.kind {
                DeviceKind::Gpu => queue.pop_front_batch(take),
                DeviceKind::Cpu => queue.pop_back_batch(take),
            };
            if batch.is_empty() {
                break;
            }
            // Execute the batch for real, in parallel, on the host.
            let batch_span = ear_obs::span_with("hetero.batch", batch.len() as u64);
            let outs: Vec<(usize, R, WorkCounters)> = batch
                .par_iter()
                .map(|&(i, t)| {
                    let _u = ear_obs::span_with("hetero.unit", i as u64);
                    let (r, c) = kernel(t);
                    (i, r, c)
                })
                .collect();
            drop(batch_span);
            if obs_on {
                ear_obs::histogram_record("hetero.batch_units", outs.len() as u64);
                // Cumulative units series: a process-wide total emitted as
                // a trace counter event after every batch. The value only
                // ever grows, giving `ear trace-check` a genuinely
                // monotone `*.total` series to validate (the occupancy
                // counter `queue.len` legitimately goes up and down).
                static UNITS_TOTAL: AtomicU64 = AtomicU64::new(0);
                let total =
                    UNITS_TOTAL.fetch_add(outs.len() as u64, Ordering::Relaxed) + outs.len() as u64;
                ear_obs::counter_event("hetero.units.total", total);
            }
            let per_unit: Vec<WorkCounters> = outs.iter().map(|(_, _, c)| *c).collect();
            let rep = &mut reports[d];
            // Launch overhead is paid once per device per run: follow-up
            // batches stream (pipelined kernels / a live thread pool).
            let mut dt = dev.batch_work_s(&per_unit);
            if rep.batches == 0 {
                dt += dev.launch_overhead_us * 1e-6;
            }
            clocks[d] += dt;
            if obs_on {
                slices.push(ear_obs::ModelledSlice {
                    lane: dev.name.clone(),
                    name: "batch".to_string(),
                    start_s: clocks[d] - dt,
                    end_s: clocks[d],
                    units: outs.len() as u64,
                });
            }
            rep.units += outs.len();
            rep.batches += 1;
            rep.busy_s += dt;
            for (i, r, c) in outs {
                rep.counters.merge(&c);
                results[i] = Some(r);
            }
        }

        let makespan_s = clocks.iter().copied().fold(0.0, f64::max);
        let results: Vec<R> = results
            .into_iter()
            .map(|r| r.expect("every unit executed"))
            .collect();
        let report = ExecutionReport {
            devices: reports,
            makespan_s,
            wall_s: wall_start.elapsed().as_secs_f64(),
        };
        if obs_on {
            ear_obs::modelled_run(slices, makespan_s);
        }
        publish_report(&report);
        RunOutput { results, report }
    }

    /// Replays the discrete-event schedule over work that was *already*
    /// performed: `units` holds one `(size_hint, counters)` pair per
    /// workunit. Used by phases whose real execution shape does not match
    /// the workunit granularity (e.g. an early-exit candidate scan that ran
    /// sequentially but is modelled as the paper's per-batch parallel
    /// check), so the device model can still charge them consistently.
    pub fn simulate(&self, units: &[(u64, WorkCounters)]) -> ExecutionReport {
        let obs_on = ear_obs::is_enabled();
        let mut slices: Vec<ear_obs::ModelledSlice> = Vec::new();
        let mut order: Vec<usize> = (0..units.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(units[i].0), i));
        let queue = WorkQueue::new(order);
        let mut clocks = vec![0.0_f64; self.devices.len()];
        let mut reports: Vec<DeviceReport> = self
            .devices
            .iter()
            .map(|d| DeviceReport {
                name: d.name.clone(),
                kind: d.kind,
                units: 0,
                batches: 0,
                busy_s: 0.0,
                counters: WorkCounters::default(),
            })
            .collect();
        while !queue.is_empty() {
            let d = (0..self.devices.len())
                .min_by(|&a, &b| clocks[a].partial_cmp(&clocks[b]).unwrap())
                .unwrap();
            let dev = &self.devices[d];
            let take = if self.devices.len() == 1 {
                usize::MAX
            } else {
                dev.batch_units
            };
            let batch = match dev.kind {
                DeviceKind::Gpu => queue.pop_front_batch(take),
                DeviceKind::Cpu => queue.pop_back_batch(take),
            };
            if batch.is_empty() {
                break;
            }
            let per_unit: Vec<WorkCounters> = batch.iter().map(|&i| units[i].1).collect();
            let rep = &mut reports[d];
            let mut dt = dev.batch_work_s(&per_unit);
            if rep.batches == 0 {
                dt += dev.launch_overhead_us * 1e-6;
            }
            clocks[d] += dt;
            if obs_on {
                slices.push(ear_obs::ModelledSlice {
                    lane: dev.name.clone(),
                    name: "batch".to_string(),
                    start_s: clocks[d] - dt,
                    end_s: clocks[d],
                    units: batch.len() as u64,
                });
            }
            rep.units += batch.len();
            rep.batches += 1;
            rep.busy_s += dt;
            for c in &per_unit {
                rep.counters.merge(c);
            }
        }
        let makespan_s = clocks.iter().copied().fold(0.0, f64::max);
        if obs_on {
            ear_obs::modelled_run(slices, makespan_s);
        }
        ExecutionReport {
            devices: reports,
            makespan_s,
            wall_s: 0.0,
        }
    }

    /// Like [`HeteroExecutor::simulate`], but over *groups* of identical
    /// workunits: `groups[i] = (size_hint, counters, count)` stands for
    /// `count` units with the same cost. The discrete-event loop advances
    /// whole batches, so replaying a phase with a million uniform units
    /// costs O(batches), and a recorded trace stays a few bytes per phase.
    ///
    /// This is the workhorse of the MCB mode replay: the de Pina loop
    /// records one compact group list per phase step and every device
    /// configuration is scored from the same recording (the real
    /// computation runs once — results are identical across modes anyway).
    pub fn simulate_grouped(&self, groups: &[(u64, WorkCounters, u64)]) -> ExecutionReport {
        let obs_on = ear_obs::is_enabled();
        let mut slices: Vec<ear_obs::ModelledSlice> = Vec::new();
        // Expand group order: sorted descending by hint (stable).
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(groups[i].0), i));
        // Virtual deque over the concatenated (front-to-back) unit
        // sequence: cursors consume counts from both ends.
        let mut remaining: Vec<u64> = order.iter().map(|&i| groups[i].2).collect();
        let mut total_left: u64 = remaining.iter().sum();
        let mut front = 0usize;
        let mut back = remaining.len();

        let mut clocks = vec![0.0_f64; self.devices.len()];
        let mut reports: Vec<DeviceReport> = self
            .devices
            .iter()
            .map(|d| DeviceReport {
                name: d.name.clone(),
                kind: d.kind,
                units: 0,
                batches: 0,
                busy_s: 0.0,
                counters: WorkCounters::default(),
            })
            .collect();

        while total_left > 0 {
            let d = (0..self.devices.len())
                .min_by(|&a, &b| clocks[a].partial_cmp(&clocks[b]).unwrap())
                .unwrap();
            let dev = &self.devices[d];
            // Adaptive batching (the paper: batches "whose size depends on
            // the nature of the task"): a device takes at least its
            // configured batch, but never less than an eighth of the
            // remaining units — fine-grained units (witness updates,
            // candidate checks) would otherwise drown in per-batch launch
            // overhead that no real implementation pays.
            let want = if self.devices.len() == 1 {
                total_left
            } else {
                (dev.batch_units as u64).max(total_left / 8).min(total_left)
            };
            // Batch composition: (counters, count) pairs.
            let mut comp: Vec<(WorkCounters, u64)> = Vec::new();
            let mut need = want;
            match dev.kind {
                DeviceKind::Gpu => {
                    while need > 0 && front < back {
                        let gi = order[front];
                        let take = remaining[front].min(need);
                        remaining[front] -= take;
                        need -= take;
                        comp.push((groups[gi].1, take));
                        if remaining[front] == 0 {
                            front += 1;
                        }
                    }
                }
                DeviceKind::Cpu => {
                    while need > 0 && back > front {
                        let bi = back - 1;
                        let gi = order[bi];
                        let take = remaining[bi].min(need);
                        remaining[bi] -= take;
                        need -= take;
                        comp.push((groups[gi].1, take));
                        if remaining[bi] == 0 {
                            back -= 1;
                        }
                    }
                }
            }
            let taken: u64 = comp.iter().map(|&(_, c)| c).sum();
            if taken == 0 {
                break;
            }
            total_left -= taken;
            let rep = &mut reports[d];
            let mut dt = dev.batch_work_grouped(&comp);
            if rep.batches == 0 {
                dt += dev.launch_overhead_us * 1e-6;
            }
            clocks[d] += dt;
            if obs_on {
                slices.push(ear_obs::ModelledSlice {
                    lane: dev.name.clone(),
                    name: "batch".to_string(),
                    start_s: clocks[d] - dt,
                    end_s: clocks[d],
                    units: taken,
                });
            }
            rep.units += taken as usize;
            rep.batches += 1;
            rep.busy_s += dt;
            for (c, count) in comp {
                rep.counters.merge(&c.scaled(count));
            }
        }
        let makespan_s = clocks.iter().copied().fold(0.0, f64::max);

        // Lookahead: a dynamic scheduler never hands work to a device whose
        // participation slows the job down (on tiny phases the launch
        // overhead of a second device can exceed the whole phase). If some
        // device solo beats the shared schedule, the queue effectively
        // degenerates to that device.
        let all: Vec<(WorkCounters, u64)> = groups.iter().map(|&(_, c, k)| (c, k)).collect();
        let (solo_d, solo_t) = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.launch_overhead_us * 1e-6 + d.batch_work_grouped(&all)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        if solo_t < makespan_s {
            let dev = &self.devices[solo_d];
            let total_units: u64 = groups.iter().map(|&(_, _, k)| k).sum();
            let mut counters = WorkCounters::default();
            for &(_, c, k) in groups {
                counters.merge(&c.scaled(k));
            }
            let devices = self
                .devices
                .iter()
                .enumerate()
                .map(|(i, d)| DeviceReport {
                    name: d.name.clone(),
                    kind: d.kind,
                    units: if i == solo_d { total_units as usize } else { 0 },
                    batches: usize::from(i == solo_d),
                    busy_s: if i == solo_d { solo_t } else { 0.0 },
                    counters: if i == solo_d {
                        counters
                    } else {
                        WorkCounters::default()
                    },
                })
                .collect();
            if obs_on {
                // The shared schedule was discarded; its slices go with it.
                ear_obs::modelled_run(
                    vec![ear_obs::ModelledSlice {
                        lane: dev.name.clone(),
                        name: "batch".to_string(),
                        start_s: 0.0,
                        end_s: solo_t,
                        units: total_units,
                    }],
                    solo_t,
                );
            }
            return ExecutionReport {
                devices,
                makespan_s: solo_t,
                wall_s: 0.0,
            };
        }
        if obs_on {
            ear_obs::modelled_run(slices, makespan_s);
        }
        ExecutionReport {
            devices: reports,
            makespan_s,
            wall_s: 0.0,
        }
    }

    /// Genuinely concurrent run: one OS thread per device, each pulling
    /// batches from its end of the shared queue until it drains. Reported
    /// `busy_s` is wall time; no modelling. Used to validate that the
    /// dynamic balancing itself (not the model) delivers exactly-once
    /// execution and full coverage under real concurrency.
    pub fn run_concurrent<T, R, K, S>(&self, units: Vec<T>, size_hint: S, kernel: K) -> RunOutput<R>
    where
        T: Send + Sync,
        R: Send,
        K: Fn(&T) -> (R, WorkCounters) + Sync,
        S: Fn(&T) -> u64,
    {
        let wall_start = Instant::now();
        let n = units.len();
        let mut indexed: Vec<(usize, &T)> = units.iter().enumerate().collect();
        indexed.sort_by_key(|(i, t)| (std::cmp::Reverse(size_hint(t)), *i));
        let queue = WorkQueue::new(indexed);

        let slots: Vec<parking_lot::Mutex<Option<R>>> =
            (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
        let reports: Vec<parking_lot::Mutex<DeviceReport>> = self
            .devices
            .iter()
            .map(|d| {
                parking_lot::Mutex::new(DeviceReport {
                    name: d.name.clone(),
                    kind: d.kind,
                    units: 0,
                    batches: 0,
                    busy_s: 0.0,
                    counters: WorkCounters::default(),
                })
            })
            .collect();

        std::thread::scope(|scope| {
            for (d, dev) in self.devices.iter().enumerate() {
                let queue = &queue;
                let slots = &slots;
                let kernel = &kernel;
                let reports = &reports;
                // Named threads give the trace one readable lane per device.
                std::thread::Builder::new()
                    .name(format!("dev:{}", dev.name))
                    .spawn_scoped(scope, move || {
                        let t0 = Instant::now();
                        loop {
                            let batch = match dev.kind {
                                DeviceKind::Gpu => queue.pop_front_batch(dev.batch_units),
                                DeviceKind::Cpu => queue.pop_back_batch(dev.batch_units),
                            };
                            if batch.is_empty() {
                                break;
                            }
                            let _b = ear_obs::span_with("hetero.batch", batch.len() as u64);
                            // Accumulate counters locally; touch the shared
                            // report once per batch, not once per unit.
                            let mut acc = WorkCounters::default();
                            let units = batch.len();
                            for (i, t) in batch {
                                let _u = ear_obs::span_with("hetero.unit", i as u64);
                                let (r, c) = kernel(t);
                                *slots[i].lock() = Some(r);
                                acc.merge(&c);
                            }
                            let mut rep = reports[d].lock();
                            rep.batches += 1;
                            rep.units += units;
                            rep.counters.merge(&acc);
                        }
                        reports[d].lock().busy_s = t0.elapsed().as_secs_f64();
                    })
                    .expect("spawn device thread");
            }
        });

        let results: Vec<R> = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every unit executed"))
            .collect();
        let devices: Vec<DeviceReport> = reports.into_iter().map(|r| r.into_inner()).collect();
        let wall_s = wall_start.elapsed().as_secs_f64();
        let makespan_s = devices.iter().map(|d| d.busy_s).fold(0.0, f64::max);
        let report = ExecutionReport {
            devices,
            makespan_s,
            wall_s,
        };
        publish_report(&report);
        RunOutput { results, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_kernel(x: &u64) -> (u64, WorkCounters) {
        (
            x * x,
            WorkCounters {
                edges_relaxed: *x,
                ..Default::default()
            },
        )
    }

    #[test]
    fn results_come_back_in_input_order() {
        let ex = HeteroExecutor::cpu_gpu();
        let units: Vec<u64> = (0..1000).collect();
        let out = ex.run(units.clone(), |&x| x, square_kernel);
        let expect: Vec<u64> = units.iter().map(|x| x * x).collect();
        assert_eq!(out.results, expect);
    }

    #[test]
    fn both_devices_participate_on_big_runs() {
        let ex = HeteroExecutor::cpu_gpu();
        let units: Vec<u64> = (0..5000).map(|i| i % 997).collect();
        let out = ex.run(units, |&x| x + 1, square_kernel);
        assert!(
            out.report.devices.iter().all(|d| d.units > 0),
            "{:#?}",
            out.report.devices
        );
        assert_eq!(out.report.total_units(), 5000);
    }

    #[test]
    fn gpu_takes_the_big_units() {
        let ex = HeteroExecutor::cpu_gpu();
        // 256 huge units (exactly one GPU batch) + tiny ones.
        let mut units = vec![1_000_000u64; 256];
        units.extend(std::iter::repeat_n(1u64, 64));
        let out = ex.run(units, |&x| x, square_kernel);
        let gpu = out
            .report
            .devices
            .iter()
            .find(|d| d.kind == DeviceKind::Gpu)
            .unwrap();
        assert!(gpu.counters.edges_relaxed >= 256 * 1_000_000);
    }

    #[test]
    fn makespan_is_max_device_clock() {
        let ex = HeteroExecutor::cpu_gpu();
        let out = ex.run((0..2000u64).collect(), |&x| x, square_kernel);
        let max_busy = out
            .report
            .devices
            .iter()
            .map(|d| d.busy_s)
            .fold(0.0, f64::max);
        assert!((out.report.makespan_s - max_busy).abs() < 1e-12);
    }

    #[test]
    fn single_device_handles_everything() {
        let ex = HeteroExecutor::sequential();
        let out = ex.run((0..100u64).collect(), |&x| x, square_kernel);
        assert_eq!(out.report.devices.len(), 1);
        assert_eq!(out.report.devices[0].units, 100);
        assert_eq!(out.results[7], 49);
    }

    #[test]
    fn modelled_hierarchy_sequential_multicore_gpu() {
        let units: Vec<u64> = vec![50_000; 2048];
        let t = |ex: HeteroExecutor| {
            ex.run(units.clone(), |&x| x, square_kernel)
                .report
                .makespan_s
        };
        let seq = t(HeteroExecutor::sequential());
        let mc = t(HeteroExecutor::multicore());
        let gpu = t(HeteroExecutor::gpu_only());
        let het = t(HeteroExecutor::cpu_gpu());
        assert!(mc < seq, "multicore {mc} vs sequential {seq}");
        assert!(gpu < mc, "gpu {gpu} vs multicore {mc}");
        assert!(het <= gpu * 1.01, "hetero {het} vs gpu {gpu}");
    }

    #[test]
    fn empty_unit_list_is_fine() {
        let ex = HeteroExecutor::cpu_gpu();
        let out = ex.run(Vec::<u64>::new(), |&x| x, square_kernel);
        assert!(out.results.is_empty());
        assert_eq!(out.report.makespan_s, 0.0);
    }

    #[test]
    fn concurrent_mode_processes_everything_exactly_once() {
        let ex = HeteroExecutor::cpu_gpu();
        let units: Vec<u64> = (0..4000).collect();
        let out = ex.run_concurrent(units.clone(), |&x| x, square_kernel);
        let expect: Vec<u64> = units.iter().map(|x| x * x).collect();
        assert_eq!(out.results, expect);
        assert_eq!(out.report.total_units(), 4000);
        let relaxed: u64 = out.report.total_counters().edges_relaxed;
        assert_eq!(relaxed, units.iter().sum::<u64>());
    }

    #[test]
    fn lane_batched_workunits_round_trip_in_order() {
        // The APSP oracle builders' batched workunit shape: a unit is a
        // (start, len) source range, the kernel returns one row per source
        // with the per-source counters summed, and the size hint scales
        // with the batch width.
        let ex = HeteroExecutor::cpu_gpu();
        let total = 1000u64;
        let units: Vec<(u64, u64)> = (0..total)
            .step_by(8)
            .map(|start| (start, (total - start).min(8)))
            .collect();
        let out = ex.run(
            units.clone(),
            |&(_, len)| 10 * len,
            |&(start, len)| {
                let rows: Vec<u64> = (start..start + len).map(|s| s * s).collect();
                let c = WorkCounters {
                    edges_relaxed: len,
                    ..Default::default()
                };
                (rows, c)
            },
        );
        let flat: Vec<u64> = out.results.into_iter().flatten().collect();
        let expect: Vec<u64> = (0..total).map(|s| s * s).collect();
        assert_eq!(flat, expect, "per-lane rows must flatten in source order");
        assert_eq!(out.report.total_units(), units.len());
        assert_eq!(out.report.total_counters().edges_relaxed, total);
    }

    #[test]
    fn deterministic_schedule() {
        let ex = HeteroExecutor::cpu_gpu();
        let units: Vec<u64> = (0..3000).map(|i| (i * 37) % 1009).collect();
        let a = ex.run(units.clone(), |&x| x, square_kernel);
        let b = ex.run(units, |&x| x, square_kernel);
        assert_eq!(a.report.makespan_s, b.report.makespan_s);
        for (da, db) in a.report.devices.iter().zip(&b.report.devices) {
            assert_eq!(da.units, db.units);
            assert_eq!(da.batches, db.batches);
        }
    }
}

#[cfg(test)]
mod grouped_tests {
    use super::*;

    fn unit(edges: u64) -> WorkCounters {
        WorkCounters {
            edges_relaxed: edges,
            ..Default::default()
        }
    }

    #[test]
    fn grouped_matches_ungrouped_on_single_device() {
        let per_unit: Vec<(u64, WorkCounters)> =
            (0..500).map(|i| (10, unit(1000 + i % 7))).collect();
        let mut groups = std::collections::HashMap::<u64, u64>::new();
        for &(_, c) in &per_unit {
            *groups.entry(c.edges_relaxed).or_insert(0) += 1;
        }
        let groups: Vec<(u64, WorkCounters, u64)> =
            groups.into_iter().map(|(e, k)| (10, unit(e), k)).collect();
        for exec in [
            HeteroExecutor::sequential(),
            HeteroExecutor::multicore(),
            HeteroExecutor::gpu_only(),
        ] {
            let a = exec.simulate(&per_unit);
            let b = exec.simulate_grouped(&groups);
            // Single device: both sides run one batch over everything.
            assert!(
                (a.makespan_s - b.makespan_s).abs() < 1e-12,
                "{}",
                exec.devices()[0].name
            );
            assert_eq!(a.total_counters(), b.total_counters());
        }
    }

    #[test]
    fn hetero_grouped_never_loses_to_solo_devices() {
        for size in [1u64, 100, 10_000, 1_000_000] {
            let groups = vec![(1u64, unit(size), 997u64)];
            let het = HeteroExecutor::cpu_gpu().simulate_grouped(&groups);
            let mc = HeteroExecutor::multicore().simulate_grouped(&groups);
            let gpu = HeteroExecutor::gpu_only().simulate_grouped(&groups);
            assert!(
                het.makespan_s <= mc.makespan_s.min(gpu.makespan_s) + 1e-12,
                "size {size}: het {} mc {} gpu {}",
                het.makespan_s,
                mc.makespan_s,
                gpu.makespan_s
            );
        }
    }

    #[test]
    fn grouped_counters_scale_with_counts() {
        let groups = vec![(1u64, unit(3), 10u64), (1, unit(5), 4)];
        let rep = HeteroExecutor::sequential().simulate_grouped(&groups);
        assert_eq!(rep.total_counters().edges_relaxed, 3 * 10 + 5 * 4);
        assert_eq!(rep.total_units(), 14);
    }

    #[test]
    fn empty_groups_are_free() {
        let rep = HeteroExecutor::cpu_gpu().simulate_grouped(&[]);
        assert_eq!(rep.makespan_s, 0.0);
        assert_eq!(rep.total_units(), 0);
    }

    #[test]
    fn big_uniform_workload_splits_across_devices() {
        // Enough work that both devices should participate.
        let groups = vec![(1u64, unit(100_000), 100_000u64)];
        let rep = HeteroExecutor::cpu_gpu().simulate_grouped(&groups);
        let busy: Vec<f64> = rep.devices.iter().map(|d| d.busy_s).collect();
        assert!(busy.iter().all(|&b| b > 0.0), "both devices busy: {busy:?}");
        // Makespan beats either device alone.
        let gpu = HeteroExecutor::gpu_only().simulate_grouped(&groups);
        assert!(rep.makespan_s < gpu.makespan_s);
    }
}
