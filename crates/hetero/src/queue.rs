//! The double-ended batched work queue (paper §2.3, after Indarapu et al.).
//!
//! Workunits are sorted by decreasing size so that the GPU — which amortises
//! its launch overhead over big uniform batches — consumes from the *front*
//! (largest units) while the CPU consumes from the *back* (smallest units).
//! Both ends pop in batches sized to the device; the computation is done
//! when the queue drains. Exactly-once delivery is guaranteed by a single
//! mutex around the deque — contention is negligible because pops are
//! batched (hundreds of units per lock acquisition).

use std::collections::VecDeque;

use parking_lot::Mutex;

/// Thread-safe double-ended batch queue over workunit indices (or any
/// payload `T`).
#[derive(Debug)]
pub struct WorkQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> WorkQueue<T> {
    /// Builds a queue from items already ordered front-to-back.
    pub fn new(items: impl IntoIterator<Item = T>) -> Self {
        WorkQueue {
            inner: Mutex::new(items.into_iter().collect()),
        }
    }

    /// Builds a queue sorted descending by `size`, so the front holds the
    /// biggest workunits (paper: "sorted ... so that the GPU starts
    /// accessing the bigger workunits"). Ties keep the input order.
    pub fn sorted_desc_by_key<K: Ord>(mut items: Vec<T>, size: impl Fn(&T) -> K) -> Self {
        items.sort_by_key(|a| std::cmp::Reverse(size(a)));
        Self::new(items)
    }

    /// Pops up to `k` items from the front (the big-workunit end).
    pub fn pop_front_batch(&self, k: usize) -> Vec<T> {
        let mut q = self.inner.lock();
        let take = k.min(q.len());
        let out: Vec<T> = q.drain(..take).collect();
        if ear_obs::is_enabled() && take > 0 {
            ear_obs::counter_add("queue.pops.front", 1);
            ear_obs::counter_add("queue.units.front", take as u64);
            ear_obs::counter_event("queue.len", q.len() as u64);
            ear_obs::histogram_record("queue.len_after_pop", q.len() as u64);
        }
        out
    }

    /// Pops up to `k` items from the back (the small-workunit end), in
    /// "closest to the end first" order — a single back-to-front pass, no
    /// intermediate copy-and-reverse.
    pub fn pop_back_batch(&self, k: usize) -> Vec<T> {
        let mut q = self.inner.lock();
        let take = k.min(q.len());
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            out.push(q.pop_back().expect("take <= len"));
        }
        if ear_obs::is_enabled() && take > 0 {
            ear_obs::counter_add("queue.pops.back", 1);
            ear_obs::counter_add("queue.units.back", take as u64);
            ear_obs::counter_event("queue.len", q.len() as u64);
            ear_obs::histogram_record("queue.len_after_pop", q.len() as u64);
        }
        out
    }

    /// Items remaining.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when drained.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sorted_desc_puts_big_units_in_front() {
        let q = WorkQueue::sorted_desc_by_key(vec![3u64, 9, 1, 7], |&x| x);
        assert_eq!(q.pop_front_batch(2), vec![9, 7]);
        assert_eq!(q.pop_back_batch(2), vec![1, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn front_and_back_batches_never_overlap() {
        let q = WorkQueue::new(0..10u32);
        let f = q.pop_front_batch(4);
        let b = q.pop_back_batch(4);
        assert_eq!(f, vec![0, 1, 2, 3]);
        assert_eq!(b, vec![9, 8, 7, 6]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn oversized_batch_drains_whats_left() {
        let q = WorkQueue::new(0..3u32);
        assert_eq!(q.pop_front_batch(100).len(), 3);
        assert!(q.pop_back_batch(5).is_empty());
    }

    #[test]
    fn concurrent_consumers_see_each_item_exactly_once() {
        let n = 10_000u32;
        let q = std::sync::Arc::new(WorkQueue::new(0..n));
        let seen = std::sync::Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let mut handles = Vec::new();
        for t in 0..8 {
            let q = q.clone();
            let seen = seen.clone();
            handles.push(std::thread::spawn(move || loop {
                let batch = if t % 2 == 0 {
                    q.pop_front_batch(7)
                } else {
                    q.pop_back_batch(13)
                };
                if batch.is_empty() {
                    break;
                }
                for item in batch {
                    seen[item as usize].fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: WorkQueue<u32> = WorkQueue::new(std::iter::empty());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
