//! Device descriptions and the batch time model.

use crate::counters::WorkCounters;

/// Broad device class; drives queue-end selection (the paper's GPU takes
/// the big workunits from one end, the CPU the small ones from the other).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// Latency-oriented device: small batches, low launch overhead.
    Cpu,
    /// Throughput-oriented device: large batches, kernel-launch overhead,
    /// poor efficiency on irregular access.
    Gpu,
}

/// A calibrated execution resource.
///
/// The model converts a batch of workunits (with measured [`WorkCounters`])
/// into seconds:
///
/// ```text
/// lane_rate   = clock_ghz · 1e9 · ops_per_cycle · irregular_efficiency
/// compute     = lane_rate · lanes
/// mem_rate    = mem_bandwidth_gbs · 1e9 / bytes-per-op(batch)
/// time(batch) = launch_overhead + max( critical_ops / (lane_rate · intra_unit_lanes),
///                                      total_ops / min(compute, mem_rate·ops/bytes) )
/// ```
///
/// i.e. a batch can be bound by its critical path (one big workunit), by
/// raw compute, or by memory bandwidth — for the sparse-graph kernels of
/// this suite the bandwidth term dominates, which is what makes the K40c's
/// 288 GB/s beat the E5-2650's 68 GB/s by roughly the factor the paper
/// reports between its GPU and multicore MCB implementations.
#[derive(Clone, Debug)]
pub struct DeviceProfile {
    /// Display name.
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// Hardware parallel lanes (CPU: hardware threads; GPU: CUDA cores).
    pub lanes: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Useful operations per cycle per lane.
    pub ops_per_cycle: f64,
    /// Derating factor for irregular (pointer-chasing) access patterns.
    pub irregular_efficiency: f64,
    /// Per-batch launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Device memory capacity in bytes (the paper's 12 GB GPU limit).
    pub mem_capacity_bytes: u64,
    /// Workunits popped from the queue per batch.
    pub batch_units: usize,
    /// Lanes cooperating *within* one workunit. A GPU kernel parallelises
    /// inside a single SSSP/scan workunit (Harish–Narayanan style frontier
    /// relaxation maps one workunit to a thread block), so its critical
    /// path is divided by an SM's worth of lanes; a CPU thread runs one
    /// workunit alone.
    pub intra_unit_lanes: u32,
}

impl DeviceProfile {
    /// The paper's multicore CPU: dual-socket Intel E5-2650 v3-class part —
    /// 2 × 10 cores × 2 hyperthreads at 2.3 GHz, 68 GB/s, 128 GB RAM.
    pub fn e5_2650() -> Self {
        DeviceProfile {
            name: "E5-2650 (2x10 cores)".into(),
            kind: DeviceKind::Cpu,
            lanes: 40,
            clock_ghz: 2.3,
            ops_per_cycle: 1.0,
            irregular_efficiency: 1.0,
            launch_overhead_us: 1.0,
            mem_bandwidth_gbs: 68.0,
            mem_capacity_bytes: 128 << 30,
            batch_units: 16,
            intra_unit_lanes: 1,
        }
    }

    /// The paper's GPU: NVidia Tesla K40c — 2880 cores over 15 SMs at
    /// 745 MHz, 288 GB/s, 12 GB GDDR5. The irregular-access efficiency is
    /// the usual order-of-magnitude SIMT derating for sparse graph kernels
    /// (divergent warps, uncoalesced loads).
    pub fn k40c() -> Self {
        DeviceProfile {
            name: "Tesla K40c".into(),
            kind: DeviceKind::Gpu,
            lanes: 2880,
            clock_ghz: 0.745,
            ops_per_cycle: 1.0,
            irregular_efficiency: 0.12,
            launch_overhead_us: 8.0,
            mem_bandwidth_gbs: 288.0,
            mem_capacity_bytes: 12 << 30,
            batch_units: 256,
            intra_unit_lanes: 192,
        }
    }

    /// One core of the E5-2650: the sequential baseline device.
    pub fn single_core() -> Self {
        DeviceProfile {
            name: "1 core E5-2650".into(),
            kind: DeviceKind::Cpu,
            lanes: 1,
            clock_ghz: 2.3,
            ops_per_cycle: 1.0,
            irregular_efficiency: 1.0,
            launch_overhead_us: 0.0,
            mem_bandwidth_gbs: 15.0, // single-thread attainable bandwidth
            mem_capacity_bytes: 128 << 30,
            batch_units: 1,
            intra_unit_lanes: 1,
        }
    }

    /// Effective operations per second of one lane.
    pub fn lane_rate(&self) -> f64 {
        self.clock_ghz * 1e9 * self.ops_per_cycle * self.irregular_efficiency
    }

    /// Modelled execution time (seconds) of one batch: `per_unit` holds the
    /// counters of every workunit in the batch.
    pub fn batch_time_s(&self, per_unit: &[WorkCounters]) -> f64 {
        if per_unit.is_empty() {
            return 0.0;
        }
        self.launch_overhead_us * 1e-6 + self.batch_work_s(per_unit)
    }

    /// The work portion of [`DeviceProfile::batch_time_s`] (no launch
    /// overhead) — follow-up batches in a streamed schedule pay only this.
    pub fn batch_work_s(&self, per_unit: &[WorkCounters]) -> f64 {
        if per_unit.is_empty() {
            return 0.0;
        }
        let total_ops: f64 = per_unit.iter().map(|c| c.weighted_ops()).sum();
        let total_bytes: f64 = per_unit.iter().map(|c| c.approx_bytes()).sum();
        let critical_ops = per_unit
            .iter()
            .map(|c| c.weighted_ops())
            .fold(0.0_f64, f64::max);
        self.work_time(total_ops, total_bytes, critical_ops)
    }

    /// [`DeviceProfile::batch_work_s`] over a grouped batch: `comp[i]` is
    /// `count` workunits sharing one counter set. No launch overhead — the
    /// grouped simulator charges that once per device per call.
    pub fn batch_work_grouped(&self, comp: &[(WorkCounters, u64)]) -> f64 {
        if comp.is_empty() {
            return 0.0;
        }
        let total_ops: f64 = comp.iter().map(|(c, k)| c.weighted_ops() * *k as f64).sum();
        let total_bytes: f64 = comp.iter().map(|(c, k)| c.approx_bytes() * *k as f64).sum();
        let critical_ops = comp
            .iter()
            .map(|(c, _)| c.weighted_ops())
            .fold(0.0_f64, f64::max);
        self.work_time(total_ops, total_bytes, critical_ops)
    }

    fn work_time(&self, total_ops: f64, total_bytes: f64, critical_ops: f64) -> f64 {
        let lane = self.lane_rate();
        let compute_rate = lane * self.lanes as f64;
        let mem_time = total_bytes / (self.mem_bandwidth_gbs * 1e9);
        let throughput_time = (total_ops / compute_rate).max(mem_time);
        let critical_time = critical_ops / (lane * self.intra_unit_lanes as f64);
        throughput_time.max(critical_time)
    }

    /// Whether a working set fits device memory (the paper's experiments
    /// are bounded by the GPU's 12 GB; see §2.3).
    pub fn fits_memory(&self, bytes: u64) -> bool {
        bytes <= self.mem_capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(ops_edges: u64) -> WorkCounters {
        WorkCounters {
            edges_relaxed: ops_edges,
            ..Default::default()
        }
    }

    #[test]
    fn presets_are_sane() {
        let cpu = DeviceProfile::e5_2650();
        let gpu = DeviceProfile::k40c();
        let seq = DeviceProfile::single_core();
        assert!(gpu.lanes > cpu.lanes);
        assert!(seq.lanes == 1);
        assert!(gpu.mem_bandwidth_gbs > cpu.mem_bandwidth_gbs);
        assert!(gpu.fits_memory(10 << 30));
        assert!(!gpu.fits_memory(13 << 30));
    }

    #[test]
    fn more_work_takes_longer() {
        let d = DeviceProfile::e5_2650();
        let t1 = d.batch_time_s(&[unit(1_000)]);
        let t2 = d.batch_time_s(&[unit(1_000_000)]);
        assert!(t2 > t1);
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(DeviceProfile::k40c().batch_time_s(&[]), 0.0);
    }

    #[test]
    fn critical_path_bounds_batch() {
        let d = DeviceProfile::e5_2650();
        // One giant unit among many tiny ones: time is at least the giant's
        // single-lane time.
        let mut batch = vec![unit(10); 39];
        batch.push(unit(10_000_000));
        let t = d.batch_time_s(&batch);
        let giant_alone = unit(10_000_000).weighted_ops() / d.lane_rate();
        assert!(t >= giant_alone);
    }

    #[test]
    fn parallel_batch_beats_serial_sum() {
        let d = DeviceProfile::e5_2650();
        let batch = vec![unit(1_000_000); 40];
        let together = d.batch_time_s(&batch);
        let serial: f64 = batch
            .iter()
            .map(|c| d.batch_time_s(std::slice::from_ref(c)))
            .sum();
        assert!(
            together < serial * 0.5,
            "together={together} serial={serial}"
        );
    }

    #[test]
    fn bulk_throughput_ratios_match_the_papers_shape() {
        // The modelled device hierarchy on big memory-bound batches must
        // reproduce the paper's ordering: sequential < multicore < GPU <
        // GPU+CPU, with GPU/multicore around the published bandwidth ratio.
        let batch: Vec<WorkCounters> = (0..4096).map(|_| unit(100_000)).collect();
        let t_seq = DeviceProfile::single_core().batch_time_s(&batch);
        let t_cpu = DeviceProfile::e5_2650().batch_time_s(&batch);
        let t_gpu = DeviceProfile::k40c().batch_time_s(&batch);
        assert!(t_cpu < t_seq);
        assert!(t_gpu < t_cpu);
        let ratio = t_cpu / t_gpu;
        assert!(ratio > 2.0 && ratio < 8.0, "gpu/cpu speedup {ratio}");
    }

    #[test]
    fn launch_overhead_dominates_tiny_gpu_batches() {
        let gpu = DeviceProfile::k40c();
        let t = gpu.batch_time_s(&[unit(1)]);
        assert!(t >= 8.0e-6);
    }
}
