//! # ear-hetero
//!
//! A simulated heterogeneous CPU+GPU execution platform.
//!
//! The paper runs its algorithms on an Intel E5-2650 multicore CPU plus an
//! NVidia Tesla K40c GPU, balancing work between them with a double-ended
//! work queue (Indarapu et al.; paper §2.3/§3.4). This crate reproduces that
//! platform **as a model**: kernels execute for real on host threads (so
//! every result is genuine and testable), while a discrete-event scheduler
//! charges each device *modelled time* derived from instrumented operation
//! counts and a calibrated [`DeviceProfile`] (lanes × clock × efficiency,
//! kernel-launch overhead, memory bandwidth).
//!
//! Why this preserves the paper's behaviour: the reported speedups come from
//! (a) algorithmic work reduction — measured exactly here, because the
//! counters come from the real algorithm runs — and (b) device throughput
//! ratios — encoded in the profiles, which are derived from the published
//! hardware specifications (see [`profile::DeviceProfile::k40c`] and
//! [`profile::DeviceProfile::e5_2650`]). Absolute seconds are not comparable
//! to the paper's testbed; ratios and crossovers are.
//!
//! Modules:
//! * [`counters`] — the operation counters all algorithm crates report;
//! * [`profile`] — device descriptions and the batch time model;
//! * [`queue`] — the sorted double-ended work queue;
//! * [`executor`] — discrete-event heterogeneous scheduler plus a
//!   real-concurrency mode for tests and examples.

pub mod counters;
pub mod executor;
pub mod profile;
pub mod queue;

pub use counters::{group_units, group_units_two, UnitGroups, WorkCounters};
pub use executor::{DeviceReport, ExecutionReport, HeteroExecutor, RunOutput};
pub use profile::{DeviceKind, DeviceProfile};
pub use queue::WorkQueue;
