//! Operation counters reported by the algorithm kernels.
//!
//! Every workunit kernel returns a [`WorkCounters`] describing the work it
//! actually performed; the device model converts those counts into modelled
//! time. The categories mirror the phases the paper instruments in §3.5
//! (label computation, minimum-cycle search, independence test) plus the
//! Dijkstra relaxations that dominate the APSP phase (and define the MTEPS
//! metric of Figure 3).

/// Counts of the elementary operations a kernel performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct WorkCounters {
    /// Edge relaxations (Dijkstra / BFS sweeps).
    pub edges_relaxed: u64,
    /// Vertices settled / visited.
    pub vertices_settled: u64,
    /// Per-node labels computed (MCB Algorithm 3 passes).
    pub labels_computed: u64,
    /// Candidate cycles inspected during the minimum-cycle search.
    pub cycles_inspected: u64,
    /// 64-bit words touched by witness inner products and XOR updates.
    pub words_xored: u64,
    /// Post-processing distance combinations evaluated (the `min{...}`
    /// formulas of paper §2.1.3) — irregular access (scattered anchor
    /// lookups).
    pub distances_combined: u64,
    /// Dense, blocked distance combinations (the tiled min-plus kernels of
    /// partition-based APSP): same arithmetic, cache/tile-resident
    /// operands.
    pub dense_combined: u64,
}

impl WorkCounters {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, o: &WorkCounters) {
        self.edges_relaxed += o.edges_relaxed;
        self.vertices_settled += o.vertices_settled;
        self.labels_computed += o.labels_computed;
        self.cycles_inspected += o.cycles_inspected;
        self.words_xored += o.words_xored;
        self.distances_combined += o.distances_combined;
        self.dense_combined += o.dense_combined;
    }

    /// Total elementary operations, weighted to a common "op" unit.
    ///
    /// An edge relaxation involves a weight fetch, an add, a compare and a
    /// conditional heap push — heavier than a label XOR or a word XOR. The
    /// weights keep different kernels comparable under one device model.
    pub fn weighted_ops(&self) -> f64 {
        self.edges_relaxed as f64 * 4.0
            + self.vertices_settled as f64 * 6.0
            + self.labels_computed as f64 * 2.0
            + self.cycles_inspected as f64 * 3.0
            + self.words_xored as f64 * 1.0
            + self.distances_combined as f64 * 2.0
            + self.dense_combined as f64 * 2.0
    }

    /// Approximate bytes of memory traffic behind those operations; the
    /// device model compares compute-rate against bandwidth with this.
    pub fn approx_bytes(&self) -> f64 {
        self.edges_relaxed as f64 * 16.0
            + self.vertices_settled as f64 * 24.0
            + self.labels_computed as f64 * 16.0
            + self.cycles_inspected as f64 * 12.0
            + self.words_xored as f64 * 16.0
            + self.distances_combined as f64 * 8.0
            + self.dense_combined as f64 * 2.0
    }

    /// True when nothing was counted.
    pub fn is_empty(&self) -> bool {
        *self == WorkCounters::default()
    }

    /// Counters of `count` identical workunits of this cost.
    pub fn scaled(&self, count: u64) -> WorkCounters {
        WorkCounters {
            edges_relaxed: self.edges_relaxed * count,
            vertices_settled: self.vertices_settled * count,
            labels_computed: self.labels_computed * count,
            cycles_inspected: self.cycles_inspected * count,
            words_xored: self.words_xored * count,
            distances_combined: self.distances_combined * count,
            dense_combined: self.dense_combined * count,
        }
    }
}

/// Run-length-encoded cost groups of one recorded step: `(size hint,
/// counters, unit count)` — the shape
/// [`HeteroExecutor::simulate_grouped`](crate::HeteroExecutor::simulate_grouped)
/// consumes. Grouping identical per-unit counters keeps trace replay
/// O(distinct costs) instead of O(units).
pub type UnitGroups = Vec<(u64, WorkCounters, u64)>;

/// Compresses per-unit counters (all sharing one size hint) into run-length
/// groups for [`crate::HeteroExecutor::simulate_grouped`].
///
/// The output order is deterministic whenever the realized counters have
/// pairwise-distinct `(weighted_ops, count)` sort keys — true for every
/// step the MCB phase loop records (label counts differ per tree size,
/// update counters differ by the XOR word cost).
pub fn group_units(hint: u64, per_unit: impl IntoIterator<Item = WorkCounters>) -> UnitGroups {
    let mut map = std::collections::HashMap::<WorkCounters, u64>::new();
    for c in per_unit {
        *map.entry(c).or_insert(0) += 1;
    }
    let mut v: UnitGroups = map.into_iter().map(|(c, k)| (hint, c, k)).collect();
    // Deterministic order (HashMap iteration is not).
    v.sort_by_key(|&(_, c, k)| (std::cmp::Reverse(c.weighted_ops() as u64), k));
    v
}

/// [`group_units`] specialised to a two-counter multiset: `n_heavy` units
/// of cost `heavy` and `n_light` of cost `light`, with
/// `heavy.weighted_ops() > light.weighted_ops()`.
///
/// Produces byte-identical output to feeding the equivalent multiset
/// through [`group_units`], without hashing O(units) counter structs — the
/// batched GF(2) kernels know the two group sizes in closed form (updated
/// vs. untouched witnesses), so the per-phase trace costs O(1).
pub fn group_units_two(
    hint: u64,
    heavy: WorkCounters,
    n_heavy: u64,
    light: WorkCounters,
    n_light: u64,
) -> UnitGroups {
    debug_assert!(
        heavy.weighted_ops() > light.weighted_ops(),
        "group_units_two requires strictly ordered costs"
    );
    let mut v = UnitGroups::new();
    if n_heavy > 0 {
        v.push((hint, heavy, n_heavy));
    }
    if n_light > 0 {
        v.push((hint, light, n_light));
    }
    v
}

impl std::ops::Add for WorkCounters {
    type Output = WorkCounters;
    fn add(mut self, rhs: WorkCounters) -> WorkCounters {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for WorkCounters {
    fn sum<I: Iterator<Item = WorkCounters>>(iter: I) -> Self {
        iter.fold(WorkCounters::default(), |acc, c| acc + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_fields() {
        let a = WorkCounters {
            edges_relaxed: 1,
            vertices_settled: 2,
            labels_computed: 3,
            cycles_inspected: 4,
            words_xored: 5,
            distances_combined: 6,
            dense_combined: 7,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.edges_relaxed, 2);
        assert_eq!(c.distances_combined, 12);
    }

    #[test]
    fn weighted_ops_monotone_in_counts() {
        let small = WorkCounters {
            edges_relaxed: 10,
            ..Default::default()
        };
        let big = WorkCounters {
            edges_relaxed: 100,
            ..Default::default()
        };
        assert!(big.weighted_ops() > small.weighted_ops());
        assert!(small.weighted_ops() > 0.0);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            WorkCounters {
                words_xored: 7,
                ..Default::default()
            },
            WorkCounters {
                words_xored: 3,
                ..Default::default()
            },
        ];
        let total: WorkCounters = parts.into_iter().sum();
        assert_eq!(total.words_xored, 10);
    }

    #[test]
    fn group_units_compresses_and_orders() {
        let heavy = WorkCounters {
            words_xored: 9,
            ..Default::default()
        };
        let light = WorkCounters {
            words_xored: 2,
            ..Default::default()
        };
        let groups = group_units(5, vec![light, heavy, light, light]);
        assert_eq!(groups, vec![(5, heavy, 1), (5, light, 3)]);
    }

    #[test]
    fn group_units_two_matches_group_units() {
        let heavy = WorkCounters {
            words_xored: 7,
            ..Default::default()
        };
        let light = WorkCounters {
            words_xored: 3,
            ..Default::default()
        };
        for (nh, nl) in [(0u64, 0u64), (0, 4), (3, 0), (2, 5)] {
            let multiset = std::iter::repeat_n(heavy, nh as usize)
                .chain(std::iter::repeat_n(light, nl as usize));
            assert_eq!(
                group_units_two(11, heavy, nh, light, nl),
                group_units(11, multiset),
                "nh={nh} nl={nl}"
            );
        }
    }

    #[test]
    fn empty_detection() {
        assert!(WorkCounters::new().is_empty());
        assert!(!WorkCounters {
            labels_computed: 1,
            ..Default::default()
        }
        .is_empty());
    }
}
