//! Base graph topologies.
//!
//! All generators are deterministic given a seed and produce simple
//! connected graphs with integer weights in `1..=max_w`.

use ear_graph::{CsrGraph, GraphBuilder, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default weight range used across the suite.
pub const MAX_WEIGHT: Weight = 100;

fn w(rng: &mut StdRng) -> Weight {
    rng.gen_range(1..=MAX_WEIGHT)
}

/// Rectangular grid graph (`rows × cols`), 4-neighborhood.
pub fn grid(rows: usize, cols: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::with_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1), w(&mut rng));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c), w(&mut rng));
            }
        }
    }
    b.build()
}

/// Triangulated grid: a grid plus one diagonal per cell. Planar, average
/// degree ≈ 6, essentially no degree-2 vertices — the `delaunay_n15`
/// stand-in.
pub fn triangulated_grid(rows: usize, cols: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::with_capacity(rows * cols, 3 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1), w(&mut rng));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c), w(&mut rng));
            }
            if r + 1 < rows && c + 1 < cols {
                // Alternate the diagonal direction for a delaunay-ish mix.
                if (r + c) % 2 == 0 {
                    b.add_edge(idx(r, c), idx(r + 1, c + 1), w(&mut rng));
                } else {
                    b.add_edge(idx(r, c + 1), idx(r + 1, c), w(&mut rng));
                }
            }
        }
    }
    b.build()
}

/// Preferential attachment (Barabási–Albert flavoured): each new vertex
/// attaches to `attach` existing vertices sampled proportionally to
/// degree. Heavy-tailed, one giant biconnected core — the collaboration /
/// AS-topology stand-in.
pub fn power_law(n: usize, attach: usize, seed: u64) -> CsrGraph {
    assert!(n > attach && attach >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * attach);
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * attach);
    // Seed clique on attach+1 vertices.
    for i in 0..=attach as u32 {
        for j in 0..i {
            b.add_edge(i, j, w(&mut rng));
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (attach as u32 + 1)..n as u32 {
        let mut chosen = std::collections::HashSet::new();
        let mut guard = 0;
        while chosen.len() < attach && guard < 50 * attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v {
                chosen.insert(t);
            }
            guard += 1;
        }
        // HashSet iteration order is nondeterministic; sort so the builder
        // output depends only on the seed.
        let mut chosen: Vec<u32> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for t in chosen {
            b.add_edge(v, t, w(&mut rng));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice with `k` neighbours each side,
/// each edge rewired with probability `beta_pct`/100.
pub fn small_world(n: usize, k: usize, beta_pct: u32, seed: u64) -> CsrGraph {
    assert!(n > 2 * k && k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut b = GraphBuilder::with_capacity(n, n * k);
    for v in 0..n as u32 {
        for d in 1..=k as u32 {
            let mut t = (v + d) % n as u32;
            if rng.gen_range(0..100) < beta_pct {
                // Rewire to a uniform random target.
                let mut guard = 0;
                loop {
                    let cand = rng.gen_range(0..n as u32);
                    if cand != v && !seen.contains(&key(v, cand)) || guard > 20 {
                        t = cand;
                        break;
                    }
                    guard += 1;
                }
            }
            if t != v && seen.insert(key(v, t)) {
                b.add_edge(v, t, w(&mut rng));
            }
        }
    }
    b.build()
}

fn key(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Random connected graph with `m ≥ n−1` edges: a random spanning tree plus
/// uniform random extra edges (simple). The workhorse of the property-test
/// harness.
pub fn random_connected(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 1);
    let m = m.max(n.saturating_sub(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut seen = std::collections::HashSet::new();
    // Random attachment tree.
    for v in 1..n as u32 {
        let t = rng.gen_range(0..v);
        seen.insert(key(v, t));
        b.add_edge(v, t, w(&mut rng));
    }
    let max_edges = n * (n - 1) / 2;
    let mut guard = 0;
    while b.m() < m.min(max_edges) && guard < 100 * m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && seen.insert(key(u, v)) {
            b.add_edge(u, v, w(&mut rng));
        }
        guard += 1;
    }
    b.build()
}

/// Random connected graph with minimum degree 3: the biconnected-core
/// builder behind the non-planar Table 1 specs (no native degree-2
/// vertices, so every degree-2 vertex later planted by subdivision is
/// accounted for exactly).
pub fn random_min_deg3(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 4, "need at least K4");
    let base = random_connected(n, m.max(2 * n), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut edges: Vec<(u32, u32, Weight)> = base.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
    let mut seen: std::collections::HashSet<(u32, u32)> =
        edges.iter().map(|&(u, v, _)| key(u, v)).collect();
    let mut deg = vec![0usize; n];
    for &(u, v, _) in &edges {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    for v in 0..n as u32 {
        let mut guard = 0;
        while deg[v as usize] < 3 && guard < 1000 {
            let t = rng.gen_range(0..n as u32);
            if t != v && seen.insert(key(v, t)) {
                edges.push((v, t, w(&mut rng)));
                deg[v as usize] += 1;
                deg[t as usize] += 1;
            }
            guard += 1;
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_graph::connected_components;

    #[test]
    fn grid_shape() {
        let g = grid(5, 7, 1);
        assert_eq!(g.n(), 35);
        assert_eq!(g.m(), 5 * 6 + 4 * 7);
        assert!(connected_components(&g).is_connected());
        assert!(g.is_simple());
    }

    #[test]
    fn triangulated_grid_has_no_degree_two_interior() {
        let g = triangulated_grid(10, 10, 2);
        let deg2 = (0..g.n() as u32).filter(|&v| g.degree(v) == 2).count();
        assert!(deg2 <= 4, "only corners may be degree 2, got {deg2}");
        assert!(connected_components(&g).is_connected());
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        let g = power_law(500, 3, 3);
        assert!(connected_components(&g).is_connected());
        assert!(g.is_simple());
        let max_deg = (0..g.n() as u32).map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(max_deg as f64 > 4.0 * avg, "max {max_deg} avg {avg}");
    }

    #[test]
    fn small_world_is_connected_and_simple() {
        let g = small_world(200, 3, 10, 4);
        assert!(g.is_simple());
        assert!(connected_components(&g).is_connected());
    }

    #[test]
    fn random_connected_hits_target_edges() {
        let g = random_connected(50, 120, 5);
        assert_eq!(g.n(), 50);
        assert_eq!(g.m(), 120);
        assert!(connected_components(&g).is_connected());
        assert!(g.is_simple());
    }

    #[test]
    fn random_min_deg3_has_min_degree_three() {
        let g = random_min_deg3(100, 250, 6);
        assert!((0..g.n() as u32).all(|v| g.degree(v) >= 3));
        assert!(connected_components(&g).is_connected());
        assert!(g.is_simple());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = power_law(100, 2, 42);
        let b = power_law(100, 2, 42);
        assert_eq!(a.edges(), b.edges());
        let c = power_law(100, 2, 43);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn weights_are_in_range() {
        let g = random_connected(30, 60, 7);
        assert!(g.edges().iter().all(|e| e.w >= 1 && e.w <= MAX_WEIGHT));
    }
}
