//! The fifteen dataset rows of the paper's Table 1, as buildable specs.
//!
//! Each spec records the published statistics and a recipe that hits them:
//! a base topology with (almost) no native degree-2 vertices, edge
//! subdivision to plant the published degree-2 share, and pendants /
//! satellite blocks to populate the published biconnected-component count.
//! `build(scale, …)` divides all sizes by `scale`, keeping the *shares*
//! fixed — the benches default to scaled-down graphs and EXPERIMENTS.md
//! records the scale used.

use ear_graph::CsrGraph;

use crate::combinators::{attach_pendants, attach_satellite_blocks, subdivide_edges};
use crate::generators::{power_law, random_min_deg3, small_world, triangulated_grid};

/// The base topology family a spec grows from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaseKind {
    /// Triangulated grid — planar meshes (`nopoly`, `delaunay_n15`,
    /// `Planar_*`).
    Mesh,
    /// Preferential attachment — collaboration and AS graphs.
    PowerLaw,
    /// Watts–Strogatz — optimisation-matrix style locality (`c-50`,
    /// `OPF_3754`).
    SmallWorld,
    /// Random with minimum degree 3 — generic sparse cores.
    RandomCore,
}

/// One Table 1 row.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Published `|V|`.
    pub n: usize,
    /// Published `|E|`.
    pub m: usize,
    /// Published number of biconnected components.
    pub bccs: usize,
    /// Published largest-BCC edge share (percent).
    pub largest_bcc_pct: f64,
    /// Published "Nodes Removed" share (percent of `|V|`).
    pub removed_pct: f64,
    /// Paper's reported memory for the paper's approach (MB).
    pub paper_ours_mb: u64,
    /// Paper's reported flat-table memory (MB).
    pub paper_max_mb: u64,
    /// Base topology.
    pub base: BaseKind,
    /// True for the OGDF-planar rows (drives the Djidjev comparison).
    pub planar: bool,
}

impl DatasetSpec {
    /// Builds a synthetic analog at `1/scale` of the published size.
    ///
    /// The recipe:
    /// 1. budget the degree-2 population `n₂ = removed_pct·n` and the
    ///    satellite/pendant population from the BCC count;
    /// 2. generate the core on the remaining vertices with the remaining
    ///    edge budget;
    /// 3. subdivide random core edges to plant the `n₂` chain vertices;
    /// 4. attach satellites/pendants for the BCC count.
    pub fn build(&self, scale: usize, seed: u64) -> CsrGraph {
        assert!(scale >= 1);
        let n = (self.n / scale).max(24);
        let m = (self.m / scale).max(n + 8);
        let bccs = (self.bccs / scale).clamp(1, n / 8);

        // Satellite blocks create bccs-1 extra components: half pendants
        // (1 vertex, 1 edge), half triangles (2 vertices, 3 edges).
        let extra = bccs - 1;
        let pendants = extra / 2;
        let satellites = extra - pendants;
        let sat_vertices = satellites * 2 + pendants;
        let sat_edges = satellites * 3 + pendants;

        // Degree-2 chain vertices to plant, each adding one vertex and one
        // edge over the core.
        let n2 = ((self.removed_pct / 100.0) * n as f64) as usize;
        let core_n = n.saturating_sub(n2 + sat_vertices).max(16);
        let core_m = m.saturating_sub(n2 + sat_edges).max(core_n + 4);

        // Chains: average length ~2 vertices (matching the short-chain
        // profile of real sparse graphs); the count of subdivided edges
        // follows.
        let chain_len = 2usize;
        let chains = n2.div_ceil(chain_len);

        let core = match self.base {
            BaseKind::Mesh => {
                let rows = (core_n as f64).sqrt().round() as usize;
                let cols = core_n.div_ceil(rows.max(1)).max(2);
                triangulated_grid(rows.max(2), cols, seed)
            }
            BaseKind::PowerLaw => {
                let attach = (core_m / core_n).clamp(2, 16);
                power_law(core_n, attach, seed)
            }
            BaseKind::SmallWorld => {
                let k = (core_m / core_n).clamp(2, 12);
                small_world(core_n, k, 12, seed)
            }
            BaseKind::RandomCore => random_min_deg3(core_n, core_m, seed),
        };
        let with_chains = if n2 > 0 {
            // Some chains come out shorter when n2 is not divisible; accept
            // the ±chain_len wobble.
            let mut g = subdivide_edges(&core, chains, chain_len, seed ^ 0xc4a1);
            let planted = g.n() - core.n();
            if planted + chain_len <= n2 {
                g = subdivide_edges(&g, (n2 - planted) / chain_len, chain_len, seed ^ 0xc4a2);
            }
            g
        } else {
            core
        };
        let with_sats = if satellites > 0 {
            attach_satellite_blocks(&with_chains, satellites, 3, seed ^ 0x5a7)
        } else {
            with_chains
        };
        if pendants > 0 {
            attach_pendants(&with_sats, pendants, seed ^ 0x9e4d)
        } else {
            with_sats
        }
    }
}

/// The ten general-graph rows of Table 1 (University of Florida
/// collection).
pub fn table1_specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "nopoly",
            n: 10_000,
            m: 30_000,
            bccs: 1,
            largest_bcc_pct: 100.0,
            removed_pct: 0.018,
            paper_ours_mb: 443,
            paper_max_mb: 443,
            base: BaseKind::Mesh,
            planar: false,
        },
        DatasetSpec {
            name: "OPF_3754",
            n: 15_000,
            m: 86_000,
            bccs: 1,
            largest_bcc_pct: 100.0,
            removed_pct: 1.98,
            paper_ours_mb: 873,
            paper_max_mb: 909,
            base: BaseKind::SmallWorld,
            planar: false,
        },
        DatasetSpec {
            name: "ca-AstroPh",
            n: 18_000,
            m: 198_000,
            bccs: 647,
            largest_bcc_pct: 98.43,
            removed_pct: 15.85,
            paper_ours_mb: 970,
            paper_max_mb: 1344,
            base: BaseKind::PowerLaw,
            planar: false,
        },
        DatasetSpec {
            name: "as-22july06",
            n: 22_000,
            m: 48_000,
            bccs: 13,
            largest_bcc_pct: 99.9,
            removed_pct: 77.60,
            paper_ours_mb: 851,
            paper_max_mb: 2012,
            base: BaseKind::PowerLaw,
            planar: false,
        },
        DatasetSpec {
            name: "c-50",
            n: 22_000,
            m: 90_000,
            bccs: 1,
            largest_bcc_pct: 100.0,
            removed_pct: 52.04,
            paper_ours_mb: 651,
            paper_max_mb: 1914,
            base: BaseKind::SmallWorld,
            planar: false,
        },
        DatasetSpec {
            name: "cond_mat_2003",
            n: 31_000,
            m: 120_000,
            bccs: 2157,
            largest_bcc_pct: 80.52,
            removed_pct: 26.88,
            paper_ours_mb: 1826,
            paper_max_mb: 3705,
            base: BaseKind::PowerLaw,
            planar: false,
        },
        DatasetSpec {
            name: "delaunay_n15",
            n: 32_000,
            m: 98_000,
            bccs: 1,
            largest_bcc_pct: 100.0,
            removed_pct: 0.0,
            paper_ours_mb: 4096,
            paper_max_mb: 4096,
            base: BaseKind::Mesh,
            planar: false,
        },
        DatasetSpec {
            name: "Rajat26",
            n: 51_000,
            m: 247_000,
            bccs: 5053,
            largest_bcc_pct: 95.17,
            removed_pct: 32.92,
            paper_ours_mb: 7176,
            paper_max_mb: 9934,
            base: BaseKind::RandomCore,
            planar: false,
        },
        DatasetSpec {
            name: "Wordnet3",
            n: 82_000,
            m: 132_000,
            bccs: 156,
            largest_bcc_pct: 98.92,
            removed_pct: 77.24,
            paper_ours_mb: 4663,
            paper_max_mb: 26_071,
            base: BaseKind::PowerLaw,
            planar: false,
        },
        DatasetSpec {
            name: "soc-sign-epinions",
            n: 131_000,
            m: 841_000,
            bccs: 609,
            largest_bcc_pct: 99.7,
            removed_pct: 67.86,
            paper_ours_mb: 12_932,
            paper_max_mb: 66_294,
            base: BaseKind::PowerLaw,
            planar: false,
        },
    ]
}

/// The five OGDF-planar rows of Table 1.
pub fn planar_specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Planar_1",
            n: 19_000,
            m: 54_000,
            bccs: 46,
            largest_bcc_pct: 99.55,
            removed_pct: 12.42,
            paper_ours_mb: 1278,
            paper_max_mb: 1296,
            base: BaseKind::Mesh,
            planar: true,
        },
        DatasetSpec {
            name: "Planar_2",
            n: 25_000,
            m: 64_000,
            bccs: 164,
            largest_bcc_pct: 93.65,
            removed_pct: 5.63,
            paper_ours_mb: 1627,
            paper_max_mb: 1881,
            base: BaseKind::Mesh,
            planar: true,
        },
        DatasetSpec {
            name: "Planar_3",
            n: 30_000,
            m: 70_000,
            bccs: 298,
            largest_bcc_pct: 96.53,
            removed_pct: 19.72,
            paper_ours_mb: 2068,
            paper_max_mb: 2275,
            base: BaseKind::Mesh,
            planar: true,
        },
        DatasetSpec {
            name: "Planar_4",
            n: 36_000,
            m: 94_000,
            bccs: 175,
            largest_bcc_pct: 98.37,
            removed_pct: 18.56,
            paper_ours_mb: 3890,
            paper_max_mb: 4074,
            base: BaseKind::Mesh,
            planar: true,
        },
        DatasetSpec {
            name: "Planar_5",
            n: 41_000,
            m: 128_000,
            bccs: 223,
            largest_bcc_pct: 95.63,
            removed_pct: 16.34,
            paper_ours_mb: 4350,
            paper_max_mb: 4942,
            base: BaseKind::Mesh,
            planar: true,
        },
    ]
}

/// All fifteen rows, general then planar.
pub fn all_specs() -> Vec<DatasetSpec> {
    let mut v = table1_specs();
    v.extend(planar_specs());
    v
}

/// The seven MCB evaluation graphs (paper §3.5 uses "the first seven
/// graphs listed in Table 1").
pub fn mcb_specs() -> Vec<DatasetSpec> {
    table1_specs().into_iter().take(7).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;
    use ear_graph::connected_components;

    #[test]
    fn all_specs_build_connected_graphs_at_high_scale() {
        for spec in all_specs() {
            let g = spec.build(64, 7);
            assert!(g.n() > 0, "{}", spec.name);
            assert!(
                connected_components(&g).is_connected(),
                "{} disconnected",
                spec.name
            );
            assert!(g.is_simple(), "{} not simple", spec.name);
        }
    }

    #[test]
    fn removed_share_tracks_spec() {
        // The two specs with dominant degree-2 share must land close.
        for spec in table1_specs() {
            if spec.removed_pct < 30.0 {
                continue;
            }
            let g = spec.build(32, 3);
            let s = GraphStats::measure(&g);
            let got = s.removed_pct();
            assert!(
                (got - spec.removed_pct).abs() < 12.0,
                "{}: wanted {}% got {got}%",
                spec.name,
                spec.removed_pct
            );
        }
    }

    #[test]
    fn bcc_counts_scale_down() {
        let spec = &table1_specs()[5]; // cond_mat_2003, 2157 BCCs
        let g = spec.build(32, 9);
        let s = GraphStats::measure(&g);
        let want = (spec.bccs / 32).max(1);
        assert!(
            s.n_bccs as f64 >= want as f64 * 0.5 && s.n_bccs as f64 <= want as f64 * 2.0,
            "wanted ≈{want} got {}",
            s.n_bccs
        );
    }

    #[test]
    fn mesh_specs_have_negligible_degree_two() {
        let spec = &table1_specs()[6]; // delaunay_n15
        let g = spec.build(16, 5);
        let s = GraphStats::measure(&g);
        assert!(s.removed_pct() < 2.0, "got {}%", s.removed_pct());
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = &table1_specs()[2];
        let a = spec.build(64, 1);
        let b = spec.build(64, 1);
        assert_eq!(a.edges(), b.edges());
    }
}
