//! Structure editors that steer a base graph towards a Table 1 row.

use ear_graph::{CsrGraph, EdgeId, Weight};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Subdivides `count` edges, inserting `chain_len` degree-2 vertices into
/// each — the direct control for the paper's "Nodes Removed (%)" column.
/// The chain's segment weights sum to the original edge weight (each at
/// least 1), so subdivision changes no shortest-path distance between
/// original vertices and preserves planarity and biconnectivity.
pub fn subdivide_edges(g: &CsrGraph, count: usize, chain_len: usize, seed: u64) -> CsrGraph {
    assert!(chain_len >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Only edges heavy enough to split into chain_len+1 positive segments
    // are eligible — subdividing lighter ones would inflate distances.
    let mut picks: Vec<EdgeId> = (0..g.m() as u32)
        .filter(|&e| g.weight(e) > chain_len as u64)
        .collect();
    picks.shuffle(&mut rng);
    picks.truncate(count.min(picks.len()));
    let chosen: std::collections::HashSet<EdgeId> = picks.into_iter().collect();

    let mut edges: Vec<(u32, u32, Weight)> = Vec::with_capacity(g.m() + count * chain_len);
    let mut next = g.n() as u32;
    for e in 0..g.m() as u32 {
        let r = g.edge(e);
        if !chosen.contains(&e) {
            edges.push((r.u, r.v, r.w));
            continue;
        }
        // Split w into chain_len+1 positive integer segments.
        let segs = chain_len as u64 + 1;
        let base = (r.w / segs).max(1);
        let mut remaining = r.w.saturating_sub(base * (segs - 1)).max(1);
        let mut prev = r.u;
        for _ in 0..chain_len {
            let x = next;
            next += 1;
            edges.push((prev, x, base));
            prev = x;
        }
        if remaining == 0 {
            remaining = 1;
        }
        edges.push((prev, r.v, remaining));
    }
    CsrGraph::from_edges(next as usize, &edges)
}

/// Attaches `count` pendant (degree-1) vertices at random hosts. Each
/// pendant edge is its own biconnected component, so this raises the BCC
/// count by `count` while adding no cycles — the Banerjee-style pendant
/// population of the collaboration graphs.
pub fn attach_pendants(g: &CsrGraph, count: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32, Weight)> = g.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
    let mut next = g.n() as u32;
    for _ in 0..count {
        let host = rng.gen_range(0..next); // pendants can chain off pendants
        edges.push((host, next, rng.gen_range(1..=crate::generators::MAX_WEIGHT)));
        next += 1;
    }
    CsrGraph::from_edges(next as usize, &edges)
}

/// Attaches `count` satellite blocks — small cycles of `size ≥ 3` vertices
/// sharing one (articulation) vertex with the host graph. Each satellite
/// adds exactly one biconnected component with `size` edges.
pub fn attach_satellite_blocks(g: &CsrGraph, count: usize, size: usize, seed: u64) -> CsrGraph {
    assert!(size >= 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32, Weight)> = g.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
    let mut next = g.n() as u32;
    let host_max = g.n() as u32;
    for _ in 0..count {
        let host = rng.gen_range(0..host_max);
        let ring: Vec<u32> = std::iter::once(host)
            .chain((0..size as u32 - 1).map(|i| next + i))
            .collect();
        next += size as u32 - 1;
        for i in 0..ring.len() {
            let a = ring[i];
            let b = ring[(i + 1) % ring.len()];
            edges.push((a, b, rng.gen_range(1..=crate::generators::MAX_WEIGHT)));
        }
    }
    CsrGraph::from_edges(next as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_min_deg3, triangulated_grid};
    use ear_decomp::plan::DecompPlan;
    use ear_graph::{connected_components, dijkstra};

    #[test]
    fn subdivision_adds_exact_degree_two_population() {
        let g = random_min_deg3(50, 150, 1);
        let sub = subdivide_edges(&g, 40, 2, 2);
        assert_eq!(sub.n(), g.n() + 80);
        assert_eq!(sub.m(), g.m() + 80);
        let deg2 = (0..sub.n() as u32).filter(|&v| sub.degree(v) == 2).count();
        assert_eq!(deg2, 80);
    }

    #[test]
    fn subdivision_preserves_distances_between_original_vertices() {
        let g = random_min_deg3(30, 90, 3);
        let sub = subdivide_edges(&g, 20, 3, 4);
        for s in [0u32, 7, 13] {
            let d0 = dijkstra(&g, s);
            let d1 = dijkstra(&sub, s);
            for v in 0..g.n() {
                assert_eq!(d0[v], d1[v], "source {s} target {v}");
            }
        }
    }

    #[test]
    fn subdivision_preserves_connectivity_and_simplicity() {
        let g = triangulated_grid(6, 6, 5);
        let sub = subdivide_edges(&g, g.m(), 1, 6);
        assert!(connected_components(&sub).is_connected());
        assert!(sub.is_simple());
    }

    #[test]
    fn pendants_raise_bcc_count_linearly() {
        let g = random_min_deg3(20, 60, 7);
        let before = DecompPlan::build(&g).n_blocks();
        let aug = attach_pendants(&g, 15, 8);
        let after = DecompPlan::build(&aug).n_blocks();
        assert_eq!(after, before + 15);
        assert!(connected_components(&aug).is_connected());
    }

    #[test]
    fn satellites_raise_bcc_count_and_stay_connected() {
        let g = random_min_deg3(20, 60, 9);
        let before = DecompPlan::build(&g).n_blocks();
        let aug = attach_satellite_blocks(&g, 10, 4, 10);
        let after = DecompPlan::build(&aug).n_blocks();
        assert_eq!(after, before + 10);
        assert_eq!(aug.n(), g.n() + 10 * 3);
        assert_eq!(aug.m(), g.m() + 10 * 4);
        assert!(connected_components(&aug).is_connected());
    }

    #[test]
    fn subdivided_weights_are_preserved_in_total() {
        let g = random_min_deg3(20, 60, 11);
        let total = g.total_weight();
        let sub = subdivide_edges(&g, 30, 2, 12);
        // Each subdivided edge's chain sums to at least the original weight
        // (exactly, except when w < segments forces minimum-1 segments).
        assert!(sub.total_weight() >= total);
    }
}
