//! Table 1 statistics of a (generated or loaded) graph.

use ear_decomp::plan::DecompPlan;
use ear_graph::CsrGraph;

/// Every column the paper's Table 1 reports, measured from a graph.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// `|V|`.
    pub n: usize,
    /// `|E|`.
    pub m: usize,
    /// Biconnected components.
    pub n_bccs: usize,
    /// Edge count of the largest component.
    pub largest_bcc_edges: usize,
    /// Degree-2 vertices removed by per-block ear reduction.
    pub removed: usize,
    /// Articulation points.
    pub articulation_points: usize,
    /// Stored entries under the paper's scheme: `a² + Σ nᵢ²`.
    pub table_entries: u64,
    /// Entries under the memory-frugal variant that stores only the
    /// *reduced* per-block tables (`a² + Σ (nᵢʳ)²`) and extends distances
    /// to removed vertices on demand with the §2.1.3 formulas. The paper's
    /// published MB figures for the chain-heavy graphs (as-22july06,
    /// Wordnet3, soc-sign-epinions) are only reachable with this kind of
    /// storage — see EXPERIMENTS.md.
    pub reduced_table_entries: u64,
}

impl GraphStats {
    /// Measures a graph (runs biconnectivity + per-block reduction).
    pub fn measure(g: &CsrGraph) -> Self {
        Self::from_plan(&DecompPlan::build(g))
    }

    /// Reads every Table 1 column off a prebuilt [`DecompPlan`], so a
    /// combined run (stats + APSP + MCB) decomposes the graph exactly once.
    pub fn from_plan(plan: &DecompPlan) -> Self {
        let mut largest = 0usize;
        let mut sum_sq = 0u64;
        let mut sum_sq_reduced = 0u64;
        for bp in plan.blocks() {
            largest = largest.max(bp.m());
            sum_sq += (bp.n() as u64).pow(2);
            let nr = bp.reduction.as_ref().map_or(bp.n(), |r| r.reduced.n());
            sum_sq_reduced += (nr as u64).pow(2);
        }
        let a = plan.bct().ap_count();
        GraphStats {
            n: plan.n(),
            m: plan.m(),
            n_bccs: plan.n_blocks(),
            largest_bcc_edges: largest,
            removed: plan.removed_vertices(),
            articulation_points: a,
            table_entries: (a as u64).pow(2) + sum_sq,
            reduced_table_entries: (a as u64).pow(2) + sum_sq_reduced,
        }
    }

    /// Largest BCC's share of edges, percent (Table 1 column 5).
    pub fn largest_bcc_pct(&self) -> f64 {
        if self.m == 0 {
            0.0
        } else {
            100.0 * self.largest_bcc_edges as f64 / self.m as f64
        }
    }

    /// Removed vertices, percent of `|V|` (Table 1 column 6).
    pub fn removed_pct(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            100.0 * self.removed as f64 / self.n as f64
        }
    }

    /// "Our's Memory" in MB (4-byte entries, like the paper's figures).
    pub fn ours_memory_mb(&self) -> f64 {
        self.table_entries as f64 * 4.0 / (1024.0 * 1024.0)
    }

    /// "Max Memory" in MB (`n²` 4-byte entries).
    pub fn max_memory_mb(&self) -> f64 {
        (self.n as f64).powi(2) * 4.0 / (1024.0 * 1024.0)
    }

    /// Memory of the reduced-table variant in MB (4-byte entries).
    pub fn reduced_memory_mb(&self) -> f64 {
        self.reduced_table_entries as f64 * 4.0 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_two_block_graph() {
        // triangle - bridge - square with two degree-2 vertices
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 6, 1),
                (6, 3, 1),
            ],
        );
        let s = GraphStats::measure(&g);
        assert_eq!(s.n, 7);
        assert_eq!(s.m, 8);
        assert_eq!(s.n_bccs, 3);
        assert_eq!(s.largest_bcc_edges, 4);
        assert_eq!(s.articulation_points, 2);
        // Square 3-4-5-6: vertices 4,5,6 have degree 2 inside the block but
        // 3 anchors it... in the square every vertex has block-degree 2
        // except the anchor choice; reduce keeps one representative.
        assert!(s.removed >= 2);
        assert!(s.largest_bcc_pct() > 49.0);
    }

    #[test]
    fn memory_is_below_flat_table_when_blocky() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
        );
        let s = GraphStats::measure(&g);
        assert!(s.ours_memory_mb() < s.max_memory_mb());
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::measure(&CsrGraph::from_edges(0, &[]));
        assert_eq!(s.n_bccs, 0);
        assert_eq!(s.largest_bcc_pct(), 0.0);
        assert_eq!(s.removed_pct(), 0.0);
    }
}
