//! # ear-workloads
//!
//! Synthetic workload generators matched to the paper's Table 1 datasets.
//!
//! The paper evaluates on University of Florida Sparse Matrix Collection
//! graphs plus OGDF-generated planar graphs. Neither source ships with this
//! repository, so [`specs`] describes each dataset by the structural
//! statistics Table 1 publishes — `|V|`, `|E|`, number of biconnected
//! components, largest-BCC edge share, and the fraction of degree-2
//! vertices the preprocessing removes — and [`specs::DatasetSpec::build`]
//! synthesises a graph hitting those statistics (see DESIGN.md for why
//! this substitution preserves the evaluation's behaviour: every effect the
//! paper measures is driven by exactly these statistics).
//!
//! * [`generators`] — base topologies: grids, triangulated grids
//!   (delaunay-like), preferential attachment (collaboration/AS-like),
//!   Watts–Strogatz small worlds, random min-degree-3 cores;
//! * [`combinators`] — structure editors: edge subdivision (plants degree-2
//!   chains), pendant vertices, satellite blocks (controls #BCCs);
//! * [`specs`] — the fifteen Table 1 rows plus `build()`;
//! * [`stats`] — measures every Table 1 column of a generated graph.

pub mod combinators;
pub mod generators;
pub mod specs;
pub mod stats;

pub use specs::{planar_specs, table1_specs, DatasetSpec};
pub use stats::GraphStats;
