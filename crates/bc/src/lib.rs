//! # ear-bc
//!
//! Betweenness centrality on the heterogeneous platform.
//!
//! The paper's conclusions argue that its decomposition techniques "can be
//! employed to obtain significant speedup for other graph problems too,
//! especially the ones based on paths of a graph", and cites the authors'
//! companion work (Pachorkar et al., HiPC 2016) applying ear decomposition
//! to betweenness centrality. This crate provides that neighbouring
//! application as a library consumer of the same substrates:
//!
//! * [`brandes`] — exact weighted betweenness (Brandes' algorithm with
//!   Dijkstra path counting), sequential and as per-source workunits on
//!   the [`ear_hetero::HeteroExecutor`] — the identical scheduling shape
//!   to the paper's APSP Phase II;
//! * [`pendant`] — the degree-1 reduction: pendant trees are peeled with
//!   [`ear_decomp::peel_pendants`] and their exactly-known contributions
//!   are accounted in closed form, so Brandes runs only on the 1-core
//!   (with vertex multiplicities), mirroring the pendant optimisation the
//!   paper credits to Banerjee et al.

pub mod brandes;
pub mod pendant;

pub use brandes::{betweenness, betweenness_hetero};
pub use pendant::betweenness_pendant_reduced;
