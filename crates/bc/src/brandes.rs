//! Brandes' betweenness centrality for weighted graphs, with optional
//! vertex multiplicities (the hook the pendant reduction uses).
//!
//! Betweenness of `v`: `Σ_{s≠v≠t} σ_st(v)/σ_st` over unordered pairs,
//! where `σ_st` counts shortest `s–t` paths. Computed with one
//! Dijkstra-with-path-counting per source plus the backward dependency
//! accumulation; sources fan out as workunits exactly like the paper's
//! APSP Phase II.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;

use ear_graph::{CsrGraph, VertexId, Weight, INF};
use ear_hetero::{ExecutionReport, HeteroExecutor, RunOutput, WorkCounters};
use rayon::prelude::*;

/// Reusable per-source shortest-path-DAG scratch: distances, path counts,
/// predecessor lists (which keep their capacity across sources — the
/// dominant allocation of the old per-call version), settle order, and the
/// heap. Reset is O(touched): only vertices settled by the previous run
/// are cleared.
struct BcScratch {
    dist: Vec<Weight>,
    sigma: Vec<f64>,
    preds: Vec<Vec<VertexId>>,
    done: Vec<bool>,
    /// Vertices in settle order (non-decreasing distance).
    order: Vec<VertexId>,
    heap: BinaryHeap<Reverse<(Weight, VertexId)>>,
    stats: WorkCounters,
}

impl BcScratch {
    fn new() -> Self {
        BcScratch {
            dist: Vec::new(),
            sigma: Vec::new(),
            preds: Vec::new(),
            done: Vec::new(),
            order: Vec::new(),
            heap: BinaryHeap::new(),
            stats: WorkCounters::default(),
        }
    }

    /// Clears the previous run's footprint and grows arrays to `n`.
    fn begin(&mut self, n: usize) {
        // Every written entry belongs to a settled vertex (a vertex is only
        // touched when strictly improved, which pushes it, so it settles).
        for &v in &self.order {
            let vi = v as usize;
            self.dist[vi] = INF;
            self.sigma[vi] = 0.0;
            self.preds[vi].clear();
            self.done[vi] = false;
        }
        self.order.clear();
        self.heap.clear();
        self.stats = WorkCounters::default();
        if self.dist.len() < n {
            self.dist.resize(n, INF);
            self.sigma.resize(n, 0.0);
            self.preds.resize_with(n, Vec::new);
            self.done.resize(n, false);
        }
    }
}

fn count_paths(g: &CsrGraph, s: VertexId, sc: &mut BcScratch) {
    sc.begin(g.n());
    sc.dist[s as usize] = 0;
    sc.sigma[s as usize] = 1.0;
    sc.heap.push(Reverse((0, s)));
    while let Some(Reverse((d, u))) = sc.heap.pop() {
        if sc.done[u as usize] {
            continue;
        }
        sc.done[u as usize] = true;
        sc.order.push(u);
        sc.stats.vertices_settled += 1;
        for &(v, e) in g.neighbors(u) {
            sc.stats.edges_relaxed += 1;
            if v == u {
                continue;
            }
            let nd = d + g.weight(e);
            if nd < sc.dist[v as usize] {
                sc.dist[v as usize] = nd;
                sc.sigma[v as usize] = sc.sigma[u as usize];
                sc.preds[v as usize].clear();
                sc.preds[v as usize].push(u);
                sc.heap.push(Reverse((nd, v)));
            } else if nd == sc.dist[v as usize] {
                // A second shortest route into v (weights are >= 1, so u is
                // settled and sigma[u] is final here).
                sc.sigma[v as usize] += sc.sigma[u as usize];
                sc.preds[v as usize].push(u);
            }
        }
    }
}

// Per-thread scratch pool, same shape as `ear_graph::engine::with_engine`:
// a thread-local slot whose Drop feeds a bounded global free list, so warm
// scratch survives the scoped worker threads the rayon shim spawns.
static FREE_SCRATCH: Mutex<Vec<BcScratch>> = Mutex::new(Vec::new());
const MAX_POOLED: usize = 64;

thread_local! {
    static TLS_SCRATCH: RefCell<ScratchSlot> = const { RefCell::new(ScratchSlot(None)) };
}

struct ScratchSlot(Option<BcScratch>);

impl Drop for ScratchSlot {
    fn drop(&mut self) {
        if let Some(sc) = self.0.take() {
            recycle(sc);
        }
    }
}

fn recycle(sc: BcScratch) {
    if let Ok(mut free) = FREE_SCRATCH.lock() {
        if free.len() < MAX_POOLED {
            free.push(sc);
        }
    }
}

fn with_scratch<R>(f: impl FnOnce(&mut BcScratch) -> R) -> R {
    let mut sc = TLS_SCRATCH
        .try_with(|slot| slot.borrow_mut().0.take())
        .ok()
        .flatten()
        .or_else(|| FREE_SCRATCH.lock().ok().and_then(|mut v| v.pop()))
        .unwrap_or_else(BcScratch::new);
    let r = f(&mut sc);
    if let Ok(Some(displaced)) = TLS_SCRATCH.try_with(|slot| slot.borrow_mut().0.replace(sc)) {
        recycle(displaced);
    }
    r
}

/// Dependency accumulation from one source: returns `δ_s(v)` for all `v`,
/// where targets carry weight `target_w[t]` (classic Brandes is all-ones).
fn dependencies(g: &CsrGraph, s: VertexId, target_w: &[f64]) -> (Vec<f64>, WorkCounters) {
    with_scratch(|sc| {
        count_paths(g, s, sc);
        let n = g.n();
        let mut delta = vec![0.0; n];
        let mut stats = sc.stats;
        for &v in sc.order.iter().rev() {
            if v == s || sc.dist[v as usize] >= INF {
                continue;
            }
            let coeff = (target_w[v as usize] + delta[v as usize]) / sc.sigma[v as usize];
            for &u in &sc.preds[v as usize] {
                delta[u as usize] += sc.sigma[u as usize] * coeff;
                stats.distances_combined += 1;
            }
        }
        (delta, stats)
    })
}

/// Weighted-multiplicity betweenness over a restricted source set: each
/// source contributes `source_w[s] × δ`, targets weigh `target_w[t]`, and
/// ordered pairs are halved. With all-ones weights and all vertices as
/// sources this is plain betweenness.
pub fn betweenness_weighted(
    g: &CsrGraph,
    sources: &[VertexId],
    source_w: &[f64],
    target_w: &[f64],
) -> Vec<f64> {
    let partials: Vec<Vec<f64>> = sources
        .par_iter()
        .map(|&s| {
            let (mut delta, _) = dependencies(g, s, target_w);
            let ws = source_w[s as usize];
            for (v, d) in delta.iter_mut().enumerate() {
                *d = if v == s as usize { 0.0 } else { *d * ws };
            }
            delta
        })
        .collect();
    let mut bc = vec![0.0; g.n()];
    for p in partials {
        for (v, d) in p.into_iter().enumerate() {
            bc[v] += d;
        }
    }
    for b in &mut bc {
        *b *= 0.5; // unordered pairs
    }
    bc
}

/// Exact betweenness centrality of every vertex (unordered pairs).
///
/// ```
/// use ear_bc::betweenness;
/// use ear_graph::CsrGraph;
/// // Path 0-1-2: the middle vertex carries the single cross pair.
/// let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
/// assert_eq!(betweenness(&g), vec![0.0, 1.0, 0.0]);
/// ```
pub fn betweenness(g: &CsrGraph) -> Vec<f64> {
    let ones = vec![1.0; g.n()];
    let sources: Vec<VertexId> = (0..g.n() as u32).collect();
    betweenness_weighted(g, &sources, &ones, &ones)
}

/// Betweenness with per-source workunits on the heterogeneous executor —
/// the same scheduling shape as the paper's APSP Phase II, with the same
/// modelled report.
pub fn betweenness_hetero(g: &CsrGraph, exec: &HeteroExecutor) -> (Vec<f64>, ExecutionReport) {
    let ones = vec![1.0; g.n()];
    let m_hint = g.m() as u64 + 1;
    let sources: Vec<VertexId> = (0..g.n() as u32).collect();
    let RunOutput { results, report } = exec.run(
        sources,
        |_| m_hint,
        |&s| {
            let (mut delta, stats) = dependencies(g, s, &ones);
            delta[s as usize] = 0.0;
            (delta, stats)
        },
    );
    let mut bc = vec![0.0; g.n()];
    for p in results {
        for (v, d) in p.into_iter().enumerate() {
            bc[v] += d;
        }
    }
    for b in &mut bc {
        *b *= 0.5;
    }
    (bc, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "vertex {i}: {x} vs {y}");
        }
    }

    /// Brute force: enumerate all shortest paths per pair with DFS over
    /// the predecessor DAG.
    fn brute(g: &CsrGraph) -> Vec<f64> {
        let n = g.n();
        let mut bc = vec![0.0; n];
        let mut sp = BcScratch::new();
        for s in 0..n as u32 {
            count_paths(g, s, &mut sp);
            for t in 0..n as u32 {
                if t <= s || sp.dist[t as usize] >= INF {
                    continue;
                }
                // Count, per interior vertex, the share of s-t paths.
                let mut through = vec![0.0; n];
                let mut paths = 0.0;
                let mut stack = vec![(t, vec![t])];
                while let Some((v, trail)) = stack.pop() {
                    if v == s {
                        paths += 1.0;
                        for &x in &trail {
                            if x != s && x != t {
                                through[x as usize] += 1.0;
                            }
                        }
                        continue;
                    }
                    for &p in &sp.preds[v as usize] {
                        let mut tr = trail.clone();
                        tr.push(p);
                        stack.push((p, tr));
                    }
                }
                for v in 0..n {
                    bc[v] += through[v] / paths;
                }
            }
        }
        bc
    }

    #[test]
    fn path_graph_closed_form() {
        // P5: BC(i) = i * (n-1-i).
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)]);
        let bc = betweenness(&g);
        close(&bc, &[0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_center_takes_everything() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1), (0, 2, 1), (0, 3, 1), (0, 4, 1)]);
        let bc = betweenness(&g);
        close(&bc, &[6.0, 0.0, 0.0, 0.0, 0.0]); // C(4,2)
    }

    #[test]
    fn cycle_splits_ties_evenly() {
        // C4 with unit weights: antipodal pairs have two shortest paths.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let bc = betweenness(&g);
        close(&bc, &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn weighted_graph_prefers_light_routes() {
        // Square where one corner is expensive: all traffic hugs the cheap
        // side.
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 100)]);
        let bc = betweenness(&g);
        close(&bc, &brute(&g));
        assert!(bc[1] > 0.0 && bc[2] > 0.0);
        assert_eq!(bc[3], 0.0); // nothing routes through the heavy corner
    }

    #[test]
    fn random_graphs_match_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(4..9);
            let mut edges = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(n..3 * n) {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u != v && seen.insert((u.min(v), u.max(v))) {
                    edges.push((u, v, rng.gen_range(1..4u64)));
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            close(&betweenness(&g), &brute(&g));
        }
    }

    #[test]
    fn hetero_matches_sequential() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 2),
                (1, 2, 2),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 3),
                (5, 0, 2),
                (1, 4, 5),
            ],
        );
        let (bc, report) = betweenness_hetero(&g, &HeteroExecutor::cpu_gpu());
        close(&bc, &betweenness(&g));
        assert!(report.total_counters().edges_relaxed > 0);
    }

    #[test]
    fn disconnected_components_are_independent() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 1), (1, 2, 1), (3, 4, 1), (4, 5, 1)]);
        let bc = betweenness(&g);
        close(&bc, &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }
}
